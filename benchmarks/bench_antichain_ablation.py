"""Ablation — antichain inclusion vs. full subset construction.

The paper adopted the antichain tool of [28] because determinizing the
nondeterministic specifications is infeasible; this benchmark quantifies
that choice: the canonical subset construction of Σss for (2, 2) has
~204k macrostates, while the antichain check touches a tiny fraction.
The (2, 1) instance is benchmarked both ways; (2, 2) determinization is
reported, not timed repeatedly.
"""

import pytest

from repro.automata import (
    check_inclusion_antichain,
    check_inclusion_in_dfa,
    determinize,
)
from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.spec.nondet import build_nondet_spec

from conftest import emit


@pytest.fixture(scope="module")
def instance_21():
    return {
        "nondet": build_nondet_spec(2, 1, SS),
        "det": build_det_spec(2, 1, SS),
    }


def bench_antichain_inclusion_21(benchmark, instance_21):
    res = benchmark(
        check_inclusion_antichain,
        instance_21["det"].to_nfa(),
        instance_21["nondet"],
    )
    assert res.holds


def bench_subset_construction_inclusion_21(benchmark, instance_21):
    def via_determinization():
        canonical = determinize(instance_21["nondet"].compact()[0])
        return check_inclusion_in_dfa(
            instance_21["det"].to_nfa(), canonical
        )

    res = benchmark.pedantic(via_determinization, rounds=1, iterations=1)
    assert res.holds


def bench_antichain_ablation_report(instance_21):
    anti = check_inclusion_antichain(
        instance_21["det"].to_nfa(), instance_21["nondet"]
    )
    canonical = determinize(instance_21["nondet"].compact()[0])
    lines = [
        f"(2,1) Σss: nondet {instance_21['nondet'].num_states} states",
        f"antichain pairs explored: {anti.product_states}",
        f"canonical determinization: {canonical.num_states} macrostates",
        f"minimal DFA: {canonical.compact()[0].minimize().num_states} states",
    ]
    assert anti.product_states < canonical.num_states * 5
    emit("Ablation: antichain vs subset construction", lines)
