"""Ablation — TM permissiveness as language size.

The paper's introduction motivates TMs as "ensuring transactional
atomicity without restricting parallelism"; one quantitative lens is how
many distinct behaviours (words) each algorithm admits.  This benchmark
fingerprints each TM by the number of language words per length on
(2,2): the sequential TM is the floor, DSTM (which resolves conflicts by
stealing rather than blocking) is the most permissive, and 2PL, TL2 and
the optimistic TM sit between — all while being equally safe (Table 2).
"""

import pytest

from repro.lang import language_size_by_length
from repro.tm import (
    DSTM,
    TL2,
    OptimisticTM,
    SequentialTM,
    TwoPhaseLockingTM,
)

from conftest import emit

TMS = [
    ("seq", SequentialTM(2, 2)),
    ("2PL", TwoPhaseLockingTM(2, 2)),
    ("dstm", DSTM(2, 2)),
    ("TL2", TL2(2, 2)),
    ("opt", OptimisticTM(2, 2)),
]

# Pinned fingerprints (words of each length 0..4) — doubles as a
# regression net for the algorithms' semantics.
EXPECTED_PREFIX = {
    "seq": (1, 10, 68, 456, 3056),
    "2PL": (1, 12, 128, 1260, 11956),
    "dstm": (1, 12, 138, 1542, 16878),
    "TL2": (1, 10, 104, 1092, 11468),
    "opt": (1, 10, 100, 1000, 9992),
}


@pytest.mark.parametrize("name,tm", TMS, ids=[t[0] for t in TMS])
def bench_language_fingerprint(benchmark, name, tm):
    counts = benchmark.pedantic(
        language_size_by_length, args=(tm, 4), rounds=1, iterations=1
    )
    assert counts == EXPECTED_PREFIX[name]


def bench_permissiveness_report():
    lines = []
    totals = {}
    for name, tm in TMS:
        counts = language_size_by_length(tm, 4)
        totals[name] = sum(counts)
        lines.append(f"{name:5s} words by length 0..4: {counts}")
    emit("Ablation: TM permissiveness (language sizes, (2,2))", lines)
    assert totals["seq"] < totals["TL2"] < totals["2PL"] < totals["dstm"]
