"""Figures 1–3 — the worked safety examples and the commit conditions.

Figure 1: two words that are not strictly serializable.
Figure 2: two words that are strictly serializable but not opaque.
Figure 3: the four conditions C1–C4 under which Σss disallows a commit,
demonstrated by driving the nondeterministic specification through each
scenario with explicit serialization points.

The benchmarked operations are the reference decision procedure and
spec membership on these words.
"""

import pytest

from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import parse_word
from repro.spec import OP, SS
from repro.spec.nondet import (
    initial_state,
    nondet_epsilon,
    nondet_step,
    spec_accepts,
)

from conftest import emit

FIGURE_WORDS = [
    ("fig1a", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1 c3", 3, 2, False, False),
    (
        "fig1b",
        "(w,1)2 (r,2)2 (r,3)3 (r,1)1 c2 (w,2)3 (w,3)1 c1 c3",
        3,
        3,
        False,
        False,
    ),
    ("fig2a", "(w,1)2 (r,1)1 (r,2)3 c2 (w,2)1 (r,1)3 c1", 3, 2, True, False),
    ("fig2b", "(w,1)2 (r,1)1 c2 (r,2)3 a3 (w,2)1 c1", 3, 2, True, False),
]


@pytest.mark.parametrize(
    "name,text,n,k,ss,op", FIGURE_WORDS, ids=[w[0] for w in FIGURE_WORDS]
)
def bench_reference_checker(benchmark, name, text, n, k, ss, op):
    word = parse_word(text)

    def both():
        return is_strictly_serializable(word), is_opaque(word)

    got_ss, got_op = benchmark(both)
    assert (got_ss, got_op) == (ss, op)


@pytest.mark.parametrize(
    "name,text,n,k,ss,op", FIGURE_WORDS, ids=[w[0] for w in FIGURE_WORDS]
)
def bench_spec_membership(benchmark, name, text, n, k, ss, op):
    word = parse_word(text)

    def both():
        return (
            spec_accepts(word, n, k, SS),
            spec_accepts(word, n, k, OP),
        )

    got_ss, got_op = benchmark(both)
    assert (got_ss, got_op) == (ss, op)


def _drive(moves, prop):
    """Run a scenario: 'e1'/'e2' are ε of thread 1/2, everything else a
    statement.  Returns the state, or None once rejected."""
    q = initial_state(2)
    for m in moves:
        if q is None:
            return None
        if m in ("e1", "e2"):
            q = nondet_epsilon(q, int(m[1]), prop)
        else:
            q = nondet_step(q, parse_word(m)[0], prop)
    return q


# Figure 3: in each scenario thread 1 is x, thread 2 is y; the final
# commit of the oval-marked transaction must be rejected in-branch.
CONDITIONS = {
    # C1: x before y; y writes v and commits; x then reads v → c1 dies
    "C1": ["(w,2)1", "e1", "(w,1)2", "e2", "c2", "(r,1)1", "c1"],
    # C2: x before y; x writes v; y reads v and commits → c1 dies
    "C2": ["(w,1)1", "e1", "(r,1)2", "e2", "c2", "c1"],
    # C3: x before y; both write v; y commits first → c1 dies
    "C3": ["(w,1)1", "e1", "(w,1)2", "e2", "c2", "c1"],
    # C4: y before x; y writes v; x reads v before y commits → c1 dies
    "C4": ["(w,1)2", "e2", "(r,1)1", "e1", "c2", "c1"],
}


@pytest.mark.parametrize("name", sorted(CONDITIONS), ids=sorted(CONDITIONS))
def bench_figure3_conditions(benchmark, name):
    moves = CONDITIONS[name]
    result = benchmark(_drive, moves, SS)
    assert result is None, f"{name}: the marked commit was not disallowed"
    # ...while the prefix without the final commit survives
    assert _drive(moves[:-1], SS) is not None


def bench_figures_report():
    lines = []
    for name, text, n, k, ss, op in FIGURE_WORDS:
        w = parse_word(text)
        lines.append(
            f"{name}: ss={is_strictly_serializable(w)} (expect {ss}),"
            f" op={is_opaque(w)} (expect {op})"
        )
    for name in sorted(CONDITIONS):
        rejected = _drive(CONDITIONS[name], SS) is None
        lines.append(f"Fig 3 {name}: commit disallowed in-branch: {rejected}")
        assert rejected
    emit("Figures 1–3: worked examples and commit conditions", lines)
