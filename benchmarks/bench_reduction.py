"""Theorems 1 and 5 — the structural properties P1–P6 on the paper's TMs.

The paper discharges P1–P6 per algorithm by inspection; here the bounded
mechanical checks are the benchmarked operation.  The expected outcomes
encode our reproduction findings:

* P1–P3 and existential P4 monotonicity hold for all four TMs;
* DSTM fails the *universal* reading of P4 (and the commit-commutativity
  sufficient condition) — see EXPERIMENTS.md;
* P5 and P6 hold (P6(ii) on abort-free suffixes, the word-level reading).
"""

import pytest

from repro.reduction import (
    check_all_liveness_properties,
    check_monotonicity,
    check_thread_symmetry,
    check_transaction_projection,
    check_variable_projection,
)
from repro.tm import DSTM, TL2, SequentialTM, TwoPhaseLockingTM

from conftest import emit

FAMILIES = [
    ("seq", SequentialTM),
    ("2PL", TwoPhaseLockingTM),
    ("dstm", DSTM),
    ("TL2", TL2),
]

MAXLEN = 4


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def bench_p1_transaction_projection(benchmark, name, make):
    rep = benchmark.pedantic(
        check_transaction_projection, args=(make(2, 2), MAXLEN),
        rounds=1, iterations=1,
    )
    assert rep.holds


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def bench_p2_thread_symmetry(benchmark, name, make):
    rep = benchmark.pedantic(
        check_thread_symmetry, args=(make(2, 2), MAXLEN),
        rounds=1, iterations=1,
    )
    assert rep.holds


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def bench_p3_variable_projection(benchmark, name, make):
    rep = benchmark.pedantic(
        check_variable_projection, args=(make(2, 2), MAXLEN),
        rounds=1, iterations=1,
    )
    assert rep.holds


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def bench_p4_monotonicity(benchmark, name, make):
    rep = benchmark.pedantic(
        check_monotonicity, args=(make(2, 2), MAXLEN),
        rounds=1, iterations=1,
    )
    assert rep.holds


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def bench_p5_p6_liveness_properties(benchmark, name, make):
    reps = benchmark.pedantic(
        check_all_liveness_properties, args=(make(2, 2), MAXLEN),
        rounds=1, iterations=1,
    )
    assert all(r.holds for r in reps)


def bench_reduction_report():
    lines = []
    for name, make in FAMILIES:
        tm = make(2, 2)
        universal = check_monotonicity(tm, MAXLEN, universal=True)
        existential = check_monotonicity(tm, MAXLEN)
        lines.append(
            f"{name:5s} P4 existential: {existential.holds},"
            f" universal: {universal.holds}"
        )
    emit("Theorem 1 structural evidence (bounded, len<=4)", lines)
    # the DSTM finding: passes the proof-sufficient existential form,
    # fails the paper's literal universal phrasing
    assert check_monotonicity(DSTM(2, 2), MAXLEN).holds
    assert not check_monotonicity(DSTM(2, 2), MAXLEN, universal=True).holds
