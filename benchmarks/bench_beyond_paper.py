"""Extension — a TM the paper does not cover, through the full pipeline.

``OptimisticTM`` (lock-free write buffering with eager read validation)
is run through every check the paper's TMs get: Table 2-style safety for
(2,2), Table 3-style liveness for (2,1), and the structural properties.
The model checker certifies that it is opaque, obstruction free *and*
livelock free — a combination none of the paper's four TMs achieves —
while still failing wait freedom.
"""

import pytest

from repro.automata.inclusion import check_inclusion_in_dfa
from repro.checking.liveness import (
    check_livelock_freedom,
    check_obstruction_freedom,
    check_wait_freedom,
)
from repro.spec import OP, SS
from repro.tm import OptimisticTM, build_liveness_graph, build_safety_nfa

from conftest import emit


@pytest.fixture(scope="module")
def opt_nfa():
    return build_safety_nfa(OptimisticTM(2, 2))


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_optimistic_safety(benchmark, specs_22, opt_nfa, prop):
    res = benchmark.pedantic(
        check_inclusion_in_dfa, args=(opt_nfa, specs_22[prop]),
        rounds=1, iterations=1,
    )
    assert res.holds


def bench_optimistic_liveness(benchmark):
    tm = OptimisticTM(2, 1)

    def all_three():
        graph = build_liveness_graph(tm)
        return (
            check_obstruction_freedom(tm, graph=graph),
            check_livelock_freedom(tm, graph=graph),
            check_wait_freedom(tm, graph=graph),
        )

    of, lf, wf = benchmark(all_three)
    assert of.holds and lf.holds and not wf.holds


def bench_beyond_paper_report(specs_22, opt_nfa):
    rows = [f"optimistic TM size: {opt_nfa.num_states} states"]
    for prop in (SS, OP):
        res = check_inclusion_in_dfa(opt_nfa, specs_22[prop])
        rows.append(f"{prop.value}: {'Y' if res.holds else 'N'}")
        assert res.holds
    tm = OptimisticTM(2, 1)
    graph = build_liveness_graph(tm)
    rows.append(
        "OF: Y, LF: Y, WF: N — strictly better liveness than Table 3"
    )
    assert check_obstruction_freedom(tm, graph=graph).holds
    assert check_livelock_freedom(tm, graph=graph).holds
    assert not check_wait_freedom(tm, graph=graph).holds
    emit("Beyond the paper: lock-free optimistic TM", rows)
