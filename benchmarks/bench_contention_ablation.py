"""Ablation — liveness as a function of the contention manager.

Section 6's point in one sweep: the same TM algorithm changes its
liveness class with the manager.  DSTM is obstruction free exactly under
the aggressive manager; polite/permissive/Karma all admit the `a1` loop.
Safety, by contrast, is manager-independent (L(Acm) ⊆ L(A)) — asserted
here by checking one managed variant per manager against Σdop.
"""

import pytest

from repro.automata.inclusion import check_inclusion_in_dfa
from repro.checking.liveness import check_obstruction_freedom
from repro.spec import OP
from repro.tm import (
    DSTM,
    AggressiveManager,
    BoundedKarmaManager,
    ManagedTM,
    PermissiveManager,
    PoliteManager,
    build_liveness_graph,
    build_safety_nfa,
)

from conftest import emit

MANAGERS = [
    ("aggr", AggressiveManager(), True),
    ("pol", PoliteManager(), False),
    ("perm", PermissiveManager(), False),
    ("karma", BoundedKarmaManager(2, bound=2), False),
]


@pytest.mark.parametrize(
    "name,cm,of_expected", MANAGERS, ids=[m[0] for m in MANAGERS]
)
def bench_dstm_obstruction_freedom_by_manager(benchmark, name, cm, of_expected):
    tm = ManagedTM(DSTM(2, 1), cm)

    def check():
        graph = build_liveness_graph(tm)
        return check_obstruction_freedom(tm, graph=graph)

    res = benchmark(check)
    assert res.holds == of_expected


@pytest.mark.parametrize(
    "name,cm,of_expected", MANAGERS, ids=[m[0] for m in MANAGERS]
)
def bench_dstm_safety_independent_of_manager(
    benchmark, specs_22, name, cm, of_expected
):
    tm = ManagedTM(DSTM(2, 2), cm)
    nfa = build_safety_nfa(tm)
    res = benchmark.pedantic(
        check_inclusion_in_dfa, args=(nfa, specs_22[OP]),
        rounds=1, iterations=1,
    )
    assert res.holds  # every managed variant stays opaque


def bench_contention_report():
    lines = []
    for name, cm, of_expected in MANAGERS:
        tm = ManagedTM(DSTM(2, 1), cm)
        graph = build_liveness_graph(tm)
        res = check_obstruction_freedom(tm, graph=graph)
        assert res.holds == of_expected
        lines.append(
            f"dstm+{name:5s} states={len(graph.nodes):4d}"
            f" obstruction free: {res.holds}"
        )
    emit("Ablation: DSTM liveness by contention manager", lines)
