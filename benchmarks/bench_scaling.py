"""Ablation — why the reduction theorem matters: state-space growth.

The paper's whole point is that (2, 2) suffices.  This benchmark sweeps
(n, k) over specification and TM state spaces to show the blow-up the
reduction avoids: adding a third thread or variable multiplies state
counts by orders of magnitude, while the verdicts stay the same.
"""

import pytest

from repro.automata.inclusion import check_inclusion_in_dfa
from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.tm import DSTM, TwoPhaseLockingTM, build_safety_nfa

from conftest import emit

SPEC_INSTANCES = [(1, 1), (1, 2), (2, 1), (2, 2)]


@pytest.mark.parametrize(
    "n,k", SPEC_INSTANCES, ids=[f"{n}x{k}" for n, k in SPEC_INSTANCES]
)
def bench_det_spec_scaling(benchmark, n, k):
    dfa = benchmark.pedantic(
        build_det_spec, args=(n, k, OP), rounds=1, iterations=1
    )
    assert dfa.num_states >= 1


TM_INSTANCES = [(2, 1), (2, 2), (3, 1)]


@pytest.mark.parametrize(
    "n,k", TM_INSTANCES, ids=[f"{n}x{k}" for n, k in TM_INSTANCES]
)
def bench_tm_exploration_scaling(benchmark, n, k):
    nfa = benchmark.pedantic(
        build_safety_nfa, args=(DSTM(n, k),), rounds=1, iterations=1
    )
    assert nfa.num_states >= 1


def bench_scaling_report():
    lines = []
    for n, k in SPEC_INSTANCES:
        sizes = {
            p.value: build_det_spec(n, k, p).num_states for p in (SS, OP)
        }
        lines.append(f"Σd ({n} threads, {k} vars): {sizes}")
    for n, k in TM_INSTANCES:
        lines.append(
            f"dstm ({n},{k}): {build_safety_nfa(DSTM(n, k)).num_states}"
            f" states; 2PL: "
            f"{build_safety_nfa(TwoPhaseLockingTM(n, k)).num_states}"
        )
    emit("Scaling ablation: state spaces vs (n,k)", lines)


def bench_verdict_stability_smaller_instances():
    """The (2,1) verdicts agree with (2,2) — the reduction direction."""
    for n, k in [(1, 1), (1, 2), (2, 1)]:
        spec = build_det_spec(n, k, OP)
        nfa = build_safety_nfa(DSTM(n, k))
        assert check_inclusion_in_dfa(nfa, spec).holds
