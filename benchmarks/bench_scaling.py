"""Ablation — why the reduction theorem matters: state-space growth.

The paper's whole point is that (2, 2) suffices.  This benchmark sweeps
(n, k) over specification and TM state spaces to show the blow-up the
reduction avoids: adding a third thread or variable multiplies state
counts by orders of magnitude, while the verdicts stay the same.

The fully lazy product (``check_safety(..., lazy_spec=True)``) streams
both the TM *and* the specification through their transition functions,
so the check is bounded by the product reachable set — which unlocks
the (3, 2) and (2, 3) instances whose full specifications are far too
large to materialize (Σdss at (2, 3) alone has ~227k states and takes
minutes to build; (3, 2) is out of reach entirely).
"""

import pytest

from repro.automata.inclusion import check_inclusion_in_dfa
from repro.checking import check_safety
from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.tm import DSTM, TwoPhaseLockingTM, build_safety_nfa

from conftest import emit

SPEC_INSTANCES = [(1, 1), (1, 2), (2, 1), (2, 2)]


@pytest.mark.parametrize(
    "n,k", SPEC_INSTANCES, ids=[f"{n}x{k}" for n, k in SPEC_INSTANCES]
)
def bench_det_spec_scaling(benchmark, n, k):
    dfa = benchmark.pedantic(
        build_det_spec, args=(n, k, OP), rounds=1, iterations=1
    )
    assert dfa.num_states >= 1


TM_INSTANCES = [(2, 1), (2, 2), (3, 1)]


@pytest.mark.parametrize(
    "n,k", TM_INSTANCES, ids=[f"{n}x{k}" for n, k in TM_INSTANCES]
)
def bench_tm_exploration_scaling(benchmark, n, k):
    nfa = benchmark.pedantic(
        build_safety_nfa, args=(DSTM(n, k),), rounds=1, iterations=1
    )
    assert nfa.num_states >= 1


def bench_scaling_report():
    lines = []
    for n, k in SPEC_INSTANCES:
        sizes = {
            p.value: build_det_spec(n, k, p).num_states for p in (SS, OP)
        }
        lines.append(f"Σd ({n} threads, {k} vars): {sizes}")
    for n, k in TM_INSTANCES:
        lines.append(
            f"dstm ({n},{k}): {build_safety_nfa(DSTM(n, k)).num_states}"
            f" states; 2PL: "
            f"{build_safety_nfa(TwoPhaseLockingTM(n, k)).num_states}"
        )
    emit("Scaling ablation: state spaces vs (n,k)", lines)


def bench_verdict_stability_smaller_instances():
    """The (2,1) verdicts agree with (2,2) — the reduction direction."""
    for n, k in [(1, 1), (1, 2), (2, 1)]:
        spec = build_det_spec(n, k, OP)
        nfa = build_safety_nfa(DSTM(n, k))
        assert check_inclusion_in_dfa(nfa, spec).holds


# Instances whose full specification cannot reasonably be materialized:
# only the fully lazy product makes these checkable.  (dstm at (3, 2)
# also completes — ~7 minutes, 27.5M product pairs, 703k spec states
# visited — but is too slow for the default benchmark run.)
UNLOCKED_INSTANCES = [
    ("2PL", TwoPhaseLockingTM, 3, 2),
    ("2PL", TwoPhaseLockingTM, 2, 3),
    ("dstm", DSTM, 2, 3),
]


@pytest.mark.parametrize(
    "name,factory,n,k",
    UNLOCKED_INSTANCES,
    ids=[f"{t[0]}-{t[2]}x{t[3]}" for t in UNLOCKED_INSTANCES],
)
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_lazy_safety_unlocked(benchmark, name, factory, n, k, prop):
    """Safety at (3, 2) / (2, 3) via the fully lazy product."""
    tm = factory(n, k)
    result = benchmark.pedantic(
        check_safety,
        args=(tm, prop),
        kwargs={"lazy_spec": True},
        rounds=1,
        iterations=1,
    )
    assert result.holds


def bench_lazy_safety_unlocked_report():
    lines = []
    for name, factory, n, k in UNLOCKED_INSTANCES:
        tm = factory(n, k)
        for prop in (SS, OP):
            res = check_safety(tm, prop, lazy_spec=True)
            lines.append(
                f"{name} ({n},{k}) {prop.value}: {'Y' if res.holds else 'N'}"
                f" tm={res.tm_states} spec-seen={res.spec_states}"
                f" product={res.product_states} {res.seconds:.1f}s"
            )
    emit("Unlocked instances: fully lazy product at (3,2)/(2,3)", lines)
