"""Ablation — online monitoring vs. offline re-checking.

Section 5 argues that conflict graphs cannot check safety online (their
size is unbounded in the number of committed transactions), while the
prohibited-set construction works with constant per-thread state.  This
benchmark quantifies the payoff on long histories: the incremental
monitor processes each statement in near-constant time, whereas
re-running the offline graph decider after every statement is quadratic
in history length.
"""

import random

import pytest

from repro.core.monitor import OpacityMonitor
from repro.core.properties import is_opaque
from repro.core.statements import statements


def _random_history(length: int, seed: int = 11):
    rng = random.Random(seed)
    alphabet = statements(2, 2)
    monitor = OpacityMonitor(2, 2)
    word = []
    # generate an opaque history by rejection sampling single steps, so
    # both contenders process the same (maximal-length) input
    while len(word) < length:
        stmt = rng.choice(alphabet)
        if monitor.would_accept(stmt):
            monitor.feed(stmt)
            word.append(stmt)
    return tuple(word)


@pytest.fixture(scope="module")
def history():
    return _random_history(300)


def bench_online_monitor(benchmark, history):
    def run():
        m = OpacityMonitor(2, 2)
        for stmt in history:
            m.feed(stmt)
        return m.ok

    assert benchmark(run)


def bench_offline_recheck_every_statement(benchmark, history):
    # the conflict-graph route: re-decide after every statement
    prefix = history[:60]  # quadratic: keep the benchmark bounded

    def run():
        ok = True
        for i in range(1, len(prefix) + 1):
            ok = is_opaque(prefix[:i])
        return ok

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def bench_monitor_report(history):
    from conftest import emit

    m = OpacityMonitor(2, 2)
    for stmt in history:
        m.feed(stmt)
    emit(
        "Ablation: online monitoring",
        [
            f"monitored {len(history)} statements with constant state;",
            "the offline conflict graph needs the full history each time",
            "(the unbounded wm example of Section 5).",
        ],
    )
    assert m.ok
