"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper; expensive
automata are built once per session so the timed portion is the
verification step the paper reports, not the model construction.
"""

from __future__ import annotations

import pytest

from repro.spec import OP, SS, cached_det_spec, cached_nondet_spec


@pytest.fixture(scope="session")
def specs_22():
    """Both deterministic specifications for (2, 2), from the process
    cache (shared with any pipeline code that runs in the session)."""
    return {SS: cached_det_spec(2, 2, SS), OP: cached_det_spec(2, 2, OP)}


@pytest.fixture(scope="session")
def nondet_specs_22():
    """Both nondeterministic specifications for (2, 2)."""
    return {SS: cached_nondet_spec(2, 2, SS), OP: cached_nondet_spec(2, 2, OP)}


def emit(title: str, lines) -> None:
    """Print a paper-style results block (visible with pytest -s, and in
    the captured output section otherwise)."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(f"   {line}")
