"""Benchmark gate for the compiled spec oracle (lazy-spec safety path).

Times ``check_safety(..., lazy_spec=True)`` per cell — the PR 2 engine
(compiled TM side, *rich* ``det_step`` spec oracle; ``spec_compiled=
False``) vs the compiled spec oracle (packed-int spec states, memoized
int-indexed rows) — and writes ``BENCH_spec_compiled.json``.  Verdicts
and all reported counts are asserted identical between the paths before
any timing is reported, and a ``--jobs`` differential asserts that
sharded runs reproduce the serial results bit for bit.

As in ``bench_compiled.py``, each path runs ``--rounds`` rounds per cell
on one long-lived TM instance: ``cold_s`` is the first round (for the
compiled path that includes compiling both engines), ``best_s`` the
fastest round (steady state — the PR 2 path re-derives its spec rows
every round because its oracle memo is per-run; the compiled oracle's
process-wide memo is precisely the optimization under test).  A third
number, ``disk_warm_s``, times a simulated fresh process: engines
restored from an on-disk warm cache written by the previous rounds.

Intended CI use::

    PYTHONPATH=src python benchmarks/bench_spec_compiled.py \
        --cells dstm22 --rounds 3 --require-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.checking import check_safety
from repro.core.statements import format_word
from repro.spec import OP, SS
from repro.spec.compiled import clear_spec_oracle_cache
from repro.tm import DSTM, TwoPhaseLockingTM

#: Cells: name -> (factory, human instance label).  The (2, 3) DSTM cell
#: is the ROADMAP's "large lazy-spec run" — the one PR 2 left dominated
#: by the rich spec oracle.
CELLS: Dict[str, Tuple[Callable, str]] = {
    "2pl22": (lambda: TwoPhaseLockingTM(2, 2), "2PL (2,2)"),
    "dstm22": (lambda: DSTM(2, 2), "DSTM (2,2)"),
    "2pl32": (lambda: TwoPhaseLockingTM(3, 2), "2PL (3,2)"),
    "dstm23": (lambda: DSTM(2, 3), "DSTM (2,3)"),
}

PROPS = {"ss": SS, "op": OP}


def run_path(
    factory: Callable,
    prop,
    spec_compiled: bool,
    rounds: int,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> dict:
    """Rounds of one cell on one long-lived TM instance."""
    tm = factory()
    result = None

    def check():
        nonlocal result
        result = check_safety(
            tm,
            prop,
            lazy_spec=True,
            spec_compiled=spec_compiled,
            jobs=jobs,
            cache_dir=cache_dir,
        )

    times: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        check()
        times.append(time.perf_counter() - t0)
    assert result is not None
    return {
        "holds": result.holds,
        "tm_states": result.tm_states,
        "spec_states": result.spec_states,
        "product_states": result.product_states,
        "counterexample": (
            None
            if result.counterexample is None
            else format_word(result.counterexample)
        ),
        "cold_s": round(times[0], 6),
        "best_s": round(min(times), 6),
    }


def run_disk_warm(factory: Callable, prop) -> dict:
    """A fresh-process simulation: spill caches, drop every in-process
    table, then time one warm-started check."""
    with tempfile.TemporaryDirectory() as d:
        check_safety(factory(), prop, lazy_spec=True, cache_dir=d)
        clear_spec_oracle_cache()
        tm = factory()  # new instance: its engine compiles from nothing
        t0 = time.perf_counter()
        result = check_safety(tm, prop, lazy_spec=True, cache_dir=d)
        elapsed = time.perf_counter() - t0
        files = os.listdir(d)
    return {
        "disk_warm_s": round(elapsed, 6),
        "cache_files": len(files),
        "holds": result.holds,
        "product_states": result.product_states,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--cells",
        default="dstm22,dstm23",
        help=f"comma-separated subset of {list(CELLS)}",
    )
    parser.add_argument(
        "--jobs-check",
        type=int,
        default=2,
        metavar="N",
        help="assert jobs=N results equal serial results (0 disables)",
    )
    parser.add_argument(
        "--skip-disk-warm",
        action="store_true",
        help="skip the fresh-process warm-start measurement",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="fail unless every benchmarked cell reaches this best-round"
        " speedup over the PR 2 path",
    )
    parser.add_argument("--output", default="BENCH_spec_compiled.json")
    args = parser.parse_args(argv)

    names = [n.strip().lower() for n in args.cells.split(",") if n.strip()]
    unknown = [n for n in names if n not in CELLS]
    if unknown:
        parser.error(f"unknown cells: {unknown}; choose from {list(CELLS)}")

    cells = []
    failures: List[str] = []
    for name in names:
        factory, label = CELLS[name]
        for prop_name, prop in PROPS.items():
            pr2 = run_path(factory, prop, False, args.rounds)
            comp = run_path(factory, prop, True, args.rounds)
            for key in (
                "holds",
                "tm_states",
                "spec_states",
                "product_states",
                "counterexample",
            ):
                if pr2[key] != comp[key]:
                    failures.append(
                        f"{name}/{prop_name}: {key} differs between paths"
                        f" ({pr2[key]!r} vs {comp[key]!r})"
                    )
            cell = {
                "cell": name,
                "instance": label,
                "prop": prop_name,
                "holds": comp["holds"],
                "tm_states": comp["tm_states"],
                "spec_states": comp["spec_states"],
                "product_states": comp["product_states"],
                "pr2_oracle": pr2,
                "compiled_oracle": comp,
                "speedup_cold": round(pr2["cold_s"] / comp["cold_s"], 2),
                "speedup_best": round(pr2["best_s"] / comp["best_s"], 2),
            }
            if args.jobs_check:
                sharded = run_path(
                    factory, prop, True, 1, jobs=args.jobs_check
                )
                for key in (
                    "holds",
                    "tm_states",
                    "spec_states",
                    "product_states",
                    "counterexample",
                ):
                    if sharded[key] != comp[key]:
                        failures.append(
                            f"{name}/{prop_name}: jobs="
                            f"{args.jobs_check} {key} differs from serial"
                            f" ({sharded[key]!r} vs {comp[key]!r})"
                        )
                cell["jobs"] = {
                    "n": args.jobs_check,
                    "cold_s": sharded["cold_s"],
                    "identical": all(
                        sharded[k] == comp[k]
                        for k in (
                            "holds",
                            "tm_states",
                            "spec_states",
                            "product_states",
                            "counterexample",
                        )
                    ),
                }
            if not args.skip_disk_warm:
                cell["disk_warm"] = run_disk_warm(factory, prop)
            cells.append(cell)

    if args.require_speedup is not None:
        for cell in cells:
            if cell["speedup_best"] < args.require_speedup:
                failures.append(
                    f"{cell['cell']}/{cell['prop']}: best-round speedup"
                    f" {cell['speedup_best']}x <"
                    f" required {args.require_speedup}x"
                )

    total_pr2 = sum(c["pr2_oracle"]["best_s"] for c in cells)
    total_comp = sum(c["compiled_oracle"]["best_s"] for c in cells)
    report = {
        "benchmark": (
            "compiled spec oracle vs PR 2 rich det_step oracle"
            " (lazy-spec safety path)"
        ),
        "rounds": args.rounds,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "summary": {
            "total_pr2_best_s": round(total_pr2, 6),
            "total_compiled_best_s": round(total_comp, 6),
            "overall_speedup_best": round(total_pr2 / total_comp, 2),
            "failures": failures,
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max(len(f"{c['cell']}/{c['prop']}") for c in cells)
    for c in cells:
        lbl = f"{c['cell']}/{c['prop']}"
        warm = c.get("disk_warm", {}).get("disk_warm_s")
        print(
            f"{lbl:{width}s}  pr2 {c['pr2_oracle']['best_s']:8.4f}s"
            f"  compiled {c['compiled_oracle']['best_s']:8.4f}s"
            f"  speedup {c['speedup_best']:6.2f}x"
            f"  (cold {c['speedup_cold']:.2f}x"
            + (f", disk-warm {warm:.4f}s" if warm is not None else "")
            + ")"
        )
    print(
        f"overall (best rounds): pr2 {total_pr2:.3f}s,"
        f" compiled {total_comp:.3f}s,"
        f" speedup {total_pr2 / total_comp:.2f}x -> {args.output}"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
