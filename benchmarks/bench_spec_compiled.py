"""Benchmark gate for the compiled spec oracle (lazy-spec safety path).

Times ``check_safety(..., lazy_spec=True)`` per cell — the PR 2 engine
(compiled TM side, *rich* ``det_step`` spec oracle; ``spec_compiled=
False``) vs the compiled spec oracle (packed-int spec states, memoized
int-indexed rows) — and writes ``BENCH_spec_compiled.json``.  Verdicts
and all reported counts are asserted identical between the paths before
any timing is reported, and a ``--jobs`` differential asserts that
sharded runs reproduce the serial results bit for bit.

As in ``bench_compiled.py``, each path runs ``--rounds`` rounds per cell
on one long-lived TM instance: ``cold_s`` is the first round (for the
compiled path that includes compiling both engines), ``best_s`` the
fastest round (steady state — the PR 2 path re-derives its spec rows
every round because its oracle memo is per-run; the compiled oracle's
process-wide memo is precisely the optimization under test).  A third
number, ``disk_warm_s``, times a simulated fresh process: engines
restored from an on-disk warm cache written by the previous rounds.
A ``warm_backends`` block rides along per cell, comparing the pickle
disk backend against the zero-deserialization mmap backend — whole
warm-check time, direct payload-load time, stored bytes, and the bytes
saved against an int64-pickle baseline (the pre-typed-width format) —
gated by ``--require-mmap-parity``.

Each cell additionally records a ``product_bfs`` time split: the kernel
product functions timed directly on fully warm engines, isolating the
pair loop from row computation — the packed-oracle BFS, the **dense
kernel's** array-only bitset BFS over the recorded CSR (``dense_bfs_s``
/ ``dense_speedup``, gated by ``--require-dense-parity``), and (on
cells whose full spec is materializable) the DFA-sided BFS over the
Statement-keyed delta vs the int-indexed rows, which must not be slower
(``--require-dfa-parity``).  The ``--jobs`` differential runs both
sharding flavours — the sharded product BFS itself and row-only
sharding — and records their timings next to the serial ones; a
``jobs_sweep`` (default 1/2/4, with the chosen ``--chunk-size`` and
pool reuse) is recorded per cell, flagged as correctness-only on 1-core
boxes.  A per-phase ``profile`` split (engine build / row discovery /
product BFS / trace rerun) of one cold check rides along per cell.

Intended CI use::

    PYTHONPATH=src python benchmarks/bench_spec_compiled.py \
        --cells dstm22 --rounds 3 --require-speedup 1.5 \
        --require-dense-parity 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache import (
    ENGINE_VERSION,
    is_int_vector,
    make_backend,
    widen_int_vector,
)
from repro.automata.kernel import (
    product_dfa_direct,
    product_dfa_packed,
    product_oracle_packed,
)
from repro.checking import check_safety
from repro.core.statements import format_word
from repro.spec import OP, SS
from repro.spec.build import cached_det_spec
from repro.spec.compiled import (
    cached_spec_dfa,
    cached_spec_oracle,
    clear_spec_oracle_cache,
)
from repro.tm import DSTM, TwoPhaseLockingTM, compile_tm

#: Cells: name -> (factory, human instance label, dfa_split).  The
#: (2, 3) DSTM cell is the ROADMAP's "large lazy-spec run" — the one
#: PR 2 left dominated by the rich spec oracle.  ``dfa_split`` marks the
#: cells whose full deterministic spec is cheap enough to materialize
#: for the DFA-sided product-BFS split (the large lazy-only cells exist
#: precisely because it is not).
CELLS: Dict[str, Tuple[Callable, str, bool]] = {
    "2pl22": (lambda: TwoPhaseLockingTM(2, 2), "2PL (2,2)", True),
    "dstm22": (lambda: DSTM(2, 2), "DSTM (2,2)", True),
    "2pl32": (lambda: TwoPhaseLockingTM(3, 2), "2PL (3,2)", False),
    "dstm23": (lambda: DSTM(2, 3), "DSTM (2,3)", False),
}

PROPS = {"ss": SS, "op": OP}


def run_path(
    factory: Callable,
    prop,
    spec_compiled: bool,
    rounds: int,
    jobs: int = 1,
    shard_product: bool = True,
    cache_dir: Optional[str] = None,
    chunk_size: Optional[int] = None,
    reuse_pool: bool = False,
    dense_kernel: bool = True,
) -> dict:
    """Rounds of one cell on one long-lived TM instance."""
    tm = factory()
    result = None

    def check():
        nonlocal result
        result = check_safety(
            tm,
            prop,
            lazy_spec=True,
            spec_compiled=spec_compiled,
            dense_kernel=dense_kernel,
            jobs=jobs,
            shard_product=shard_product,
            chunk_size=chunk_size,
            reuse_pool=reuse_pool,
            cache_dir=cache_dir,
        )

    times: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        check()
        times.append(time.perf_counter() - t0)
    if reuse_pool:
        compile_tm(tm).close_pools()
    assert result is not None
    return {
        "holds": result.holds,
        "tm_states": result.tm_states,
        "spec_states": result.spec_states,
        "product_states": result.product_states,
        "counterexample": (
            None
            if result.counterexample is None
            else format_word(result.counterexample)
        ),
        "cold_s": round(times[0], 6),
        "best_s": round(min(times), 6),
    }


def product_bfs_split(
    factory: Callable, prop, rounds: int, dfa_split: bool
) -> dict:
    """Pure product-BFS timings on *fully warm* engines.

    ``check_safety`` times above include row computation and engine
    warm-up; here the kernel product functions are timed directly with
    every row memoized, isolating the pair-loop itself — the bottleneck
    the sharded product BFS attacks.  On ``dfa_split`` cells the
    DFA-sided loop is timed twice: over the Statement-keyed delta
    (``product_dfa_direct``) and over the int-indexed rows
    (``product_dfa_packed``) — the int-ized delta must not be slower on
    any cell.
    """
    tm = factory()
    engine = compile_tm(tm)
    oracle = cached_spec_oracle(tm.n, tm.k, prop)
    # dense_kernel=True: recording no longer engages by default on
    # cache-less one-shot runs, but this split times the recorded CSR.
    check_safety(tm, prop, lazy_spec=True, dense_kernel=True)
    init = [engine.initial_node_packed()]
    row_map = engine.safety_rows_map()
    dense = engine.dense_csr("oracle", prop)

    def best(fn) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return round(min(times), 6)

    out = {
        "oracle_packed_bfs_s": best(
            lambda: product_oracle_packed(
                engine.safety_row_ids,
                init,
                oracle,
                node_span=engine.node_span,
                row_map=row_map,
            )
        ),
        # The dense kernel's warm pair loop: array-only bitset BFS over
        # the CSR recorded by the warm-up check above — the acceptance
        # split of the dense-kernel PR, gated by --require-dense-parity.
        "dense_bfs_s": best(
            lambda: product_oracle_packed(
                engine.safety_row_ids,
                init,
                oracle,
                node_span=engine.node_span,
                row_map=row_map,
                dense=dense,
            )
        ),
    }
    out["dense_speedup"] = round(
        out["oracle_packed_bfs_s"] / out["dense_bfs_s"], 2
    )
    if dfa_split:
        spec = cached_det_spec(tm.n, tm.k, prop)
        check_safety(tm, prop, spec_compiled=False)  # warm Statement rows
        cdfa = cached_spec_dfa(tm.n, tm.k, prop).ensure()
        out["dfa_statement_bfs_s"] = best(
            lambda: product_dfa_direct(engine.safety_row, init, spec)
        )
        out["dfa_int_bfs_s"] = best(
            lambda: product_dfa_packed(
                engine.safety_row_ids,
                init,
                cdfa.rows,
                node_span=engine.node_span,
                row_map=row_map,
            )
        )
        out["dfa_int_not_slower"] = (
            out["dfa_int_bfs_s"] <= out["dfa_statement_bfs_s"]
        )
        dense_dfa = engine.dense_csr("dfa", prop)
        out["dfa_dense_bfs_s"] = best(  # first round records the CSR
            lambda: product_dfa_packed(
                engine.safety_row_ids,
                init,
                cdfa.rows,
                node_span=engine.node_span,
                row_map=row_map,
                dense=dense_dfa,
            )
        )
    return out


def run_disk_warm(factory: Callable, prop) -> dict:
    """A fresh-process simulation: spill caches, drop every in-process
    table, then time one warm-started check."""
    with tempfile.TemporaryDirectory() as d:
        check_safety(factory(), prop, lazy_spec=True, cache_dir=d)
        clear_spec_oracle_cache()
        tm = factory()  # new instance: its engine compiles from nothing
        t0 = time.perf_counter()
        result = check_safety(tm, prop, lazy_spec=True, cache_dir=d)
        elapsed = time.perf_counter() - t0
        files = os.listdir(d)
    return {
        "disk_warm_s": round(elapsed, 6),
        "cache_files": len(files),
        "holds": result.holds,
        "product_states": result.product_states,
    }


def run_backend_warm(
    factory: Callable, prop, backend_name: str, rounds: int
) -> dict:
    """Warm-start metrics for one cache backend: whole-check warm time,
    direct payload-load time (min over ``max(rounds, 10)`` — loads are
    milliseconds, so extra rounds cost nothing and de-noise the parity
    gate — each on a fresh backend instance: what a new process pays
    before its first BFS step), stored bytes, and the int64-pickle
    baseline those bytes are
    compared against (every int vector re-widened to ``array('q')`` and
    pickled, i.e. the pre-typed-width on-disk format)."""
    with tempfile.TemporaryDirectory() as d:
        be = make_backend(backend_name, d)
        check_safety(factory(), prop, lazy_spec=True, cache_dir=be)
        clear_spec_oracle_cache()
        tm = factory()  # new instance: its engine compiles from nothing
        t0 = time.perf_counter()
        result = check_safety(tm, prop, lazy_spec=True, cache_dir=be)
        warm_s = time.perf_counter() - t0
        keys = be.keys()
        stored = sum(be.stat(k)["bytes"] for k in keys)
        load_times = []
        for _ in range(max(rounds, 10)):
            fresh = make_backend(backend_name, d)
            t0 = time.perf_counter()
            for k in keys:
                assert fresh.load(k) is not None
            load_times.append(time.perf_counter() - t0)
        baseline = 0
        for k in keys:
            data = be.load(k)
            if isinstance(data, dict):
                data = {
                    name: (
                        widen_int_vector(v) if is_int_vector(v) else v
                    )
                    for name, v in data.items()
                }
            baseline += len(
                pickle.dumps(
                    {"version": ENGINE_VERSION, "key": k, "data": data},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
    return {
        "warm_check_s": round(warm_s, 6),
        "payload_load_s": round(min(load_times), 6),
        "stored_bytes": stored,
        "int64_pickle_bytes": baseline,
        "bytes_saved_vs_int64_pickle": round(1 - stored / baseline, 3),
        "cache_files": len(keys),
        "holds": result.holds,
        "product_states": result.product_states,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--cells",
        default="dstm22,dstm23",
        help=f"comma-separated subset of {list(CELLS)}",
    )
    parser.add_argument(
        "--jobs-check",
        type=int,
        default=2,
        metavar="N",
        help="assert jobs=N results equal serial results, for both the"
        " sharded product BFS and row-only sharding (0 disables, and"
        " also disables the jobs sweep)",
    )
    parser.add_argument(
        "--jobs-sweep",
        default="1,2,4",
        metavar="LIST",
        help="comma-separated jobs values for the recorded sharded-"
        "product timing sweep (skipped when --jobs-check is 0)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=64,
        metavar="N",
        help="row-prefetcher chunk size recorded with the jobs sweep"
        " (scheduling-only; results are identical for any value)",
    )
    parser.add_argument(
        "--require-dfa-parity",
        type=float,
        default=None,
        metavar="TOL",
        help="fail unless the int-ized DFA product BFS is within TOL x"
        " of the Statement-keyed one on every dfa-split cell (e.g. 1.1)",
    )
    parser.add_argument(
        "--require-dense-parity",
        type=float,
        default=None,
        metavar="MIN_SPEEDUP",
        help="fail unless the dense warm-engine pair loop is at least"
        " MIN_SPEEDUP x faster than the set-based loop on every cell"
        " (1.0 = mere parity; the CI gate uses 1.5)",
    )
    parser.add_argument(
        "--skip-disk-warm",
        action="store_true",
        help="skip the fresh-process warm-start measurements (all"
        " backends)",
    )
    parser.add_argument(
        "--require-mmap-parity",
        type=float,
        default=None,
        metavar="TOL",
        help="fail unless the mmap backend's direct payload-load time is"
        " within TOL x of the disk (pickle) backend's on every cell"
        " (1.0 = mmap must be at least as fast)",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="fail unless every benchmarked cell reaches this best-round"
        " speedup over the PR 2 path",
    )
    parser.add_argument("--output", default="BENCH_spec_compiled.json")
    args = parser.parse_args(argv)

    names = [n.strip().lower() for n in args.cells.split(",") if n.strip()]
    unknown = [n for n in names if n not in CELLS]
    if unknown:
        parser.error(f"unknown cells: {unknown}; choose from {list(CELLS)}")

    cells = []
    failures: List[str] = []
    for name in names:
        factory, label, dfa_split = CELLS[name]
        for prop_name, prop in PROPS.items():
            pr2 = run_path(factory, prop, False, args.rounds)
            comp = run_path(factory, prop, True, args.rounds)
            for key in (
                "holds",
                "tm_states",
                "spec_states",
                "product_states",
                "counterexample",
            ):
                if pr2[key] != comp[key]:
                    failures.append(
                        f"{name}/{prop_name}: {key} differs between paths"
                        f" ({pr2[key]!r} vs {comp[key]!r})"
                    )
            cell = {
                "cell": name,
                "instance": label,
                "prop": prop_name,
                "holds": comp["holds"],
                "tm_states": comp["tm_states"],
                "spec_states": comp["spec_states"],
                "product_states": comp["product_states"],
                "pr2_oracle": pr2,
                "compiled_oracle": comp,
                "speedup_cold": round(pr2["cold_s"] / comp["cold_s"], 2),
                "speedup_best": round(pr2["best_s"] / comp["best_s"], 2),
            }
            cell["product_bfs"] = product_bfs_split(
                factory, prop, args.rounds, dfa_split
            )
            if args.jobs_check:
                result_keys = (
                    "holds",
                    "tm_states",
                    "spec_states",
                    "product_states",
                    "counterexample",
                )
                sharded = run_path(
                    factory, prop, True, 1, jobs=args.jobs_check
                )
                rows_only = run_path(
                    factory,
                    prop,
                    True,
                    1,
                    jobs=args.jobs_check,
                    shard_product=False,
                    chunk_size=args.chunk_size,
                )
                for variant, res in (
                    ("sharded-product", sharded),
                    ("row-sharding", rows_only),
                ):
                    for key in result_keys:
                        if res[key] != comp[key]:
                            failures.append(
                                f"{name}/{prop_name}: jobs="
                                f"{args.jobs_check} {variant} {key}"
                                f" differs from serial"
                                f" ({res[key]!r} vs {comp[key]!r})"
                            )
                cell["jobs"] = {
                    "n": args.jobs_check,
                    "sharded_product_s": sharded["cold_s"],
                    "row_sharding_s": rows_only["cold_s"],
                    "identical": all(
                        sharded[k] == comp[k] and rows_only[k] == comp[k]
                        for k in result_keys
                    ),
                }
                # The recorded multicore sweep (ROADMAP item (b)):
                # sharded-product and row-sharding timings per jobs
                # value with the chosen prefetcher chunk size.  Each
                # jobs>1 config runs TWO rounds with reuse_pool=True —
                # the first pays the pool spawn (``*_s``), the second
                # reuses the parked pool and its warm workers
                # (``*_reused_s``), isolating the pool-reuse knob.  The
                # dense kernel is disabled here so the sweep times the
                # sharding machinery, not the array replay.  The j=1
                # entry reuses the serial cold timing already recorded
                # for this cell.  On a 1-core box these are correctness
                # runs, not wins — flagged via the note.
                sweep = []
                for j in sorted(
                    {
                        int(x)
                        for x in args.jobs_sweep.split(",")
                        if x.strip()
                    }
                ):
                    entry = {"jobs": j, "chunk_size": args.chunk_size}
                    if j <= 1:
                        entry["sharded_product_s"] = comp["cold_s"]
                        entry["row_sharding_s"] = comp["cold_s"]
                        entry["identical"] = True  # comp *is* serial
                    else:
                        sp = run_path(
                            factory,
                            prop,
                            True,
                            2,
                            jobs=j,
                            reuse_pool=True,
                            dense_kernel=False,
                        )
                        ro = run_path(
                            factory,
                            prop,
                            True,
                            2,
                            jobs=j,
                            shard_product=False,
                            chunk_size=args.chunk_size,
                            reuse_pool=True,
                            dense_kernel=False,
                        )
                        entry["sharded_product_s"] = sp["cold_s"]
                        entry["sharded_product_reused_s"] = sp["best_s"]
                        entry["row_sharding_s"] = ro["cold_s"]
                        entry["row_sharding_reused_s"] = ro["best_s"]
                        entry["identical"] = all(
                            sp[k] == comp[k] and ro[k] == comp[k]
                            for k in result_keys
                        )
                    if not entry["identical"]:
                        failures.append(
                            f"{name}/{prop_name}: jobs sweep j={j}"
                            f" diverged from serial"
                        )
                    sweep.append(entry)
                cell["jobs_sweep"] = sweep
                if os.cpu_count() == 1:
                    cell["jobs_sweep_note"] = (
                        "cpu_count==1: sharded timings are correctness"
                        " runs, not wins"
                    )
            prof: Dict[str, float] = {}
            check_safety(
                factory(), prop, lazy_spec=True, profile=prof
            )
            cell["profile"] = {
                key: round(value, 6) for key, value in prof.items()
            }
            if not args.skip_disk_warm:
                cell["disk_warm"] = run_disk_warm(factory, prop)
                # Per-backend warm starts (the mmap backend's reason to
                # exist: zero-deserialization loads off one shared
                # page-cached mapping; memory has no cross-process warm
                # start and is skipped).
                cell["warm_backends"] = {
                    bn: run_backend_warm(factory, prop, bn, args.rounds)
                    for bn in ("disk", "mmap")
                }
            cells.append(cell)

    if args.require_speedup is not None:
        for cell in cells:
            if cell["speedup_best"] < args.require_speedup:
                failures.append(
                    f"{cell['cell']}/{cell['prop']}: best-round speedup"
                    f" {cell['speedup_best']}x <"
                    f" required {args.require_speedup}x"
                )
    if args.require_dfa_parity is not None:
        for cell in cells:
            split = cell["product_bfs"]
            if "dfa_int_bfs_s" not in split:
                continue
            bound = split["dfa_statement_bfs_s"] * args.require_dfa_parity
            if split["dfa_int_bfs_s"] > bound:
                failures.append(
                    f"{cell['cell']}/{cell['prop']}: int-ized DFA product"
                    f" {split['dfa_int_bfs_s']}s >"
                    f" {args.require_dfa_parity}x Statement path"
                    f" {split['dfa_statement_bfs_s']}s"
                )
    if args.require_dense_parity is not None:
        for cell in cells:
            split = cell["product_bfs"]
            if split["dense_speedup"] < args.require_dense_parity:
                failures.append(
                    f"{cell['cell']}/{cell['prop']}: dense warm pair loop"
                    f" only {split['dense_speedup']}x over the set-based"
                    f" loop (< required {args.require_dense_parity}x:"
                    f" dense {split['dense_bfs_s']}s vs set"
                    f" {split['oracle_packed_bfs_s']}s)"
                )

    if args.require_mmap_parity is not None:
        for cell in cells:
            wb = cell.get("warm_backends")
            if not wb:
                continue
            bound = wb["disk"]["payload_load_s"] * args.require_mmap_parity
            if wb["mmap"]["payload_load_s"] > bound:
                failures.append(
                    f"{cell['cell']}/{cell['prop']}: mmap payload load"
                    f" {wb['mmap']['payload_load_s']}s >"
                    f" {args.require_mmap_parity}x disk"
                    f" {wb['disk']['payload_load_s']}s"
                )

    total_pr2 = sum(c["pr2_oracle"]["best_s"] for c in cells)
    total_comp = sum(c["compiled_oracle"]["best_s"] for c in cells)
    report = {
        "benchmark": (
            "compiled spec oracle vs PR 2 rich det_step oracle"
            " (lazy-spec safety path)"
        ),
        "rounds": args.rounds,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "summary": {
            "total_pr2_best_s": round(total_pr2, 6),
            "total_compiled_best_s": round(total_comp, 6),
            "overall_speedup_best": round(total_pr2 / total_comp, 2),
            "failures": failures,
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max(len(f"{c['cell']}/{c['prop']}") for c in cells)
    for c in cells:
        lbl = f"{c['cell']}/{c['prop']}"
        warm = c.get("disk_warm", {}).get("disk_warm_s")
        split = c["product_bfs"]
        extras = [
            f"product-bfs {split['oracle_packed_bfs_s']:.4f}s",
            f"dense {split['dense_bfs_s']:.4f}s"
            f" ({split['dense_speedup']:.1f}x)",
        ]
        if "dfa_int_bfs_s" in split:
            extras.append(
                f"dfa int {split['dfa_int_bfs_s']:.4f}s vs stmt"
                f" {split['dfa_statement_bfs_s']:.4f}s"
            )
        if "jobs" in c:
            extras.append(
                f"jobs{c['jobs']['n']} {c['jobs']['sharded_product_s']:.4f}s"
            )
        if "warm_backends" in c:
            wb = c["warm_backends"]
            extras.append(
                f"load disk {wb['disk']['payload_load_s']:.4f}s"
                f" ({wb['disk']['stored_bytes']}B) vs mmap"
                f" {wb['mmap']['payload_load_s']:.4f}s"
                f" ({wb['mmap']['stored_bytes']}B,"
                f" -{wb['mmap']['bytes_saved_vs_int64_pickle']:.0%}"
                f" vs int64 pickle)"
            )
        print(
            f"{lbl:{width}s}  pr2 {c['pr2_oracle']['best_s']:8.4f}s"
            f"  compiled {c['compiled_oracle']['best_s']:8.4f}s"
            f"  speedup {c['speedup_best']:6.2f}x"
            f"  (cold {c['speedup_cold']:.2f}x"
            + (f", disk-warm {warm:.4f}s" if warm is not None else "")
            + "; " + ", ".join(extras) + ")"
        )
    print(
        f"overall (best rounds): pr2 {total_pr2:.3f}s,"
        f" compiled {total_comp:.3f}s,"
        f" speedup {total_pr2 / total_comp:.2f}x -> {args.output}"
    )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
