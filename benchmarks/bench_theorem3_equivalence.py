"""Theorem 3 — L(Σss) = L(Σdss) and L(Σop) = L(Σdop) by antichains.

The paper's antichain tool proves both equivalences within 5 seconds;
the benchmarked operations are the two inclusion directions (product
against the DFA one way, antichain against the NFA the other).
"""

import pytest

from repro.automata import check_inclusion_antichain, check_inclusion_in_dfa
from repro.spec import OP, SS

from conftest import emit


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_nondet_included_in_det(benchmark, specs_22, nondet_specs_22, prop):
    res = benchmark.pedantic(
        check_inclusion_in_dfa,
        args=(nondet_specs_22[prop], specs_22[prop]),
        rounds=1,
        iterations=1,
    )
    assert res.holds, res.counterexample


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_det_included_in_nondet(benchmark, specs_22, nondet_specs_22, prop):
    res = benchmark.pedantic(
        check_inclusion_antichain,
        args=(specs_22[prop].to_nfa(), nondet_specs_22[prop]),
        rounds=1,
        iterations=1,
    )
    assert res.holds, res.counterexample


def bench_theorem3_report(specs_22, nondet_specs_22):
    import time

    lines = []
    for prop in (SS, OP):
        t0 = time.perf_counter()
        fwd = check_inclusion_in_dfa(nondet_specs_22[prop], specs_22[prop])
        t1 = time.perf_counter()
        bwd = check_inclusion_antichain(
            specs_22[prop].to_nfa(), nondet_specs_22[prop]
        )
        t2 = time.perf_counter()
        assert fwd.holds and bwd.holds
        lines.append(
            f"L(Σ{prop.value}) = L(Σd{prop.value}):"
            f" ⊆ {t1 - t0:.1f}s ({fwd.product_states} product states),"
            f" ⊇ {t2 - t1:.1f}s ({bwd.product_states} antichain pairs)"
        )
    emit("Theorem 3: spec equivalence via antichains (2,2)", lines)
