"""Table 2 — safety of the TM algorithms via language inclusion.

Regenerates every cell: for seq, 2PL, DSTM and TL2 the inclusion
L(A) ⊆ L(Σd) holds for both strict serializability and opacity; for the
modified TL2 with the polite manager it fails with a certified
counterexample.  The benchmarked operation is the inclusion check itself
(the paper reports up to 3.2 s on its hardware for TL2).
"""

import os

import pytest

from repro.automata.inclusion import check_inclusion_in_dfa
from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import format_word
from repro.spec import OP, SS
from repro.tm import (
    DSTM,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    build_safety_nfa,
)

from conftest import emit

TMS = [
    ("seq", SequentialTM(2, 2), True),
    ("2PL", TwoPhaseLockingTM(2, 2), True),
    ("dstm", DSTM(2, 2), True),
    ("TL2", TL2(2, 2), True),
    ("modTL2+pol", ManagedTM(ModifiedTL2(2, 2), PoliteManager()), False),
]

PAPER_SIZES = {"seq": 3, "2PL": 99, "dstm": 1846, "TL2": 21568,
               "modTL2+pol": 17520}

# CI smoke runs set a state budget so a regression that blows up the
# explorer fails fast instead of hanging the job.  The largest (2, 2)
# transition system (modTL2+pol) has ~16.6k states; 20000 is a tight
# ceiling, not a constraint on the healthy benchmark.
MAX_STATES = int(os.environ.get("BENCH_MAX_STATES", "0")) or None


@pytest.fixture(scope="module")
def tm_nfas():
    return {
        name: build_safety_nfa(tm, max_states=MAX_STATES)
        for name, tm, _ in TMS
    }


@pytest.mark.parametrize("name,tm,expect", TMS, ids=[t[0] for t in TMS])
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_table2_inclusion(benchmark, specs_22, tm_nfas, name, tm, expect, prop):
    nfa = tm_nfas[name]
    spec = specs_22[prop]
    result = benchmark.pedantic(
        check_inclusion_in_dfa, args=(nfa, spec), rounds=1, iterations=1
    )
    assert result.holds == expect, (name, prop, result.counterexample)
    if not result.holds:
        reference = (
            is_strictly_serializable
            if prop is SS
            else is_opaque
        )
        assert not reference(result.counterexample)


def bench_table2_report(specs_22, tm_nfas):
    lines = []
    for name, tm, expect in TMS:
        nfa = tm_nfas[name]
        cells = [f"{name:11s} size={nfa.num_states:6d}"
                 f" (paper {PAPER_SIZES[name]})"]
        for prop in (SS, OP):
            res = check_inclusion_in_dfa(nfa, specs_22[prop])
            if res.holds:
                cells.append(f"{prop.value}: Y")
            else:
                cells.append(
                    f"{prop.value}: N [{format_word(res.counterexample)}]"
                )
            assert res.holds == expect
        lines.append(" | ".join(cells))
    emit("Table 2: checking L(A) ⊆ L(Σd) for (2,2)", lines)
