"""Table 1 — example runs and words of the four TM algorithms.

Regenerates every row: the listed word must be in the TM's language, and
language membership (the macro-simulation of the TM's safety NFA) is the
benchmarked operation.
"""

import pytest

from repro.core.statements import parse_word
from repro.tm import (
    DSTM,
    TL2,
    SequentialTM,
    TwoPhaseLockingTM,
    build_safety_nfa,
)

from conftest import emit

ROWS = [
    ("seq", SequentialTM(2, 2), "(r,1)1 (w,2)1 c1 (w,1)2 c2"),
    ("seq", SequentialTM(2, 2), "(r,1)1 (w,2)1 a2 c1 (w,1)2 c2"),
    ("2PL", TwoPhaseLockingTM(2, 2), "(r,1)1 (w,2)1 c1"),
    ("2PL", TwoPhaseLockingTM(2, 2), "a2 (r,1)1 (w,2)1 c1"),
    ("dstm", DSTM(2, 2), "(r,1)1 (w,1)2 (w,2)1 c1 a2"),
    ("dstm", DSTM(2, 2), "(r,1)1 (w,1)2 c2 (w,2)1 a1"),
    ("TL2", TL2(2, 2), "(r,1)1 (w,2)1 (w,1)2 c1 c2"),
    ("TL2", TL2(2, 2), "(r,1)1 (w,2)1 (w,1)2 a1 c2"),
]


@pytest.fixture(scope="module")
def tm_nfas():
    cache = {}
    for name, tm, _ in ROWS:
        if name not in cache:
            cache[name] = build_safety_nfa(tm)
    return cache


@pytest.mark.parametrize(
    "name,tm,text", ROWS, ids=[f"{r[0]}-{i}" for i, r in enumerate(ROWS)]
)
def bench_table1_membership(benchmark, tm_nfas, name, tm, text):
    word = parse_word(text)
    nfa = tm_nfas[name]
    accepted = benchmark(nfa.accepts, word)
    assert accepted, f"Table 1 row missing from L({name}): {text}"


def bench_table1_report(tm_nfas):
    lines = []
    for name, _, text in ROWS:
        ok = tm_nfas[name].accepts(parse_word(text))
        lines.append(f"{name:5s} word [{text}]: {'in L' if ok else 'MISSING'}")
        assert ok
    emit("Table 1: runs and words of the TM algorithms", lines)


# The schedule column: simulate each row's schedule and reproduce the
# full run (extended statements), not just the word.
SCHEDULED_ROWS = [
    (
        SequentialTM(2, 2), "11122", {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (w,2)1, c1, (w,1)2, c2",
    ),
    (
        SequentialTM(2, 2), "112122", {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (w,2)1, a2, c1, (w,1)2, c2",
    ),
    (
        TwoPhaseLockingTM(2, 2), "111112", {1: "r1 w2 c", 2: "w2 c"},
        "(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2",
    ),
    (
        DSTM(2, 2), "12211112", {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (o,1)2, (w,1)2, (o,2)1, (w,2)1, v1, c1, a2",
    ),
    (
        TL2(2, 2), "112112212", {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (w,2)1, (w,1)2, (l,2)1, v1, (l,1)2, v2, c1, c2",
    ),
]


@pytest.mark.parametrize(
    "tm,sched,progs,run_text",
    SCHEDULED_ROWS,
    ids=[f"{r[0].name}-{r[1]}" for r in SCHEDULED_ROWS],
)
def bench_table1_schedule_simulation(benchmark, tm, sched, progs, run_text):
    from repro.tm.runs import parse_schedule, program, simulate

    programs = {t: program(p) for t, p in progs.items()}
    schedule = parse_schedule(sched)
    run = benchmark(simulate, tm, programs, schedule)
    assert str(run) == run_text
