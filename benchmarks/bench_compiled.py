"""Benchmark gate for the compiled packed-state TM engine.

Times ``check_safety`` per Table 2 cell — naive streaming
(``compiled=False``, the PR 1 lazy path) vs the compiled engine — and
writes ``BENCH_compiled.json`` with per-cell wall times and states/sec.
Verdicts and counterexamples are asserted byte-identical between the
two paths before any timing is reported.

Each path runs ``--rounds`` rounds per cell on one long-lived TM
instance per TM (the pipeline's own usage: one instance checks both
properties).  Two numbers are recorded per cell and path:

* ``cold_s`` — the first round, which for the compiled path includes
  compiling the engine (interning views, building rows);
* ``best_s`` — the fastest round, i.e. steady state.  The naive path
  has no cross-run cache, so its best is essentially its cold; the
  compiled engine's memoized rows are the optimization being measured.

Exit status is 1 if the compiled path is slower than naive (total
best-round time over the budgeted subset), or if ``--require-speedup``
is given and any of the named cells falls short.  Intended CI use::

    PYTHONPATH=src python benchmarks/bench_compiled.py \
        --budget 20000 --require-speedup 2.0 --require-cells 2pl,dstm,tl2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from typing import Callable, Dict, List, Optional, Tuple

from repro.checking import check_safety
from repro.core.statements import format_word
from repro.spec import OP, SS, cached_det_spec
from repro.tm import (
    DSTM,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
)

FACTORIES: Dict[str, Callable] = {
    "seq": lambda: SequentialTM(2, 2),
    "2pl": lambda: TwoPhaseLockingTM(2, 2),
    "dstm": lambda: DSTM(2, 2),
    "tl2": lambda: TL2(2, 2),
    "modtl2+pol": lambda: ManagedTM(ModifiedTL2(2, 2), PoliteManager()),
}

PROPS = {"ss": SS, "op": OP}


#: Sub-50 ms measurements are repeated and averaged within a round so
#: tiny cells (2PL, seq) don't make the CI gate jitter.
MIN_MEASURE_S = 0.05


def _timed_round(check: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    check()
    elapsed = time.perf_counter() - t0
    if elapsed >= MIN_MEASURE_S:
        return elapsed
    repeats = max(1, int(MIN_MEASURE_S / max(elapsed, 1e-6)))
    t0 = time.perf_counter()
    for _ in range(repeats):
        check()
    return (time.perf_counter() - t0) / repeats


def run_path(
    factory: Callable,
    compiled: bool,
    rounds: int,
    budget: Optional[int],
    memory: bool,
) -> Dict[str, dict]:
    """Time both properties on one TM instance; rounds per cell.

    The first round is a single timed call (for the compiled path that
    is the *cold* run, engine compilation included); later rounds
    auto-repeat small cells for stable best-round numbers.
    """
    tm = factory()
    out: Dict[str, dict] = {}
    for prop_name, prop in PROPS.items():
        result = None

        def check():
            nonlocal result
            result = check_safety(
                tm, prop, compiled=compiled, max_states=budget
            )

        t0 = time.perf_counter()
        check()
        times: List[float] = [time.perf_counter() - t0]
        for _ in range(rounds - 1):
            times.append(_timed_round(check))
        assert result is not None
        cell = {
            "holds": result.holds,
            "tm_states": result.tm_states,
            "product_states": result.product_states,
            "counterexample": (
                None
                if result.counterexample is None
                else format_word(result.counterexample)
            ),
            "cold_s": round(times[0], 6),
            "best_s": round(min(times), 6),
            "states_per_s_cold": round(result.tm_states / times[0]),
            "states_per_s_best": round(result.tm_states / min(times)),
        }
        if memory:
            mem_tm = factory()  # fresh instance: peak includes compile
            tracemalloc.start()
            check_safety(mem_tm, prop, compiled=compiled, max_states=budget)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            cell["peak_kib"] = round(peak / 1024)
        out[prop_name] = cell
    return out


#: Opt-in --large tier: lazy-spec cells beyond the (2, 2) grid, timed
#: with a TM-side vs spec-side split so spec-oracle speedups stay
#: visible in the trajectory.  The split instruments the spec stepper
#: (rich det_step or the compiled oracle's fill), so the instrumented
#: round is reported separately from the untimed best round.
LARGE_FACTORIES: Dict[str, Callable] = {
    "2pl32": lambda: TwoPhaseLockingTM(3, 2),
    "dstm23": lambda: DSTM(2, 3),
}


def run_large_path(
    factory: Callable, prop, spec_compiled: bool, rounds: int
) -> Dict[str, object]:
    """Lazy-spec rounds with a spec-side timer on the first (cold) round.

    The spec share is measured by wrapping the path's spec stepper —
    ``repro.checking.safety.det_step`` on the rich path, the compiled
    oracle's ``fill`` on the new one — so it counts actual Algorithm 6
    stepping, not memo hits.  Wrapper overhead inflates the instrumented
    round slightly; ``best_s`` comes from later, uninstrumented rounds.
    """
    import repro.checking.safety as safety_mod
    from repro.spec.compiled import CompiledSpecOracle

    tm = factory()
    acc = [0.0, 0]
    if spec_compiled:
        orig_fill = CompiledSpecOracle.fill

        def timed_fill(self, sid, sym):
            t0 = time.perf_counter()
            out = orig_fill(self, sid, sym)
            acc[0] += time.perf_counter() - t0
            acc[1] += 1
            return out

        CompiledSpecOracle.fill = timed_fill  # type: ignore[method-assign]
        restore = lambda: setattr(CompiledSpecOracle, "fill", orig_fill)
    else:
        orig_step = safety_mod.det_step

        def timed_step(state, stmt, prop_):
            t0 = time.perf_counter()
            out = orig_step(state, stmt, prop_)
            acc[0] += time.perf_counter() - t0
            acc[1] += 1
            return out

        safety_mod.det_step = timed_step
        restore = lambda: setattr(safety_mod, "det_step", orig_step)

    try:
        t0 = time.perf_counter()
        result = check_safety(
            tm, prop, lazy_spec=True, spec_compiled=spec_compiled
        )
        instrumented = time.perf_counter() - t0
    finally:
        restore()

    times = []
    for _ in range(max(1, rounds - 1)):
        t0 = time.perf_counter()
        result = check_safety(
            tm, prop, lazy_spec=True, spec_compiled=spec_compiled
        )
        times.append(time.perf_counter() - t0)
    return {
        "holds": result.holds,
        "tm_states": result.tm_states,
        "spec_states": result.spec_states,
        "product_states": result.product_states,
        "counterexample": (
            None
            if result.counterexample is None
            else format_word(result.counterexample)
        ),
        "instrumented_cold_s": round(instrumented, 6),
        "spec_side_s": round(acc[0], 6),
        "tm_side_s": round(instrumented - acc[0], 6),
        "spec_share": round(acc[0] / instrumented, 3),
        "spec_steps": acc[1],
        "best_s": round(min(times), 6),
    }


def run_large_tier(rounds: int) -> Tuple[list, List[str]]:
    cells = []
    failures: List[str] = []
    for name, factory in LARGE_FACTORIES.items():
        for prop_name, prop in PROPS.items():
            rich = run_large_path(factory, prop, False, rounds)
            comp = run_large_path(factory, prop, True, rounds)
            for key in ("holds", "tm_states", "spec_states",
                        "product_states", "counterexample"):
                if rich[key] != comp[key]:
                    failures.append(
                        f"large {name}/{prop_name}: {key} differs"
                        f" ({rich[key]!r} vs {comp[key]!r})"
                    )
            cells.append(
                {
                    "tm": name,
                    "prop": prop_name,
                    "holds": rich["holds"],
                    "tm_states": rich["tm_states"],
                    "rich_oracle": rich,
                    "compiled_oracle": comp,
                    "speedup_best": round(
                        rich["best_s"] / comp["best_s"], 2
                    ),
                }
            )
    return cells, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=5, help="rounds per cell (default 5)"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="state budget per cell (max_states); cells exceeding it fail",
    )
    parser.add_argument(
        "--output", default="BENCH_compiled.json", help="JSON output path"
    )
    parser.add_argument(
        "--tms",
        default=",".join(FACTORIES),
        help="comma-separated TM subset (default: all Table 2 TMs)",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="fail unless every --require-cells cell reaches this"
        " best-round speedup",
    )
    parser.add_argument(
        "--require-cells",
        default="2pl,dstm,tl2",
        help="cells the --require-speedup gate applies to",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also record tracemalloc peaks (slows the runs; excluded"
        " from the timed rounds)",
    )
    parser.add_argument(
        "--large",
        action="store_true",
        help="also run the opt-in large lazy-spec tier (2PL (3,2),"
        " DSTM (2,3)) with a TM-side vs spec-side time split",
    )
    args = parser.parse_args(argv)

    names = [n.strip().lower() for n in args.tms.split(",") if n.strip()]
    unknown = [n for n in names if n not in FACTORIES]
    if unknown:
        parser.error(f"unknown TMs: {unknown}; choose from {list(FACTORIES)}")

    # Prewarm everything both paths share — the spec cache, its cached
    # state count, and its interned form — so one-time process-global
    # costs don't land on whichever cell happens to run first.
    from repro.automata.interned import intern_dfa

    for prop in PROPS.values():
        spec = cached_det_spec(2, 2, prop)
        spec.num_states
        intern_dfa(spec)

    cells = []
    failures: List[str] = []
    for name in names:
        factory = FACTORIES[name]
        naive = run_path(factory, False, args.rounds, args.budget, args.memory)
        comp = run_path(factory, True, args.rounds, args.budget, args.memory)
        for prop_name in PROPS:
            nv, cp = naive[prop_name], comp[prop_name]
            for key in ("holds", "tm_states", "product_states",
                        "counterexample"):
                if nv[key] != cp[key]:
                    failures.append(
                        f"{name}/{prop_name}: {key} differs between paths"
                        f" ({nv[key]!r} vs {cp[key]!r})"
                    )
            cells.append(
                {
                    "tm": name,
                    "prop": prop_name,
                    "holds": nv["holds"],
                    "tm_states": nv["tm_states"],
                    "naive": nv,
                    "compiled": cp,
                    "speedup_cold": round(nv["cold_s"] / cp["cold_s"], 2),
                    "speedup_best": round(nv["best_s"] / cp["best_s"], 2),
                }
            )

    total_naive = sum(c["naive"]["best_s"] for c in cells)
    total_compiled = sum(c["compiled"]["best_s"] for c in cells)
    if total_compiled > total_naive:
        failures.append(
            f"compiled path slower overall: {total_compiled:.3f}s vs"
            f" naive {total_naive:.3f}s (best rounds)"
        )
    if args.require_speedup is not None:
        required = {
            n.strip().lower() for n in args.require_cells.split(",")
        }
        for cell in cells:
            if cell["tm"] in required and (
                cell["speedup_best"] < args.require_speedup
            ):
                failures.append(
                    f"{cell['tm']}/{cell['prop']}: best-round speedup"
                    f" {cell['speedup_best']}x <"
                    f" required {args.require_speedup}x"
                )

    large_cells: list = []
    if args.large:
        large_cells, large_failures = run_large_tier(args.rounds)
        failures.extend(large_failures)

    report = {
        "benchmark": "compiled packed-state TM engine vs PR 1 lazy path",
        "instance": "(n=2, k=2)",
        "rounds": args.rounds,
        "budget": args.budget,
        "cells": cells,
        "summary": {
            "total_naive_best_s": round(total_naive, 6),
            "total_compiled_best_s": round(total_compiled, 6),
            "overall_speedup_best": round(
                total_naive / total_compiled, 2
            ),
            "failures": failures,
        },
    }
    if large_cells:
        report["large_cells"] = large_cells
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max(len(f"{c['tm']}/{c['prop']}") for c in cells)
    for c in cells:
        label = f"{c['tm']}/{c['prop']}"
        print(
            f"{label:{width}s}  naive {c['naive']['best_s']:8.4f}s"
            f"  compiled {c['compiled']['best_s']:8.4f}s"
            f"  speedup {c['speedup_best']:6.2f}x"
            f"  (cold {c['speedup_cold']:.2f}x,"
            f" {c['compiled']['states_per_s_best']} states/s)"
        )
    print(
        f"overall (best rounds): naive {total_naive:.3f}s,"
        f" compiled {total_compiled:.3f}s,"
        f" speedup {total_naive / total_compiled:.2f}x"
        f" -> {args.output}"
    )
    for c in large_cells:
        rich, comp = c["rich_oracle"], c["compiled_oracle"]
        print(
            f"large {c['tm']}/{c['prop']}:"
            f" rich {rich['best_s']:.3f}s"
            f" (spec share {rich['spec_share']:.0%})"
            f" -> compiled {comp['best_s']:.3f}s"
            f" (spec share {comp['spec_share']:.0%}),"
            f" speedup {c['speedup_best']:.2f}x"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
