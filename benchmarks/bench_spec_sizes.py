"""Section 5.3 — sizes of the TM specifications for (2, 2).

Paper: Σss 12345, Σdss 3520, Σop 9202, Σdop 2272.  Our encodings give
12796 / 3424 / 8396 / 2272 — the deterministic opacity specification
matches exactly, the others are within a few percent (state encodings
are not pinned down by the paper).  The benchmarked operation is the
automaton construction.
"""

import pytest

from repro.spec import OP, SS
from repro.spec.det import build_det_spec
from repro.spec.nondet import build_nondet_spec

from conftest import emit

PAPER = {
    ("nondet", SS): 12345,
    ("det", SS): 3520,
    ("nondet", OP): 9202,
    ("det", OP): 2272,
}
OURS = {
    ("nondet", SS): 12796,
    ("det", SS): 3424,
    ("nondet", OP): 8396,
    ("det", OP): 2272,
}


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_build_nondet_spec(benchmark, prop):
    nfa = benchmark.pedantic(
        build_nondet_spec, args=(2, 2, prop), rounds=1, iterations=1
    )
    assert nfa.num_states == OURS[("nondet", prop)]


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_build_det_spec(benchmark, prop):
    dfa = benchmark.pedantic(
        build_det_spec, args=(2, 2, prop), rounds=1, iterations=1
    )
    assert dfa.num_states == OURS[("det", prop)]


def bench_spec_sizes_report(specs_22, nondet_specs_22):
    lines = []
    for prop in (SS, OP):
        nd, dt = nondet_specs_22[prop], specs_22[prop]
        lines.append(
            f"Σ{prop.value}: nondet {nd.num_states}"
            f" (paper {PAPER[('nondet', prop)]}),"
            f" det {dt.num_states} (paper {PAPER[('det', prop)]})"
        )
        # the qualitative claims all hold: det ≪ nondet, op < ss
        assert dt.num_states < nd.num_states / 3
    assert specs_22[OP].num_states < specs_22[SS].num_states
    assert specs_22[OP].num_states == 2272  # exact match with the paper
    emit("Section 5.3: specification sizes for (2,2)", lines)
