"""Table 3 — liveness of TM algorithms with contention managers.

Regenerates every cell for (2, 1): obstruction freedom fails for seq,
2PL and TL2+polite with the one-statement loop ``a1``; DSTM+aggressive is
obstruction free; livelock freedom fails for everything (DSTM+aggressive
with the mutual-ownership-steal loop, the paper's w2).  Wait freedom —
which the paper notes fails for all of its TMs — is included as a third
column.
"""

import pytest

from repro.checking.liveness import (
    check_livelock_freedom,
    check_obstruction_freedom,
    check_wait_freedom,
)
from repro.tm import (
    DSTM,
    TL2,
    AggressiveManager,
    ManagedTM,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    build_liveness_graph,
)

from conftest import emit

TMS = [
    ("seq", SequentialTM(2, 1), False, False),
    ("2PL", TwoPhaseLockingTM(2, 1), False, False),
    ("dstm+aggr", ManagedTM(DSTM(2, 1), AggressiveManager()), True, False),
    ("TL2+pol", ManagedTM(TL2(2, 1), PoliteManager()), False, False),
]


@pytest.fixture(scope="module")
def graphs():
    return {name: build_liveness_graph(tm) for name, tm, _, _ in TMS}


@pytest.mark.parametrize(
    "name,tm,of_expect,lf_expect", TMS, ids=[t[0] for t in TMS]
)
def bench_table3_obstruction_freedom(
    benchmark, graphs, name, tm, of_expect, lf_expect
):
    res = benchmark.pedantic(
        check_obstruction_freedom,
        args=(tm,),
        kwargs={"graph": graphs[name]},
        rounds=1,
        iterations=1,
    )
    assert res.holds == of_expect, res.verdict()


@pytest.mark.parametrize(
    "name,tm,of_expect,lf_expect", TMS, ids=[t[0] for t in TMS]
)
def bench_table3_livelock_freedom(
    benchmark, graphs, name, tm, of_expect, lf_expect
):
    res = benchmark.pedantic(
        check_livelock_freedom,
        args=(tm,),
        kwargs={"graph": graphs[name]},
        rounds=1,
        iterations=1,
    )
    assert res.holds == lf_expect, res.verdict()


def bench_table3_report(graphs):
    lines = []
    for name, tm, of_expect, lf_expect in TMS:
        g = graphs[name]
        of = check_obstruction_freedom(tm, graph=g)
        lf = check_livelock_freedom(tm, graph=g)
        wf = check_wait_freedom(tm, graph=g)
        assert of.holds == of_expect and lf.holds == lf_expect
        assert not wf.holds  # none of the paper's TMs are wait free

        def cell(r):
            if r.holds:
                return "Y"
            return "N loop=[" + ", ".join(str(s) for s in r.loop) + "]"

        lines.append(
            f"{name:10s} states={len(g.nodes):4d}"
            f" | OF: {cell(of)} | LF: {cell(lf)} | WF: {cell(wf)}"
        )
    emit("Table 3: model checking liveness for (2,1)", lines)

    # the three OF violators loop on exactly a1, as the paper reports
    for name in ("seq", "2PL", "TL2+pol"):
        tm = dict((n, t) for n, t, _, _ in TMS)[name]
        res = check_obstruction_freedom(tm, graph=graphs[name])
        assert [str(s) for s in res.loop] == ["abort1"], name
