"""Ablation — the TL2 design choices the paper's Section 5.4 turns on.

Three variants of TL2 through the full safety pipeline:

1. **TL2 (default)** — atomic validate (version check + lock check),
   reads sample the lock bit: opaque (Table 2's Y row).
2. **TL2 with the literal Algorithm 4 read** (no lock check on reads):
   strictly serializable but *not* opaque — our reproduction finding
   that the read-time lock check is load-bearing.
3. **Modified TL2** (rvalidate then chklock as separate atomic steps):
   not even strictly serializable — the paper's §5.4 ambiguity, with the
   counterexample family of w1.
"""

import pytest

from repro.automata.inclusion import check_inclusion_in_dfa
from repro.core.properties import is_opaque, is_strictly_serializable
from repro.core.statements import format_word, parse_word
from repro.spec import OP, SS
from repro.tm import (
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    build_safety_nfa,
    language_contains,
)

from conftest import emit

VARIANTS = [
    ("TL2", TL2(2, 2), {SS: True, OP: True}),
    ("TL2-literal-read", TL2(2, 2, read_checks_lock=False), {SS: True, OP: False}),
    ("modTL2", ModifiedTL2(2, 2), {SS: False, OP: False}),
    (
        "modTL2+pol",
        ManagedTM(ModifiedTL2(2, 2), PoliteManager()),
        {SS: False, OP: False},
    ),
]


@pytest.fixture(scope="module")
def variant_nfas():
    return {name: build_safety_nfa(tm) for name, tm, _ in VARIANTS}


@pytest.mark.parametrize(
    "name,tm,expect", VARIANTS, ids=[v[0] for v in VARIANTS]
)
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def bench_tl2_variant_safety(
    benchmark, specs_22, variant_nfas, name, tm, expect, prop
):
    res = benchmark.pedantic(
        check_inclusion_in_dfa,
        args=(variant_nfas[name], specs_22[prop]),
        rounds=1,
        iterations=1,
    )
    assert res.holds == expect[prop], (name, prop.value)


def bench_tl2_variants_report(specs_22, variant_nfas):
    lines = []
    for name, tm, expect in VARIANTS:
        cells = [f"{name:16s}"]
        for prop in (SS, OP):
            res = check_inclusion_in_dfa(variant_nfas[name], specs_22[prop])
            assert res.holds == expect[prop]
            if res.holds:
                cells.append(f"{prop.value}: Y")
            else:
                cells.append(
                    f"{prop.value}: N [{format_word(res.counterexample)}]"
                )
        lines.append(" | ".join(cells))
    emit("Ablation: TL2 validation/read variants", lines)

    # the paper's exact w1 separates atomic from modified TL2
    w1 = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
    assert not is_strictly_serializable(w1)
    assert language_contains(ModifiedTL2(2, 2), w1)
    assert not language_contains(TL2(2, 2), w1)

    # the literal-read opacity gap has its own canonical witness
    w2 = parse_word("(r,1)1 (w,2)1 (w,1)2 c2 (r,2)2 c1")
    assert is_strictly_serializable(w2) and not is_opaque(w2)
    assert language_contains(TL2(2, 2, read_checks_lock=False), w2)
    assert not language_contains(TL2(2, 2), w2)
