"""A small line-protocol client for ``repro serve``.

Strictly sequential request/response (send one line, read one line):
the daemon answers ``health``/``stats`` inline and ``check`` from a
worker thread, but on a single connection a well-behaved client that
waits for each response observes them in order.  For concurrency,
open one :class:`ServeClient` per in-flight request — connections are
cheap and the daemon threads per connection.

``connect_timeout`` retries the initial connect in a short loop, so a
client started in the same breath as the daemon (the CI smoke does
exactly this) rides out the startup race instead of failing on
ECONNREFUSED / a not-yet-bound socket path.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Optional

from repro.faultplane import fault_check

from . import protocol


class ServeClientError(RuntimeError):
    """The daemon could not be reached or closed the connection."""


class ServeClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError(
                "exactly one of socket_path / port is required"
            )
        self.address = socket_path or f"{host}:{port}"
        deadline = time.monotonic() + connect_timeout
        last: Optional[Exception] = None
        while True:
            try:
                if socket_path is not None:
                    sock = socket.socket(
                        socket.AF_UNIX, socket.SOCK_STREAM
                    )
                    sock.connect(socket_path)
                else:
                    sock = socket.create_connection(
                        (host, int(port)), timeout=connect_timeout
                    )
                break
            except OSError as exc:
                last = exc
                if time.monotonic() >= deadline:
                    raise ServeClientError(
                        f"cannot reach daemon at {self.address}: {last}"
                    )
                time.sleep(0.05)
        sock.settimeout(timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    # ------------------------------------------------------------------

    def request(self, record: Dict[str, object]) -> Dict[str, object]:
        """Send one request record, return its response record.

        Every failure shape — connection drop, injected wire fault,
        a torn or unparseable response line — surfaces as a clean
        :class:`ServeClientError`, never a hang or a stray
        ``JSONDecodeError``.
        """
        op = str(record.get("op", "check"))
        fault = fault_check("serve.send", f"client:{op}")
        if fault is not None:
            fault.stall()
            if fault.fault in ("eio", "reset"):
                self.close()
                raise ServeClientError(
                    f"injected {fault.fault} sending to daemon at"
                    f" {self.address}"
                )
        try:
            payload = protocol.encode(record)
            if fault is not None and fault.fault == "partial_send":
                # A torn request line, then our half of the stream
                # closes: the daemon sees the prefix at EOF, rejects
                # it, and its error response still reaches us.
                self._sock.sendall(fault.torn(payload))
                self._sock.shutdown(socket.SHUT_WR)
            else:
                self._sock.sendall(payload)
            recv_fault = fault_check("serve.recv", f"client:{op}")
            if recv_fault is not None:
                recv_fault.stall()
                if recv_fault.fault in ("eio", "reset"):
                    self.close()
                    raise ServeClientError(
                        f"injected {recv_fault.fault} receiving from"
                        f" daemon at {self.address}"
                    )
            line = self._reader.readline()
        except OSError as exc:
            raise ServeClientError(
                f"daemon at {self.address} dropped the connection:"
                f" {exc}"
            )
        if not line:
            raise ServeClientError(
                f"daemon at {self.address} closed the connection"
            )
        if not line.endswith(b"\n"):
            # EOF mid-line: the daemon died (or tore the send) part
            # way through this response.
            raise ServeClientError(
                f"daemon at {self.address} sent a truncated response"
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except ValueError as exc:
            raise ServeClientError(
                f"daemon at {self.address} sent an unparseable"
                f" response: {exc}"
            )
        if not isinstance(response, dict):
            raise ServeClientError(
                f"daemon at {self.address} sent a non-object response"
            )
        return response

    def check(self, request: Dict[str, object]) -> Dict[str, object]:
        record = dict(request)
        record.setdefault("op", "check")
        return self.request(record)

    def health(self) -> Dict[str, object]:
        return self.request({"op": "health"})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
