"""The resident checker daemon: supervised checks behind a socket.

Threading model (one process, many threads, one forked child per
in-flight check):

* the **accept loop** (``serve_forever``, usually the main thread)
  hands each connection to a daemon *connection thread*;
* a connection thread reads request lines: ``health``/``stats``/
  ``shutdown`` are answered inline (introspection must work while the
  queue is full — that is its job), ``check`` requests are validated
  and offered to the **bounded admission queue** with ``put_nowait`` —
  a full queue answers ``busy`` immediately rather than buffering
  without bound;
* ``--workers`` **worker threads** pull admitted requests and run each
  through :func:`repro.campaign.supervisor.run_cell` — the same fault
  envelope as a campaign cell (wall-clock timeout, RSS cap, retry with
  the sharded→serial / warm→cold degradation ladder), executing in a
  forked subprocess so a SIGKILLed, hung, or OOM'd check fails only
  its own request;
* responses are written under a per-connection lock (a connection may
  have pipelined requests in flight; ``id`` disambiguates for the
  client, the lock keeps lines whole).

Warm state: a worker passes the resident store's backend into
``run_cell`` — the forked child inherits the hot tier copy-on-write —
and absorbs the blobs the child built back into the store when the
result comes home.  The ``result`` payload never depends on any of
this (byte-identity contract).

Drain: SIGTERM (or a ``shutdown`` request) closes the listener, lets
the admitted queue empty, waits for in-flight checks to finish or
fault, emits a final stats line, and returns 0.
"""

from __future__ import annotations

import os
import queue
import signal
import socket
import struct
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.faultplane import fault_check

from ..campaign.supervisor import (
    FAULT_CRASH,
    FAULT_EXCEPTION,
    FAULT_MEMORY,
    FAULT_TIMEOUT,
    run_cell,
)
from . import protocol
from .store import RESIDENT_MARKER, ResidentStore

#: Admitted-but-not-running requests the daemon will hold before
#: answering ``busy``.  Deliberately small: the client's retry loop is
#: the buffer, not the daemon's memory.
DEFAULT_QUEUE_DEPTH = 8

_FAULT_CLASSES = (
    FAULT_TIMEOUT, FAULT_CRASH, FAULT_MEMORY, FAULT_EXCEPTION,
)


class CheckServer:
    """One daemon: a listener, an admission queue, a worker pool."""

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
        workers: int = 1,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        store: Optional[ResidentStore] = None,
        defaults: Optional[Dict[str, object]] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError(
                "exactly one of socket_path / port is required"
            )
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.queue_depth = max(1, int(queue_depth))
        self.store = store if store is not None else ResidentStore()
        self.defaults = dict(defaults or {})
        self._log = log or (
            lambda line: print(line, file=sys.stderr, flush=True)
        )
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.queue_depth
        )
        self._draining = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._inflight = 0
        self._requests: Dict[str, int] = {
            "total": 0, "pass": 0, "fail": 0, "timeout": 0,
            "error": 0, "busy": 0, "protocol_error": 0,
        }
        self._faults: Dict[str, int] = {
            name: 0 for name in _FAULT_CLASSES
        }
        # Chaos-plane wire injections ({"serve.send:reset": n, ...});
        # surfaced in stats so no injected wire fault is silent.
        self._wire_faults: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self) -> None:
        """Create and listen on the daemon's socket."""
        if self._listener is not None:
            return
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            sock.bind(self.socket_path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, int(self.port or 0)))
            self.port = sock.getsockname()[1]
        sock.listen(16)
        # A blocked accept() is not reliably woken by close() from
        # another thread (shutdown-request drain); poll instead.
        sock.settimeout(0.2)
        self._listener = sock

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def initiate_drain(self) -> None:
        """Stop accepting; let in-flight work finish (idempotent)."""
        if self._draining.is_set():
            return
        self._draining.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()  # unblocks the accept loop
            except OSError:
                pass

    def serve_forever(self, install_signals: bool = True) -> int:
        """Run until drained; returns the process exit code (0)."""
        self.bind()
        if install_signals:
            signal.signal(
                signal.SIGTERM, lambda s, f: self.initiate_drain()
            )
            signal.signal(
                signal.SIGINT, lambda s, f: self.initiate_drain()
            )
        workers = [
            threading.Thread(
                target=self._worker, name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for thread in workers:
            thread.start()
        self._log(f"serve: listening on {self.address}")
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue  # re-check the draining flag
            except OSError:
                break  # listener closed by initiate_drain
            conn.settimeout(None)  # inherit no accept-poll timeout
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                daemon=True,
            ).start()
        # Drain: admitted requests run to completion (each bounded by
        # its own supervised timeout), then the workers see
        # draining+empty and exit.
        for thread in workers:
            thread.join()
        # A request admitted in the razor-thin window after the workers
        # exited would otherwise hang its client forever.
        while True:
            try:
                request_id, _cell, _warm, conn, wlock = (
                    self._queue.get_nowait()
                )
            except queue.Empty:
                break
            with self._lock:
                self._requests["busy"] += 1
            self._send(
                conn, wlock,
                protocol.busy_response(request_id, "daemon is draining"),
            )
            self._queue.task_done()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._log(
            "serve: drained "
            + protocol.encode(self.stats_record()).decode().rstrip()
        )
        return 0

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _note_wire_fault(self, fault) -> None:
        with self._lock:
            label = f"{fault.site}:{fault.fault}"
            self._wire_faults[label] = (
                self._wire_faults.get(label, 0) + 1
            )

    def _send(self, conn, wlock, record: Dict[str, object]) -> None:
        payload = protocol.encode(record)
        fault = fault_check("serve.send", f"server:{record.get('op')}")
        if fault is not None:
            self._note_wire_fault(fault)
            fault.stall()
        try:
            with wlock:
                if fault is not None and fault.fault == "partial_send":
                    # A torn NDJSON line followed by EOF: the client
                    # must reject it cleanly, never hang on it.
                    conn.sendall(fault.torn(payload))
                    self._drop(conn)
                    return
                if fault is not None and fault.fault == "reset":
                    # SO_LINGER(on, 0) makes a TCP drop an RST, not a
                    # FIN; on AF_UNIX the shutdown below is the drop.
                    try:
                        conn.setsockopt(
                            socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0),
                        )
                    except OSError:
                        pass
                    self._drop(conn)
                    return
                if fault is not None and fault.fault == "eio":
                    self._drop(conn)  # the response is simply lost
                    return
                conn.sendall(payload)
        except OSError:
            pass  # client went away; its request already ran

    @staticmethod
    def _drop(conn) -> None:
        """Tear the connection down *now*.

        ``conn.close()`` alone is deferred while the connection's
        reader thread still holds its ``makefile`` handle (socket
        ``_io_refs``), so a blocked client would never see the drop;
        ``shutdown`` acts on the kernel fd immediately.
        """
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _serve_connection(self, conn: socket.socket) -> None:
        wlock = threading.Lock()
        reader = conn.makefile("rb")
        try:
            for line in self._lines(reader):
                if not line.strip():
                    continue
                try:
                    request = protocol.parse_request(line)
                except protocol.ProtocolError as exc:
                    with self._lock:
                        self._requests["protocol_error"] += 1
                    self._send(
                        conn, wlock,
                        protocol.error_response(None, str(exc)),
                    )
                    continue
                op = request["op"]
                if op == "health":
                    self._send(conn, wlock, self.health_record())
                elif op == "stats":
                    self._send(conn, wlock, self.stats_record())
                elif op == "shutdown":
                    self._send(
                        conn, wlock,
                        {"op": "shutdown", "ok": True,
                         "id": request.get("id")},
                    )
                    self.initiate_drain()
                else:
                    self._admit(conn, wlock, request)
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:
                pass

    def _lines(self, reader):
        """Request lines until EOF — a client resetting its connection
        mid-read (ECONNRESET) is an EOF, not a thread obituary."""
        while True:
            fault = fault_check("serve.recv", "server:recv")
            if fault is not None:
                self._note_wire_fault(fault)
                fault.stall()
                if fault.fault in ("reset", "eio"):
                    return  # injected connection loss: EOF semantics
            try:
                line = reader.readline()
            except OSError:
                return
            if not line:
                return
            yield line

    def _admit(self, conn, wlock, request: Dict[str, object]) -> None:
        request_id = request.get("id")
        try:
            cell, warm = protocol.build_cell(request, self.defaults)
        except protocol.ProtocolError as exc:
            with self._lock:
                self._requests["protocol_error"] += 1
            self._send(
                conn, wlock,
                protocol.error_response(request_id, str(exc)),
            )
            return
        if self._draining.is_set():
            with self._lock:
                self._requests["busy"] += 1
            self._send(
                conn, wlock,
                protocol.busy_response(request_id, "daemon is draining"),
            )
            return
        try:
            self._queue.put_nowait((request_id, cell, warm, conn, wlock))
        except queue.Full:
            with self._lock:
                self._requests["busy"] += 1
            self._send(
                conn, wlock, protocol.busy_response(request_id)
            )

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._draining.is_set():
                    return
                continue
            try:
                self._handle_check(*item)
            finally:
                self._queue.task_done()

    def _handle_check(
        self, request_id, cell, warm: bool, conn, wlock
    ) -> None:
        with self._lock:
            self._inflight += 1
        try:
            cache = None
            if warm:
                # The marker rides the degradation ladder (warm->cold
                # clears it); the supervisor swaps in the live backend.
                cell = dict(cell)
                cell["cache_dir"] = RESIDENT_MARKER
                cache = self.store.backend
            outcome = run_cell(cell, cache=cache, collect_warm=warm)
            absorbed = self.store.absorb(outcome.pop("warm", None) or {})
            with self._lock:
                self._requests["total"] += 1
                status = outcome["status"]
                self._requests[status] = (
                    self._requests.get(status, 0) + 1
                )
                for fault in outcome.get("faults") or ():
                    name = fault.get("class", FAULT_EXCEPTION)
                    self._faults[name] = self._faults.get(name, 0) + 1
            response = protocol.check_response(request_id, outcome)
            if absorbed:
                self._log(
                    f"serve: absorbed {absorbed} warm payload(s) from"
                    f" {cell.get('id', 'request')}"
                )
        except Exception as exc:  # never let a worker die
            with self._lock:
                self._requests["total"] += 1
                self._requests["error"] += 1
            response = protocol.error_response(
                request_id, f"internal error: {exc!r}"
            )
        # Decrement before sending: a client that reads this response
        # and immediately asks for stats must not see itself in-flight.
        with self._lock:
            self._inflight -= 1
        self._send(conn, wlock, response)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health_record(self) -> Dict[str, object]:
        with self._lock:
            inflight = self._inflight
        return {
            "op": "health",
            "ok": True,
            "draining": self._draining.is_set(),
            "inflight": inflight,
        }

    def stats_record(self) -> Dict[str, object]:
        with self._lock:
            requests = dict(self._requests)
            faults = dict(self._faults)
            wire_faults = dict(self._wire_faults)
            inflight = self._inflight
        return {
            "op": "stats",
            "ok": True,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining.is_set(),
            "inflight": inflight,
            "queued": self._queue.qsize(),
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "requests": requests,
            "faults": faults,
            "wire_faults": wire_faults,
            "cache": self.store.stats(),
        }
