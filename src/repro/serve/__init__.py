"""Checker-as-a-service: the resident ``repro serve`` daemon.

The one-shot CLI pays engine construction on every invocation; a
campaign amortizes it across cells but still dies with its process.
This package is the third shape: a long-lived daemon that keeps
compiled-engine tables and dense CSR payloads resident in a tiered
cache (:mod:`.store`), accepts newline-delimited JSON check requests
over a local socket (:mod:`.protocol`), and runs every check through
the campaign supervisor's fault envelope (:mod:`.server`) — so a hung,
SIGKILLed, or OOM'd check fails only its own request, and verdicts
stay byte-identical to the one-shot CLI and the campaign journal.

:mod:`.client` is the matching line-protocol client (also behind
``repro serve --check-request``).
"""

from .client import ServeClient, ServeClientError
from .protocol import ProtocolError
from .server import CheckServer
from .store import ResidentStore

__all__ = [
    "CheckServer",
    "ProtocolError",
    "ResidentStore",
    "ServeClient",
    "ServeClientError",
]
