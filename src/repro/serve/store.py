"""The daemon's resident warm state: a tiered cache with a lifecycle.

One :class:`ResidentStore` lives for the life of a ``repro serve``
process.  Its hot tier is the concurrency-safe
:class:`repro.cache.MemoryCacheBackend` (compiled-engine tables, dense
CSR payloads); the optional cold tier is any durable backend (disk
pickles or mmap segments) named by ``--cache-dir``/``--cache-backend``.

The read-through/write-back semantics live in
:class:`repro.cache.TieredCacheBackend`; what this module adds is the
daemon's use of it:

* each supervised check runs in a **forked child** that inherits the
  hot tier copy-on-write — resident payloads are warm in the child for
  free, but anything the child *builds* dies with it, so the child
  exports its new blobs over the result pipe and the daemon calls
  :meth:`ResidentStore.absorb` to install them;
* a ``kill -9``'d daemon loses only the hot tier: restarting against
  the same ``--cache-dir`` re-hydrates on first touch through the cold
  tier (and the unchanged-bytes check in the tiered ``save`` keeps the
  re-promoted payloads from being rewritten).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..cache import MemoryCacheBackend, TieredCacheBackend, make_backend

#: What a warm request's ``cell["cache_dir"]`` is set to: a marker the
#: degradation ladder can clear (warm -> cold) like any directory name,
#: while :func:`repro.campaign.supervisor._resolve_cell_cache`
#: substitutes the live backend object for it.
RESIDENT_MARKER = "<resident>"


class ResidentStore:
    """The daemon's tiered cache plus its introspection face."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        cache_backend: str = "disk",
    ) -> None:
        self.cache_dir = cache_dir or None
        self.backend_name = cache_backend if self.cache_dir else None
        cold = (
            make_backend(cache_backend, self.cache_dir)
            if self.cache_dir
            else None
        )
        self.backend = TieredCacheBackend(
            hot=MemoryCacheBackend(), cold=cold
        )

    def absorb(self, blobs: Dict[Hashable, bytes]) -> int:
        """Install a finished child's exported payloads; count taken."""
        if not blobs:
            return 0
        return self.backend.absorb_blobs(blobs)

    def stats(self) -> Dict[str, object]:
        """The ``cache`` section of the daemon's ``stats`` record."""
        out: Dict[str, object] = dict(self.backend.hot.blob_stats())
        out["cold"] = self.backend_name
        # The tiered store's swallowed-failure tally (hot + cold):
        # corrupt/stale rejections and failed saves that would
        # otherwise degrade the daemon to cold silently.
        out["errors"] = self.backend.error_counts()
        return out
