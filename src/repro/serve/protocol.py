"""The ``repro serve`` wire protocol: newline-delimited JSON records.

One request per line, one response line per request, over a local
AF_UNIX socket or TCP.  Requests are JSON objects with an ``op``:

``check`` (the default when ``op`` is omitted)
    A safety check: ``tm`` and ``property`` are required, ``n``/``k``
    and every campaign policy key (``timeout_s``, ``retries``,
    ``jobs``, ``inject`` for fault drills, ...) are optional and
    validated with exactly the strictness of a campaign cell — a
    daemon request *is* a campaign cell, expanded by the same
    :func:`repro.campaign.spec.expand_cell`.  Two extras belong to the
    protocol, not the cell: ``id`` (any string/int, echoed verbatim in
    the response so clients can pipeline) and ``warm`` (boolean,
    default true: serve from the daemon's resident tiered cache;
    ``false`` forces a cold check).  ``cache_dir``/``cache_backend``
    are rejected — the daemon owns its store; requests only choose
    warm or cold.

``health`` / ``stats``
    Introspection records, answered inline even while checks are in
    flight (they never enter the admission queue).

``shutdown``
    Ask the daemon to drain: stop accepting, finish in-flight
    requests, exit 0 — the same path as SIGTERM.

Responses echo ``op`` and ``id`` and carry ``status``:
``pass``/``fail`` (the check completed; ``result`` is the canonical
verdict payload, byte-identical to the one-shot CLI and the campaign
journal), ``timeout``/``error`` (every supervised attempt faulted;
``faults`` lists them), or ``busy`` (the admission queue was full or
the daemon is draining — resubmit later; nothing was run).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..campaign.spec import CampaignSpecError, expand_cell


class ProtocolError(ValueError):
    """A malformed request line (the daemon answers, it never dies)."""


#: Request operations.
OPS = ("check", "health", "stats", "shutdown")

#: Request keys that belong to the protocol layer, not the cell.
_PROTOCOL_KEYS = frozenset(["op", "id", "warm"])

#: Cell keys a request may not set: the daemon owns its cache.
_FORBIDDEN_KEYS = frozenset(["cache_dir", "cache_backend"])

#: ``status`` values a check response may carry.
CHECK_STATUSES = ("pass", "fail", "timeout", "error", "busy")


def encode(record: Dict[str, object]) -> bytes:
    """One canonical response/request line (sorted keys, ``\\n``)."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def parse_request(line: bytes) -> Dict[str, object]:
    """Decode and shape-check one request line."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.setdefault("op", "check")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (choose from {list(OPS)})"
        )
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("id must be a string or integer")
    if op != "check":
        extra = set(obj) - {"op", "id"}
        if extra:
            raise ProtocolError(
                f"op {op!r} takes no keys beyond id (got {sorted(extra)})"
            )
    return obj


def build_cell(
    request: Dict[str, object],
    defaults: Optional[Dict[str, object]] = None,
) -> Tuple[Dict[str, object], bool]:
    """``(cell, warm)`` for a parsed ``check`` request.

    The cell comes out of the campaign layer's own validation, so an
    invalid request raises :class:`ProtocolError` with the same message
    a bad campaign spec would get, and a valid one is indistinguishable
    from a campaign cell by the time the supervisor sees it.
    """
    warm = request.get("warm", True)
    if not isinstance(warm, bool):
        raise ProtocolError("warm must be a boolean")
    forbidden = _FORBIDDEN_KEYS & set(request)
    if forbidden:
        raise ProtocolError(
            f"request may not set {sorted(forbidden)}: the daemon owns"
            " its cache; use warm: false for a cold check"
        )
    raw = {
        key: value for key, value in request.items()
        if key not in _PROTOCOL_KEYS
    }
    where = "request" if request.get("id") is None else (
        f"request {request['id']!r}"
    )
    try:
        cell = expand_cell(raw, defaults, where)
    except CampaignSpecError as exc:
        raise ProtocolError(str(exc))
    return cell, warm


def check_response(
    request_id: Optional[object], outcome: Dict[str, object]
) -> Dict[str, object]:
    """The response record for one supervised-check outcome."""
    record: Dict[str, object] = {
        "op": "check",
        "id": request_id,
        "status": outcome["status"],
        "result": outcome.get("result"),
        "error": outcome.get("error"),
        "attempts": outcome.get("attempts"),
        "faults": outcome.get("faults") or [],
        "seconds": outcome.get("seconds"),
    }
    if outcome.get("stats"):
        record["stats"] = outcome["stats"]
    if outcome.get("profile") is not None:
        record["profile"] = outcome["profile"]
    return record


def busy_response(
    request_id: Optional[object], reason: str = "admission queue full"
) -> Dict[str, object]:
    """The backpressure reply: nothing ran, resubmit later."""
    return {
        "op": "check",
        "id": request_id,
        "status": "busy",
        "result": None,
        "error": reason,
        "attempts": 0,
        "faults": [],
        "seconds": None,
    }


def error_response(
    request_id: Optional[object], message: str
) -> Dict[str, object]:
    """The reply to a request the daemon could not even admit."""
    return {
        "op": "error",
        "id": request_id,
        "status": "error",
        "error": message,
    }
