"""repro — model checking transactional memories.

A complete reproduction of *"Model Checking Transactional Memories"*
(Guerraoui, Henzinger, Singh; PLDI 2008 / extended version), as a
reusable Python library:

* :mod:`repro.core` — statements, words, transactions, conflicts, and the
  exact offline decision procedures for strict serializability and
  opacity;
* :mod:`repro.tm` — the TM-algorithm formalism with sequential, 2PL,
  DSTM, TL2 and modified-TL2 instances, plus contention managers;
* :mod:`repro.spec` — the finite-state TM specifications Σss/Σop
  (nondeterministic) and Σdss/Σdop (deterministic);
* :mod:`repro.automata` — NFAs/DFAs, subset construction, product
  inclusion and antichain algorithms;
* :mod:`repro.checking` — the Table 2 (safety) and Table 3 (liveness)
  pipelines with certified counterexamples;
* :mod:`repro.reduction` — the structural properties P1–P6 and the
  reduction theorems that lift (2,2)/(2,1) verdicts to all programs;
* :mod:`repro.lang` — bounded language enumeration for closure testing.

Quickstart::

    from repro import DSTM, OP, check_safety
    result = check_safety(DSTM(2, 2), OP)
    assert result.holds  # DSTM ensures (2,2) opacity

"""

from .core import (
    Statement,
    Word,
    abort,
    commit,
    format_word,
    is_opaque,
    is_strictly_serializable,
    parse_word,
    read,
    write,
)
from .spec import OP, SS, SafetyProperty, build_det_spec, build_nondet_spec
from .tm import (
    DSTM,
    TL2,
    AggressiveManager,
    BoundedKarmaManager,
    ManagedTM,
    ModifiedTL2,
    OptimisticTM,
    PermissiveManager,
    PoliteManager,
    SequentialTM,
    TMAlgorithm,
    TwoPhaseLockingTM,
)
from .checking import (
    check_liveness_all,
    check_livelock_freedom,
    check_obstruction_freedom,
    check_safety,
    check_safety_both,
    check_wait_freedom,
)
from .reduction import verify_tm_liveness, verify_tm_safety

__version__ = "1.0.0"

__all__ = [
    "Statement",
    "Word",
    "abort",
    "commit",
    "format_word",
    "is_opaque",
    "is_strictly_serializable",
    "parse_word",
    "read",
    "write",
    "OP",
    "SS",
    "SafetyProperty",
    "build_det_spec",
    "build_nondet_spec",
    "DSTM",
    "TL2",
    "AggressiveManager",
    "BoundedKarmaManager",
    "ManagedTM",
    "ModifiedTL2",
    "OptimisticTM",
    "PermissiveManager",
    "PoliteManager",
    "SequentialTM",
    "TMAlgorithm",
    "TwoPhaseLockingTM",
    "check_liveness_all",
    "check_livelock_freedom",
    "check_obstruction_freedom",
    "check_safety",
    "check_safety_both",
    "check_wait_freedom",
    "verify_tm_liveness",
    "verify_tm_safety",
    "__version__",
]
