"""Versioned on-disk warm-start cache for the compiled engines.

The compiled TM engine (:mod:`repro.tm.compiled`) and the compiled spec
oracle (:mod:`repro.spec.compiled`) intern states and memoize transition
rows; both tables depend only on the algorithm/specification identity,
not on the run.  Spilling them to disk lets repeated CLI invocations and
benchmark rounds start *warm* — no re-compilation, no re-derivation of
rows the previous process already computed.

Payloads are keyed by an explicit tuple (algorithm or spec identity plus
:data:`ENGINE_VERSION`) that is stored inside the file and re-checked on
load, so a cache written by a different engine version — or a file for a
different key that happens to collide on name — is silently ignored.  A
corrupt, truncated or otherwise unreadable file is likewise ignored:
:func:`load_payload` never raises, it just returns ``None`` and the
caller recompiles from scratch.  Writes are atomic (tempfile + rename)
so a crashed process can never leave a half-written cache behind.

The default location is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``; every entry point
that persists caches also accepts an explicit directory (``--cache-dir``
on the CLI).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
from typing import Hashable, Optional

#: Bump whenever a packed encoding or persisted row format changes —
#: caches written by other versions are ignored, never migrated.
#: Version 2: TM-engine payloads gained ``ext_table``/``node_rows`` (the
#: liveness rows, Ext/Resp in stable int encoding) and the int-rows spec
#: DFA (``spec-dfa`` keys) joined the cache.
#: Version 3: the dense kernel's product CSR tables (``dense-csr`` keys:
#: flat ``array('q')`` offsets/targets over dense pair ids, stable node
#: keys, violation flags) joined the cache, and the spec oracle / spec
#: DFA row payloads switched from Python lists to flat ``array('q')``
#: vectors.
ENGINE_VERSION = 3


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else the XDG cache home, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def cache_path(cache_dir: str, key: Hashable) -> str:
    """The file path for ``key``: a readable slug plus a digest of the
    full key (the digest disambiguates; the key is still re-checked on
    load)."""
    text = repr(key)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")[:60]
    return os.path.join(cache_dir, f"{slug}-{digest}.pkl")


def load_payload(cache_dir: str, key: Hashable) -> Optional[object]:
    """The data stored for ``key``, or ``None``.

    ``None`` covers every failure mode — missing file, unpickling error,
    wrong engine version, key mismatch — so callers can always fall back
    to recompiling without special-casing.
    """
    try:
        with open(cache_path(cache_dir, key), "rb") as fh:
            payload = pickle.load(fh)
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != ENGINE_VERSION:
            return None
        if payload.get("key") != key:
            return None
        return payload.get("data")
    except Exception:
        return None


def save_payload(cache_dir: str, key: Hashable, data: object) -> bool:
    """Atomically persist ``data`` under ``key``; ``False`` on any failure.

    Failures (unwritable directory, full disk) are swallowed — the warm
    cache is an optimization, never a correctness dependency.
    """
    path = cache_path(cache_dir, key)
    tmp_path = None
    try:
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=cache_dir, prefix=".tmp-", suffix=".pkl"
        )
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(
                {"version": ENGINE_VERSION, "key": key, "data": data},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp_path, path)
        return True
    except Exception:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        return False
