"""Pluggable warm-start cache backends for the compiled engines.

The compiled TM engine (:mod:`repro.tm.compiled`), the compiled spec
layer (:mod:`repro.spec.compiled`) and the dense kernel
(:mod:`repro.automata.kernel`) intern states and memoize transition
tables; all of them depend only on the algorithm/specification identity,
not on the run.  Persisting them lets repeated CLI invocations and
benchmark rounds start *warm* — no re-compilation, no re-derivation of
rows the previous process already computed.

Persistence is a **backend protocol** (:class:`CacheBackend`:
``load``/``save``/``keys``/``stat``) with three implementations:

* :class:`DiskCacheBackend` — one pickle file per payload (the original
  format; a bare ``cache_dir`` string everywhere in the code base still
  means this backend);
* :class:`MemoryCacheBackend` — a process-local dict of pickled
  payloads, for tests and ephemeral runs;
* :class:`MmapCacheBackend` — versioned *segment files*: integer
  vectors (CSR offsets/targets, compiled spec rows) are laid out as raw
  typed buffers after a small pickled header, and :meth:`~MmapCacheBackend.load`
  returns zero-copy ``memoryview`` casts over one ``mmap`` of the file.
  N checker processes on one box then share a single page-cached copy
  of every table and deserialize nothing; numpy consumers wrap the same
  mapped buffer with ``np.frombuffer`` (still zero-copy), and the
  stdlib path indexes the memoryview casts directly, so the backend
  itself needs no numpy;
* :class:`TieredCacheBackend` — a resident memory tier over an optional
  durable tier (read-through on miss, write-back on build), the shape
  ``repro serve`` keeps hot for the life of the daemon.

Payloads are keyed by an explicit tuple (algorithm or spec identity plus
:data:`ENGINE_VERSION`) that is stored inside the file and re-checked on
load, so a cache written by a different engine version — or a file for a
different key that happens to collide on name — is silently ignored.  A
corrupt, truncated or otherwise unreadable file is likewise ignored:
``load`` never raises, it just returns ``None`` and the caller
recompiles from scratch.  Writes are **atomic on every backend** (disk
and mmap: tempfile + ``os.replace``; memory: the entry is swapped in
only after the payload pickled completely), so concurrent writers can
never leave a torn payload behind for a reader to trip over.

The module also holds the **typed-width policy** shared by every table:
integer vectors are ``array('i')`` (int32) whenever their values fit
and ``array('q')`` (int64) otherwise (:func:`narrow_int_vector`), the
width travels inside the payload (an array's typecode / a segment's
recorded typecode), and loaders accept either width — plus the
memoryview casts the mmap backend serves — via :func:`is_int_vector` /
:func:`int_vector_typecode`.

The default location is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``; every entry point
that persists caches also accepts an explicit directory (``--cache-dir``
on the CLI) and a backend selector (``--cache-backend``).
"""

from __future__ import annotations

import hashlib
import mmap as _mmap
import os
import pickle
import re
import struct
import tempfile
import threading
import weakref
from abc import ABC, abstractmethod
from array import array

from repro.faultplane import fault_check
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

#: Bump whenever a packed encoding or persisted row format changes —
#: caches written by other versions are ignored, never migrated.
#: Version 2: TM-engine payloads gained ``ext_table``/``node_rows`` (the
#: liveness rows, Ext/Resp in stable int encoding) and the int-rows spec
#: DFA (``spec-dfa`` keys) joined the cache.
#: Version 3: the dense kernel's product CSR tables (``dense-csr`` keys)
#: joined the cache, and the spec oracle / spec DFA row payloads
#: switched from Python lists to flat ``array('q')`` vectors.
#: Version 4: the typed-width pass — integer vectors persist as int32
#: (``array('i')``) when their values fit, int64 otherwise; spec
#: oracle/DFA rows flattened into one contiguous vector (sliced back on
#: load, so the mmap backend can serve them zero-copy); the liveness
#: node adjacency CSR (``dense-adj`` keys) joined the cache.
ENGINE_VERSION = 4

#: Inclusive int32 value range of the typed-width policy.
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1

#: Magic prefix of a :class:`MmapCacheBackend` segment file.
SEGMENT_MAGIC = b"RPROSEG1"

#: Suffix appended to a rejected payload file when it is quarantined.
#: Quarantined files are invisible to ``load``/``keys`` (their names no
#: longer end in the backend suffix) but are listed by ``doctor`` so an
#: operator can inspect or delete them.
QUARANTINE_SUFFIX = ".bad"

#: ``doctor`` entry statuses that count as anomalies: the entry is
#: unusable and will never become usable (``"quarantined"`` and
#: ``"ok"`` are healthy; a quarantined file is an *already handled*
#: anomaly).
DOCTOR_ANOMALIES = ("stale", "corrupt", "truncated", "mismatch", "orphan")

#: Sentinel for "validate the stored key against the file name instead
#: of a caller-supplied key" (the doctor's self-consistency mode).
_SELF_KEY = object()


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else the XDG cache home, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _key_slug(key: Hashable, suffix: str) -> str:
    """Readable slug plus a digest of the full key (the digest
    disambiguates; the key is still re-checked on load)."""
    text = repr(key)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")[:60]
    return f"{slug}-{digest}{suffix}"


def cache_path(cache_dir: str, key: Hashable) -> str:
    """The pickle-file path for ``key`` under the disk backend."""
    return os.path.join(cache_dir, _key_slug(key, ".pkl"))


def quarantine_path(path: str) -> Optional[str]:
    """Atomically rename a rejected payload file to ``<path>.bad``.

    Best-effort: returns the quarantine path on success, ``None`` when
    the rename failed (read-only directory, file already gone — e.g. a
    concurrent loader quarantined it first).  Quarantining is what stops
    a corrupt or stale file from being re-read and re-rejected on every
    warm start; ``repro doctor`` lists the ``.bad`` files it leaves.
    """
    target = path + QUARANTINE_SUFFIX
    try:
        os.replace(path, target)
        return target
    except OSError:
        return None


def _doctor_file_entries(
    cache_dir: str,
    suffix: str,
    diagnose: Callable[[str], Tuple[str, Optional[object]]],
    fix: bool,
) -> List[Dict[str, object]]:
    """Shared ``doctor`` walk of one file-backed store.

    Classifies every file of the backend's ``suffix`` family under
    ``cache_dir``: readable payloads (``ok``), version-audit failures
    (``stale``), unreadable/short files (``corrupt``/``truncated``),
    entries filed under the wrong name (``mismatch``), leftover
    atomic-write temporaries (``orphan``) and previously quarantined
    files (``quarantined``).  With ``fix``, anomalous payloads are
    quarantined and orphan temporaries removed; each entry records the
    action taken (``"quarantined"``/``"removed"``/``"failed"``).
    Read-only by default: without ``fix`` nothing on disk changes.
    """
    out: List[Dict[str, object]] = []
    try:
        names = sorted(os.listdir(cache_dir))
    except OSError:
        return out
    for name in names:
        path = os.path.join(cache_dir, name)
        try:
            size = os.stat(path).st_size
        except OSError:
            continue
        action: Optional[str] = None
        if name.endswith(suffix + QUARANTINE_SUFFIX):
            status = "quarantined"
        elif name.startswith(".tmp-") and name.endswith(suffix):
            status = "orphan"
            if fix:
                try:
                    os.unlink(path)
                    action = "removed"
                except OSError:
                    action = "failed"
        elif name.endswith(suffix):
            status, _data = diagnose(path)
            if status != "ok" and fix:
                action = (
                    "quarantined"
                    if quarantine_path(path) is not None
                    else "failed"
                )
        else:
            continue  # another backend's file (or unrelated)
        out.append(
            {"name": name, "status": status, "bytes": size, "action": action}
        )
    return out


# ----------------------------------------------------------------------
# Typed-width helpers
# ----------------------------------------------------------------------


def is_int_vector(obj: object) -> bool:
    """Whether ``obj`` is an integer vector a loader accepts: an
    ``array('i'/'q')`` or a 1-D memoryview cast to one of those widths
    (what the mmap backend serves)."""
    if isinstance(obj, array):
        return obj.typecode in ("i", "q")
    if isinstance(obj, memoryview):
        return obj.ndim == 1 and obj.format in ("i", "q")
    return False


def int_vector_typecode(obj: object) -> Optional[str]:
    """``'i'``/``'q'`` for an accepted int vector, else ``None``."""
    if isinstance(obj, array) and obj.typecode in ("i", "q"):
        return obj.typecode
    if isinstance(obj, memoryview) and obj.ndim == 1 and obj.format in (
        "i",
        "q",
    ):
        return obj.format
    return None


def narrow_int_vector(values) -> array:
    """The values as ``array('i')`` when every one fits int32, else
    ``array('q')`` — the typed-width policy's writer side.  Raises
    ``OverflowError`` only when a value does not even fit int64 (callers
    persisting possibly-huge packed ints catch it and fall back to
    lists)."""
    if isinstance(values, array) and values.typecode == "q":
        vals = values
    else:
        vals = array("q", values)
    try:
        return array("i", vals)
    except OverflowError:
        return vals


def widen_int_vector(vec) -> array:
    """An ``array('q')`` copy of any accepted int vector (for the
    benchmark's int64 baseline and overflow handling)."""
    return array("q", vec)


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------


class CacheBackend(ABC):
    """One warm-start payload store.

    The contract every implementation keeps:

    * ``load`` never raises — missing entry, corrupt bytes, wrong
      engine version, key mismatch all return ``None``;
    * ``save`` is atomic (a concurrent reader sees the old payload or
      the new one, never a torn hybrid) and swallows failures
      (returns ``False``) — the cache is an optimization, never a
      correctness dependency;
    * ``keys`` lists the keys of every currently readable payload;
    * ``stat`` reports the stored size in bytes (and the file path
      where one exists), or ``None`` when the key is absent.

    Because ``load``/``save`` swallow failures by contract, every
    swallowed failure is **tallied**: backends call :meth:`_note_error`
    where they would otherwise stay silent, and :meth:`error_counts`
    (surfaced through ``stat()``, the daemon's ``stats`` endpoint and
    ``repro doctor``) reports the per-kind counts — ``corrupt`` /
    ``stale`` / ``mismatch`` / ``truncated`` rejected loads,
    ``save_failed`` writes, ``unreadable`` key scans, and ``io_error``
    reads failed by the chaos plane (:mod:`repro.faultplane`).  A warm
    path that quietly degrades to cold no longer vanishes without
    trace.
    """

    def _note_error(self, kind: str) -> None:
        # Lazy init via the instance dict: subclasses don't call
        # super().__init__, and unpickled instances (the memory
        # backend's spawn-transfer path) arrive without the attribute.
        counts = self.__dict__.setdefault("_error_counts", {})
        counts[kind] = counts.get(kind, 0) + 1

    def error_counts(self) -> Dict[str, int]:
        """Per-kind tally of the failures this instance swallowed."""
        return dict(self.__dict__.get("_error_counts", {}))

    @abstractmethod
    def load(self, key: Hashable) -> Optional[object]:
        """The data stored for ``key``, or ``None``."""

    @abstractmethod
    def save(self, key: Hashable, data: object) -> bool:
        """Atomically persist ``data`` under ``key``; ``False`` on failure."""

    @abstractmethod
    def keys(self) -> List[Hashable]:
        """Keys of every readable payload in this store."""

    @abstractmethod
    def stat(self, key: Hashable) -> Optional[Dict[str, object]]:
        """``{"bytes": stored_size, "path": file_or_None}``, or ``None``."""

    def doctor(self, fix: bool = False) -> List[Dict[str, object]]:
        """Health audit of every entry in this store.

        Returns one ``{"name", "status", "bytes", "action"}`` dict per
        entry — ``status`` is ``"ok"`` for a payload ``load`` would
        serve, one of :data:`DOCTOR_ANOMALIES` for an entry it would
        reject (version audit → ``"stale"``, unreadable → ``"corrupt"``,
        short segment data → ``"truncated"``, filed under the wrong name
        → ``"mismatch"``, leftover atomic-write temporary →
        ``"orphan"``) and ``"quarantined"`` for an already-quarantined
        entry.  Read-only by default; with ``fix`` anomalies are
        quarantined (or, for orphans, removed) and the ``action`` field
        records what happened.  Backends without an inspectable store
        may return an empty list (the default).
        """
        return []


class DiskCacheBackend(CacheBackend):
    """The original pickle-on-disk store: one versioned ``.pkl`` per key."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir

    def path_for(self, key: Hashable) -> str:
        return cache_path(self.cache_dir, key)

    def _diagnose(
        self, path: str, expected_key: object = _SELF_KEY
    ) -> Tuple[str, Optional[object]]:
        """Validate one pickle file: ``(status, data)``.

        ``status`` is ``"ok"`` (with the payload data), ``"missing"``,
        ``"corrupt"`` (unreadable or structurally wrong), ``"stale"``
        (version audit failed) or ``"mismatch"`` (the stored key is not
        the expected one — with the :data:`_SELF_KEY` default, the file
        name does not match the stored key's slug).  This is the single
        rejection logic shared by :meth:`load` and :meth:`doctor`.
        """
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return "missing", None
        except Exception:
            # Deliberately broad: unpickling untrusted bytes can raise
            # nearly anything (UnpicklingError, EOFError, ImportError,
            # AttributeError, ...) and they all mean the same thing
            # here — the entry is not servable.
            return "corrupt", None
        if not isinstance(payload, dict):
            return "corrupt", None
        if payload.get("version") != ENGINE_VERSION:
            return "stale", None
        key = payload.get("key")
        if expected_key is _SELF_KEY:
            if os.path.basename(path) != _key_slug(key, ".pkl"):
                return "mismatch", None
        elif key != expected_key:
            return "mismatch", None
        return "ok", payload.get("data")

    def load(self, key: Hashable) -> Optional[object]:
        path = self.path_for(key)
        fault = fault_check("cache.load", repr(key))
        if fault is not None:
            fault.stall()
            if fault.fault == "eio":
                # An injected read failure: the warm start degrades to
                # cold, tallied — but the on-disk entry is healthy, so
                # it must NOT be quarantined.
                self._note_error("io_error")
                return None
        # No blanket catch here: _diagnose already converts everything a
        # hostile file can throw into a status, so an exception escaping
        # it is a programming error that must surface, not a cache miss.
        status, data = self._diagnose(path, expected_key=key)
        if status == "ok":
            return data
        if status != "missing":
            self._note_error(status)
            # Quarantine instead of re-reading and re-rejecting the same
            # corrupt/stale payload on every warm start (best-effort;
            # ``repro doctor`` lists the ``.bad`` file this leaves).
            quarantine_path(path)
        return None

    def save(self, key: Hashable, data: object) -> bool:
        path = self.path_for(key)
        tmp_path = None
        try:
            fault = fault_check("cache.save", repr(key))
            if fault is not None:
                fault.stall()
                fault.raise_io(path)  # eio/enospc → tallied save_failed
            blob = pickle.dumps(
                {"version": ENGINE_VERSION, "key": key, "data": data},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            if fault is not None:
                # torn_write: the torn prefix still lands atomically —
                # the next load rejects it as corrupt and quarantines,
                # which is exactly the recovery path under test.
                blob = fault.torn(blob)
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=".pkl"
            )
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp_path, path)
            return True
        except Exception:
            # Broad by contract (save swallows failures), but pickling
            # an arbitrary payload can raise nearly anything, so there
            # is no narrower set to name.  Tallied, not silent:
            self._note_error("save_failed")
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            return False

    def keys(self) -> List[Hashable]:
        out: List[Hashable] = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return out
        for name in names:
            if not name.endswith(".pkl") or name.startswith(".tmp-"):
                continue
            try:
                with open(os.path.join(self.cache_dir, name), "rb") as fh:
                    payload = pickle.load(fh)
                if (
                    isinstance(payload, dict)
                    and payload.get("version") == ENGINE_VERSION
                ):
                    out.append(payload.get("key"))
            except Exception:
                # Unpickling again: any exception means "not readable".
                self._note_error("unreadable")
                continue
        return out

    def stat(self, key: Hashable) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            size = os.stat(path).st_size
        except OSError:
            return None
        return {
            "bytes": size, "path": path, "errors": self.error_counts(),
        }

    def doctor(self, fix: bool = False) -> List[Dict[str, object]]:
        return _doctor_file_entries(
            self.cache_dir, ".pkl", self._diagnose, fix
        )


#: Locked in-memory backends alive in this process; their locks are
#: re-created in forked children (a worker forked while another thread
#: holds a lock would otherwise inherit it permanently held).
_LOCKED_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()


def _reinit_backend_locks() -> None:  # pragma: no cover - fork plumbing
    for backend in list(_LOCKED_BACKENDS):
        backend._lock = threading.RLock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_backend_locks)


class MemoryCacheBackend(CacheBackend):
    """An in-process store for tests, ephemeral runs and the daemon's
    resident tier.

    Entries hold the *pickled* payload: loads hand back an independent
    copy (exactly what a disk round-trip would), the reported size is
    honest, and a save only swaps the entry in after the whole payload
    pickled — the atomicity contract for free.

    The store is **concurrency-safe**: every dict access happens under
    an ``RLock`` (``repro serve`` multiplexes request threads over one
    resident backend), the lock is re-created in forked children
    (supervised request workers fork while other threads may hold it),
    and pickling the backend — e.g. sending it to a ``spawn`` worker —
    drops the lock and re-creates it on the other side.
    """

    def __init__(self) -> None:
        self._entries: Dict[Hashable, bytes] = {}
        self._quarantined: Dict[Hashable, bytes] = {}
        self._lock = threading.RLock()
        _LOCKED_BACKENDS.add(self)

    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            return {
                "_entries": dict(self._entries),
                "_quarantined": dict(self._quarantined),
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        _LOCKED_BACKENDS.add(self)

    def _diagnose_blob(self, key: Hashable, blob: bytes) -> Tuple[str, Optional[object]]:
        """The pickle backends' rejection logic over an in-memory blob."""
        try:
            payload = pickle.loads(blob)
        except Exception:
            # Broad for the same reason as the disk backend: absorbed
            # blobs are untrusted bytes and unpickling them can raise
            # nearly anything.
            return "corrupt", None
        if not isinstance(payload, dict):
            return "corrupt", None
        if payload.get("version") != ENGINE_VERSION:
            return "stale", None
        if payload.get("key") != key:
            return "mismatch", None
        return "ok", payload.get("data")

    def load(self, key: Hashable) -> Optional[object]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                return None
            status, data = self._diagnose_blob(key, blob)
            if status == "ok":
                return data
            self._note_error(status)
            # Same churn-stopping contract as the file backends: a
            # rejected entry moves to the quarantine map instead of
            # being re-rejected on every load.
            self._quarantined[key] = self._entries.pop(key)
            return None

    @staticmethod
    def encode_blob(key: Hashable, data: object) -> bytes:
        """The versioned pickled entry ``save`` stores for ``data``."""
        return pickle.dumps(
            {"version": ENGINE_VERSION, "key": key, "data": data},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def save(self, key: Hashable, data: object) -> bool:
        try:
            blob = self.encode_blob(key, data)
        except Exception:
            # Broad by contract; pickling arbitrary payloads has no
            # narrower exception set.  Tallied, not silent:
            self._note_error("save_failed")
            return False
        with self._lock:
            self._entries[key] = blob
        return True

    def put_blob_if_changed(self, key: Hashable, blob: bytes) -> bool:
        """Swap ``blob`` in under ``key``; ``False`` when the stored
        entry was already byte-identical (the tiered backend's signal to
        skip the cold-tier write)."""
        with self._lock:
            if self._entries.get(key) == blob:
                return False
            self._entries[key] = blob
            return True

    def snapshot_keys(self) -> FrozenSet[Hashable]:
        """The current entry keys (readable or not) — the baseline for
        :meth:`export_blobs` around one supervised request."""
        with self._lock:
            return frozenset(self._entries)

    def export_blobs(
        self, exclude: Iterable[Hashable] = ()
    ) -> Dict[Hashable, bytes]:
        """Raw stored entries for every key not in ``exclude`` — what a
        supervised request's forked worker ships back so the parent's
        resident tier learns the tables the child built."""
        skip = frozenset(exclude)
        with self._lock:
            return {
                key: blob
                for key, blob in self._entries.items()
                if key not in skip
            }

    def absorb_blobs(self, blobs: Dict[Hashable, bytes]) -> int:
        """Install exported entries (last writer wins); the count taken."""
        with self._lock:
            self._entries.update(blobs)
        return len(blobs)

    def blob_stats(self) -> Dict[str, int]:
        """``{"keys": n, "bytes": total}`` over the stored entries."""
        with self._lock:
            return {
                "keys": len(self._entries),
                "bytes": sum(len(blob) for blob in self._entries.values()),
            }

    def keys(self) -> List[Hashable]:
        # Honour the "readable payloads only" contract: entries whose
        # blob no longer unpickles to the current version are invisible.
        # (Snapshot the keys: a rejecting ``load`` quarantines, which
        # mutates ``_entries`` mid-scan.)
        with self._lock:
            snapshot = list(self._entries)
        return [k for k in snapshot if self.load(k) is not None]

    def stat(self, key: Hashable) -> Optional[Dict[str, object]]:
        with self._lock:
            blob = self._entries.get(key)
        if blob is None:
            return None
        return {
            "bytes": len(blob), "path": None,
            "errors": self.error_counts(),
        }

    def doctor(self, fix: bool = False) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        with self._lock:
            already_quarantined = sorted(self._quarantined, key=repr)
            for key in sorted(self._entries, key=repr):
                blob = self._entries[key]
                status, _data = self._diagnose_blob(key, blob)
                action: Optional[str] = None
                if status != "ok" and fix:
                    self._quarantined[key] = self._entries.pop(key)
                    action = "quarantined"
                out.append(
                    {
                        "name": repr(key),
                        "status": status,
                        "bytes": len(blob),
                        "action": action,
                    }
                )
            for key in already_quarantined:
                out.append(
                    {
                        "name": repr(key),
                        "status": "quarantined",
                        "bytes": len(self._quarantined[key]),
                        "action": None,
                    }
                )
        return out


class MmapCacheBackend(CacheBackend):
    """Zero-deserialization segment files, memory-mapped on load.

    Layout of one ``.seg`` file::

        8 bytes   SEGMENT_MAGIC
        8 bytes   little-endian header length H
        H bytes   pickled header {version, key, meta, segments}
        pad       to the next 8-byte boundary
        raw data  one 8-byte-aligned byte run per segment

    ``save`` splits a dict payload: every ``array('i'/'q')`` (or int
    memoryview) value becomes a raw segment recorded as
    ``(name, typecode, offset, nbytes)`` in the header; everything else
    stays pickled in ``meta``.  ``load`` maps the whole file once
    (``mmap.ACCESS_READ``) and reconstructs the dict with zero-copy
    ``memoryview`` casts over the mapping for the segments — indexing a
    loaded vector reads straight from the page cache, and concurrent
    checker processes loading the same file share those pages.  The
    views keep the mapping alive through the buffer protocol; nothing
    is ever deserialized, and a malformed/truncated/stale file returns
    ``None`` exactly like the pickle backends.  Non-dict payloads (none
    of the engines write any) fall back to an all-pickled ``meta``.
    """

    SUFFIX = ".seg"

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir

    def path_for(self, key: Hashable) -> str:
        return os.path.join(self.cache_dir, _key_slug(key, self.SUFFIX))

    @staticmethod
    def _align(n: int) -> int:
        return (n + 7) & ~7

    def save(self, key: Hashable, data: object) -> bool:
        meta: Dict[str, object] = {}
        segments: List[tuple] = []
        blobs: List[bytes] = []
        plain = not isinstance(data, dict)
        if plain:
            meta["value"] = data
        else:
            off = 0
            for name, value in data.items():
                tc = int_vector_typecode(value)
                if tc is not None and isinstance(name, str):
                    raw = (
                        value.tobytes()
                        if isinstance(value, array)
                        else bytes(value)
                    )
                    segments.append((name, tc, off, len(raw)))
                    blobs.append(raw)
                    off = self._align(off + len(raw))
                else:
                    meta[name] = value
        header = {
            "version": ENGINE_VERSION,
            "key": key,
            "plain": plain,
            "meta": meta,
            "segments": segments,
        }
        path = self.path_for(key)
        tmp_path = None
        try:
            fault = fault_check("cache.save", repr(key))
            if fault is not None:
                fault.stall()
                fault.raise_io(path)  # eio/enospc → tallied save_failed
            hdr = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
            pos = 16 + len(hdr)
            base = self._align(pos)
            parts = [
                SEGMENT_MAGIC,
                struct.pack("<Q", len(hdr)),
                hdr,
                b"\0" * (base - pos),
            ]
            cursor = 0
            for (_name, _tc, off, nbytes), raw in zip(segments, blobs):
                parts.append(b"\0" * (off - cursor))
                parts.append(raw)
                cursor = off + nbytes
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=self.SUFFIX
            )
            with os.fdopen(fd, "wb") as fh:
                if fault is not None and fault.fault == "torn_write":
                    # The torn prefix still lands atomically; the next
                    # load rejects it (corrupt/truncated), quarantines,
                    # and rebuilds — the recovery path under test.
                    fh.write(fault.torn(b"".join(parts)))
                else:
                    for part in parts:
                        fh.write(part)
            os.replace(tmp_path, path)
            return True
        except Exception:
            # Broad by contract (save swallows failures): pickling the
            # header and serializing arbitrary segment values have no
            # narrower exception set.  Tallied, not silent:
            self._note_error("save_failed")
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            return False

    def _parse_header(self, mm) -> Tuple[str, Optional[dict]]:
        """``(status, header)`` for one mapped segment file: ``"ok"``
        with the pickled header (plus its computed ``_data_base``),
        ``"truncated"`` when the header length points past EOF, or
        ``"corrupt"`` for everything else a reader could trip over."""
        try:
            if len(mm) < 16 or mm[:8] != SEGMENT_MAGIC:
                return "corrupt", None
            (hlen,) = struct.unpack("<Q", mm[8:16])
            if hlen <= 0:
                return "corrupt", None
            if 16 + hlen > len(mm):
                return "truncated", None
            header = pickle.loads(mm[16 : 16 + hlen])
            if not isinstance(header, dict):
                return "corrupt", None
            header["_data_base"] = self._align(16 + hlen)
            return "ok", header
        except Exception:
            # Broad on purpose: the header is untrusted pickled bytes
            # plus untrusted struct fields — anything it throws means
            # "not a servable segment file".
            return "corrupt", None

    def _read_header(self, mm) -> Optional[dict]:
        status, header = self._parse_header(mm)
        return header if status == "ok" else None

    def _diagnose(
        self, path: str, expected_key: object = _SELF_KEY
    ) -> Tuple[str, Optional[object]]:
        """Validate one segment file: ``(status, data)``.

        Statuses are the disk backend's (:meth:`DiskCacheBackend.
        _diagnose`) plus ``"truncated"`` for a file whose header or
        recorded segments extend past EOF — the torn-copy shape an
        interrupted transfer (or a filesystem running out of space
        behind a non-atomic writer) leaves behind.
        """
        try:
            with open(path, "rb") as fh:
                mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
        except FileNotFoundError:
            return "missing", None
        except (OSError, ValueError):
            # The two shapes open/mmap actually produce: I/O and
            # permission errors are OSError, mmap refuses empty files
            # with ValueError.  Anything else would be a bug worth
            # seeing, not a "corrupt" verdict.
            return "corrupt", None
        try:
            status, header = self._parse_header(mm)
            if status != "ok":
                return status, None
            if header.get("version") != ENGINE_VERSION:
                return "stale", None
            key = header.get("key")
            if expected_key is _SELF_KEY:
                if os.path.basename(path) != _key_slug(key, self.SUFFIX):
                    return "mismatch", None
            elif key != expected_key:
                return "mismatch", None
            meta = header.get("meta")
            if not isinstance(meta, dict):
                return "corrupt", None
            if header.get("plain"):
                return "ok", meta.get("value")
            out: Dict[str, object] = dict(meta)
            base = header["_data_base"]
            view = memoryview(mm)
            for name, tc, off, nbytes in header.get("segments", ()):
                if tc not in ("i", "q"):
                    return "corrupt", None
                itemsize = 4 if tc == "i" else 8
                start = base + off
                if nbytes % itemsize:
                    return "corrupt", None
                if start + nbytes > len(mm):
                    return "truncated", None
                out[name] = view[start : start + nbytes].cast(tc)
            return "ok", out
        except Exception:
            # Broad on purpose: the segment table is untrusted header
            # data (malformed tuples, non-int offsets, cast failures
            # all land here) and every shape means "corrupt".
            return "corrupt", None

    def load(self, key: Hashable) -> Optional[object]:
        path = self.path_for(key)
        fault = fault_check("cache.load", repr(key))
        if fault is not None:
            fault.stall()
            if fault.fault == "eio":
                # Injected read failure: degrade to cold, tallied; the
                # on-disk entry is healthy, so no quarantine.
                self._note_error("io_error")
                return None
        # As in the disk backend: _diagnose already owns the rejection
        # logic, so no blanket catch hiding programming errors here.
        status, data = self._diagnose(path, expected_key=key)
        if status == "ok":
            return data
        if status != "missing":
            self._note_error(status)
            # Stop the silent churn: a payload this load rejected would
            # be re-read and re-rejected by every future warm start.
            quarantine_path(path)
        return None

    def keys(self) -> List[Hashable]:
        out: List[Hashable] = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return out
        for name in names:
            if not name.endswith(self.SUFFIX) or name.startswith(".tmp-"):
                continue
            try:
                with open(os.path.join(self.cache_dir, name), "rb") as fh:
                    mm = _mmap.mmap(
                        fh.fileno(), 0, access=_mmap.ACCESS_READ
                    )
                header = self._read_header(mm)
                if (
                    header is not None
                    and header.get("version") == ENGINE_VERSION
                ):
                    out.append(header.get("key"))
            except (OSError, ValueError):
                # open/mmap failures only — _read_header never raises.
                self._note_error("unreadable")
                continue
        return out

    def stat(self, key: Hashable) -> Optional[Dict[str, object]]:
        path = self.path_for(key)
        try:
            size = os.stat(path).st_size
        except OSError:
            return None
        return {
            "bytes": size, "path": path, "errors": self.error_counts(),
        }

    def doctor(self, fix: bool = False) -> List[Dict[str, object]]:
        return _doctor_file_entries(
            self.cache_dir, self.SUFFIX, self._diagnose, fix
        )


class TieredCacheBackend(CacheBackend):
    """A resident hot tier over an optional durable cold tier.

    ``repro serve`` keeps one of these for the life of the daemon: the
    hot tier is a (concurrency-safe) :class:`MemoryCacheBackend` holding
    every payload the daemon has seen, the cold tier is any durable
    backend (disk pickles or mmap segments).  Semantics:

    * **read-through** — ``load`` serves the hot tier when it can;
      otherwise it consults the cold tier and, on a hit, promotes the
      payload into the hot tier, so a crash-and-restart re-hydrates
      warm state from disk segments instead of recomputing it;
    * **write-back on build** — ``save`` swaps the entry into the hot
      tier first and writes the cold tier only when the payload's bytes
      actually changed (re-saving an unchanged warm table is free);
    * the hot tier's export/absorb API passes through, so a supervised
      request's forked worker can ship the tables it built back to the
      daemon's resident tier.

    Like every backend, ``load`` never raises and ``save`` swallows
    failures; a missing/corrupt cold entry simply stays cold.
    """

    def __init__(
        self,
        hot: Optional[MemoryCacheBackend] = None,
        cold: Optional[CacheBackend] = None,
    ) -> None:
        self.hot = hot if hot is not None else MemoryCacheBackend()
        self.cold = cold

    def load(self, key: Hashable) -> Optional[object]:
        data = self.hot.load(key)
        if data is not None:
            return data
        if self.cold is None:
            return None
        data = self.cold.load(key)
        if data is not None:
            self.hot.save(key, data)  # promote: next load is resident
        return data

    def save(self, key: Hashable, data: object) -> bool:
        try:
            blob = MemoryCacheBackend.encode_blob(key, data)
        except Exception:
            # Broad by contract; no narrower set for pickling arbitrary
            # payloads.  Tallied, not silent:
            self._note_error("save_failed")
            return False
        if not self.hot.put_blob_if_changed(key, blob):
            return True  # byte-identical payload is already resident
        if self.cold is not None:
            self.cold.save(key, data)
        return True

    def error_counts(self) -> Dict[str, int]:
        # Merge the tiers' tallies (the cold tier may be any object
        # honouring the load/save contract — tests wrap backends in
        # counting shims that don't subclass CacheBackend, so guard).
        out = dict(super().error_counts())
        for tier in (self.hot, self.cold):
            counts = getattr(tier, "error_counts", None)
            if counts is None:
                continue
            for kind, count in counts().items():
                out[kind] = out.get(kind, 0) + count
        return out

    def keys(self) -> List[Hashable]:
        out = self.hot.keys()
        if self.cold is not None:
            seen = set(out)
            out += [k for k in self.cold.keys() if k not in seen]
        return out

    def stat(self, key: Hashable) -> Optional[Dict[str, object]]:
        found = self.hot.stat(key)
        if found is None and self.cold is not None:
            found = self.cold.stat(key)
        if found is not None:
            found["errors"] = self.error_counts()
        return found

    def doctor(self, fix: bool = False) -> List[Dict[str, object]]:
        out = self.hot.doctor(fix)
        if self.cold is not None:
            out += self.cold.doctor(fix)
        return out

    # Hot-tier passthroughs for the supervised-request warm round-trip.

    def snapshot_keys(self) -> FrozenSet[Hashable]:
        return self.hot.snapshot_keys()

    def export_blobs(
        self, exclude: Iterable[Hashable] = ()
    ) -> Dict[Hashable, bytes]:
        return self.hot.export_blobs(exclude)

    def absorb_blobs(self, blobs: Dict[Hashable, bytes]) -> int:
        return self.hot.absorb_blobs(blobs)


#: What every persistence entry point accepts where it used to take a
#: directory: nothing, a directory (the disk backend), or a backend.
CacheLike = Union[None, str, CacheBackend]

#: ``--cache-backend`` selector names.
BACKEND_NAMES = ("disk", "mmap", "memory")


def make_backend(name: str, cache_dir: str) -> CacheBackend:
    """A backend by selector name (see :data:`BACKEND_NAMES`)."""
    if name == "disk":
        return DiskCacheBackend(cache_dir)
    if name == "mmap":
        return MmapCacheBackend(cache_dir)
    if name == "memory":
        return MemoryCacheBackend()
    raise ValueError(
        f"unknown cache backend {name!r}; choose from {BACKEND_NAMES}"
    )


def resolve_backend(cache: CacheLike) -> Optional[CacheBackend]:
    """``None``, a ``CacheBackend`` passed through, or the disk backend
    over a bare directory string — the polymorphic ``cache_dir``
    contract every engine's ``load_warm``/``save_warm`` honours."""
    if cache is None:
        return None
    if isinstance(cache, CacheBackend):
        return cache
    return DiskCacheBackend(cache)


def load_payload(cache: CacheLike, key: Hashable) -> Optional[object]:
    """The data stored for ``key``, or ``None``.

    ``None`` covers every failure mode — missing entry, unpickling
    error, wrong engine version, key mismatch — so callers can always
    fall back to recompiling without special-casing.
    """
    backend = resolve_backend(cache)
    if backend is None:
        return None
    return backend.load(key)


def save_payload(cache: CacheLike, key: Hashable, data: object) -> bool:
    """Atomically persist ``data`` under ``key``; ``False`` on any failure.

    Failures (unwritable directory, full disk) are swallowed — the warm
    cache is an optimization, never a correctness dependency.
    """
    backend = resolve_backend(cache)
    if backend is None:
        return False
    return backend.save(key, data)
