"""Deterministic chaos plane: seeded fault schedules for I/O and wire.

Process-level faults (SIGKILL, hangs, ballast allocations) have been
first-class, injectable inputs since the campaign supervisor landed —
but the substrate faults real deployments actually die on (ENOSPC
mid-journal-append, EIO on a segment read, a dropped fsync, a TCP reset
mid-response) were only ever exercised by hand-corrupting files in CI
recipes.  This module makes those faults a **seeded, replayable input**:
a validated JSON *fault schedule* drives a process-wide injector that
the storage plane (:mod:`repro.cache`), the journal plane
(:mod:`repro.campaign.journal`), the wire plane (:mod:`repro.serve`)
and the pool dispatcher (:mod:`repro.tm.compiled`) consult at each
instrumented site.

A schedule looks like::

    {
      "name": "storage-eio",
      "seed": 3,
      "rules": [
        {"site": "cache.save", "match": "*", "nth": 1, "fault": "eio"},
        {"site": "journal.append", "nth": 2, "fault": "torn_write"},
        {"site": "serve.send", "match": "server:*", "nth": 1,
         "fault": "reset"},
        {"site": "serve.recv", "nth": 1, "fault": "stall_ms",
         "stall_ms": 50}
      ]
    }

Semantics:

* **Sites** (:data:`SITES`) are the instrumented call points; each call
  carries a *key* (a cache key repr, a journal record id, a wire role
  and op like ``server:check``) matched against the rule's ``match``
  glob (default ``*``).
* A rule fires on its ``nth`` matching call (1-based) and on the
  ``count - 1`` matching calls after it (default ``count`` 1).  Rules
  are ordered: the first rule whose window covers the current call
  wins, but every matching rule's occurrence counter always advances.
* ``seed`` feeds one private ``random.Random`` per rule (keyed
  ``"{seed}:{rule_index}"``), from which data-dependent parameters —
  the truncation point of a ``torn_write`` / ``partial_send`` — are
  drawn in fire order.  Same schedule, same call sequence ⇒ same
  faults, byte for byte.
* Counters are **per-process**: a forked child inherits the parent's
  counts at fork time and advances its own copy.  (The supervised
  check children each see the schedule from the top — deliberate:
  cache faults are absorbed *inside* one attempt by the never-raise
  contract, so per-child replay is what makes them reproducible.)

Activation: programmatically via :func:`install` / :func:`uninstall`
(or the :func:`installed` context manager), or — the form the
``repro chaos`` sweeper uses — by pointing ``$REPRO_FAULT_SCHEDULE``
at a schedule file before the process starts.  When no schedule is
active, :func:`fault_check` is a near-free ``None`` return on every
call, so instrumented sites cost nothing in production.

Every fired injection is tallied (:meth:`FaultPlane.counts`) and
surfaced — cache-plane faults additionally land in the backends'
``error_counts()``/quarantine, wire-plane faults in the daemon's
``stats`` wire counters, journal-plane faults in the campaign exit
path — so no injection can vanish silently (the observability
acceptance bar of the chaos plane).
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import hashlib
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

#: Environment variable naming a schedule file to auto-install.
SCHEDULE_ENV = "REPRO_FAULT_SCHEDULE"

#: Instrumented call points.
SITES = (
    "cache.save",
    "cache.load",
    "journal.append",
    "journal.fsync",
    "serve.send",
    "serve.recv",
    "pool.dispatch",
)

#: Injectable fault kinds.
FAULTS = (
    "eio",
    "enospc",
    "torn_write",
    "drop_fsync",
    "partial_send",
    "reset",
    "stall_ms",
)

#: Which faults make sense at which site — a schedule naming an
#: incompatible pair is a validation error, not a silent no-op.
SITE_FAULTS: Dict[str, tuple] = {
    "cache.save": ("eio", "enospc", "torn_write", "stall_ms"),
    "cache.load": ("eio", "stall_ms"),
    "journal.append": ("eio", "enospc", "torn_write", "stall_ms"),
    "journal.fsync": ("eio", "enospc", "drop_fsync", "stall_ms"),
    "serve.send": ("eio", "partial_send", "reset", "stall_ms"),
    "serve.recv": ("eio", "reset", "stall_ms"),
    "pool.dispatch": ("eio", "stall_ms"),
}

_ERRNO = {"eio": _errno.EIO, "enospc": _errno.ENOSPC}

#: Ceiling on one injected stall (a schedule must not be able to turn
#: into an unbounded hang the supervisor then has to kill).
MAX_STALL_MS = 60_000

_RULE_KEYS = frozenset(
    ["site", "match", "nth", "count", "fault", "stall_ms", "keep_bytes"]
)
_SCHEDULE_KEYS = frozenset(["name", "seed", "rules"])


class FaultScheduleError(ValueError):
    """A fault schedule failed validation (CLI exit 2)."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise FaultScheduleError(message)


def validate_schedule(data: object) -> Dict[str, object]:
    """Validate one decoded schedule document into canonical form.

    The canonical form has every optional field filled in (``match``,
    ``nth``, ``count``), so two schedules that mean the same thing
    share one :func:`schedule_digest`.
    """
    _require(isinstance(data, dict), "fault schedule must be a JSON object")
    unknown = set(data) - _SCHEDULE_KEYS
    _require(
        not unknown,
        f"fault schedule: unknown key(s) {sorted(unknown)}"
        f" (expected {sorted(_SCHEDULE_KEYS)})",
    )
    name = data.get("name", "schedule")
    _require(
        isinstance(name, str) and bool(name),
        "fault schedule: name must be a non-empty string",
    )
    seed = data.get("seed", 0)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
        "fault schedule: seed must be a non-negative integer",
    )
    raw_rules = data.get("rules")
    _require(
        isinstance(raw_rules, list) and bool(raw_rules),
        "fault schedule: rules must be a non-empty list",
    )
    rules: List[Dict[str, object]] = []
    for index, raw in enumerate(raw_rules):
        where = f"rules[{index}]"
        _require(isinstance(raw, dict), f"{where}: rule must be an object")
        unknown = set(raw) - _RULE_KEYS
        _require(
            not unknown,
            f"{where}: unknown key(s) {sorted(unknown)}"
            f" (expected {sorted(_RULE_KEYS)})",
        )
        site = raw.get("site")
        _require(
            site in SITES,
            f"{where}: unknown site {site!r} (choose from {list(SITES)})",
        )
        fault = raw.get("fault")
        _require(
            fault in FAULTS,
            f"{where}: unknown fault {fault!r}"
            f" (choose from {list(FAULTS)})",
        )
        _require(
            fault in SITE_FAULTS[site],
            f"{where}: fault {fault!r} cannot be injected at {site!r}"
            f" (choose from {list(SITE_FAULTS[site])})",
        )
        match = raw.get("match", "*")
        _require(
            isinstance(match, str) and bool(match),
            f"{where}: match must be a non-empty glob string",
        )
        rule: Dict[str, object] = {
            "site": site, "match": match, "fault": fault,
        }
        for key, default, floor in (("nth", 1, 1), ("count", 1, 1)):
            value = raw.get(key, default)
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= floor,
                f"{where}: {key} must be an integer >= {floor}",
            )
            rule[key] = value
        if fault == "stall_ms":
            stall = raw.get("stall_ms")
            _require(
                isinstance(stall, (int, float))
                and not isinstance(stall, bool)
                and 0 < stall <= MAX_STALL_MS,
                f"{where}: stall_ms must be a number in"
                f" (0, {MAX_STALL_MS}] for fault 'stall_ms'",
            )
            rule["stall_ms"] = stall
        else:
            _require(
                "stall_ms" not in raw,
                f"{where}: stall_ms only applies to fault 'stall_ms'",
            )
        if "keep_bytes" in raw and raw["keep_bytes"] is not None:
            _require(
                fault in ("torn_write", "partial_send"),
                f"{where}: keep_bytes only applies to torn_write /"
                " partial_send",
            )
            value = raw["keep_bytes"]
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"{where}: keep_bytes must be a non-negative integer",
            )
            rule["keep_bytes"] = value
        rules.append(rule)
    return {"name": name, "seed": seed, "rules": rules}


def schedule_digest(schedule: Dict[str, object]) -> str:
    """sha256 over the canonical schedule JSON — names a trial."""
    canonical = json.dumps(validate_schedule(schedule), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _Rule:
    """One validated rule plus its per-process occurrence state."""

    __slots__ = ("spec", "rng", "hits", "fired")

    def __init__(self, spec: Dict[str, object], seed: int, index: int):
        self.spec = spec
        # A private, per-rule stream: data-dependent draws (truncation
        # points) never perturb other rules' determinism.
        self.rng = random.Random(f"{seed}:{index}")
        self.hits = 0
        self.fired = 0

    def matches(self, site: str, key: str) -> bool:
        return self.spec["site"] == site and fnmatch.fnmatchcase(
            key, self.spec["match"]
        )

    def window_open(self) -> bool:
        nth = self.spec["nth"]
        return nth <= self.hits < nth + self.spec["count"]


class ScheduledFault:
    """One fired injection, handed to the instrumented call site.

    The helpers cover the common shapes; sites with richer needs read
    :attr:`fault` directly (``torn_write`` at a journal append,
    ``reset`` on a socket).
    """

    def __init__(self, rule: _Rule, site: str, key: str) -> None:
        self.fault: str = rule.spec["fault"]
        self.site = site
        self.key = key
        self._rule = rule

    def raise_io(self, path: Optional[str] = None) -> None:
        """Raise the injected ``OSError`` for ``eio``/``enospc``
        (no-op for other fault kinds)."""
        code = _ERRNO.get(self.fault)
        if code is None:
            return
        message = f"injected {self.fault} at {self.site}"
        if path is not None:
            raise OSError(code, message, path)
        raise OSError(code, message)

    def stall(self) -> None:
        """Sleep out a ``stall_ms`` fault (no-op otherwise)."""
        if self.fault == "stall_ms":
            time.sleep(float(self._rule.spec["stall_ms"]) / 1000.0)

    def apply_io(self, path: Optional[str] = None) -> None:
        """The one-liner for plain I/O sites: stall, or raise."""
        self.stall()
        self.raise_io(path)

    def torn(self, data: bytes) -> bytes:
        """The truncated prefix a ``torn_write``/``partial_send``
        leaves behind: ``keep_bytes`` when the rule pins it, else a
        seeded draw in ``[0, len(data))`` — strictly shorter than the
        intended write whenever there was anything to tear."""
        if self.fault not in ("torn_write", "partial_send"):
            return data
        keep = self._rule.spec.get("keep_bytes")
        if keep is None:
            keep = self._rule.rng.randrange(len(data)) if data else 0
        return data[: min(int(keep), len(data))]


class FaultPlane:
    """A process-wide injector over one validated schedule."""

    def __init__(self, schedule: object) -> None:
        self.schedule = validate_schedule(schedule)
        self.digest = schedule_digest(self.schedule)
        self.name: str = self.schedule["name"]
        seed: int = self.schedule["seed"]
        self._rules = [
            _Rule(spec, seed, index)
            for index, spec in enumerate(self.schedule["rules"])
        ]
        self._lock = threading.Lock()

    def check(self, site: str, key: str) -> Optional[ScheduledFault]:
        """Advance every matching rule; fire the first whose window is
        open.  Thread-safe (the daemon's connection threads share one
        plane)."""
        fired: Optional[ScheduledFault] = None
        with self._lock:
            for rule in self._rules:
                if not rule.matches(site, key):
                    continue
                rule.hits += 1
                if fired is None and rule.window_open():
                    rule.fired += 1
                    fired = ScheduledFault(rule, site, key)
        return fired

    def counts(self) -> Dict[str, int]:
        """``{"site:fault": fired}`` over every rule that fired —
        deterministic given a deterministic call sequence, and the
        plane's contribution to reports/stats."""
        out: Dict[str, int] = {}
        with self._lock:
            for rule in self._rules:
                if rule.fired:
                    label = f"{rule.spec['site']}:{rule.spec['fault']}"
                    out[label] = out.get(label, 0) + rule.fired
        return out


# ----------------------------------------------------------------------
# The process-wide active plane
# ----------------------------------------------------------------------

_ACTIVE: Optional[FaultPlane] = None
_ENV_LOADED = False
_STATE_LOCK = threading.Lock()


def load_schedule(path: str) -> Dict[str, object]:
    """Read + validate a schedule file (bad JSON is a schedule error)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise FaultScheduleError(f"cannot read fault schedule: {exc}")
    except json.JSONDecodeError as exc:
        raise FaultScheduleError(
            f"fault schedule is not valid JSON: {exc}"
        )
    return validate_schedule(data)


def install(schedule: object) -> FaultPlane:
    """Activate a schedule (dict or pre-built plane) process-wide."""
    global _ACTIVE, _ENV_LOADED
    plane = (
        schedule
        if isinstance(schedule, FaultPlane)
        else FaultPlane(schedule)
    )
    with _STATE_LOCK:
        _ACTIVE = plane
        _ENV_LOADED = True  # an explicit install overrides the env
    return plane


def uninstall() -> None:
    """Deactivate injection (and forget any env-var schedule)."""
    global _ACTIVE, _ENV_LOADED
    with _STATE_LOCK:
        _ACTIVE = None
        _ENV_LOADED = True


def reset() -> None:
    """Back to pristine: no plane, env re-consulted on next check
    (tests use this to undo both install() and uninstall())."""
    global _ACTIVE, _ENV_LOADED
    with _STATE_LOCK:
        _ACTIVE = None
        _ENV_LOADED = False


@contextmanager
def installed(schedule: object):
    """``with installed({...}) as plane:`` — scoped activation."""
    plane = install(schedule)
    try:
        yield plane
    finally:
        reset()


def active_plane() -> Optional[FaultPlane]:
    """The installed plane, lazily loading ``$REPRO_FAULT_SCHEDULE``
    on first consultation.  A broken env schedule raises loudly here —
    a chaos run whose schedule silently failed to parse would report a
    vacuous all-clear."""
    global _ACTIVE, _ENV_LOADED
    if _ENV_LOADED:
        return _ACTIVE
    with _STATE_LOCK:
        if not _ENV_LOADED:
            path = os.environ.get(SCHEDULE_ENV)
            if path:
                _ACTIVE = FaultPlane(load_schedule(path))
            _ENV_LOADED = True
    return _ACTIVE


def fault_check(site: str, key: str) -> Optional[ScheduledFault]:
    """The instrumented sites' single entry point: ``None`` (fast path,
    no schedule active) or the fired :class:`ScheduledFault`."""
    plane = active_plane()
    if plane is None:
        return None
    return plane.check(site, key)


def injected_counts() -> Dict[str, int]:
    """The active plane's fired-injection tally (``{}`` when idle)."""
    plane = _ACTIVE if _ENV_LOADED else active_plane()
    return plane.counts() if plane is not None else {}
