"""Empirical checkers for the structural properties P1–P4 (Section 4).

Theorem 1 reduces unbounded safety verification to the (2, 2) instance
for TMs satisfying four closure properties of their languages.  The paper
verifies these properties per algorithm by inspection; here each property
is a mechanically checkable predicate over all words of the language up
to a length bound.  A ``False`` comes with a witness word; ``True`` is
*bounded evidence*, not a proof — exactly the division of labour the
paper prescribes ("manually check that the structural properties hold").

All four checks take the TM's language as an oracle (NFA membership), so
they work for any :class:`~repro.tm.algorithm.TMAlgorithm`, including
user-defined ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..automata.nfa import NFA
from ..core.conflicts import conflicting_pairs
from ..core.statements import Statement, Word, format_word
from ..core.words import transactions
from ..lang.enumerate import enumerate_tm_language
from ..tm.algorithm import TMAlgorithm
from ..tm.explore import build_safety_nfa


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of checking one structural property up to a length bound."""

    property_name: str
    holds: bool
    words_checked: int
    cases_checked: int
    witness: Optional[Word] = None
    derived: Optional[Word] = None

    def __str__(self) -> str:
        if self.holds:
            return (
                f"{self.property_name}: no violation on {self.words_checked}"
                f" words ({self.cases_checked} cases)"
            )
        return (
            f"{self.property_name}: VIOLATED — word [{format_word(self.witness or ())}]"
            f" requires [{format_word(self.derived or ())}] in the language"
        )


def _subsets(items: Sequence) -> Iterable[Tuple]:
    return chain.from_iterable(
        combinations(items, r) for r in range(len(items) + 1)
    )


def _project_to_transactions(word: Word, keep: Set[int]) -> Word:
    """Subsequence of statements whose positions are in ``keep``."""
    return tuple(s for i, s in enumerate(word) if i in keep)


def check_transaction_projection(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """P1: dropping all aborting and any subset of the unfinished
    transactions of a word keeps it in the language."""
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        txs = transactions(word)
        committing = [tx for tx in txs if tx.is_committing]
        unfinished = [tx for tx in txs if tx.is_unfinished]
        if not any(tx.is_aborting for tx in txs) and not unfinished:
            continue  # projection is the identity
        base: Set[int] = set()
        for tx in committing:
            base.update(tx.indices)
        for subset in _subsets(unfinished):
            keep = set(base)
            for tx in subset:
                keep.update(tx.indices)
            projected = _project_to_transactions(word, keep)
            cases += 1
            if not nfa.accepts(projected):
                return PropertyReport(
                    "P1 transaction projection", False, words, cases, word,
                    projected,
                )
    return PropertyReport("P1 transaction projection", True, words, cases)


def _rename_thread(word: Word, source: int, target: int) -> Word:
    return tuple(
        Statement(s.kind, s.var, target if s.thread == source else s.thread)
        for s in word
    )


def check_thread_symmetry(tm: TMAlgorithm, max_len: int = 5) -> PropertyReport:
    """P2: in abort-free words whose committing transactions of threads
    ``u`` and ``t`` never overlap, renaming ``u`` to ``t`` stays in the
    language."""
    nfa = build_safety_nfa(tm)
    words = cases = 0
    threads = list(tm.threads())
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        txs = transactions(word)
        if any(tx.is_aborting for tx in txs):
            continue
        for u in threads:
            for t in threads:
                if u == t:
                    continue
                xs = [
                    tx for tx in txs if tx.thread == u and tx.is_committing
                ]
                ys = [
                    tx for tx in txs if tx.thread == t and tx.is_committing
                ]
                if any(
                    not (x.precedes(y) or y.precedes(x))
                    for x in xs
                    for y in ys
                ):
                    continue
                # Renaming is only meaningful if the merged thread's
                # transactions still never overlap (unfinished ones of u
                # and t could interleave — the paper renames whole words
                # where *all* of u's transactions precede or follow t's).
                all_u = [tx for tx in txs if tx.thread == u]
                all_t = [tx for tx in txs if tx.thread == t]
                if any(
                    not (x.precedes(y) or y.precedes(x))
                    for x in all_u
                    for y in all_t
                ):
                    continue
                renamed = _rename_thread(word, u, t)
                cases += 1
                if not nfa.accepts(renamed):
                    return PropertyReport(
                        "P2 thread symmetry", False, words, cases, word,
                        renamed,
                    )
    return PropertyReport("P2 thread symmetry", True, words, cases)


def check_variable_projection(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """P3: in abort-free words, keeping only the reads/writes of a subset
    of the variables (plus all commits/aborts) stays in the language."""
    nfa = build_safety_nfa(tm)
    words = cases = 0
    variables = list(range(1, tm.k + 1))
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        if any(tx.is_aborting for tx in transactions(word)):
            continue
        touched = sorted({s.var for s in word if s.var is not None})
        if not touched:
            continue
        for subset in _subsets(touched):
            if len(subset) == len(touched):
                continue  # identity
            keep = set(subset)
            projected = tuple(
                s for s in word if s.var is None or s.var in keep
            )
            cases += 1
            if not nfa.accepts(projected):
                return PropertyReport(
                    "P3 variable projection", False, words, cases, word,
                    projected,
                )
    return PropertyReport("P3 variable projection", True, words, cases)


def _conflicts_with(word: Word, pos: int, other: int) -> bool:
    """Do the statements at ``pos`` and ``other`` conflict in ``word``?"""
    for pair in conflicting_pairs(word):
        if {pair.i, pair.j} == {pos, other}:
            return True
    return False


def check_unfinished_commutativity(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """Half of P4's sufficient condition: a global read commutes left over
    conflict-free statements of other threads
    (``wp·wq·s·ws ∈ L ⇒ wp·s·wq·ws ∈ L``, over abort-free words in S*).

    Note: this condition is *sufficient* for monotonicity, not necessary.
    The sequential TM violates it (nothing may interleave a running
    transaction) while still satisfying P4 itself — see
    :func:`check_monotonicity` for the direct property.  Empty committing
    transactions are excluded from the slid-over segment for the same
    reason.
    """
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        if any(s.is_abort for s in word):
            continue
        words += 1
        txs = transactions(word)
        tx_of = {p: tx for tx in txs for p in tx.indices}
        global_read_pos = {
            p for tx in txs for p in tx.global_read_positions()
        }
        for i, s in enumerate(word):
            if i not in global_read_pos:
                continue
            y = tx_of[i]
            # slide s left over maximal conflict-free suffix wq of
            # statements from transactions concurrent with y
            for start in range(i - 1, -1, -1):
                seg = range(start, i)
                if any(word[j].thread == s.thread for j in seg):
                    break
                if any(_conflicts_with(word, j, i) for j in seg):
                    break
                z = tx_of[start]
                if z.precedes(y) or y.precedes(z):
                    break  # real-time order with non-overlapping txs
                moved = (
                    word[:start] + (s,) + word[start:i] + word[i + 1 :]
                )
                cases += 1
                if not nfa.accepts(moved):
                    return PropertyReport(
                        "P4a unfinished commutativity", False, words, cases,
                        word, moved,
                    )
    return PropertyReport("P4a unfinished commutativity", True, words, cases)


def check_commit_commutativity(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """Other half of P4's sufficient condition: a whole committing
    transaction moves left over a conflict-free segment
    (``wp·wq·s·ws ∈ L ⇒ wp·x·wq'·ws ∈ L`` where ``s`` commits ``x`` and
    ``wq'`` drops ``x``'s statements; abort-free words only).

    As with :func:`check_unfinished_commutativity`, sufficient but not
    necessary — use :func:`check_monotonicity` for P4 itself.
    """
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        if any(s.is_abort for s in word):
            continue
        words += 1
        txs = transactions(word)
        tx_of = {p: t for t in txs for p in t.indices}
        for tx in txs:
            cpos = tx.commit_position()
            if cpos is None:
                continue
            for start in range(cpos - 1, -1, -1):
                seg = [
                    j for j in range(start, cpos) if j not in tx.indices
                ]
                if not seg:
                    continue
                if any(
                    word[j].thread == tx.thread for j in seg
                ):
                    break
                if any(_conflicts_with(word, j, cpos) for j in seg):
                    break
                z = tx_of[start]
                if start not in tx.indices and (
                    z.precedes(tx) or tx.precedes(z)
                ):
                    break  # real-time order with non-overlapping txs
                moved_x = [j for j in tx.indices if start <= j <= cpos]
                rest = [
                    j
                    for j in range(start, cpos + 1)
                    if j not in tx.indices
                ]
                new_word = (
                    word[:start]
                    + tuple(word[j] for j in moved_x)
                    + tuple(word[j] for j in rest)
                    + word[cpos + 1 :]
                )
                cases += 1
                if not nfa.accepts(new_word):
                    return PropertyReport(
                        "P4b commit commutativity", False, words, cases,
                        word, new_word,
                    )
    return PropertyReport("P4b commit commutativity", True, words, cases)


def _interleavings(blocks: List[Tuple[Statement, ...]]) -> Iterable[Word]:
    """All merges of the given sequences, preserving each one's order."""
    if not blocks:
        yield ()
        return
    nonempty = [b for b in blocks if b]
    if not nonempty:
        yield ()
        return
    for i, b in enumerate(nonempty):
        rest = nonempty[:i] + [b[1:]] + nonempty[i + 1 :]
        for tail in _interleavings(rest):
            yield (b[0],) + tail


def _sequentializations(word: Word) -> Iterable[Word]:
    """The paper's ``seq(w)`` on a bounded word, by brute force.

    ``word`` must have no aborting transactions and exactly one
    unfinished transaction ``y``.  Yields every word ``w2`` such that:
    committed transactions appear as contiguous blocks whose order keeps
    ``com(w2)`` strictly equivalent to ``com(word)``; ``y``'s statements
    keep their internal order and the order of their global-read
    conflicts with other transactions; and every committed transaction
    that wholly precedes ``y`` in ``word`` still wholly precedes ``y``
    (the auxiliary-variable constraint of Section 4).
    """
    from ..core.conflicts import strictly_equivalent
    from ..core.words import com as com_fn

    txs = transactions(word)
    committed = [tx for tx in txs if tx.is_committing]
    unfinished = [tx for tx in txs if tx.is_unfinished]
    assert len(unfinished) == 1 and not any(tx.is_aborting for tx in txs)
    y = unfinished[0]

    predecessors = [tx for tx in committed if tx.precedes(y)]
    y_read_pos = set(y.global_read_positions())

    def key_seq(w: Word) -> dict:
        out: dict = {}
        cnt: dict = {}
        for pos, s in enumerate(w):
            c = cnt.get(s.thread, 0)
            out[(s.thread, c)] = pos
            cnt[s.thread] = c + 1
        return out

    y_conflicts = []
    for pair in conflicting_pairs(word):
        if pair.i in y_read_pos or pair.j in y_read_pos:
            y_conflicts.append(pair)

    com_word = com_fn(word)
    # Candidate orderings: merge committed blocks (atomic tokens) with
    # y's statements (individually placeable, order preserved).
    token_seqs: List[Tuple[Tuple[Statement, ...], ...]] = [
        (tx.statements,) for tx in committed
    ]
    token_seqs.append(tuple((s,) for s in y.statements))
    seen: Set[Word] = set()
    for token_word in _interleavings(token_seqs):
        w2: Word = tuple(s for token in token_word for s in token)
        if w2 in seen:
            continue
        seen.add(w2)
        keys2 = key_seq(w2)
        if not strictly_equivalent(com_word, com_fn(w2)):
            continue
        # y's global-read conflict orders preserved.
        def pos_of(word_pos: int) -> int:
            s = word[word_pos]
            return keys2[(s.thread, _ordinal(word, word_pos))]

        if any(pos_of(p.i) > pos_of(p.j) for p in y_conflicts):
            continue
        # Auxiliary-variable constraint: committed predecessors of y stay
        # wholly before y's first statement.
        y_first = keys2[(y.thread, _ordinal(word, y.indices[0]))]
        if any(
            max(
                keys2[(tx.thread, _ordinal(word, p))] for p in tx.indices
            )
            > y_first
            for tx in predecessors
        ):
            continue
        yield w2


def _ordinal(word: Word, position: int) -> int:
    """Per-thread ordinal of the statement at ``position``."""
    thread = word[position].thread
    return sum(1 for s in word[:position] if s.thread == thread)


def check_monotonicity(
    tm: TMAlgorithm, max_len: int = 5, *, universal: bool = False
) -> PropertyReport:
    """P4 monotonicity, checked directly via the ``seq()`` function.

    For every ``w = w' · s`` in the language where ``w'`` has exactly one
    unfinished transaction, no aborting transactions, and ``s`` continues
    the unfinished transaction (and is not an abort):

    * ``universal=False`` (default): *some* sequentialization
      ``w2 ∈ seq(w')`` satisfies ``w2 · s ∈ L`` — the form Theorem 1's
      proof actually uses (it only needs one sequential witness to carry
      the violation down to (2, 2));
    * ``universal=True``: *every* ``w2 ∈ seq(w')`` satisfies
      ``w2 · s ∈ L`` — the paper's literal phrasing, which DSTM violates
      (its commit-time validation kills writers that moved before the
      reader), a finding recorded in EXPERIMENTS.md.
    """
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        if len(word) < 2:
            continue
        w_prefix, s = word[:-1], word[-1]
        if s.is_abort:
            continue
        txs = transactions(w_prefix)
        unfinished = [tx for tx in txs if tx.is_unfinished]
        if len(unfinished) != 1 or any(tx.is_aborting for tx in txs):
            continue
        if s.thread != unfinished[0].thread:
            continue
        words += 1
        found_any = False
        has_candidates = False
        for w2 in _sequentializations(w_prefix):
            has_candidates = True
            cases += 1
            accepted = nfa.accepts(w2 + (s,))
            if universal and not accepted:
                return PropertyReport(
                    "P4 monotonicity (universal)", False, words, cases,
                    word, w2 + (s,),
                )
            if accepted:
                found_any = True
                if not universal:
                    break
        if not universal and has_candidates and not found_any:
            return PropertyReport(
                "P4 monotonicity", False, words, cases, word, None
            )
    name = "P4 monotonicity (universal)" if universal else "P4 monotonicity"
    return PropertyReport(name, True, words, cases)


def check_all_safety_properties(
    tm: TMAlgorithm, max_len: int = 5
) -> List[PropertyReport]:
    """P1–P3 plus direct P4 monotonicity, bounded evidence."""
    return [
        check_transaction_projection(tm, max_len),
        check_thread_symmetry(tm, max_len),
        check_variable_projection(tm, max_len),
        check_monotonicity(tm, max_len),
    ]
