"""Reduction-theorem orchestration (Theorems 1 and 5).

``verify_tm_safety`` packages the paper's complete safety argument for a
TM family:

1. check the structural properties P1–P4 on bounded language evidence
   (the paper's manual step, mechanized);
2. model check the (2, 2) instance against the deterministic
   specification (the automated step);
3. conclude — by Theorem 1 — safety for *all* thread/variable counts.

``verify_tm_liveness`` does the same for obstruction freedom via P5–P6
and the (2, 1) instance (Theorem 5).  Each result records exactly which
steps contributed, so callers can distinguish "proved for (2,2)" from
"generalized by the reduction theorem under bounded structural
evidence".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..checking.liveness import check_obstruction_freedom
from ..checking.safety import check_safety
from ..spec.common import SafetyProperty
from ..tm.algorithm import TMAlgorithm
from .liveness_props import check_all_liveness_properties
from .structural import PropertyReport, check_all_safety_properties

#: A TM family is a constructor ``(n, k) -> TMAlgorithm``.
TMFamily = Callable[[int, int], TMAlgorithm]


@dataclass(frozen=True)
class ReductionClaim:
    """The outcome of the full reduction-theorem argument."""

    tm_name: str
    property_name: str
    base_instance: Tuple[int, int]
    base_result_holds: bool
    structural_reports: Tuple[PropertyReport, ...]
    counterexample_summary: Optional[str] = None

    @property
    def structural_ok(self) -> bool:
        return all(r.holds for r in self.structural_reports)

    @property
    def generalizes(self) -> bool:
        """True iff the property holds for all (n, k) by the theorem —
        modulo the bounded nature of the structural evidence."""
        return self.base_result_holds and self.structural_ok

    def summary(self) -> str:
        n, k = self.base_instance
        if not self.base_result_holds:
            return (
                f"{self.tm_name} violates {self.property_name} already at"
                f" ({n}, {k}): {self.counterexample_summary}"
            )
        if not self.structural_ok:
            failing = ", ".join(
                r.property_name for r in self.structural_reports if not r.holds
            )
            return (
                f"{self.tm_name} satisfies ({n}, {k}) {self.property_name},"
                f" but structural properties failed ({failing}); the"
                f" reduction theorem does not apply"
            )
        return (
            f"{self.tm_name} ensures {self.property_name} for all programs"
            f" (Theorem: ({n}, {k}) instance + P-properties)"
        )


def verify_tm_safety(
    family: TMFamily,
    prop: SafetyProperty,
    *,
    structural_max_len: int = 5,
) -> ReductionClaim:
    """Run the full Theorem 1 pipeline for a TM family."""
    base_tm = family(2, 2)
    base = check_safety(base_tm, prop)
    reports = check_all_safety_properties(family(2, 2), structural_max_len)
    cex = None
    if not base.holds and base.counterexample is not None:
        from ..core.statements import format_word

        cex = format_word(base.counterexample)
    return ReductionClaim(
        tm_name=base_tm.name,
        property_name=(
            "strict serializability"
            if prop is SafetyProperty.STRICT_SERIALIZABILITY
            else "opacity"
        ),
        base_instance=(2, 2),
        base_result_holds=base.holds,
        structural_reports=tuple(reports),
        counterexample_summary=cex,
    )


def verify_tm_liveness(
    family: TMFamily,
    *,
    structural_max_len: int = 5,
) -> ReductionClaim:
    """Run the full Theorem 5 pipeline (obstruction freedom) for a family."""
    base_tm = family(2, 1)
    base = check_obstruction_freedom(base_tm)
    reports = check_all_liveness_properties(family(2, 1), structural_max_len)
    cex = None
    if not base.holds:
        cex = "loop [" + ", ".join(str(s) for s in base.loop) + "]"
    return ReductionClaim(
        tm_name=base_tm.name,
        property_name="obstruction freedom",
        base_instance=(2, 1),
        base_result_holds=base.holds,
        structural_reports=tuple(reports),
        counterexample_summary=cex,
    )
