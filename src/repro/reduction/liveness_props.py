"""Empirical checkers for the liveness structural properties P5–P6
(Section 6.1).

Theorem 5 reduces obstruction-freedom verification to (2, 1) for TMs
whose languages satisfy two closure properties about a thread running in
isolation after a prefix.  As with P1–P4, these are closure properties of
the language; we check them on bounded decompositions ``w = w1 · w2``
where ``w2`` is a single-thread, commit-free suffix whose threads do not
continue transactions left unfinished in ``w1``.
"""

from __future__ import annotations

from typing import List, Set

from ..core.statements import Word
from ..core.words import transactions, unfinished_transactions
from ..lang.enumerate import enumerate_tm_language
from ..tm.algorithm import TMAlgorithm
from ..tm.explore import build_safety_nfa
from .structural import PropertyReport


def _isolation_decompositions(word: Word) -> List[int]:
    """Split points ``i`` such that ``word[i:]`` is a valid "isolation
    suffix" w2: nonempty, single-threaded, commit-free, and no unfinished
    transaction of ``word[:i]`` has statements in it."""
    result: List[int] = []
    for i in range(len(word)):
        w2 = word[i:]
        threads = {s.thread for s in w2}
        if len(threads) != 1:
            continue
        (t,) = threads
        if any(s.is_commit for s in w2):
            continue
        prefix = word[:i]
        if any(
            tx.thread == t for tx in unfinished_transactions(prefix)
        ):
            continue
        result.append(i)
    return result


def check_liveness_transaction_projection(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """P5(i): dropping the aborting transactions of the prefix ``w1``
    keeps ``w1' · w2`` in the language."""
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        for i in _isolation_decompositions(word):
            w1, w2 = word[:i], word[i:]
            txs = transactions(w1)
            aborting = [tx for tx in txs if tx.is_aborting]
            if not aborting:
                continue
            drop: Set[int] = set()
            for tx in aborting:
                drop.update(tx.indices)
            w1p = tuple(s for j, s in enumerate(w1) if j not in drop)
            cases += 1
            if not nfa.accepts(w1p + w2):
                return PropertyReport(
                    "P5 liveness transaction projection", False, words,
                    cases, word, w1p + w2,
                )
    return PropertyReport(
        "P5 liveness transaction projection", True, words, cases
    )


def check_liveness_variable_projection(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """P6(i): restricting the isolation suffix ``w2`` to *some* single
    variable keeps ``w1 · w2'`` in the language (existential over the
    variable, per Section 6.1)."""
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        for i in _isolation_decompositions(word):
            w1, w2 = word[:i], word[i:]
            variables = sorted({s.var for s in w2 if s.var is not None})
            if len(variables) <= 1:
                continue
            cases += 1
            found = False
            for v in variables:
                w2p = tuple(
                    s for s in w2 if s.var is None or s.var == v
                )
                if nfa.accepts(w1 + w2p):
                    found = True
                    break
            if not found:
                return PropertyReport(
                    "P6 liveness variable projection", False, words,
                    cases, word, None,
                )
    return PropertyReport(
        "P6 liveness variable projection", True, words, cases
    )


def check_liveness_prefix_variable_projection(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """P6(ii): for abort-free prefixes, projecting ``w1`` onto the
    variables of the isolation suffix keeps ``w1' · w2`` in the
    language.

    The check is restricted to *abort-free suffixes* ``w2``.  With
    aborts in ``w2`` the property fails at the word level for every
    lock/ownership-based TM (TL2, DSTM, even with the paper's managers):
    the variable that *caused* an abort is carried by an attempted — and
    therefore invisible — extended command, so it need not appear in
    ``V2`` and the projection removes the abort's justification.  Read
    at the run level (variables of attempted commands included), the
    property holds; see EXPERIMENTS.md.
    """
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        for i in _isolation_decompositions(word):
            w1, w2 = word[:i], word[i:]
            if any(s.is_abort for s in w1):
                continue
            if any(s.is_abort for s in w2):
                continue  # word-level V2 cannot see the abort's cause
            v2 = {s.var for s in w2 if s.var is not None}
            v1 = {s.var for s in w1 if s.var is not None}
            if not v2 or v1 <= v2:
                continue
            w1p = tuple(s for s in w1 if s.var is None or s.var in v2)
            cases += 1
            if not nfa.accepts(w1p + w2):
                return PropertyReport(
                    "P6(ii) prefix variable projection", False, words,
                    cases, word, w1p + w2,
                )
    return PropertyReport(
        "P6(ii) prefix variable projection", True, words, cases
    )


def check_liveness_thread_projection(
    tm: TMAlgorithm, max_len: int = 5
) -> PropertyReport:
    """P5(ii): for abort-free prefixes and single-variable suffixes,
    projecting ``w1`` to the transactions of *some* single thread keeps
    ``w1'' · w2`` in the language."""
    nfa = build_safety_nfa(tm)
    words = cases = 0
    for word in enumerate_tm_language(tm, max_len):
        words += 1
        for i in _isolation_decompositions(word):
            w1, w2 = word[:i], word[i:]
            if not w1 or any(s.is_abort for s in w1):
                continue
            if len({s.var for s in w2 if s.var is not None}) > 1:
                continue
            threads = sorted({s.thread for s in w1})
            if len(threads) <= 1:
                continue
            cases += 1
            found = False
            for t in threads:
                w1p = tuple(s for s in w1 if s.thread == t)
                if nfa.accepts(w1p + w2):
                    found = True
                    break
            if not found:
                return PropertyReport(
                    "P5(ii) thread projection", False, words, cases, word,
                    None,
                )
    return PropertyReport("P5(ii) thread projection", True, words, cases)


def check_all_liveness_properties(
    tm: TMAlgorithm, max_len: int = 5
) -> List[PropertyReport]:
    """P5–P6 (all four halves), bounded evidence up to ``max_len``."""
    return [
        check_liveness_transaction_projection(tm, max_len),
        check_liveness_thread_projection(tm, max_len),
        check_liveness_variable_projection(tm, max_len),
        check_liveness_prefix_variable_projection(tm, max_len),
    ]
