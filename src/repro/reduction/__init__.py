"""Reduction theorems (Sections 4 and 6.1): structural properties P1–P6
as mechanical bounded checks, and the Theorem 1 / Theorem 5 pipelines."""

from .structural import (
    PropertyReport,
    check_all_safety_properties,
    check_commit_commutativity,
    check_monotonicity,
    check_thread_symmetry,
    check_transaction_projection,
    check_unfinished_commutativity,
    check_variable_projection,
)
from .liveness_props import (
    check_all_liveness_properties,
    check_liveness_transaction_projection,
    check_liveness_variable_projection,
)
from .theorems import (
    ReductionClaim,
    TMFamily,
    verify_tm_liveness,
    verify_tm_safety,
)

__all__ = [
    "PropertyReport",
    "check_all_safety_properties",
    "check_commit_commutativity",
    "check_monotonicity",
    "check_thread_symmetry",
    "check_transaction_projection",
    "check_unfinished_commutativity",
    "check_variable_projection",
    "check_all_liveness_properties",
    "check_liveness_transaction_projection",
    "check_liveness_variable_projection",
    "ReductionClaim",
    "TMFamily",
    "verify_tm_liveness",
    "verify_tm_safety",
]
