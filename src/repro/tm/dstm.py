"""DSTM — dynamic software transactional memory (paper Algorithm 3).

DSTM acquires *ownership* of a variable before writing it (extended
command ``own``); acquiring ownership steals it from — and thereby
aborts — any current owner.  Commit happens in two atomic steps: a
``validate`` that aborts the owners of the committer's read set, then the
commit proper, which *invalidates* every thread that globally read a
variable the committer wrote.  Reads are optimistic single steps.

φ holds when (i) a write targets a variable owned by another thread, or
(ii) a commit is issued by a finished-status thread whose read set
intersects another thread's ownership set — the two spots where a
contention manager arbitrates (Table 3 pairs DSTM with the aggressive
manager).

State per thread: ``(status, rs, os)`` with status in
finished/aborted/validated/invalid.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from ..core.statements import Command, Kind
from .algorithm import Ext, Resp, TMAlgorithm, TMState

FINISHED = "fin"
ABORTED = "abt"
VALIDATED = "val"
INVALID = "inv"

ThreadView = Tuple[str, FrozenSet[int], FrozenSet[int]]  # (status, rs, os)

EMPTY: FrozenSet[int] = frozenset()
RESET: ThreadView = (FINISHED, EMPTY, EMPTY)


class DSTM(TMAlgorithm):
    """Algorithm 3: ``getDSTM``.

    State: a tuple of ``(status, rs, os)`` triples, one per thread.
    """

    name = "dstm"

    def initial_state(self) -> TMState:
        return (RESET,) * self.n

    @staticmethod
    def _with(
        state: Tuple[ThreadView, ...], thread: int, view: ThreadView
    ) -> Tuple[ThreadView, ...]:
        idx = thread - 1
        return state[:idx] + (view,) + state[idx + 1 :]

    def conflict(self, state: TMState, cmd: Command, thread: int) -> bool:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        status, rs, _ = views[thread - 1]
        if cmd.kind is Kind.WRITE:
            return any(
                cmd.var in os_u
                for u, (_, _, os_u) in enumerate(views, start=1)
                if u != thread
            )
        if cmd.kind is Kind.COMMIT and status == FINISHED:
            return any(
                rs & os_u
                for u, (_, _, os_u) in enumerate(views, start=1)
                if u != thread
            )
        return False

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        status, rs, os = views[thread - 1]
        if status == ABORTED:
            return []  # a stolen-from thread can only abort

        if cmd.kind is Kind.READ:
            v = cmd.var
            assert v is not None
            if v in os:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            if status == FINISHED:
                new = self._with(views, thread, (status, rs | {v}, os))
                return [(Ext.of_command(cmd), Resp.DONE, new)]
            return []  # invalid/validated threads may not open new reads

        if cmd.kind is Kind.WRITE:
            v = cmd.var
            assert v is not None
            if v in os:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            # Acquire ownership, stealing it from (and aborting) others.
            new = list(views)
            new[thread - 1] = (status, rs, os | {v})
            for u, (st_u, _, os_u) in enumerate(views, start=1):
                if u != thread and v in os_u:
                    new[u - 1] = (ABORTED, EMPTY, EMPTY)
            return [(Ext("own", v), Resp.BOT, tuple(new))]

        assert cmd.kind is Kind.COMMIT
        if status == FINISHED:
            # Validate: abort the owners of our read set.
            new = list(views)
            new[thread - 1] = (VALIDATED, rs, os)
            for u, (st_u, _, os_u) in enumerate(views, start=1):
                if u != thread and rs & os_u:
                    new[u - 1] = (ABORTED, EMPTY, EMPTY)
            return [(Ext("validate"), Resp.BOT, tuple(new))]
        if status == VALIDATED:
            # Commit proper: invalidate readers of our write (owned) set.
            new = list(views)
            new[thread - 1] = RESET
            for u, (st_u, rs_u, os_u) in enumerate(views, start=1):
                if u != thread and rs_u & os:
                    new[u - 1] = (INVALID, rs_u, os_u)
            return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]
        return []  # invalid threads cannot commit

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        return self._with(views, thread, RESET)

    def view_codec(self):
        from .compiled import status_mask_codec

        return status_mask_codec(
            self.k, (FINISHED, ABORTED, VALIDATED, INVALID), 2  # (rs, os)
        )
