"""The TM-algorithm formalism (paper Section 3).

A TM algorithm is a guarded transition system
``A = (Q, qinit, D, φ, γ, δ)``: states, an initial state, a set of
*extended commands* ``D ⊇ C``, a *conflict function* φ (the points where a
contention manager is consulted), a *pending function* γ, and a transition
relation ``δ ⊆ Q × C × ŜD × Resp × Q``.  A program command executes as a
sequence of atomic extended commands; each step returns a response:

* ``⊥`` — more extended commands are needed (the command becomes pending),
* ``1`` — the command completed,
* ``0`` — the thread's transaction aborts (always with extended command
  ``abort``, rule R6).

Concrete TMs subclass :class:`TMAlgorithm` and provide three things: the
initial state, the *progress* transitions for a command (the ``d ∈ D``
cases of Algorithms 1–4), and the abort reset.  The framework derives the
rest exactly as the paper's rules R1–R8 prescribe:

* a command is *enabled* iff it is the pending command or none is pending
  (γ is maintained by the explorer, not by TM states);
* a command is *abort enabled* iff it is enabled and has no progress
  transition; the ``abort`` transition exists iff the command is abort
  enabled or φ holds (the two cases of Section 3's discussion);
* with a contention manager, transitions at φ-points exist only if the
  manager agrees (Section 3.1's product construction).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import (
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from ..core.statements import Command

TMState = Hashable


class Resp(Enum):
    """Responses of a TM algorithm (``Resp = {⊥, 0, 1}``)."""

    BOT = "⊥"  # command still pending
    ABORT = "0"  # transaction aborts
    DONE = "1"  # command completed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resp({self.value})"


class Ext(NamedTuple):
    """An extended command ``d ∈ D ∪ {abort}``.

    Base commands reuse their names (``read``, ``write``, ``commit``);
    TM-specific extras include ``rlock``/``wlock`` (2PL), ``own`` and
    ``validate`` (DSTM), ``lock``/``validate`` (TL2), and
    ``rvalidate``/``chklock`` (modified TL2).
    """

    name: str
    var: Optional[int] = None

    @classmethod
    def of_command(cls, cmd: Command) -> "Ext":
        return cls(cmd.kind.value, cmd.var)

    @property
    def is_abort(self) -> bool:
        return self.name == "abort"

    @property
    def is_commit(self) -> bool:
        return self.name == "commit"

    def __str__(self) -> str:
        if self.var is None:
            return self.name
        return f"{self.name}({self.var})"


ABORT_EXT = Ext("abort")


class Transition(NamedTuple):
    """One entry of δ for a fixed source state: the extended command
    executed, the response returned, and the successor TM state."""

    ext: Ext
    resp: Resp
    state: TMState


class TMAlgorithm(ABC):
    """Base class for TM algorithms (Algorithms 1–4 of the paper).

    Subclasses are parameterized by the numbers of threads ``n`` and
    variables ``k`` and must keep all states hashable and canonical
    (tuples/frozensets), since verification explores them explicitly.
    """

    #: Short name used in reports (e.g. "seq", "2PL", "dstm", "TL2").
    name: str = "tm"

    def __init__(self, n: int, k: int) -> None:
        if n < 1 or k < 1:
            raise ValueError("need at least one thread and one variable")
        self.n = n
        self.k = k
        self._commands_cache: Optional[Tuple[Command, ...]] = None

    # ------------------------------------------------------------------
    # TM-specific pieces
    # ------------------------------------------------------------------

    @abstractmethod
    def initial_state(self) -> TMState:
        """The initial state ``qinit``."""

    @abstractmethod
    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        """Progress transitions (``d ∈ D``) for ``cmd`` by ``thread``.

        Returns the list of ``(d, r, q')`` with ``r ∈ {⊥, 1}`` that the TM
        allows from ``state``; the empty list makes the command abort
        enabled.  Implementations must return at most one entry per
        extended command (rule R7) and at most one entry overall when
        ``conflict`` is false (rule R8).
        """

    @abstractmethod
    def abort_reset(self, state: TMState, thread: int) -> TMState:
        """The successor state of the ``abort`` transition for ``thread``."""

    def conflict(self, state: TMState, cmd: Command, thread: int) -> bool:
        """The conflict function φ; default: never consult a manager."""
        del state, cmd, thread
        return False

    # ------------------------------------------------------------------
    # Derived transition relation
    # ------------------------------------------------------------------

    def transitions(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Transition]:
        """All transitions for ``cmd`` by ``thread`` from ``state``.

        The abort transition is added iff the command is abort enabled
        (no progress possible) or φ holds — the only two ways an abort
        arises in the paper's formalism.
        """
        result = [Transition(*p) for p in self.progress(state, cmd, thread)]
        if not result or self.conflict(state, cmd, thread):
            result.append(
                Transition(ABORT_EXT, Resp.ABORT, self.abort_reset(state, thread))
            )
        return result

    def is_abort_enabled(self, state: TMState, cmd: Command, thread: int) -> bool:
        """True iff ``cmd`` has no progress transition from ``state``."""
        return not self.progress(state, cmd, thread)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def commands(self) -> Tuple[Command, ...]:
        """The command set ``C`` for this TM's variable count (cached —
        the explorer asks for it once per (node, thread) pair)."""
        cached = self._commands_cache
        if cached is None:
            from ..core.statements import commands as base_commands

            cached = self._commands_cache = base_commands(self.k)
        return cached

    def view_codec(self):
        """Optional per-thread view codec for the compiled engine.

        Concrete TMs whose state is a tuple of per-thread views return a
        :class:`repro.tm.compiled.ViewCodec` packing one view into a
        fixed-width int (k-bit masks); ``None`` (the default) makes
        :class:`~repro.tm.compiled.CompiledTM` fall back to interning
        whole states, which is always correct.
        """
        return None

    def threads(self) -> range:
        return range(1, self.n + 1)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, k={self.k})"


def validate_rules(
    tm: TMAlgorithm,
    states: Iterable[Tuple[TMState, Tuple[Optional[Command], ...]]],
) -> List[str]:
    """Check the structural rules of Section 3 on explored states.

    ``states`` are (TM state, pending vector) pairs as produced by the
    explorer.  Returns a list of human-readable violations (empty when the
    TM is well-formed):

    * R6 — abort transitions have response 0, and only they do;
    * R7 — at most one transition per (command, extended command, thread);
    * R8 — at most one transition per enabled statement unless φ holds;
    * R5 — when nothing is pending, every command has some transition
      (progress or abort) — TM algorithms without a contention manager
      must never refuse a command outright.
    """
    problems: List[str] = []
    for state, pending in states:
        for t in tm.threads():
            cmds = (
                [pending[t - 1]]
                if pending[t - 1] is not None
                else list(tm.commands())
            )
            for cmd in cmds:
                trans = tm.transitions(state, cmd, t)
                if pending[t - 1] is None and not trans:
                    problems.append(
                        f"R5: no transition for {cmd} t{t} from {state!r}"
                    )
                seen_ext = {}
                for tr in trans:
                    if tr.ext.is_abort != (tr.resp is Resp.ABORT):
                        problems.append(
                            f"R6: {tr.ext} with resp {tr.resp} for {cmd} t{t}"
                            f" from {state!r}"
                        )
                    if tr.ext in seen_ext and seen_ext[tr.ext] != (
                        tr.resp,
                        tr.state,
                    ):
                        problems.append(
                            f"R7: duplicate ext {tr.ext} for {cmd} t{t}"
                            f" from {state!r}"
                        )
                    seen_ext[tr.ext] = (tr.resp, tr.state)
                non_abort = [tr for tr in trans if not tr.ext.is_abort]
                if (
                    len(non_abort) > 1
                    and not tm.conflict(state, cmd, t)
                ):
                    problems.append(
                        f"R8: {len(non_abort)} progress transitions for"
                        f" non-conflicting {cmd} t{t} from {state!r}"
                    )
    return problems
