"""Contention managers (paper Section 3.1).

A contention manager ``cm = (P, pinit, δcm)`` observes extended statements
``(d, t)`` and constrains the TM at conflict points: when the TM's
conflict function φ holds for the scheduled statement, a transition of the
TM algorithm survives in the product only if the manager has a matching
transition.  Away from conflict points the manager merely tracks the
statement (or stays put if it has no matching transition).

The paper evaluates two single-state managers:

* **aggressive** — permits every extended command except ``abort``; under
  conflict the transaction never aborts itself, it steamrolls the other
  (used with DSTM in Table 3);
* **polite** — permits only ``abort``; under conflict the transaction
  always yields (used with TL2).

We also ship a bounded Karma-style manager as an example of a *stateful*
policy; note (Section 4) that history-dependent managers can break the
structural properties needed by the reduction theorem, so it is offered
for exploration, not for proofs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, List, Tuple

from .algorithm import Ext

CMState = Hashable


class ContentionManager(ABC):
    """Base class: a (possibly nondeterministic) automaton over ``ŜD``."""

    name: str = "cm"

    @abstractmethod
    def initial_state(self) -> CMState:
        """The initial manager state ``pinit``."""

    @abstractmethod
    def step(self, state: CMState, ext: Ext, thread: int) -> List[CMState]:
        """Successor states for the statement ``(ext, thread)``.

        The empty list means δcm has no transition; at φ-points this
        vetoes the TM transition, elsewhere the manager simply stays put.
        """


class AggressiveManager(ContentionManager):
    """Never allows a conflicting transaction to abort itself."""

    name = "aggr"

    def initial_state(self) -> CMState:
        return 0

    def step(self, state: CMState, ext: Ext, thread: int) -> List[CMState]:
        del thread
        if ext.is_abort:
            return []
        return [state]


class PoliteManager(ContentionManager):
    """Always requires a conflicting transaction to abort itself."""

    name = "pol"

    def initial_state(self) -> CMState:
        return 0

    def step(self, state: CMState, ext: Ext, thread: int) -> List[CMState]:
        del thread
        if ext.is_abort:
            return [state]
        return []


class PermissiveManager(ContentionManager):
    """Allows every resolution (identical to running without a manager).

    Useful in tests: composing any TM with this manager must not change
    its language.
    """

    name = "perm"

    def initial_state(self) -> CMState:
        return 0

    def step(self, state: CMState, ext: Ext, thread: int) -> List[CMState]:
        del ext, thread
        return [state]


class BoundedKarmaManager(ContentionManager):
    """A Karma-style manager with saturating per-thread priorities.

    Threads gain one unit of priority per completed extended command
    (capped at ``bound`` to keep the state space finite — the real Karma
    manager is unbounded, which is exactly why the paper verifies TMs
    *without* their managers for safety).  At a conflict point a thread may
    abort itself only if its priority does not exceed every other
    thread's; any non-abort command is always permitted.
    """

    name = "karma"

    def __init__(self, n: int, bound: int = 2) -> None:
        if n < 1 or bound < 1:
            raise ValueError("need n >= 1 threads and bound >= 1")
        self.n = n
        self.bound = bound

    def initial_state(self) -> CMState:
        return (0,) * self.n

    def step(self, state: CMState, ext: Ext, thread: int) -> List[CMState]:
        prios: Tuple[int, ...] = state  # type: ignore[assignment]
        idx = thread - 1
        if ext.is_abort:
            others = [p for i, p in enumerate(prios) if i != idx]
            if others and prios[idx] > max(others):
                return []  # too important to abort itself
            reset = list(prios)
            reset[idx] = 0
            return [tuple(reset)]
        bumped = list(prios)
        bumped[idx] = min(self.bound, bumped[idx] + 1)
        return [tuple(bumped)]
