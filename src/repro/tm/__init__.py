"""TM algorithms (Section 3): the formalism, the paper's four TMs, the
modified TL2 of Section 5.4, contention managers, and the explorer."""

from .algorithm import (
    ABORT_EXT,
    Ext,
    Resp,
    TMAlgorithm,
    TMState,
    Transition,
    validate_rules,
)
from .contention import (
    AggressiveManager,
    BoundedKarmaManager,
    ContentionManager,
    PermissiveManager,
    PoliteManager,
)
from .compiled import CompiledTM, ViewCodec, compile_tm
from .compose import ManagedTM
from .sequential import SequentialTM
from .two_phase_locking import TwoPhaseLockingTM
from .dstm import DSTM
from .tl2 import TL2, ModifiedTL2
from .optimistic import OptimisticTM
from .norec import NOrecTM
from .mutate import (
    OPERATORS,
    MutantTM,
    default_mutants,
    format_mutant_id,
    is_mutant_id,
    make_mutant,
    mutant_expectation,
    parse_mutant_id,
)
from .runs import (
    Run,
    RunStep,
    ScheduleError,
    parse_schedule,
    prefer_abort,
    prefer_progress,
    program,
    simulate,
)
from .explore import (
    ExtStatement,
    LivenessGraph,
    build_liveness_graph,
    build_safety_nfa,
    explore_nodes,
    initial_node,
    iter_node_transitions,
    language_contains,
    safety_step,
    transition_system_size,
)

__all__ = [
    "ABORT_EXT",
    "Ext",
    "Resp",
    "TMAlgorithm",
    "TMState",
    "Transition",
    "validate_rules",
    "AggressiveManager",
    "BoundedKarmaManager",
    "ContentionManager",
    "PermissiveManager",
    "PoliteManager",
    "CompiledTM",
    "ViewCodec",
    "compile_tm",
    "ManagedTM",
    "SequentialTM",
    "TwoPhaseLockingTM",
    "DSTM",
    "TL2",
    "ModifiedTL2",
    "OptimisticTM",
    "NOrecTM",
    "OPERATORS",
    "MutantTM",
    "default_mutants",
    "format_mutant_id",
    "is_mutant_id",
    "make_mutant",
    "mutant_expectation",
    "parse_mutant_id",
    "Run",
    "RunStep",
    "ScheduleError",
    "parse_schedule",
    "prefer_abort",
    "prefer_progress",
    "program",
    "simulate",
    "ExtStatement",
    "LivenessGraph",
    "build_liveness_graph",
    "build_safety_nfa",
    "explore_nodes",
    "initial_node",
    "iter_node_transitions",
    "language_contains",
    "safety_step",
    "transition_system_size",
]
