"""Compiled TM engine: packed states, interned views, memoized rows.

The naive explorer re-derives everything from tuples-of-frozensets on
every visit: each node is a deep composite ``(state, pending)`` tuple
that gets re-hashed at every dedup check, and ``tm.transitions`` is
re-run for every (node, command) pair even though nodes sharing a TM
state share all of their command transitions.  Explicit-state model
checkers win exactly here, with compact state encodings and cached
successor computation; this module applies both ideas to the paper's
TM algorithms:

* **interned thread views** — each per-thread view (e.g. DSTM's
  ``(status, rs, os)``) is bit-packed by a :class:`ViewCodec` (status
  index plus ``k``-bit masks for the read/write/ownership sets) and
  interned into a dense small id;
* **packed states** — a whole TM state is a single int with one
  fixed-width view-id digit per thread, and an explorer node adds the
  pending vector as base-``|C|+1`` digits, so every dict key on the hot
  path is a machine-word int;
* **memoized transition rows** — ``tm.transitions`` results are cached
  per ``(packed_state, thread, command)``, so nodes that differ only in
  their pending vectors share successor computations, and repeated runs
  (e.g. the two Table 2 properties of one TM) recompute nothing.

:class:`CompiledTM` keeps the ``initial_state``/``transitions`` contract
of :class:`~repro.tm.algorithm.TMAlgorithm` and adds the packed-node API
(``encode_node``/``decode_node``/``node_row``/``expand``) that
:mod:`repro.tm.explore` and the checking pipelines use.  Algorithms
without a registered codec (e.g. :class:`~repro.tm.compose.ManagedTM`,
whose state carries a manager component) fall back to interning whole
states — the row memoization and int-keyed BFS still apply.

The engine is exact: iteration orders are preserved everywhere, so the
compiled paths produce byte-identical verdicts, counterexamples, node
orders and edge lists to the naive paths (pinned by the differential
tests in ``tests/tm/test_compiled.py``).
"""

from __future__ import annotations

import atexit
import weakref
from array import array
from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..automata.kernel import DenseAdjacency, DenseCSR
from ..cache import (
    is_int_vector,
    load_payload,
    narrow_int_vector,
    save_payload,
)
from ..core.statements import Command, Kind, Statement
from ..faultplane import fault_check as _pool_fault_check
from .algorithm import ABORT_EXT, Ext, Resp, TMAlgorithm, TMState, Transition

#: Stable integer codes for :class:`Resp` in persisted node rows.
_RESP_OF_CODE = (Resp.BOT, Resp.ABORT, Resp.DONE)
_RESP_CODE = {resp: code for code, resp in enumerate(_RESP_OF_CODE)}


class PoolCrashError(RuntimeError):
    """A sharding pool died and could not be revived.

    Raised by :class:`Sharder` after its one respawn-and-retry attempt
    also fails (or when the pool is already known broken).  Callers that
    have a serial path — :func:`repro.checking.safety.check_safety` does
    — catch this and rerun serially; the optimization-only sharding
    contract makes that rerun byte-identical.
    """


#: Engines holding parked ``reuse_pool`` pools, so an interpreter exit
#: (or a forgotten :meth:`CompiledTM.close_pools`) still terminates the
#: worker processes instead of leaking them.  Weak references: a parked
#: pool must not keep its engine alive.
_PARKED_ENGINES: "weakref.WeakSet" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_parked_pools() -> None:
    for engine in list(_PARKED_ENGINES):
        try:
            engine.close_pools()
        except (OSError, ValueError):
            # terminate/join on a pool whose workers already died raise
            # OSError; multiprocessing reports an already-closed pool
            # as ValueError.  Anything else is a real bug.
            pass


# ----------------------------------------------------------------------
# View codecs: per-thread views <-> fixed-width packed ints
# ----------------------------------------------------------------------


class ViewCodec(NamedTuple):
    """Bijective packing of one thread view into a ``width``-bit int."""

    width: int
    pack: Callable[[Hashable], int]
    unpack: Callable[[int], Hashable]


def pack_varset(vars_: FrozenSet[int]) -> int:
    """A set of 1-based variables as a k-bit mask (variable v = bit v-1)."""
    mask = 0
    for v in vars_:
        mask |= 1 << (v - 1)
    return mask


def unpack_varset(mask: int) -> FrozenSet[int]:
    """Inverse of :func:`pack_varset`."""
    out = []
    v = 1
    while mask:
        if mask & 1:
            out.append(v)
        mask >>= 1
        v += 1
    return frozenset(out)


def status_mask_codec(
    k: int, statuses: Optional[Sequence[Hashable]], num_sets: int
) -> ViewCodec:
    """Codec for the paper's view shape: optional status + variable sets.

    Packs a view ``(status, set_1, ..., set_m)`` — or just
    ``(set_1, ..., set_m)`` when ``statuses`` is ``None`` — as the status
    index in the low bits followed by one ``k``-bit mask per set.
    """
    if statuses:
        status_list = tuple(statuses)
        sbits = max(1, (len(status_list) - 1).bit_length())
        sindex = {s: i for i, s in enumerate(status_list)}
    else:
        status_list = ()
        sbits = 0
        sindex = {}
    width = sbits + num_sets * k
    kmask = (1 << k) - 1
    smask = (1 << sbits) - 1

    def pack(view: Hashable) -> int:
        if status_list:
            bits = sindex[view[0]]  # type: ignore[index]
            sets = view[1:]  # type: ignore[index]
        else:
            bits = 0
            sets = view
        shift = sbits
        for s in sets:
            bits |= pack_varset(s) << shift
            shift += k
        return bits

    def unpack(bits: int) -> Hashable:
        parts: List[Hashable] = []
        if status_list:
            parts.append(status_list[bits & smask])
            bits >>= sbits
        for _ in range(num_sets):
            parts.append(unpack_varset(bits & kmask))
            bits >>= k
        return tuple(parts)

    return ViewCodec(width, pack, unpack)


# ----------------------------------------------------------------------
# The compiled engine
# ----------------------------------------------------------------------

#: One explorer transition from a packed node:
#: ``(thread_index, command_index, ext, resp, packed_successor_node)``.
NodeTransition = Tuple[int, int, Ext, Resp, int]

#: Integer statement id marking an internal ε-move in all-int safety
#: rows (real statement ids are >= 0).
EPSILON_ID = -1


class CompiledTM:
    """A :class:`TMAlgorithm` compiled to packed-int states.

    Construct via :func:`compile_tm` to share one engine (and its memo
    tables) across every check on the same algorithm instance.
    """

    def __init__(self, tm: TMAlgorithm) -> None:
        self.tm = tm
        self.n = tm.n
        self.k = tm.k
        self.name = tm.name
        self._commands: Tuple[Command, ...] = tm.commands()
        self._ncmds = len(self._commands)
        self._cmd_index = {c: i for i, c in enumerate(self._commands)}
        self._pend_base = self._ncmds + 1
        self._pend_span = self._pend_base ** tm.n
        self._pend_pow = tuple(self._pend_base ** i for i in range(tm.n))
        self._all_cmd_indices = tuple(range(self._ncmds))

        self._codec = tm.view_codec()
        # Exclusive upper bound on packed states/nodes: with a codec the
        # digit widths bound every packed value a priori; the fallback
        # path interns dense state ids, bounded far beyond any feasible
        # exploration (guarded at intern time).  ``node_span`` lets
        # product checkers encode (node, spec) pairs as single ints; it
        # is rounded up to a power of two so pair decomposition is a
        # shift/mask instead of a divmod.
        if self._codec is None:
            self._state_span = 1 << 48
        else:
            self._state_span = 1 << (self._codec.width * tm.n)
        self.node_span = 1 << (
            (self._state_span * self._pend_span - 1).bit_length()
        )
        # View table: view -> dense id; dense id -> view.  On the
        # fallback path the "views" are whole TM states.
        self._view_ids: Dict[Hashable, int] = {}
        self._views: List[Hashable] = []
        # Parallel tables over the *codec bit-packing* of each view: the
        # process-stable encoding used to ship nodes to worker processes
        # and to persist the intern table (dense ids are assigned in
        # discovery order and so differ across processes; codec bits do
        # not).  Unused on the fallback path.
        self._view_bits: List[int] = []
        self._bits_ids: Dict[int, int] = {}
        # ``transitions`` may be overridden (e.g. ManagedTM); only the
        # base implementation can be decomposed into progress/φ/abort
        # without allocating Transition wrappers.
        self._generic_transitions = (
            type(tm).transitions is TMAlgorithm.transitions
        )
        self._decoded_states: Dict[int, TMState] = {}
        self._decoded_nodes: Dict[int, Tuple[TMState, tuple]] = {}

        # Memo tables (the whole point of the engine).
        self._cmd_rows: Dict[int, Tuple[Tuple[Ext, Resp, int], ...]] = {}
        self._node_rows: Dict[int, Tuple[NodeTransition, ...]] = {}
        self._safety_rows: Dict[int, tuple] = {}
        self._safety_rows_ids: Dict[int, tuple] = {}
        self._live_labels: Dict[Tuple[int, Ext, Resp], object] = {}
        self._dirty = False
        # Safety rows restored by the last successful load_warm: the
        # delta against len(_safety_rows_ids) is the number of rows this
        # process actually *built* — the serve layer's resident-tier
        # hit signal (0 on a fully warm request).
        self._warm_safety_rows = 0

        # The dense layer: per-(side, property) product CSR tables
        # (:class:`repro.automata.kernel.DenseCSR`), the liveness node
        # adjacency, and any reusable sharding pools.
        self._dense: Dict[Tuple[str, str], DenseCSR] = {}
        self._dense_adj: Optional[DenseAdjacency] = None
        self._adj_dirty = False
        self._pools: Dict[Tuple[int, Optional[str]], object] = {}

        # Interned observable labels for the safety view, plus their
        # integer statement ids — the index into
        # ``statements(n, k, include_abort=True)``, shared with the
        # compiled spec oracle (:mod:`repro.spec.compiled`).
        self._done_stmt = tuple(
            tuple(Statement(c.kind, c.var, t) for c in self._commands)
            for t in range(1, tm.n + 1)
        )
        self._abort_stmt = tuple(
            Statement(Kind.ABORT, None, t) for t in range(1, tm.n + 1)
        )
        stride = self._ncmds + 1  # per-thread statement block incl. abort
        self._done_sym = tuple(
            tuple(ti * stride + ci for ci in range(self._ncmds))
            for ti in range(tm.n)
        )
        self._abort_sym = tuple(
            ti * stride + self._ncmds for ti in range(tm.n)
        )
        #: ``_symbols[sym_id]`` is the Statement with that id.
        self._symbols: Tuple[Statement, ...] = tuple(
            stmt
            for ti in range(tm.n)
            for stmt in (self._done_stmt[ti] + (self._abort_stmt[ti],))
        )

    @property
    def symbols(self) -> Tuple[Statement, ...]:
        """The canonical statement-id table: ``symbols[sym_id]`` is the
        Statement with that id (the id space of :meth:`safety_row_ids`,
        shared with the compiled spec layer)."""
        return self._symbols

    # ------------------------------------------------------------------
    # State packing
    # ------------------------------------------------------------------

    def _intern_view(self, view: Hashable) -> int:
        """Pack ``view`` to its k-bit-mask bits and assign a dense id.

        Dense ids stay below the number of distinct packed values, so
        ``width`` bits always suffice for a state digit — provided the
        codec really is a ``width``-bit bijection, which is checked here
        (once per distinct view) so a faulty custom codec fails loudly
        instead of silently corrupting packed states.
        """
        codec = self._codec
        bits = codec.pack(view)  # type: ignore[union-attr]
        if bits >> codec.width or codec.unpack(bits) != view:
            raise ValueError(
                f"{self.name}: view codec is not a {codec.width}-bit"
                f" bijection on {view!r} (packed to {bits:#x})"
            )
        vid = len(self._views)
        self._view_ids[view] = vid
        self._views.append(view)
        self._view_bits.append(bits)
        self._bits_ids[bits] = vid
        return vid

    def encode_state(self, state: TMState) -> int:
        """The packed int of a raw TM state (interning new views)."""
        codec = self._codec
        view_ids = self._view_ids
        if codec is None:
            packed = view_ids.get(state)
            if packed is None:
                packed = len(self._views)
                if packed >= self._state_span:
                    raise RuntimeError(
                        f"{self.name}: interned more than"
                        f" {self._state_span} states"
                    )
                view_ids[state] = packed
                self._views.append(state)
                self._decoded_states[packed] = state
            return packed
        width = codec.width
        packed = 0
        shift = 0
        for view in state:  # type: ignore[union-attr]
            vid = view_ids.get(view)
            if vid is None:
                vid = self._intern_view(view)
            packed |= vid << shift
            shift += width
        return packed

    def decode_state(self, packed: int) -> TMState:
        """Inverse of :func:`encode_state` (memoized)."""
        state = self._decoded_states.get(packed)
        if state is None:
            codec = self._codec
            assert codec is not None  # fallback path always pre-populates
            views = self._views
            mask = (1 << codec.width) - 1
            width = codec.width
            p = packed
            out = []
            for _ in range(self.n):
                out.append(views[p & mask])
                p >>= width
            state = tuple(out)
            self._decoded_states[packed] = state
        return state

    def _encode_successor(
        self, packed_pred: int, pred: TMState, succ: TMState
    ) -> int:
        """Packed int of ``succ``, re-packing only the changed digits.

        TM ``progress``/``abort_reset`` implementations build successor
        tuples by splicing new views into the predecessor tuple, so most
        per-thread views are the *same objects*; their digits are copied
        from ``packed_pred`` without any dict lookup.  Views that fail
        the identity test go through the normal intern table — new views
        are interned in thread order, exactly as a full
        :meth:`encode_state` would have, so dense ids (and therefore all
        packed values) are byte-identical to full re-encoding.
        """
        if succ is pred:
            return packed_pred
        codec = self._codec
        if codec is None:
            return self.encode_state(succ)
        width = codec.width
        digit_mask = (1 << width) - 1
        view_ids = self._view_ids
        packed = packed_pred
        shift = 0
        for i, view in enumerate(succ):  # type: ignore[union-attr]
            if view is not pred[i]:  # type: ignore[index]
                vid = view_ids.get(view)
                if vid is None:
                    vid = self._intern_view(view)
                packed = (packed & ~(digit_mask << shift)) | (vid << shift)
            shift += width
        return packed

    def encode_node(self, node: Tuple[TMState, tuple]) -> int:
        """Pack an explorer node ``(state, pending)`` into one int."""
        state, pending = node
        base = self._pend_base
        cmd_index = self._cmd_index
        packed_pending = 0
        for slot in reversed(pending):
            digit = 0 if slot is None else cmd_index[slot] + 1
            packed_pending = packed_pending * base + digit
        return self.encode_state(state) * self._pend_span + packed_pending

    def decode_node(self, packed: int) -> Tuple[TMState, tuple]:
        """Inverse of :func:`encode_node` (memoized)."""
        node = self._decoded_nodes.get(packed)
        if node is None:
            packed_state, packed_pending = divmod(packed, self._pend_span)
            base = self._pend_base
            commands = self._commands
            pending = []
            for _ in range(self.n):
                packed_pending, digit = divmod(packed_pending, base)
                pending.append(None if digit == 0 else commands[digit - 1])
            node = (self.decode_state(packed_state), tuple(pending))
            self._decoded_nodes[packed] = node
        return node

    def initial_node_packed(self) -> int:
        return self.encode_node((self.tm.initial_state(), (None,) * self.n))

    # ------------------------------------------------------------------
    # Memoized transition rows
    # ------------------------------------------------------------------

    def _cmd_row(
        self, packed_state: int, ti: int, ci: int
    ) -> Tuple[Tuple[Ext, Resp, int], ...]:
        """``tm.transitions`` for ``(state, thread ti+1, command ci)``,
        with packed successor states, computed once per engine."""
        key = (packed_state * self.n + ti) * self._ncmds + ci
        row = self._cmd_rows.get(key)
        if row is None:
            state = self.decode_state(packed_state)
            cmd = self._commands[ci]
            thread = ti + 1
            encode = self._encode_successor
            tm = self.tm
            if self._generic_transitions:
                # Inline TMAlgorithm.transitions without Transition
                # wrappers: progress entries plus the derived abort.
                prog = tm.progress(state, cmd, thread)
                entries = [
                    (ext, resp, encode(packed_state, state, succ))
                    for ext, resp, succ in prog
                ]
                if not prog or tm.conflict(state, cmd, thread):
                    entries.append(
                        (
                            ABORT_EXT,
                            Resp.ABORT,
                            encode(
                                packed_state,
                                state,
                                tm.abort_reset(state, thread),
                            ),
                        )
                    )
                row = tuple(entries)
            else:
                row = tuple(
                    (tr.ext, tr.resp, encode(packed_state, state, tr.state))
                    for tr in tm.transitions(state, cmd, thread)
                )
            self._cmd_rows[key] = row
            self._dirty = True
        return row

    def _pending_digits(self, packed_pending: int) -> List[int]:
        base = self._pend_base
        digits = []
        for _ in range(self.n):
            packed_pending, digit = divmod(packed_pending, base)
            digits.append(digit)
        return digits

    def node_row(self, packed_node: int) -> Tuple[NodeTransition, ...]:
        """All explorer transitions from a packed node, in the exact
        order of :func:`repro.tm.explore.iter_node_transitions`."""
        row = self._node_rows.get(packed_node)
        if row is None:
            packed_state, packed_pending = divmod(packed_node, self._pend_span)
            pend_pow = self._pend_pow
            cmd_row = self._cmd_row
            entries: List[NodeTransition] = []
            digits = self._pending_digits(packed_pending)
            for ti in range(self.n):
                digit = digits[ti]
                cmd_indices = (
                    (digit - 1,) if digit else self._all_cmd_indices
                )
                for ci in cmd_indices:
                    for ext, resp, succ_state in cmd_row(packed_state, ti, ci):
                        new_digit = ci + 1 if resp is Resp.BOT else 0
                        succ_pending = (
                            packed_pending
                            + (new_digit - digit) * pend_pow[ti]
                        )
                        entries.append(
                            (
                                ti,
                                ci,
                                ext,
                                resp,
                                succ_state * self._pend_span + succ_pending,
                            )
                        )
            row = tuple(entries)
            self._node_rows[packed_node] = row
            self._dirty = True
        return row

    def expand(
        self,
        frontier: Iterable[int],
        sharder: "Optional[Sharder]" = None,
    ) -> List[Tuple[int, Tuple[NodeTransition, ...]]]:
        """Batched successor computation: rows for a whole frontier.

        With a :class:`Sharder` (from :meth:`sharded`), rows missing
        from the memo tables are computed by the worker pool first; the
        serial collection below then runs entirely on memo hits.  The
        returned list is identical either way.
        """
        nodes = list(frontier)
        if sharder is not None:
            sharder.prefetch_nodes(nodes)
        node_row = self.node_row
        return [(node, node_row(node)) for node in nodes]

    # ------------------------------------------------------------------
    # Process-stable node encoding (sharding and persistence)
    # ------------------------------------------------------------------

    def stable_of_node(self, packed_node: int) -> int:
        """Re-digit a packed node over codec *bits* instead of dense ids.

        Dense view ids depend on this engine's discovery order; the
        codec bit-packing of a view does not.  Stable node ints are
        therefore meaningful across processes (workers re-derive the
        codec from the algorithm seed) and across runs (the warm cache).
        Only available for codec-backed engines.
        """
        packed_state, packed_pending = divmod(packed_node, self._pend_span)
        width = self._codec.width  # type: ignore[union-attr]
        digit_mask = (1 << width) - 1
        view_bits = self._view_bits
        stable_state = 0
        for i in range(self.n):
            vid = (packed_state >> (width * i)) & digit_mask
            stable_state |= view_bits[vid] << (width * i)
        return stable_state * self._pend_span + packed_pending

    def node_of_stable(self, stable_node: int) -> int:
        """Inverse of :meth:`stable_of_node`, interning unseen views.

        New views are interned in thread-digit order, so translating a
        merged result sequence interns views in exactly the order a
        serial computation of the same rows would have.
        """
        stable_state, packed_pending = divmod(stable_node, self._pend_span)
        codec = self._codec
        assert codec is not None
        width = codec.width
        digit_mask = (1 << width) - 1
        bits_ids = self._bits_ids
        packed_state = 0
        for i in range(self.n):
            bits = (stable_state >> (width * i)) & digit_mask
            vid = bits_ids.get(bits)
            if vid is None:
                vid = self._intern_view(codec.unpack(bits))
            packed_state |= vid << (width * i)
        return packed_state * self._pend_span + packed_pending

    def expand_stable(
        self, mode: str, stable_node: int
    ) -> Tuple[int, tuple]:
        """One worker-side expansion: row of a stable node, re-encoded
        stably.  ``mode`` is ``"safety"`` (all-int safety rows) or
        ``"node"`` (explorer transitions for the liveness/explore
        views)."""
        packed = self.node_of_stable(stable_node)
        stable = self.stable_of_node
        if mode == "safety":
            return stable_node, tuple(
                (
                    sym,
                    stable(succs)
                    if type(succs) is int
                    else tuple(stable(s) for s in succs),
                )
                for sym, succs in self.safety_row_ids(packed)
            )
        return stable_node, tuple(
            (ti, ci, ext, resp, stable(succ))
            for ti, ci, ext, resp, succ in self.node_row(packed)
        )

    def store_stable_row(
        self, mode: str, packed_node: int, stable_row: tuple
    ) -> None:
        """Merge one worker-computed row into this engine's memo tables,
        translating stable successor ids into (possibly new) dense ids."""
        translate = self.node_of_stable
        if mode == "safety":
            self._safety_rows_ids[packed_node] = tuple(
                (
                    sym,
                    translate(succs)
                    if type(succs) is int
                    else tuple(translate(s) for s in succs),
                )
                for sym, succs in stable_row
            )
        else:
            self._node_rows[packed_node] = tuple(
                (ti, ci, ext, resp, translate(succ))
                for ti, ci, ext, resp, succ in stable_row
            )
        self._dirty = True

    @contextmanager
    def sharded(
        self,
        jobs: Optional[int],
        cache_dir: Optional[str] = None,
        *,
        chunk_size: Optional[int] = None,
        reuse_pool: bool = False,
    ):
        """A :class:`Sharder` running ``jobs`` worker processes, or
        ``None`` when sharding is unavailable.

        Yields ``None`` (callers fall back to the serial path, which is
        always correct) when ``jobs`` is 1, the TM has no view codec
        (fallback-interned states have no process-stable encoding), or
        the algorithm cannot be re-derived from a picklable seed.  The
        pool is torn down on exit.

        ``cache_dir`` lets the *workers* warm-start their own engines
        from the on-disk cache too (rows computed on the pool would
        otherwise always start cold).  Worker memo tables die with the
        pool — a sharded run never *writes* the row cache; populating
        it is a serial (or row-sharded) run's job.

        ``chunk_size`` fixes the per-task batch of the row prefetcher
        (default: one even chunk per worker); ``reuse_pool=True`` parks
        the pool on the engine keyed by ``(jobs, cache_dir)`` instead of
        tearing it down, so repeated checks skip the spawn cost — call
        :meth:`close_pools` when done.  Both knobs are scheduling-only:
        results are byte-identical for every setting.
        """
        if jobs is None or jobs <= 1 or self._codec is None:
            yield None
            return
        seed = _spawn_seed(self.tm)
        if seed is None:
            yield None
            return
        pool_key = (jobs, cache_dir)

        def make_pool():
            import multiprocessing

            return multiprocessing.get_context().Pool(
                jobs, initializer=_worker_init, initargs=(*seed, cache_dir)
            )

        pool = self._pools.get(pool_key) if reuse_pool else None
        if pool is None:
            pool = make_pool()
            if reuse_pool:
                self._park_pool(pool_key, pool)
        sharder = Sharder(
            self,
            pool,
            jobs,
            chunk_size=chunk_size,
            make_pool=make_pool,
            pool_key=pool_key if reuse_pool else None,
        )
        try:
            yield sharder
        except BaseException:
            if reuse_pool:
                # Never leave a possibly-broken pool parked: the next
                # reuse would inherit dead workers instead of spawning.
                self._pools.pop(pool_key, None)
            # The sharder may have respawned since entry; shut down
            # whatever pool it currently holds (idempotent).
            sharder.shutdown()
            raise
        finally:
            if not reuse_pool:
                sharder.shutdown()

    def _park_pool(self, pool_key, pool) -> None:
        """Park ``pool`` for reuse and arm the atexit sweeper so parked
        workers never outlive the interpreter."""
        global _ATEXIT_REGISTERED
        self._pools[pool_key] = pool
        _PARKED_ENGINES.add(self)
        if not _ATEXIT_REGISTERED:
            _ATEXIT_REGISTERED = True
            atexit.register(_close_parked_pools)

    def close_pools(self) -> None:
        """Tear down any pools parked by ``sharded(reuse_pool=True)``."""
        for pool in self._pools.values():
            try:
                pool.terminate()
                pool.join()
            except (OSError, ValueError):
                # Dead workers (OSError) or an already-closed pool
                # (ValueError) — both fine during teardown.
                pass
        self._pools.clear()

    def __enter__(self) -> "CompiledTM":
        """Scope parked pools to a ``with`` block::

            with compile_tm(tm) as engine:
                ...  # checks with reuse_pool=True park pools here
            # workers terminated+joined on exit
        """
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close_pools()
        return False

    # ------------------------------------------------------------------
    # Checker-facing views
    # ------------------------------------------------------------------

    def safety_row_ids(self, packed_node: int) -> tuple:
        """The safety view of a node as a pre-grouped all-int kernel row.

        Returns ``((sym_id, succs), ...)`` where ``sym_id`` is the
        integer statement id (:data:`EPSILON_ID` for internal ⊥-moves)
        and ``succs`` is the bare packed successor int for singleton
        groups — ~90% of them, spared a tuple wrap and an inner loop on
        the product hot path — or a tuple of packed successors
        otherwise.  Symbols are grouped in first-occurrence order and
        multi-successor groups are deduplicated and ordered exactly as
        the naive lazy kernel would have produced (``repr``-sorted
        decoded nodes), so product BFS over these rows is byte-identical
        to the naive path.  This is the primitive row;
        :meth:`safety_row` derives the Statement-keyed view from it.
        """
        row = self._safety_rows_ids.get(packed_node)
        if row is None:
            # Assembled straight from the memoized command rows (not via
            # node_row) — the safety product is the hot path and skips
            # materializing per-node transition tuples.
            packed_state, packed_pending = divmod(packed_node, self._pend_span)
            pend_span = self._pend_span
            pend_pow = self._pend_pow
            cmd_row = self._cmd_row
            done_sym = self._done_sym
            abort_sym = self._abort_sym
            grouped: Dict[int, List[int]] = {}
            digits = self._pending_digits(packed_pending)
            for ti in range(self.n):
                digit = digits[ti]
                cmd_indices = (
                    (digit - 1,) if digit else self._all_cmd_indices
                )
                base_pending = packed_pending - digit * pend_pow[ti]
                for ci in cmd_indices:
                    for _ext, resp, succ_state in cmd_row(
                        packed_state, ti, ci
                    ):
                        if resp is Resp.BOT:
                            key = EPSILON_ID
                            succ_pending = base_pending + (ci + 1) * pend_pow[ti]
                        elif resp is Resp.DONE:
                            key = done_sym[ti][ci]
                            succ_pending = base_pending
                        else:
                            key = abort_sym[ti]
                            succ_pending = base_pending
                        grouped.setdefault(key, []).append(
                            succ_state * pend_span + succ_pending
                        )
            decode = self.decode_node
            out = []
            for symbol, succs in grouped.items():
                if len(succs) > 1:
                    succs = sorted(
                        set(succs), key=lambda p: repr(decode(p))
                    )
                out.append(
                    (symbol, succs[0])
                    if len(succs) == 1
                    else (symbol, tuple(succs))
                )
            row = tuple(out)
            self._safety_rows_ids[packed_node] = row
            self._dirty = True
        return row

    def safety_rows_map(self) -> Dict[int, tuple]:
        """The live memo dict behind :meth:`safety_row_ids` — checkers
        probe it directly to skip a call per BFS pop on warm rows."""
        return self._safety_rows_ids

    def safety_row(self, packed_node: int) -> tuple:
        """:meth:`safety_row_ids` with interned Statement symbols
        (``None`` for ε) — the view the DFA-sided product consumes."""
        row = self._safety_rows.get(packed_node)
        if row is None:
            symbols = self._symbols
            row = tuple(
                (
                    None if sym < 0 else symbols[sym],
                    (succs,) if type(succs) is int else succs,
                )
                for sym, succs in self.safety_row_ids(packed_node)
            )
            self._safety_rows[packed_node] = row
        return row

    def liveness_row(self, packed_node: int) -> tuple:
        """The liveness view of a node: ``(ExtStatement, packed_succ)``
        pairs in explorer order, with interned labels."""
        from .explore import ExtStatement

        labels = self._live_labels
        out = []
        for ti, _ci, ext, resp, succ in self.node_row(packed_node):
            key = (ti, ext, resp)
            label = labels.get(key)
            if label is None:
                label = labels[key] = ExtStatement(
                    ti + 1, ext.name, ext.var, resp
                )
            out.append((label, succ))
        return tuple(out)

    # ------------------------------------------------------------------
    # The dense layer
    # ------------------------------------------------------------------

    def dense_csr(self, side: str, prop) -> Optional[DenseCSR]:
        """The (lazily created) dense product table for one check
        configuration.

        ``side`` names the product flavour (``"oracle"`` for the
        lazy-spec packed product, ``"dfa"`` for the int-rows DFA-sided
        one — their pair spaces are numbered differently, so they keep
        separate tables) and ``prop`` the safety property.  Returns
        ``None`` for codec-less engines: without a process-stable node
        encoding the table could not be validated against — or persisted
        for — another process.  The table itself is recorded by the
        kernel on the first serial untraced pass (see
        :class:`repro.automata.kernel.DenseCSR`).
        """
        if self._codec is None:
            return None
        prop_value = getattr(prop, "value", str(prop))
        key = (side, prop_value)
        csr = self._dense.get(key)
        if csr is None:
            csr = self._dense[key] = DenseCSR(
                span_bits=self.node_span.bit_length() - 1,
                stable_of_node=self.stable_of_node,
                cache_key=(
                    "dense-csr",
                    type(self.tm).__name__,
                    self.name,
                    self.n,
                    self.k,
                    prop_value,
                    side,
                ),
            )
        return csr

    def dense_node_adjacency(self) -> DenseAdjacency:
        """The CSR adjacency of the full reachable node graph (liveness
        view), built once per engine from the memoized node rows.

        Nodes are interned in the exact BFS discovery order of
        :func:`repro.tm.explore.explore_packed`, successors per node in
        exact row order, so materializing a liveness graph from this
        adjacency is byte-identical to the row-by-row builder.  Shared
        by :func:`repro.tm.explore.build_liveness_graph` and (through
        it) the SCC-based liveness checks.
        """
        adj = self._dense_adj
        if adj is None:
            init = self.initial_node_packed()
            ids: Dict[int, int] = {init: 0}
            order: List[int] = [init]
            # Typed-width policy: dense node ids, edge offsets and label
            # ids are all counts of in-memory objects — int32 holds them
            # on anything this side of a 2**31-node graph.
            offsets = array("i", (0,))
            targets = array("i")
            labels = array("i")
            label_ids: Dict[Tuple[int, Ext, Resp], int] = {}
            label_table: List[Tuple[int, Ext, Resp]] = []
            node_row = self.node_row
            i = 0
            while i < len(order):
                for ti, _ci, ext, resp, succ in node_row(order[i]):
                    lkey = (ti, ext, resp)
                    lid = label_ids.get(lkey)
                    if lid is None:
                        lid = label_ids[lkey] = len(label_table)
                        label_table.append(lkey)
                    sid = ids.get(succ)
                    if sid is None:
                        sid = ids[succ] = len(order)
                        order.append(succ)
                    targets.append(sid)
                    labels.append(lid)
                offsets.append(len(targets))
                i += 1
            adj = self._dense_adj = DenseAdjacency(
                nodes=order,
                offsets=offsets,
                targets=targets,
                labels=labels,
                label_table=label_table,
            )
            self._adj_dirty = True
        return adj

    # ------------------------------------------------------------------
    # TMAlgorithm-compatible contract
    # ------------------------------------------------------------------

    def initial_state(self) -> TMState:
        return self.tm.initial_state()

    def transitions(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Transition]:
        """Same contract as :meth:`TMAlgorithm.transitions`, served from
        the memoized rows."""
        packed = self.encode_state(state)
        decode = self.decode_state
        return [
            Transition(ext, resp, decode(succ))
            for ext, resp, succ in self._cmd_row(
                packed, thread - 1, self._cmd_index[cmd]
            )
        ]

    def commands(self) -> Tuple[Command, ...]:
        """The cached command set ``C`` (same contract as
        :meth:`TMAlgorithm.commands`)."""
        return self._commands

    def threads(self) -> range:
        return range(1, self.n + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Sizes of the intern/memo tables (for benchmarks and tests)."""
        return {
            "views": len(self._views),
            "decoded_states": len(self._decoded_states),
            "decoded_nodes": len(self._decoded_nodes),
            "cmd_rows": len(self._cmd_rows),
            "node_rows": len(self._node_rows),
            "safety_rows": len(self._safety_rows_ids),
            "warm_safety_rows": self._warm_safety_rows,
        }

    # ------------------------------------------------------------------
    # Warm-start persistence
    # ------------------------------------------------------------------

    def _cache_key(self) -> Optional[tuple]:
        if self._codec is None:
            return None  # fallback-interned states have no stable encoding
        return ("tm-engine", type(self.tm).__name__, self.name, self.n, self.k)

    def load_warm(self, cache_dir: str) -> bool:
        """Restore interned views, safety rows and node rows from
        ``cache_dir``.

        Only a *fresh* engine is restored (nothing interned yet) — the
        cached dense ids must become this engine's dense ids verbatim.
        Malformed payloads are rejected wholesale; returns True iff the
        engine was warmed.
        """
        key = self._cache_key()
        if key is None or self._views or self._dirty:
            return False
        data = load_payload(cache_dir, key)
        if not isinstance(data, dict):
            return False
        view_bits = data.get("view_bits")
        safety_rows = data.get("safety_rows")
        ext_table = data.get("ext_table")
        node_rows = data.get("node_rows")
        if (
            not isinstance(view_bits, list)
            or not isinstance(safety_rows, dict)
            or not isinstance(ext_table, list)
            or not isinstance(node_rows, dict)
        ):
            return False
        codec = self._codec
        try:
            views = []
            for bits in view_bits:
                if not isinstance(bits, int) or bits >> codec.width:
                    return False
                view = codec.unpack(bits)
                if codec.pack(view) != bits:
                    return False
                views.append(view)
            if len(set(view_bits)) != len(view_bits):
                return False
            nviews = len(views)
            width = codec.width
            digit_mask = (1 << width) - 1
            state_span = 1 << (width * self.n)
            pend_span = self._pend_span
            num_syms = len(self._symbols)

            def valid_node(packed: object) -> bool:
                if not isinstance(packed, int) or packed < 0:
                    return False
                state, _pending = divmod(packed, pend_span)
                if state >= state_span:
                    return False
                return all(
                    ((state >> (width * i)) & digit_mask) < nviews
                    for i in range(self.n)
                )

            for node, row in safety_rows.items():
                if not valid_node(node) or not isinstance(row, tuple):
                    return False
                for sym, succs in row:
                    if not isinstance(sym, int) or not -1 <= sym < num_syms:
                        return False
                    if type(succs) is int:
                        if not valid_node(succs):
                            return False
                    elif not isinstance(succs, tuple) or not all(
                        valid_node(s) for s in succs
                    ):
                        return False
            # Node rows (the liveness/explorer view) persist Ext/Resp in
            # a stable int encoding: ext_table indices and Resp codes.
            exts: List[Ext] = []
            for entry in ext_table:
                if not isinstance(entry, tuple) or len(entry) != 2:
                    return False
                ename, evar = entry
                if not isinstance(ename, str) or not (
                    evar is None or isinstance(evar, int)
                ):
                    return False
                exts.append(Ext(ename, evar))
            nexts = len(exts)
            decoded_rows: Dict[int, Tuple[NodeTransition, ...]] = {}
            for node, row in node_rows.items():
                if not valid_node(node) or not isinstance(row, tuple):
                    return False
                out = []
                for entry in row:
                    if not isinstance(entry, tuple) or len(entry) != 5:
                        return False
                    ti, ci, eid, rc, succ = entry
                    if not (
                        isinstance(ti, int)
                        and 0 <= ti < self.n
                        and isinstance(ci, int)
                        and 0 <= ci < self._ncmds
                        and isinstance(eid, int)
                        and 0 <= eid < nexts
                        and isinstance(rc, int)
                        and 0 <= rc < len(_RESP_OF_CODE)
                        and valid_node(succ)
                    ):
                        return False
                    out.append((ti, ci, exts[eid], _RESP_OF_CODE[rc], succ))
                decoded_rows[node] = tuple(out)
        except Exception:
            # Deliberately broad: the payload is untrusted cache bytes —
            # a malformed structure can raise anything mid-decode, and
            # the one correct response is always "reject wholesale and
            # recompile cold".
            return False
        self._views = views
        self._view_bits = list(view_bits)
        self._view_ids = {view: i for i, view in enumerate(views)}
        self._bits_ids = {bits: i for i, bits in enumerate(view_bits)}
        self._safety_rows_ids = dict(safety_rows)
        self._node_rows = decoded_rows
        self._dirty = False
        self._warm_safety_rows = len(safety_rows)
        return True

    def save_warm(self, cache_dir: str) -> bool:
        """Spill the intern table, safety rows and node rows to
        ``cache_dir`` (no-op unless new rows were computed since the
        last load/save)."""
        key = self._cache_key()
        if key is None or not self._dirty:
            return False
        ext_ids: Dict[Ext, int] = {}
        ext_table: List[Tuple[str, Optional[int]]] = []
        node_rows: Dict[int, tuple] = {}
        for node, row in self._node_rows.items():
            out = []
            for ti, ci, ext, resp, succ in row:
                eid = ext_ids.get(ext)
                if eid is None:
                    eid = ext_ids[ext] = len(ext_table)
                    ext_table.append((ext.name, ext.var))
                out.append((ti, ci, eid, _RESP_CODE[resp], succ))
            node_rows[node] = tuple(out)
        ok = save_payload(
            cache_dir,
            key,
            {
                "view_bits": list(self._view_bits),
                "safety_rows": dict(self._safety_rows_ids),
                "ext_table": ext_table,
                "node_rows": node_rows,
            },
        )
        if ok:
            self._dirty = False
        return ok

    def _adj_cache_key(self) -> Optional[tuple]:
        if self._codec is None:
            return None
        return ("dense-adj", type(self.tm).__name__, self.name, self.n, self.k)

    def load_dense_adj(self, cache_dir) -> bool:
        """Restore the liveness node adjacency CSR (the safety side's
        ``dense-csr`` symmetric): a warm liveness run then materializes
        its graph from arrays alone, never touching the node-row memos.

        Nodes persist in the stable codec-bits encoding and are
        translated back through :meth:`node_of_stable` (interning views
        in recorded discovery order — the same order a fresh build would
        have used, so the decoded graph is byte-identical).  Malformed
        payloads are rejected wholesale before anything is interned.
        """
        key = self._adj_cache_key()
        if key is None or self._dense_adj is not None or self._adj_dirty:
            return False
        data = load_payload(cache_dir, key)
        if not isinstance(data, dict):
            return False
        stable_nodes = data.get("nodes")
        offsets = data.get("offsets")
        targets = data.get("targets")
        labels = data.get("labels")
        label_entries = data.get("label_table")
        if not all(
            is_int_vector(v)
            for v in (stable_nodes, offsets, targets, labels)
        ) or not isinstance(label_entries, list):
            return False
        nnodes = len(stable_nodes)
        nedges = len(targets)
        if (
            not nnodes
            or len(offsets) != nnodes + 1
            or len(labels) != nedges
            or offsets[0] != 0
            or offsets[-1] != nedges
        ):
            return False
        if any(offsets[i] > offsets[i + 1] for i in range(nnodes)):
            return False
        if not all(0 <= t < nnodes for t in targets):
            return False
        nlabels = len(label_entries)
        if not all(0 <= l < nlabels for l in labels):
            return False
        label_table: List[Tuple[int, Ext, Resp]] = []
        for entry in label_entries:
            if not isinstance(entry, tuple) or len(entry) != 4:
                return False
            ti, ename, evar, rc = entry
            if not (
                isinstance(ti, int)
                and 0 <= ti < self.n
                and isinstance(ename, str)
                and (evar is None or isinstance(evar, int))
                and isinstance(rc, int)
                and 0 <= rc < len(_RESP_OF_CODE)
            ):
                return False
            label_table.append((ti, Ext(ename, evar), _RESP_OF_CODE[rc]))
        # Validate every stable node against the codec *before* any view
        # is interned, so a rejected payload leaves the engine untouched.
        codec = self._codec
        width = codec.width  # type: ignore[union-attr]
        digit_mask = (1 << width) - 1
        pend_span = self._pend_span
        known_bits = set(self._bits_ids)
        try:
            for s in stable_nodes:
                if s < 0:
                    return False
                state, _pending = divmod(s, pend_span)
                if state >> (width * self.n):
                    return False
                for i in range(self.n):
                    bits = (state >> (width * i)) & digit_mask
                    if bits not in known_bits:
                        view = codec.unpack(bits)
                        if codec.pack(view) != bits:
                            return False
                        known_bits.add(bits)
            if len(set(stable_nodes)) != nnodes:
                return False
            if stable_nodes[0] != self.stable_of_node(
                self.initial_node_packed()
            ):
                return False
            nodes = [self.node_of_stable(s) for s in stable_nodes]
        except Exception:
            # Deliberately broad, same as the safety-row warm load: an
            # untrusted CSR payload can fail anywhere, and rejecting it
            # wholesale (rebuild cold) is always the right move.
            return False
        self._dense_adj = DenseAdjacency(
            nodes=nodes,
            offsets=offsets,
            targets=targets,
            labels=labels,
            label_table=label_table,
        )
        self._adj_dirty = False
        return True

    def save_dense_adj(self, cache_dir) -> bool:
        """Spill the liveness node adjacency CSR (no-op unless newly
        built since the last load/save).  Nodes are re-digited to the
        stable encoding and narrowed; the CSR vectors persist at their
        recorded width."""
        key = self._adj_cache_key()
        adj = self._dense_adj
        if key is None or adj is None or not self._adj_dirty:
            return False
        stable = self.stable_of_node
        try:
            nodes = narrow_int_vector(stable(p) for p in adj.nodes)
        except OverflowError:  # pragma: no cover - beyond-int64 spans
            return False
        ok = save_payload(
            cache_dir,
            key,
            {
                "nodes": nodes,
                "offsets": adj.offsets,
                "targets": adj.targets,
                "labels": adj.labels,
                "label_table": [
                    (ti, ext.name, ext.var, _RESP_CODE[resp])
                    for ti, ext, resp in adj.label_table
                ],
            },
        )
        if ok:
            self._adj_dirty = False
        return ok


# ----------------------------------------------------------------------
# Sharded expansion across a multiprocessing pool
# ----------------------------------------------------------------------
#
# Dense packed ids are engine-local (assigned in discovery order), so
# nodes cross process boundaries in the codec-bits *stable* encoding:
# workers re-derive the codec from the algorithm seed, translate stable
# -> own-dense, compute rows with their own (persistent, memoizing)
# engines, and ship rows back stably; the parent merges results in
# deterministic frontier order, interning any still-unseen views.  All
# observable outputs (verdicts, counterexamples, node orders, counts)
# are invariant under dense-id relabeling, so sharded runs are
# byte-identical to serial ones — pinned by tests/tm/test_parallel.py.

_WORKER_ENGINE: Optional[CompiledTM] = None
_WORKER_CACHE_DIR: Optional[str] = None
_WORKER_WARMED_PROPS: set = set()


def _worker_init(
    tm_cls: type, args: tuple, cache_dir: Optional[str] = None
) -> None:
    global _WORKER_ENGINE, _WORKER_CACHE_DIR
    _WORKER_ENGINE = CompiledTM(tm_cls(*args))
    _WORKER_CACHE_DIR = cache_dir
    _WORKER_WARMED_PROPS.clear()
    if cache_dir is not None:
        _WORKER_ENGINE.load_warm(cache_dir)


def _worker_expand(task: Tuple[str, List[int]]) -> List[Tuple[int, tuple]]:
    mode, stable_nodes = task
    engine = _WORKER_ENGINE
    assert engine is not None, "worker pool used before initialization"
    expand_stable = engine.expand_stable
    return [expand_stable(mode, sn) for sn in stable_nodes]


def _worker_expand_pairs(task) -> Tuple[bool, Sequence[int]]:
    """One shard of a sharded-product level: expand every stable pair.

    A pair is ``spec_packed << span_bits | stable_node``; the worker
    resolves both components against its own engines (the TM engine from
    the pool seed, the spec oracle from ``cached_spec_oracle`` — both
    memoizing, both persistent across levels) and returns the successor
    pairs, deduplicated, back in stable encoding.  A SINK transition
    aborts the shard immediately: the parent reruns the serial traced
    path, so nothing beyond the violation flag matters.

    The successor slice crosses the process boundary as a flat
    ``array('q')`` — a CSR-style dense chunk that pickles as raw machine
    words instead of a list of boxed ints — falling back to a plain list
    on the (huge-instance) shards whose stable pairs overflow 64 bits.
    The parent's merge iterates either container identically.
    """
    prop, span_bits, stable_pairs = task
    engine = _WORKER_ENGINE
    assert engine is not None, "worker pool used before initialization"
    from ..spec.compiled import SINK, UNQUERIED, cached_spec_oracle

    oracle = cached_spec_oracle(engine.n, engine.k, prop)
    if _WORKER_CACHE_DIR is not None and prop not in _WORKER_WARMED_PROPS:
        _WORKER_WARMED_PROPS.add(prop)  # one load attempt per pool life
        oracle.load_warm(_WORKER_CACHE_DIR)
    mask = (1 << span_bits) - 1
    node_of_stable = engine.node_of_stable
    stable_of_node = engine.stable_of_node
    row_of = engine.safety_row_ids
    orows = oracle.rows
    states = oracle.states
    ids_get = oracle._ids.get
    intern = oracle.intern_packed
    fill = oracle.fill
    out: Dict[int, None] = {}  # dedup, insertion-ordered
    for sp in stable_pairs:
        stable_node = sp & mask
        spec_packed = sp >> span_bits
        row = row_of(node_of_stable(stable_node))
        sid = ids_get(spec_packed)
        if sid is None:
            sid = intern(spec_packed)
        brow = orows[sid]
        for sym, succs in row:
            if sym < 0:  # ε: advance the TM component only
                base = spec_packed << span_bits
            else:
                dsucc = brow[sym]
                if dsucc == UNQUERIED:
                    dsucc = fill(sid, sym)
                if dsucc == SINK:
                    return True, []
                base = states[dsucc] << span_bits
            if type(succs) is int:
                out[base | stable_of_node(succs)] = None
            else:
                for s in succs:
                    out[base | stable_of_node(s)] = None
    try:
        return False, array("q", out)
    except OverflowError:  # stable pairs beyond 64 bits: boxed fallback
        return False, list(out)


def _spawn_seed(tm: TMAlgorithm) -> Optional[Tuple[type, tuple]]:
    """A picklable ``(class, ctor_args)`` seed re-deriving ``tm``, or
    ``None`` when ``cls(n, k)`` cannot reconstruct this instance (e.g.
    ManagedTM, which composes a manager, or a TM built with non-default
    constructor options).  Reconstruction is *verified*: the clone's
    attributes must equal the original's, engine/command caches aside."""
    cls = type(tm)
    try:
        clone = cls(tm.n, tm.k)
    except (TypeError, ValueError, AttributeError):
        # The shapes a constructor probe legitimately fails with: a
        # signature that needs more than (n, k) — directly (TypeError)
        # or by duck-typing its arguments the way ManagedTM does
        # (AttributeError) — or a validating __init__ rejecting the
        # values (ValueError).  Anything else is a TM bug; surface it.
        return None
    ignore = {"_commands_cache", "_compiled_engine"}
    mine = {a: v for a, v in tm.__dict__.items() if a not in ignore}
    theirs = {a: v for a, v in clone.__dict__.items() if a not in ignore}
    if mine != theirs:
        return None
    return cls, (tm.n, tm.k)


class Sharder:
    """Pool-backed row prefetcher for one :class:`CompiledTM`.

    ``prefetch_safety`` / ``prefetch_nodes`` compute the rows missing
    from the parent's memo tables for a batch of packed nodes (one BFS
    level), sharded across the pool; subsequent per-node row calls are
    then pure memo hits.  Prefetching is an optimization only — skipping
    it (or prefetching more nodes than are later visited) never changes
    any observable result.

    Sharding only pays off on *cold* rows: once the memo tables are warm
    (a repeated check, a disk-warmed engine) a level's rows are mostly
    hits and the pickle/IPC round-trip is pure overhead.  The prefetcher
    therefore short-circuits back to the serial path whenever the
    *previous* level's memo hit rate reached :attr:`hot_hit_rate` —
    verdict-neutral by the optimization-only contract above (pinned by
    ``tests/tm/test_parallel.py``).
    """

    #: Previous-level memo hit rate at or above which the pool is
    #: skipped and rows are computed serially on demand.
    hot_hit_rate = 0.9

    def __init__(
        self,
        engine: CompiledTM,
        pool,
        jobs: int,
        *,
        chunk_size: Optional[int] = None,
        make_pool: Optional[Callable[[], object]] = None,
        pool_key: Optional[tuple] = None,
    ) -> None:
        self.engine = engine
        self.pool = pool
        self.jobs = jobs
        #: Respawn recipe for transient pool deaths; ``None`` disables
        #: the retry (tests construct bare Sharders).
        self.make_pool = make_pool
        #: The engine parking slot when this pool is reused, so a
        #: respawned pool replaces the dead parked one.
        self.pool_key = pool_key
        #: Set once the pool died and the respawn retry failed too;
        #: every later dispatch raises :class:`PoolCrashError` upfront.
        self.broken = False
        self._closed = False
        #: Fixed per-task batch size for the row prefetcher; ``None``
        #: (or any value below 1, clamped here so a bad CLI flag cannot
        #: starve the pool) splits each level into one even chunk per
        #: worker.  A scheduling knob only — results are identical for
        #: any value.
        if chunk_size is not None and chunk_size < 1:
            chunk_size = None
        self.chunk_size = chunk_size
        self._last_hit_rate: Optional[float] = None
        #: Levels whose pool dispatch was skipped as row-warm (for
        #: tests and benchmarks).
        self.skipped_prefetches = 0

    def pair_sharder(self, prop) -> "PairSharder":
        """A kernel-facing sharded-product backend over this pool (see
        :class:`PairSharder`); ``prop`` is the safety property whose
        spec oracle the workers rebuild."""
        return PairSharder(self, prop)

    def shutdown(self) -> None:
        """Terminate+join the current pool (idempotent, exception-safe).

        Called by ``sharded()`` on scope exit and by the supervision
        paths below; safe to call on an already-dead pool.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.pool.terminate()
            self.pool.join()
        except (OSError, ValueError):
            # Dead workers (OSError) or an already-closed pool
            # (ValueError) — both fine during teardown.
            pass

    def _pool_map(self, func, tasks):
        """``pool.map`` under supervision.

        Worker tasks are stateless (each rebuilds its engine from the
        spawn seed; per-worker memo tables are a cache), so a failed
        level can be retried wholesale: on the first raising dispatch —
        a crashed/OOM-killed worker surfacing as an exception, the
        ``BrokenProcessPool`` shape — the pool is torn down, respawned
        once, and the level re-dispatched.  A second failure marks the
        sharder broken and raises :class:`PoolCrashError` for the
        caller's serial fallback.  ``KeyboardInterrupt`` never retries:
        workers are terminated+joined (no zombies) and the interrupt
        re-raised.
        """
        if self.broken:
            raise PoolCrashError("sharding pool is broken")
        fault = _pool_fault_check(
            "pool.dispatch", getattr(func, "__name__", "map")
        )
        try:
            if fault is not None:
                fault.stall()
                fault.raise_io()  # eio → the crashed-dispatch path
            return self.pool.map(func, tasks)
        except KeyboardInterrupt:
            if self.pool_key is not None:
                self.engine._pools.pop(self.pool_key, None)
            self.shutdown()
            raise
        except Exception as first:
            self.shutdown()
            if self.pool_key is not None:
                self.engine._pools.pop(self.pool_key, None)
            if self.make_pool is None:
                self.broken = True
                raise PoolCrashError(
                    f"sharding pool failed: {first!r}"
                ) from first
            try:
                self.pool = self.make_pool()
                self._closed = False
                if self.pool_key is not None:
                    self.engine._park_pool(self.pool_key, self.pool)
                retry_fault = _pool_fault_check(
                    "pool.dispatch", getattr(func, "__name__", "map")
                )
                if retry_fault is not None:
                    retry_fault.stall()
                    retry_fault.raise_io()  # → PoolCrashError → serial
                return self.pool.map(func, tasks)
            except KeyboardInterrupt:
                if self.pool_key is not None:
                    self.engine._pools.pop(self.pool_key, None)
                self.shutdown()
                raise
            except Exception as again:
                if self.pool_key is not None:
                    self.engine._pools.pop(self.pool_key, None)
                self.shutdown()
                self.broken = True
                raise PoolCrashError(
                    f"sharding pool failed twice: {again!r}"
                ) from again

    def _prefetch(self, mode: str, nodes: List[int], memo: Dict) -> None:
        engine = self.engine
        uniq = dict.fromkeys(nodes)
        todo = [n for n in uniq if n not in memo]
        hot = (
            self._last_hit_rate is not None
            and self._last_hit_rate >= self.hot_hit_rate
        )
        self._last_hit_rate = (
            1.0 if not uniq else 1.0 - len(todo) / len(uniq)
        )
        if not todo:
            return
        if hot or self.broken:
            # ``broken``: the pool died; prefetching is optimization-
            # only, so degrade silently to on-demand serial rows.
            self.skipped_prefetches += 1
            return
        stable = [engine.stable_of_node(n) for n in todo]
        chunk = self.chunk_size or max(1, -(-len(stable) // self.jobs))
        tasks = [
            (mode, stable[i : i + chunk])
            for i in range(0, len(stable), chunk)
        ]
        rows: Dict[int, tuple] = {}
        try:
            parts = self._pool_map(_worker_expand, tasks)
        except PoolCrashError:
            return  # rows stay cold; the serial path computes them
        for part in parts:
            for sn, row in part:
                rows[sn] = row
        store = engine.store_stable_row
        for node, sn in zip(todo, stable):
            store(mode, node, rows[sn])

    def prefetch_safety(self, nodes: List[int]) -> None:
        self._prefetch("safety", nodes, self.engine._safety_rows_ids)

    def prefetch_nodes(self, nodes: List[int]) -> None:
        self._prefetch("node", nodes, self.engine._node_rows)


class PairSharder:
    """Sharded *product BFS* backend over one :class:`Sharder`'s pool.

    Implements the kernel's pair-sharder protocol
    (:class:`repro.automata.kernel.PairSharder`): the kernel partitions
    each pair frontier by ``pair % jobs`` and calls
    :meth:`expand_pairs`; each shard becomes one pool task
    (:func:`_worker_expand_pairs`), in which the worker expands the
    pairs against its own seed-rebuilt TM engine and spec oracle.  Pairs
    travel as ``spec_packed << span_bits | stable_node`` — both halves
    process-independent: the spec component is the canonical packed
    Algorithm 6 state, the node component the codec-bits stable
    encoding.  The same backend serves the oracle-sided *and* the
    DFA-sided packed products: the materialized specification is exactly
    the reachable ``det_step`` graph, so workers stepping the compiled
    oracle traverse the identical product (pinned by the conformance
    matrix tests).
    """

    def __init__(self, sharder: Sharder, prop) -> None:
        self.sharder = sharder
        self.engine = sharder.engine
        self.jobs = sharder.jobs
        self.prop = prop
        self.span_bits = sharder.engine.node_span.bit_length() - 1

    def stable_pairs(self, packed_nodes: List[int]) -> List[int]:
        """Initial pairs in stable encoding: the initial spec state
        packs to 0, so these are the stable nodes themselves."""
        stable = self.engine.stable_of_node
        return [stable(p) for p in packed_nodes]

    def expand_pairs(
        self, shards: List[List[int]]
    ) -> List[Tuple[bool, Sequence[int]]]:
        """One pool task per shard, under :meth:`Sharder._pool_map`
        supervision — a dead pool here surfaces as
        :class:`PoolCrashError` mid-BFS, which ``check_safety`` answers
        with a byte-identical serial rerun (a failed ``map`` merges
        nothing into the parent, so no partial state leaks)."""
        tasks = [(self.prop, self.span_bits, shard) for shard in shards]
        return self.sharder._pool_map(_worker_expand_pairs, tasks)


def compile_tm(tm: TMAlgorithm) -> CompiledTM:
    """The (cached) compiled engine for ``tm``.

    The engine is memoized on the algorithm instance, so every check on
    the same instance — both Table 2 properties, the liveness graph, the
    size column — shares one set of interned views and transition rows.
    """
    engine = tm.__dict__.get("_compiled_engine")
    if engine is None:
        engine = CompiledTM(tm)
        tm._compiled_engine = engine  # type: ignore[attr-defined]
    return engine
