"""Compiled TM engine: packed states, interned views, memoized rows.

The naive explorer re-derives everything from tuples-of-frozensets on
every visit: each node is a deep composite ``(state, pending)`` tuple
that gets re-hashed at every dedup check, and ``tm.transitions`` is
re-run for every (node, command) pair even though nodes sharing a TM
state share all of their command transitions.  Explicit-state model
checkers win exactly here, with compact state encodings and cached
successor computation; this module applies both ideas to the paper's
TM algorithms:

* **interned thread views** — each per-thread view (e.g. DSTM's
  ``(status, rs, os)``) is bit-packed by a :class:`ViewCodec` (status
  index plus ``k``-bit masks for the read/write/ownership sets) and
  interned into a dense small id;
* **packed states** — a whole TM state is a single int with one
  fixed-width view-id digit per thread, and an explorer node adds the
  pending vector as base-``|C|+1`` digits, so every dict key on the hot
  path is a machine-word int;
* **memoized transition rows** — ``tm.transitions`` results are cached
  per ``(packed_state, thread, command)``, so nodes that differ only in
  their pending vectors share successor computations, and repeated runs
  (e.g. the two Table 2 properties of one TM) recompute nothing.

:class:`CompiledTM` keeps the ``initial_state``/``transitions`` contract
of :class:`~repro.tm.algorithm.TMAlgorithm` and adds the packed-node API
(``encode_node``/``decode_node``/``node_row``/``expand``) that
:mod:`repro.tm.explore` and the checking pipelines use.  Algorithms
without a registered codec (e.g. :class:`~repro.tm.compose.ManagedTM`,
whose state carries a manager component) fall back to interning whole
states — the row memoization and int-keyed BFS still apply.

The engine is exact: iteration orders are preserved everywhere, so the
compiled paths produce byte-identical verdicts, counterexamples, node
orders and edge lists to the naive paths (pinned by the differential
tests in ``tests/tm/test_compiled.py``).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..core.statements import Command, Kind, Statement
from .algorithm import ABORT_EXT, Ext, Resp, TMAlgorithm, TMState, Transition


# ----------------------------------------------------------------------
# View codecs: per-thread views <-> fixed-width packed ints
# ----------------------------------------------------------------------


class ViewCodec(NamedTuple):
    """Bijective packing of one thread view into a ``width``-bit int."""

    width: int
    pack: Callable[[Hashable], int]
    unpack: Callable[[int], Hashable]


def pack_varset(vars_: FrozenSet[int]) -> int:
    """A set of 1-based variables as a k-bit mask (variable v = bit v-1)."""
    mask = 0
    for v in vars_:
        mask |= 1 << (v - 1)
    return mask


def unpack_varset(mask: int) -> FrozenSet[int]:
    """Inverse of :func:`pack_varset`."""
    out = []
    v = 1
    while mask:
        if mask & 1:
            out.append(v)
        mask >>= 1
        v += 1
    return frozenset(out)


def status_mask_codec(
    k: int, statuses: Optional[Sequence[Hashable]], num_sets: int
) -> ViewCodec:
    """Codec for the paper's view shape: optional status + variable sets.

    Packs a view ``(status, set_1, ..., set_m)`` — or just
    ``(set_1, ..., set_m)`` when ``statuses`` is ``None`` — as the status
    index in the low bits followed by one ``k``-bit mask per set.
    """
    if statuses:
        status_list = tuple(statuses)
        sbits = max(1, (len(status_list) - 1).bit_length())
        sindex = {s: i for i, s in enumerate(status_list)}
    else:
        status_list = ()
        sbits = 0
        sindex = {}
    width = sbits + num_sets * k
    kmask = (1 << k) - 1
    smask = (1 << sbits) - 1

    def pack(view: Hashable) -> int:
        if status_list:
            bits = sindex[view[0]]  # type: ignore[index]
            sets = view[1:]  # type: ignore[index]
        else:
            bits = 0
            sets = view
        shift = sbits
        for s in sets:
            bits |= pack_varset(s) << shift
            shift += k
        return bits

    def unpack(bits: int) -> Hashable:
        parts: List[Hashable] = []
        if status_list:
            parts.append(status_list[bits & smask])
            bits >>= sbits
        for _ in range(num_sets):
            parts.append(unpack_varset(bits & kmask))
            bits >>= k
        return tuple(parts)

    return ViewCodec(width, pack, unpack)


# ----------------------------------------------------------------------
# The compiled engine
# ----------------------------------------------------------------------

#: One explorer transition from a packed node:
#: ``(thread_index, command_index, ext, resp, packed_successor_node)``.
NodeTransition = Tuple[int, int, Ext, Resp, int]


class CompiledTM:
    """A :class:`TMAlgorithm` compiled to packed-int states.

    Construct via :func:`compile_tm` to share one engine (and its memo
    tables) across every check on the same algorithm instance.
    """

    def __init__(self, tm: TMAlgorithm) -> None:
        self.tm = tm
        self.n = tm.n
        self.k = tm.k
        self.name = tm.name
        self._commands: Tuple[Command, ...] = tm.commands()
        self._ncmds = len(self._commands)
        self._cmd_index = {c: i for i, c in enumerate(self._commands)}
        self._pend_base = self._ncmds + 1
        self._pend_span = self._pend_base ** tm.n
        self._pend_pow = tuple(self._pend_base ** i for i in range(tm.n))
        self._all_cmd_indices = tuple(range(self._ncmds))

        self._codec = tm.view_codec()
        # View table: view -> dense id; dense id -> view.  On the
        # fallback path the "views" are whole TM states.
        self._view_ids: Dict[Hashable, int] = {}
        self._views: List[Hashable] = []
        # ``transitions`` may be overridden (e.g. ManagedTM); only the
        # base implementation can be decomposed into progress/φ/abort
        # without allocating Transition wrappers.
        self._generic_transitions = (
            type(tm).transitions is TMAlgorithm.transitions
        )
        self._decoded_states: Dict[int, TMState] = {}
        self._decoded_nodes: Dict[int, Tuple[TMState, tuple]] = {}

        # Memo tables (the whole point of the engine).
        self._cmd_rows: Dict[int, Tuple[Tuple[Ext, Resp, int], ...]] = {}
        self._node_rows: Dict[int, Tuple[NodeTransition, ...]] = {}
        self._safety_rows: Dict[int, tuple] = {}
        self._live_labels: Dict[Tuple[int, Ext, Resp], object] = {}

        # Interned observable labels for the safety view.
        self._done_stmt = tuple(
            tuple(Statement(c.kind, c.var, t) for c in self._commands)
            for t in range(1, tm.n + 1)
        )
        self._abort_stmt = tuple(
            Statement(Kind.ABORT, None, t) for t in range(1, tm.n + 1)
        )

    # ------------------------------------------------------------------
    # State packing
    # ------------------------------------------------------------------

    def _intern_view(self, view: Hashable) -> int:
        """Pack ``view`` to its k-bit-mask bits and assign a dense id.

        Dense ids stay below the number of distinct packed values, so
        ``width`` bits always suffice for a state digit — provided the
        codec really is a ``width``-bit bijection, which is checked here
        (once per distinct view) so a faulty custom codec fails loudly
        instead of silently corrupting packed states.
        """
        codec = self._codec
        bits = codec.pack(view)  # type: ignore[union-attr]
        if bits >> codec.width or codec.unpack(bits) != view:
            raise ValueError(
                f"{self.name}: view codec is not a {codec.width}-bit"
                f" bijection on {view!r} (packed to {bits:#x})"
            )
        vid = len(self._views)
        self._view_ids[view] = vid
        self._views.append(view)
        return vid

    def encode_state(self, state: TMState) -> int:
        """The packed int of a raw TM state (interning new views)."""
        codec = self._codec
        view_ids = self._view_ids
        if codec is None:
            packed = view_ids.get(state)
            if packed is None:
                packed = len(self._views)
                view_ids[state] = packed
                self._views.append(state)
                self._decoded_states[packed] = state
            return packed
        width = codec.width
        packed = 0
        shift = 0
        for view in state:  # type: ignore[union-attr]
            vid = view_ids.get(view)
            if vid is None:
                vid = self._intern_view(view)
            packed |= vid << shift
            shift += width
        return packed

    def decode_state(self, packed: int) -> TMState:
        """Inverse of :func:`encode_state` (memoized)."""
        state = self._decoded_states.get(packed)
        if state is None:
            codec = self._codec
            assert codec is not None  # fallback path always pre-populates
            views = self._views
            mask = (1 << codec.width) - 1
            width = codec.width
            p = packed
            out = []
            for _ in range(self.n):
                out.append(views[p & mask])
                p >>= width
            state = tuple(out)
            self._decoded_states[packed] = state
        return state

    def encode_node(self, node: Tuple[TMState, tuple]) -> int:
        """Pack an explorer node ``(state, pending)`` into one int."""
        state, pending = node
        base = self._pend_base
        cmd_index = self._cmd_index
        packed_pending = 0
        for slot in reversed(pending):
            digit = 0 if slot is None else cmd_index[slot] + 1
            packed_pending = packed_pending * base + digit
        return self.encode_state(state) * self._pend_span + packed_pending

    def decode_node(self, packed: int) -> Tuple[TMState, tuple]:
        """Inverse of :func:`encode_node` (memoized)."""
        node = self._decoded_nodes.get(packed)
        if node is None:
            packed_state, packed_pending = divmod(packed, self._pend_span)
            base = self._pend_base
            commands = self._commands
            pending = []
            for _ in range(self.n):
                packed_pending, digit = divmod(packed_pending, base)
                pending.append(None if digit == 0 else commands[digit - 1])
            node = (self.decode_state(packed_state), tuple(pending))
            self._decoded_nodes[packed] = node
        return node

    def initial_node_packed(self) -> int:
        return self.encode_node((self.tm.initial_state(), (None,) * self.n))

    # ------------------------------------------------------------------
    # Memoized transition rows
    # ------------------------------------------------------------------

    def _cmd_row(
        self, packed_state: int, ti: int, ci: int
    ) -> Tuple[Tuple[Ext, Resp, int], ...]:
        """``tm.transitions`` for ``(state, thread ti+1, command ci)``,
        with packed successor states, computed once per engine."""
        key = (packed_state * self.n + ti) * self._ncmds + ci
        row = self._cmd_rows.get(key)
        if row is None:
            state = self.decode_state(packed_state)
            cmd = self._commands[ci]
            thread = ti + 1
            encode = self.encode_state
            tm = self.tm
            if self._generic_transitions:
                # Inline TMAlgorithm.transitions without Transition
                # wrappers: progress entries plus the derived abort.
                prog = tm.progress(state, cmd, thread)
                entries = [
                    (ext, resp, encode(succ)) for ext, resp, succ in prog
                ]
                if not prog or tm.conflict(state, cmd, thread):
                    entries.append(
                        (
                            ABORT_EXT,
                            Resp.ABORT,
                            encode(tm.abort_reset(state, thread)),
                        )
                    )
                row = tuple(entries)
            else:
                row = tuple(
                    (tr.ext, tr.resp, encode(tr.state))
                    for tr in tm.transitions(state, cmd, thread)
                )
            self._cmd_rows[key] = row
        return row

    def _pending_digits(self, packed_pending: int) -> List[int]:
        base = self._pend_base
        digits = []
        for _ in range(self.n):
            packed_pending, digit = divmod(packed_pending, base)
            digits.append(digit)
        return digits

    def node_row(self, packed_node: int) -> Tuple[NodeTransition, ...]:
        """All explorer transitions from a packed node, in the exact
        order of :func:`repro.tm.explore.iter_node_transitions`."""
        row = self._node_rows.get(packed_node)
        if row is None:
            packed_state, packed_pending = divmod(packed_node, self._pend_span)
            pend_pow = self._pend_pow
            cmd_row = self._cmd_row
            entries: List[NodeTransition] = []
            digits = self._pending_digits(packed_pending)
            for ti in range(self.n):
                digit = digits[ti]
                cmd_indices = (
                    (digit - 1,) if digit else self._all_cmd_indices
                )
                for ci in cmd_indices:
                    for ext, resp, succ_state in cmd_row(packed_state, ti, ci):
                        new_digit = ci + 1 if resp is Resp.BOT else 0
                        succ_pending = (
                            packed_pending
                            + (new_digit - digit) * pend_pow[ti]
                        )
                        entries.append(
                            (
                                ti,
                                ci,
                                ext,
                                resp,
                                succ_state * self._pend_span + succ_pending,
                            )
                        )
            row = tuple(entries)
            self._node_rows[packed_node] = row
        return row

    def expand(
        self, frontier: Iterable[int]
    ) -> List[Tuple[int, Tuple[NodeTransition, ...]]]:
        """Batched successor computation: rows for a whole frontier."""
        node_row = self.node_row
        return [(node, node_row(node)) for node in frontier]

    # ------------------------------------------------------------------
    # Checker-facing views
    # ------------------------------------------------------------------

    def safety_row(self, packed_node: int) -> tuple:
        """The safety view of a node as a pre-grouped kernel row.

        Returns ``((symbol_or_None, (packed_succ, ...)), ...)`` with
        symbols grouped in first-occurrence order and successors
        deduplicated and ordered exactly as the naive lazy kernel would
        have produced (``repr``-sorted decoded nodes), so product BFS
        over these rows is byte-identical to the naive path.
        """
        row = self._safety_rows.get(packed_node)
        if row is None:
            # Assembled straight from the memoized command rows (not via
            # node_row) — the safety product is the hot path and skips
            # materializing per-node transition tuples.
            packed_state, packed_pending = divmod(packed_node, self._pend_span)
            pend_span = self._pend_span
            pend_pow = self._pend_pow
            cmd_row = self._cmd_row
            done_stmt = self._done_stmt
            abort_stmt = self._abort_stmt
            grouped: Dict[Optional[Statement], List[int]] = {}
            digits = self._pending_digits(packed_pending)
            for ti in range(self.n):
                digit = digits[ti]
                cmd_indices = (
                    (digit - 1,) if digit else self._all_cmd_indices
                )
                base_pending = packed_pending - digit * pend_pow[ti]
                for ci in cmd_indices:
                    for _ext, resp, succ_state in cmd_row(
                        packed_state, ti, ci
                    ):
                        if resp is Resp.BOT:
                            key = None
                            succ_pending = base_pending + (ci + 1) * pend_pow[ti]
                        elif resp is Resp.DONE:
                            key = done_stmt[ti][ci]
                            succ_pending = base_pending
                        else:
                            key = abort_stmt[ti]
                            succ_pending = base_pending
                        grouped.setdefault(key, []).append(
                            succ_state * pend_span + succ_pending
                        )
            decode = self.decode_node
            out = []
            for symbol, succs in grouped.items():
                if len(succs) > 1:
                    succs = sorted(
                        set(succs), key=lambda p: repr(decode(p))
                    )
                out.append((symbol, tuple(succs)))
            row = tuple(out)
            self._safety_rows[packed_node] = row
        return row

    def liveness_row(self, packed_node: int) -> tuple:
        """The liveness view of a node: ``(ExtStatement, packed_succ)``
        pairs in explorer order, with interned labels."""
        from .explore import ExtStatement

        labels = self._live_labels
        out = []
        for ti, _ci, ext, resp, succ in self.node_row(packed_node):
            key = (ti, ext, resp)
            label = labels.get(key)
            if label is None:
                label = labels[key] = ExtStatement(
                    ti + 1, ext.name, ext.var, resp
                )
            out.append((label, succ))
        return tuple(out)

    # ------------------------------------------------------------------
    # TMAlgorithm-compatible contract
    # ------------------------------------------------------------------

    def initial_state(self) -> TMState:
        return self.tm.initial_state()

    def transitions(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Transition]:
        """Same contract as :meth:`TMAlgorithm.transitions`, served from
        the memoized rows."""
        packed = self.encode_state(state)
        decode = self.decode_state
        return [
            Transition(ext, resp, decode(succ))
            for ext, resp, succ in self._cmd_row(
                packed, thread - 1, self._cmd_index[cmd]
            )
        ]

    def commands(self) -> Tuple[Command, ...]:
        """The cached command set ``C`` (same contract as
        :meth:`TMAlgorithm.commands`)."""
        return self._commands

    def threads(self) -> range:
        return range(1, self.n + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Sizes of the intern/memo tables (for benchmarks and tests)."""
        return {
            "views": len(self._views),
            "decoded_states": len(self._decoded_states),
            "decoded_nodes": len(self._decoded_nodes),
            "cmd_rows": len(self._cmd_rows),
            "node_rows": len(self._node_rows),
            "safety_rows": len(self._safety_rows),
        }


def compile_tm(tm: TMAlgorithm) -> CompiledTM:
    """The (cached) compiled engine for ``tm``.

    The engine is memoized on the algorithm instance, so every check on
    the same instance — both Table 2 properties, the liveness graph, the
    size column — shares one set of interned views and transition rows.
    """
    engine = tm.__dict__.get("_compiled_engine")
    if engine is None:
        engine = CompiledTM(tm)
        tm._compiled_engine = engine  # type: ignore[attr-defined]
    return engine
