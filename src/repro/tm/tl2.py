"""TL2 — transactional locking II (paper Algorithm 4 and Section 5.4).

TL2 buffers writes, locks the write set at commit time, validates the read
set, and only then commits.  The paper models version clocks with
per-thread *modified sets* ``ms``: when a transaction commits, its write
set is added to the modified set of every thread with an active
transaction, and a read or validation touching a modified variable fails.

Two deliberate transcription fixes, documented in DESIGN.md:

* Algorithm 4's ``validate`` contains a stray reference to ``os(u)`` — a
  DSTM field TL2 does not have.  The intended conjunct is the *chklock*
  operation of Section 5.4: no variable of the read set may be locked by
  another thread.  Validation here is therefore
  ``rs∩ms = ∅ ∧ ws = ls ∧ ∀u≠t: rs∩ls(u) = ∅`` (atomic).
* The ``ms`` update guard at commit reads ``rs(t) ∪ ws(t) ≠ ∅`` in the
  paper; we apply it to the *other* thread (``rs(u) ∪ ws(u) ≠ ∅``),
  matching the prose "every thread with an unfinished transaction".

Reads optionally check locks (``read_checks_lock=True``, the default):
a global read of a variable currently locked by another thread has no
progress transition and aborts.  Published TL2 behaves this way (the
lock bit is sampled together with the version number); it is also what
makes Table 3's obstruction-freedom counterexample for TL2+polite the
one-statement loop ``a1``.  Set it to ``False`` for the strictly literal
Algorithm 4 read; all verdicts are unchanged, only the liveness
counterexample grows.

:class:`ModifiedTL2` is the Section 5.4 refinement: ``validate`` split
into atomic ``rvalidate`` (version check) followed by atomic ``chklock``
(lock check).  The window between them loses a conflict, and the checker
finds the paper's counterexample
``(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from ..core.statements import Command, Kind
from .algorithm import Ext, Resp, TMAlgorithm, TMState

FINISHED = "fin"
ABORTED = "abt"
VALIDATED = "val"
RVALIDATED = "rv"  # modified TL2 only: version check passed, lock check due

# (status, rs, ws, ls, ms)
ThreadView = Tuple[str, FrozenSet[int], FrozenSet[int], FrozenSet[int], FrozenSet[int]]

EMPTY: FrozenSet[int] = frozenset()
RESET: ThreadView = (FINISHED, EMPTY, EMPTY, EMPTY, EMPTY)


class TL2(TMAlgorithm):
    """Algorithm 4: ``getTL2`` with atomic validation.

    State: a tuple of ``(status, rs, ws, ls, ms)`` per thread.
    """

    name = "TL2"

    def __init__(self, n: int, k: int, *, read_checks_lock: bool = True) -> None:
        super().__init__(n, k)
        self.read_checks_lock = read_checks_lock

    def initial_state(self) -> TMState:
        return (RESET,) * self.n

    @staticmethod
    def _with(
        state: Tuple[ThreadView, ...], thread: int, view: ThreadView
    ) -> Tuple[ThreadView, ...]:
        idx = thread - 1
        return state[:idx] + (view,) + state[idx + 1 :]

    def conflict(self, state: TMState, cmd: Command, thread: int) -> bool:
        """φ: a commit whose write set hits a foreign lock (Algorithm 4)."""
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        if cmd.kind is not Kind.COMMIT:
            return False
        _, _, ws, _, _ = views[thread - 1]
        return any(
            ws & ls_u
            for u, (_, _, _, ls_u, _) in enumerate(views, start=1)
            if u != thread
        )

    # ------------------------------------------------------------------
    # Command handling
    # ------------------------------------------------------------------

    def _locked_by_other(
        self, views: Tuple[ThreadView, ...], thread: int, v: int
    ) -> bool:
        return any(
            v in ls_u
            for u, (_, _, _, ls_u, _) in enumerate(views, start=1)
            if u != thread
        )

    def _read_set_locked_by_other(
        self, views: Tuple[ThreadView, ...], thread: int, rs: FrozenSet[int]
    ) -> bool:
        return any(
            rs & ls_u
            for u, (_, _, _, ls_u, _) in enumerate(views, start=1)
            if u != thread
        )

    def _validation_progress(
        self, views: Tuple[ThreadView, ...], thread: int, view: ThreadView
    ) -> List[Tuple[Ext, Resp, TMState]]:
        """The validation step(s) once all write locks are held.

        Atomic TL2: one ``validate`` doing the version check *and* the
        lock check (see module docstring).  Overridden by
        :class:`ModifiedTL2`.
        """
        status, rs, ws, ls, ms = view
        if status != FINISHED:
            return []
        if rs & ms:
            return []
        if self._read_set_locked_by_other(views, thread, rs):
            return []
        new = self._with(views, thread, (VALIDATED, rs, ws, ls, ms))
        return [(Ext("validate"), Resp.BOT, new)]

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        view = views[thread - 1]
        status, rs, ws, ls, ms = view

        if cmd.kind is Kind.READ:
            v = cmd.var
            assert v is not None
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            if v in ms:
                return []  # modified since this transaction began
            if self.read_checks_lock and self._locked_by_other(views, thread, v):
                return []  # lock bit set: published TL2 aborts the read
            new = self._with(views, thread, (status, rs | {v}, ws, ls, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]

        if cmd.kind is Kind.WRITE:
            v = cmd.var
            assert v is not None
            new = self._with(views, thread, (status, rs, ws | {v}, ls, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]

        assert cmd.kind is Kind.COMMIT
        unlocked = sorted(ws - ls)
        if status == FINISHED and unlocked:
            # Acquire the next write lock, stealing it (and aborting the
            # holder) if necessary; deterministic order keeps rule R8.
            v = unlocked[0]
            new = list(views)
            new[thread - 1] = (status, rs, ws, ls | {v}, ms)
            for u, (st_u, rs_u, ws_u, ls_u, ms_u) in enumerate(views, start=1):
                if u != thread and v in ls_u:
                    new[u - 1] = (ABORTED, rs_u, ws_u, ls_u, ms_u)
            return [(Ext("lock", v), Resp.BOT, tuple(new))]
        if status == VALIDATED:
            # Commit proper: publish the write set into the modified sets
            # of threads with active transactions, release everything.
            new = list(views)
            new[thread - 1] = RESET
            for u, (st_u, rs_u, ws_u, ls_u, ms_u) in enumerate(views, start=1):
                if u != thread and (rs_u | ws_u):
                    new[u - 1] = (st_u, rs_u, ws_u, ls_u, ms_u | ws)
            return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]
        return self._validation_progress(views, thread, view)

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        return self._with(views, thread, RESET)

    def view_codec(self):
        from .compiled import status_mask_codec

        return status_mask_codec(
            self.k,
            (FINISHED, ABORTED, VALIDATED, RVALIDATED),
            4,  # (rs, ws, ls, ms)
        )


class ModifiedTL2(TL2):
    """Section 5.4's modified TL2: ``validate`` split into atomic
    ``rvalidate`` followed by atomic ``chklock``.

    The version check can pass before a concurrent committer updates the
    modified sets, and the lock check can pass after that committer
    releases its locks — the unsafe window Table 2 exposes.
    """

    name = "modTL2"

    def _validation_progress(
        self, views: Tuple[ThreadView, ...], thread: int, view: ThreadView
    ) -> List[Tuple[Ext, Resp, TMState]]:
        status, rs, ws, ls, ms = view
        if status == FINISHED:
            if rs & ms:
                return []
            new = self._with(views, thread, (RVALIDATED, rs, ws, ls, ms))
            return [(Ext("rvalidate"), Resp.BOT, new)]
        if status == RVALIDATED:
            if self._read_set_locked_by_other(views, thread, rs):
                return []
            new = self._with(views, thread, (VALIDATED, rs, ws, ls, ms))
            return [(Ext("chklock"), Resp.BOT, new)]
        return []
