"""Seeded TM mutants: named rule perturbations for the bug-hunt farm.

The paper's headline result is that the checker *finds bugs* — the
Section 5.4 TL2 validation-split flaw.  This module generalizes that
single hand-written mutant into a deterministic generator: each operator
below perturbs one rule of a framework TM — drop or weaken a validation
conjunct, reorder lock acquisition, skip a version bump, widen a commit
window — and the hunt layer (:mod:`repro.campaign.hunt`) sweeps every
mutant through the full safety matrix, verifying the checker catches
every seeded bug and kills no correct variant.

Identity
--------

A mutant id is ``<base>/<operator>`` with an optional ``@seed<N>``
suffix — ``tl2/drop-rvalidate``, ``tl2/skip-version-bump@seed3``.  The
seed feeds a :class:`random.Random` that draws the operator's parameter
(which variable's version bump to skip, which lock-acquisition
permutation); parameterless operators are seed-invariant but still
accept a seed so campaign specs can name replicates.  ``seed 0`` is the
default and renders without the suffix.  The id doubles as the TM's
``name``, which keys the compiled engine's warm cache — two mutants
never share cached tables.

Mutant classes are statically defined (picklable, so the sharded
product's spawn seeds work for default-seed mutants; non-zero seeds
fail the :func:`repro.tm.compiled._spawn_seed` reconstruction probe and
degrade gracefully to serial sharding) and override only
``progress``/``initial_state``/``view_codec`` — never ``transitions`` —
so they ride the compiled fast path like any framework TM.

Expected verdicts
-----------------

``expect_bug`` on each operator records the *verified* ground truth at
the hunt's swept sizes (see ``tests/tm/test_mutate.py``, which pins
every verdict at (2, 2)).  Three operators are deliberate true
negatives — mutant-shaped changes that are **not** bugs:

* ``tl2/shuffle-lock-order`` — commit-time lock acquisition order is
  safety-neutral because acquisition steals (aborting the holder);
  any permutation yields the same conflict resolution.
* ``dstm/drop-validate`` / ``dstm/own-no-steal`` — DSTM's validate-
  aborts-owners step and ownership stealing are each redundant with
  commit-time invalidation at the swept sizes: invalidation alone
  still kills every reader of a committed write.
* ``opt/drop-ws-validation`` — dropping the write-set conjunct from the
  optimistic TM's commit check is exactly NOrec-style value validation
  (:class:`repro.tm.norec.NOrecTM`), safe because buffered writes
  cannot be invalidated.

One operator is property-sensitive: ``opt/read-ignores-ms`` preserves
strict serializability at (2, 2) but breaks opacity — the reason hunts
sweep mutants × {SS, OP}, not SS alone.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple, Type

from ..core.statements import Kind
from .algorithm import Ext, Resp, TMAlgorithm, TMState
from .dstm import DSTM
from .dstm import (
    ABORTED as D_ABORTED,
    FINISHED as D_FINISHED,
    INVALID as D_INVALID,
    RESET as D_RESET,
    VALIDATED as D_VALIDATED,
)
from .optimistic import OptimisticTM
from .tl2 import (
    ABORTED as T_ABORTED,
    FINISHED as T_FINISHED,
    RESET as T_RESET,
    VALIDATED as T_VALIDATED,
    ModifiedTL2,
    TL2,
)
from .two_phase_locking import TwoPhaseLockingTM

EMPTY: frozenset = frozenset()


def format_mutant_id(operator: str, seed: int = 0) -> str:
    """``tl2/drop-rvalidate`` / ``tl2/drop-rvalidate@seed3``."""
    return operator if seed == 0 else f"{operator}@seed{seed}"


def parse_mutant_id(text: str) -> Tuple[str, int]:
    """Split a mutant id into ``(operator, seed)``.

    Raises ``ValueError`` for ids that are not ``<operator>`` or
    ``<operator>@seed<N>`` with a known operator — the CLI maps that to
    exit 2 and the campaign spec layer to a :class:`CampaignSpecError`.
    """
    operator, sep, suffix = text.partition("@")
    seed = 0
    if sep:
        if not suffix.startswith("seed") or not suffix[4:].isdigit():
            raise ValueError(
                f"bad mutant seed suffix {text!r}"
                " (expected <operator>@seed<N>)"
            )
        seed = int(suffix[4:])
    if operator not in OPERATORS:
        raise ValueError(
            f"unknown mutant operator {operator!r}"
            f" (choose from {sorted(OPERATORS)})"
        )
    return operator, seed


def is_mutant_id(text: str) -> bool:
    """Whether ``text`` names a known mutant (any seed)."""
    try:
        parse_mutant_id(text)
    except ValueError:
        return False
    return True


def make_mutant(text: str, n: int, k: int) -> TMAlgorithm:
    """Instantiate the mutant named by ``text`` at size ``(n, k)``."""
    operator, seed = parse_mutant_id(text)
    return OPERATORS[operator](n, k, seed=seed)


def mutant_expectation(text: str) -> bool:
    """``expect_bug`` for the mutant named by ``text``."""
    operator, _seed = parse_mutant_id(text)
    return OPERATORS[operator].expect_bug


class MutantTM:
    """Mixin carrying a mutant's identity over its base TM class.

    Subclasses set ``operator`` (the id stem), ``expect_bug`` (the
    verified ground truth) and ``summary`` (one line for reports), and
    may read ``self.seed`` / :meth:`_rng` in ``__init__`` to draw
    operator parameters deterministically.
    """

    operator: str
    expect_bug: bool
    summary: str

    def __init__(self, n: int, k: int, seed: int = 0) -> None:
        self.seed = int(seed)
        super().__init__(n, k)
        self.name = format_mutant_id(self.operator, self.seed)

    def _rng(self) -> random.Random:
        return random.Random(self.seed)


# ----------------------------------------------------------------------
# TL2 operators
# ----------------------------------------------------------------------


class TL2SplitValidation(MutantTM, ModifiedTL2):
    """The Section 5.4 bug itself: ``validate`` split into atomic
    ``rvalidate`` + ``chklock``, reintroduced as a farm mutant so the
    hunt rediscovers the paper's counterexample automatically."""

    operator = "tl2/split-validation"
    expect_bug = True
    summary = "split validate into rvalidate + chklock (Section 5.4)"


class TL2DropRvalidate(MutantTM, TL2):
    """Validation skips the version check ``rs ∩ ms = ∅``: a lost
    update — two writers of one variable both commit."""

    operator = "tl2/drop-rvalidate"
    expect_bug = True
    summary = "drop the version (read-set vs modified-set) check"

    def _validation_progress(self, views, thread, view):
        status, rs, ws, ls, ms = view
        if status != T_FINISHED:
            return []
        # version check (rs & ms) dropped
        if self._read_set_locked_by_other(views, thread, rs):
            return []
        new = self._with(views, thread, (T_VALIDATED, rs, ws, ls, ms))
        return [(Ext("validate"), Resp.BOT, new)]


class TL2DropChklock(MutantTM, TL2):
    """Validation skips the lock check ``∀u≠t: rs ∩ ls(u) = ∅``: a
    committer may validate over a read set another thread has locked."""

    operator = "tl2/drop-chklock"
    expect_bug = True
    summary = "drop the read-set lock (chklock) check"

    def _validation_progress(self, views, thread, view):
        status, rs, ws, ls, ms = view
        if status != T_FINISHED:
            return []
        if rs & ms:
            return []
        # lock check dropped
        new = self._with(views, thread, (T_VALIDATED, rs, ws, ls, ms))
        return [(Ext("validate"), Resp.BOT, new)]


class TL2SkipVersionBump(MutantTM, TL2):
    """Commit skips the version bump of one (seed-chosen) variable: its
    writes never land in anyone's modified set, so a double read of it
    straddling a commit goes unnoticed."""

    operator = "tl2/skip-version-bump"
    expect_bug = True
    summary = "commit skips one variable's version bump (seed-chosen)"

    def __init__(self, n: int, k: int, seed: int = 0) -> None:
        super().__init__(n, k, seed=seed)
        self._skip_var = 1 + self._rng().randrange(k)

    def progress(self, state, cmd, thread):
        views = state
        status, rs, ws, ls, ms = views[thread - 1]
        if cmd.kind is Kind.COMMIT and status == T_VALIDATED:
            published = ws - {self._skip_var}
            new = list(views)
            new[thread - 1] = T_RESET
            for u, (st_u, rs_u, ws_u, ls_u, ms_u) in enumerate(
                views, start=1
            ):
                if u != thread and (rs_u | ws_u):
                    new[u - 1] = (st_u, rs_u, ws_u, ls_u, ms_u | published)
            return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]
        return super().progress(state, cmd, thread)


class TL2ShuffleLockOrder(MutantTM, TL2):
    """Commit acquires write locks in a seed-drawn permutation instead
    of sorted order — a **correct** variant: acquisition steals (and
    aborts the holder), so any deterministic order resolves conflicts
    identically.  The farm's TL2-shaped true negative."""

    operator = "tl2/shuffle-lock-order"
    expect_bug = False
    summary = "permute commit-time lock acquisition order (seed-chosen)"

    def __init__(self, n: int, k: int, seed: int = 0) -> None:
        super().__init__(n, k, seed=seed)
        order = list(range(1, k + 1))
        self._rng().shuffle(order)
        self._lock_rank = {v: i for i, v in enumerate(order)}

    def progress(self, state, cmd, thread):
        views = state
        status, rs, ws, ls, ms = views[thread - 1]
        if cmd.kind is Kind.COMMIT:
            unlocked = ws - ls
            if status == T_FINISHED and unlocked:
                v = min(unlocked, key=self._lock_rank.__getitem__)
                new = list(views)
                new[thread - 1] = (status, rs, ws, ls | {v}, ms)
                for u, (st_u, rs_u, ws_u, ls_u, ms_u) in enumerate(
                    views, start=1
                ):
                    if u != thread and v in ls_u:
                        new[u - 1] = (T_ABORTED, rs_u, ws_u, ls_u, ms_u)
                return [(Ext("lock", v), Resp.BOT, tuple(new))]
        return super().progress(state, cmd, thread)


# ----------------------------------------------------------------------
# 2PL operators
# ----------------------------------------------------------------------


class TPLNoRlock(MutantTM, TwoPhaseLockingTM):
    """Reads take no shared lock at all — not even the availability
    check — so a read slips under any foreign exclusive lock."""

    operator = "2pl/no-rlock"
    expect_bug = True
    summary = "reads take (and check) no shared lock"

    def progress(self, state, cmd, thread):
        if cmd.kind is Kind.READ:
            return [(Ext.of_command(cmd), Resp.DONE, state)]
        return super().progress(state, cmd, thread)


class TPLEarlyRelease(MutantTM, TwoPhaseLockingTM):
    """Reads respect foreign exclusive locks but release their shared
    lock immediately — two-phase discipline broken: a writer can slip
    between two reads of the same transaction."""

    operator = "2pl/early-release"
    expect_bug = True
    summary = "shared locks released at read completion, not commit"

    def progress(self, state, cmd, thread):
        if cmd.kind is Kind.READ:
            locks = state
            rs, ws = locks[thread - 1]
            v = cmd.var
            if v in ws or v in rs:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            blocked = any(
                v in ws_u
                for u, (_, ws_u) in enumerate(locks, start=1)
                if u != thread
            )
            if blocked:
                return []
            # lock held only for the read itself: rs never grows
            return [(Ext.of_command(cmd), Resp.DONE, state)]
        return super().progress(state, cmd, thread)


class TPLWlockIgnoresReaders(MutantTM, TwoPhaseLockingTM):
    """Exclusive-lock acquisition checks only foreign exclusive locks,
    ignoring shared ones: a writer commits over an active reader."""

    operator = "2pl/wlock-ignores-readers"
    expect_bug = True
    summary = "exclusive locks ignore foreign shared locks"

    def progress(self, state, cmd, thread):
        if cmd.kind is Kind.WRITE:
            locks = state
            rs, ws = locks[thread - 1]
            v = cmd.var
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            blocked = any(
                v in ws_u  # foreign shared locks ignored
                for u, (_, ws_u) in enumerate(locks, start=1)
                if u != thread
            )
            if blocked:
                return []
            new = self._with(locks, thread, rs, ws | {v})
            return [(Ext("wlock", v), Resp.BOT, new)]
        return super().progress(state, cmd, thread)


# ----------------------------------------------------------------------
# DSTM operators
# ----------------------------------------------------------------------


class DSTMDropValidate(MutantTM, DSTM):
    """``validate`` no longer aborts the owners of the read set — a
    **correct** variant at the swept sizes: commit-proper invalidation
    still kills every reader a commit would have harmed."""

    operator = "dstm/drop-validate"
    expect_bug = False
    summary = "validate no longer aborts read-set owners"

    def progress(self, state, cmd, thread):
        views = state
        status, rs, os_ = views[thread - 1]
        if cmd.kind is Kind.COMMIT and status == D_FINISHED:
            new = list(views)
            new[thread - 1] = (D_VALIDATED, rs, os_)
            # read-set owners are NOT aborted
            return [(Ext("validate"), Resp.BOT, tuple(new))]
        return super().progress(state, cmd, thread)


class DSTMSkipInvalidate(MutantTM, DSTM):
    """Commit proper no longer invalidates readers of the committed
    ownership set: a double read straddles the commit unnoticed."""

    operator = "dstm/skip-invalidate"
    expect_bug = True
    summary = "commit proper skips reader invalidation"

    def progress(self, state, cmd, thread):
        views = state
        status, rs, os_ = views[thread - 1]
        if cmd.kind is Kind.COMMIT and status == D_VALIDATED:
            new = list(views)
            new[thread - 1] = D_RESET
            # readers of the committed ownership set stay valid
            return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]
        return super().progress(state, cmd, thread)


class DSTMInvalidCanCommit(MutantTM, DSTM):
    """An invalidated thread may still validate and commit, re-entering
    the commit path as if its reads were never invalidated."""

    operator = "dstm/invalid-can-commit"
    expect_bug = True
    summary = "invalidated transactions may still commit"

    def progress(self, state, cmd, thread):
        views = state
        status, rs, os_ = views[thread - 1]
        if cmd.kind is Kind.COMMIT and status == D_INVALID:
            new = list(views)
            new[thread - 1] = (D_VALIDATED, rs, os_)
            for u, (st_u, _, os_u) in enumerate(views, start=1):
                if u != thread and rs & os_u:
                    new[u - 1] = (D_ABORTED, EMPTY, EMPTY)
            return [(Ext("validate"), Resp.BOT, tuple(new))]
        return super().progress(state, cmd, thread)


class DSTMOwnNoSteal(MutantTM, DSTM):
    """Ownership acquisition no longer steals (aborts the holder), so
    several threads can "own" one variable — **correct** at the swept
    sizes: commit-proper invalidation is again the real protection."""

    operator = "dstm/own-no-steal"
    expect_bug = False
    summary = "ownership acquisition no longer aborts the holder"

    def progress(self, state, cmd, thread):
        views = state
        status, rs, os_ = views[thread - 1]
        if (
            cmd.kind is Kind.WRITE
            and status != D_ABORTED
            and cmd.var not in os_
        ):
            v = cmd.var
            new = list(views)
            new[thread - 1] = (status, rs, os_ | {v})
            # the previous owner keeps its status (shared "ownership")
            return [(Ext("own", v), Resp.BOT, tuple(new))]
        return super().progress(state, cmd, thread)


# ----------------------------------------------------------------------
# Optimistic-TM operators
# ----------------------------------------------------------------------


class OptReadIgnoresMs(MutantTM, OptimisticTM):
    """Reads skip the staleness check against the modified set.  The
    commit-time check still enforces strict serializability at the
    default hunt sizes, but a transaction can *observe* inconsistent
    state before aborting — an opacity-only violation, and the reason
    hunts sweep both properties."""

    operator = "opt/read-ignores-ms"
    expect_bug = True
    summary = "reads skip the modified-set staleness check (OP-only)"

    def progress(self, state, cmd, thread):
        views = state
        rs, ws, ms = views[thread - 1]
        if cmd.kind is Kind.READ:
            v = cmd.var
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            # staleness check dropped: stale reads proceed
            new = self._with(views, thread, (rs | {v}, ws, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]
        return super().progress(state, cmd, thread)


class OptSplitCommit(MutantTM, OptimisticTM):
    """The commit window widened: validation and write-back become two
    atomic steps, and the publish step never re-checks — the same
    unsafe window shape as the Section 5.4 TL2 flaw."""

    operator = "opt/split-commit"
    expect_bug = True
    summary = "commit split into validate + publish (window widened)"

    _FIN = "fin"
    _VAL = "val"

    def initial_state(self) -> TMState:
        return ((self._FIN, EMPTY, EMPTY, EMPTY),) * self.n

    def progress(self, state, cmd, thread):
        views = state
        status, rs, ws, ms = views[thread - 1]
        if cmd.kind is Kind.READ:
            v = cmd.var
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            if v in ms:
                return []
            new = self._with(views, thread, (status, rs | {v}, ws, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]
        if cmd.kind is Kind.WRITE:
            v = cmd.var
            new = self._with(views, thread, (status, rs, ws | {v}, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]
        if status == self._FIN:
            if (rs | ws) & ms:
                return []
            new = self._with(views, thread, (self._VAL, rs, ws, ms))
            return [(Ext("validate"), Resp.BOT, new)]
        # publish without re-validating: the widened window
        new = list(views)
        new[thread - 1] = (self._FIN, EMPTY, EMPTY, EMPTY)
        for u, (st_u, rs_u, ws_u, ms_u) in enumerate(views, start=1):
            if u != thread and (rs_u | ws_u):
                new[u - 1] = (st_u, rs_u, ws_u, ms_u | ws)
        return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]

    def abort_reset(self, state, thread):
        views = state
        return self._with(views, thread, (self._FIN, EMPTY, EMPTY, EMPTY))

    def view_codec(self):
        from .compiled import status_mask_codec

        return status_mask_codec(
            self.k, (self._FIN, self._VAL), 3  # (rs, ws, ms)
        )


class OptDropWsValidation(MutantTM, OptimisticTM):
    """Commit drops the write-set conjunct, checking ``rs ∩ ms`` only —
    behaviourally :class:`repro.tm.norec.NOrecTM`, and **correct**: the
    farm's value-validation true negative."""

    operator = "opt/drop-ws-validation"
    expect_bug = False
    summary = "commit checks the read set only (NOrec value validation)"

    def progress(self, state, cmd, thread):
        views = state
        rs, ws, ms = views[thread - 1]
        if cmd.kind is Kind.COMMIT:
            if rs & ms:  # the write-set conjunct no longer blocks
                return []
            new = list(views)
            new[thread - 1] = (EMPTY, EMPTY, EMPTY)
            for u, (rs_u, ws_u, ms_u) in enumerate(views, start=1):
                if u != thread and (rs_u | ws_u):
                    new[u - 1] = (rs_u, ws_u, ms_u | ws)
            return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]
        return super().progress(state, cmd, thread)


#: Every operator, keyed by id stem.  ``expect_bug`` on the class is the
#: verified ground truth pinned by ``tests/tm/test_mutate.py``.
OPERATORS: Dict[str, Type[MutantTM]] = {
    cls.operator: cls
    for cls in (
        TL2SplitValidation,
        TL2DropRvalidate,
        TL2DropChklock,
        TL2SkipVersionBump,
        TL2ShuffleLockOrder,
        TPLNoRlock,
        TPLEarlyRelease,
        TPLWlockIgnoresReaders,
        DSTMDropValidate,
        DSTMSkipInvalidate,
        DSTMInvalidCanCommit,
        DSTMOwnNoSteal,
        OptReadIgnoresMs,
        OptSplitCommit,
        OptDropWsValidation,
    )
}


def default_mutants() -> List[str]:
    """The shipped default mutant roster: every operator at seed 0 plus
    seeded replicates of the parameterized operators (so both variables
    of a (·, 2) instance get their version bump skipped and both lock
    orders are exercised)."""
    ids = [format_mutant_id(op) for op in OPERATORS]
    ids += [
        format_mutant_id("tl2/skip-version-bump", 1),
        format_mutant_id("tl2/shuffle-lock-order", 1),
    ]
    return ids
