"""NOrec-style value validation, expressed in the paper's rule framework.

NOrec (Dalessandro, Spear & Scott, PPoPP 2010) serializes commits on a
single global sequence lock and re-validates the read set *by value*
whenever the lock moves.  In the paper's abstract model values are not
observable, but the safety-relevant consequence of value validation is:
a transaction may commit **iff no committed write has landed on a
variable it read** — its buffered writes never need re-validation,
because the single commit lock orders write-backs totally and a write
that nobody read cannot invalidate anybody.

That is exactly :class:`repro.tm.optimistic.OptimisticTM` with the
write-set conjunct dropped from the commit check:

* reads abort when the variable was modified since the transaction
  began (the value re-validation; ``ms`` plays the role of "the global
  clock moved and the value changed");
* commit checks ``rs ∩ ms = ∅`` only — buffered writes commit over
  concurrent committed writes, the last writer winning, which value
  validation permits and opacity allows;
* φ is constantly false: the global lock is not a per-variable lock,
  so there is no ownership for a contention manager to arbitrate.

The checker certifies this TM safe (strictly serializable *and*
opaque) at every size the test matrix sweeps — the farm's true
negative: a mutant-shaped change (dropping a validation conjunct) that
is **not** a bug.  Dropping the read-set conjunct instead is the
``norec``-adjacent seeded bug ``opt/read-ignores-ms`` — see
:mod:`repro.tm.mutate`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.statements import Command, Kind
from .algorithm import Ext, Resp, TMState
from .optimistic import EMPTY, RESET, OptimisticTM


class NOrecTM(OptimisticTM):
    """Value-validation TM: optimistic reads, commit re-checks reads only."""

    name = "norec"

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        if cmd.kind is not Kind.COMMIT:
            return super().progress(state, cmd, thread)
        views = state
        rs, ws, ms = views[thread - 1]
        if rs & ms:
            return []  # a committed write landed on our read set
        new = list(views)
        new[thread - 1] = RESET
        for u, (rs_u, ws_u, ms_u) in enumerate(views, start=1):
            if u != thread and (rs_u | ws_u):
                new[u - 1] = (rs_u, ws_u, ms_u | ws)
        return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]
