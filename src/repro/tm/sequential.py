"""The sequential TM (paper Algorithm 1).

Transactions execute one at a time: a thread may take a step only when
every *other* thread's transaction is finished.  A thread scheduled while
someone else is mid-transaction can only abort (an empty aborting
transaction).  No contention manager is used; φ is constantly false.

The state is simply which threads are mid-transaction (``started``); with
two threads only three states are reachable — the "Size 3" row of
Table 2 — because two threads can never be started simultaneously.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.statements import Command, Kind
from .algorithm import Ext, Resp, TMAlgorithm, TMState

#: Per-thread status values.
FINISHED = 0
STARTED = 1


class SequentialTM(TMAlgorithm):
    """Algorithm 1: ``getSequential``.

    State: a tuple ``status[t-1] ∈ {FINISHED, STARTED}`` per thread.
    """

    name = "seq"

    def initial_state(self) -> TMState:
        return (FINISHED,) * self.n

    def _others_finished(self, state: Tuple[int, ...], thread: int) -> bool:
        return all(
            st == FINISHED for u, st in enumerate(state, start=1) if u != thread
        )

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        status: Tuple[int, ...] = state  # type: ignore[assignment]
        if not self._others_finished(status, thread):
            return []  # abort enabled: someone else is mid-transaction
        idx = thread - 1
        if cmd.kind in (Kind.READ, Kind.WRITE):
            new = status[:idx] + (STARTED,) + status[idx + 1 :]
            return [(Ext.of_command(cmd), Resp.DONE, new)]
        assert cmd.kind is Kind.COMMIT
        new = status[:idx] + (FINISHED,) + status[idx + 1 :]
        return [(Ext.of_command(cmd), Resp.DONE, new)]

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        status: Tuple[int, ...] = state  # type: ignore[assignment]
        idx = thread - 1
        return status[:idx] + (FINISHED,) + status[idx + 1 :]

    def view_codec(self):
        from .compiled import ViewCodec

        return ViewCodec(1, lambda status: status, lambda bits: bits)
