"""Product of a TM algorithm with a contention manager (Section 3.1).

Given a TM algorithm ``A`` and a manager ``cm``, the product ``Acm`` runs
both in lockstep.  A transition of ``A`` on extended statement ``(d, t)``
survives iff:

* when φ holds for the scheduled statement, ``cm`` has a matching
  transition (rule ii — the manager arbitrates every conflict), and
* the manager component moves along its transition if one exists, and
  stays put otherwise (rule iii).

Because managers only restrict behaviour, ``L(Acm) ⊆ L(A)``: safety proved
for the bare TM carries over to every managed variant (Section 4's
argument for verifying TMs without managers).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.statements import Command
from .algorithm import Ext, Resp, TMAlgorithm, TMState, Transition
from .contention import ContentionManager


class ManagedTM(TMAlgorithm):
    """The TM algorithm ``Acm``: states are (TM state, manager state)."""

    def __init__(self, tm: TMAlgorithm, cm: ContentionManager) -> None:
        super().__init__(tm.n, tm.k)
        self.tm = tm
        self.cm = cm
        self.name = f"{tm.name}+{cm.name}"

    def initial_state(self) -> TMState:
        return (self.tm.initial_state(), self.cm.initial_state())

    def conflict(self, state: TMState, cmd: Command, thread: int) -> bool:
        """φ of the product is φ of the underlying TM (Section 3.1)."""
        q, _ = state
        return self.tm.conflict(q, cmd, thread)

    def transitions(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Transition]:
        q, p = state
        phi = self.tm.conflict(q, cmd, thread)
        result: List[Transition] = []
        for tr in self.tm.transitions(q, cmd, thread):
            cm_succs = self.cm.step(p, tr.ext, thread)
            if not cm_succs:
                if phi:
                    continue  # rule (ii): the manager vetoes this move
                cm_succs = [p]  # rule (iii): no matching transition, stay
            for p2 in cm_succs:
                result.append(Transition(tr.ext, tr.resp, (tr.state, p2)))
        return result

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        return [
            (tr.ext, tr.resp, tr.state)
            for tr in self.transitions(state, cmd, thread)
            if not tr.ext.is_abort
        ]

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        """Unused (``transitions`` is overridden) but kept total."""
        q, p = state
        return (self.tm.abort_reset(q, thread), p)
