"""A lock-free optimistic TM with eager read validation.

Not one of the paper's four algorithms — included to demonstrate that
the framework verifies TMs beyond the original set.  The algorithm is
TL2 stripped of its locks:

* writes are buffered locally (never conflict at issue time);
* a global read of a variable *modified since the transaction began*
  (tracked with TL2-style per-thread modified sets ``ms``) has no
  progress transition — the transaction aborts rather than observe a
  stale value, which is what makes the TM opaque rather than merely
  strictly serializable;
* commit validates in one atomic step — the read set must be disjoint
  from the modified set and, to order write-write conflicts, the write
  set too — then publishes the write set into every active thread's
  modified set.

φ is constantly false: with no locks and no ownership there is nothing
for a contention manager to arbitrate; conflicts resolve by aborting the
transaction that observes them.  The model checker certifies a pleasant
consequence (see the tests): because only *commits* populate the
modified sets and aborts clear a thread's own state, a commit-free loop
can never sustain aborts — the TM is **obstruction free and livelock
free** without any contention manager, unlike all four TMs of the paper.
It is still not wait free: one thread can starve while the other commits
forever.  The price is eager aborts — any committed write over a live
footprint kills the whole transaction rather than just the stale read.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from ..core.statements import Command, Kind
from .algorithm import Ext, Resp, TMAlgorithm, TMState

ThreadView = Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]
# (rs, ws, ms)

EMPTY: FrozenSet[int] = frozenset()
RESET: ThreadView = (EMPTY, EMPTY, EMPTY)


class OptimisticTM(TMAlgorithm):
    """Lock-free write buffering with eager read validation."""

    name = "opt"

    def initial_state(self) -> TMState:
        return (RESET,) * self.n

    @staticmethod
    def _with(
        state: Tuple[ThreadView, ...], thread: int, view: ThreadView
    ) -> Tuple[ThreadView, ...]:
        idx = thread - 1
        return state[:idx] + (view,) + state[idx + 1 :]

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        rs, ws, ms = views[thread - 1]

        if cmd.kind is Kind.READ:
            v = cmd.var
            assert v is not None
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            if v in ms:
                return []  # stale — abort rather than read inconsistently
            new = self._with(views, thread, (rs | {v}, ws, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]

        if cmd.kind is Kind.WRITE:
            v = cmd.var
            assert v is not None
            new = self._with(views, thread, (rs, ws | {v}, ms))
            return [(Ext.of_command(cmd), Resp.DONE, new)]

        assert cmd.kind is Kind.COMMIT
        if (rs | ws) & ms:
            return []  # somebody committed over our footprint: abort
        new = list(views)
        new[thread - 1] = RESET
        for u, (rs_u, ws_u, ms_u) in enumerate(views, start=1):
            if u != thread and (rs_u | ws_u):
                new[u - 1] = (rs_u, ws_u, ms_u | ws)
        return [(Ext.of_command(cmd), Resp.DONE, tuple(new))]

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        views: Tuple[ThreadView, ...] = state  # type: ignore[assignment]
        return self._with(views, thread, RESET)

    def view_codec(self):
        from .compiled import status_mask_codec

        return status_mask_codec(self.k, None, 3)  # (rs, ws, ms)
