"""Scheduler-driven simulation of TM algorithms (paper Section 3.2).

A *scheduler* is a function from step numbers to threads; Table 1 writes
them as digit strings ("11122…").  At each step the scheduled thread's
enabled command is executed for one atomic extended command.  Because a
TM algorithm can be nondeterministic (conflict points) and the most
general program leaves the command choice open, the simulator takes a
*program* for each thread — the sequence of commands the thread wants to
run — and resolves remaining nondeterminism with a pluggable policy
(default: first transition in the TM's deterministic order, preferring
progress over aborts).

This reproduces Table 1 exactly: a schedule plus per-thread programs
yields the run (the ``s0 s1 …`` column) and the word of its successful
statements (the last column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.statements import Command, Kind, Statement, Word
from .algorithm import Resp, TMAlgorithm, Transition

#: A per-thread program: the commands the thread issues, in order.
Program = Sequence[Command]


@dataclass(frozen=True)
class RunStep:
    """One tuple of a run: ⟨state, command, extended statement, response⟩."""

    thread: int
    command: Command
    ext_name: str
    ext_var: Optional[int]
    resp: Resp

    def __str__(self) -> str:
        var = "" if self.ext_var is None else f",{self.ext_var}"
        short = {
            "read": "r", "write": "w", "commit": "c", "abort": "a",
            "rlock": "rl", "wlock": "wl", "own": "o", "validate": "v",
            "lock": "l", "rvalidate": "rv", "chklock": "k",
        }.get(self.ext_name, self.ext_name)
        if self.ext_var is None and short in ("c", "a", "v", "rv", "k"):
            return f"{short}{self.thread}"
        return f"({short}{var}){self.thread}"


@dataclass
class Run:
    """A finite run of a TM algorithm under a scheduler."""

    steps: List[RunStep] = field(default_factory=list)

    def word(self) -> Word:
        """The word of successful statements (responses 0 and 1)."""
        out: List[Statement] = []
        for s in self.steps:
            if s.resp is Resp.DONE:
                out.append(Statement(s.command.kind, s.command.var, s.thread))
            elif s.resp is Resp.ABORT:
                out.append(Statement(Kind.ABORT, None, s.thread))
        return tuple(out)

    def __str__(self) -> str:
        return ", ".join(str(s) for s in self.steps)


class ScheduleError(RuntimeError):
    """The schedule asked a thread to run with nothing left to do, or the
    TM had no transition for the scheduled statement."""


def parse_schedule(text: str) -> List[int]:
    """Parse Table 1's digit-string schedules ("112122…")."""
    if not text.isdigit():
        raise ValueError(f"schedule must be a digit string: {text!r}")
    return [int(ch) for ch in text]


#: Picks one of the available transitions; default prefers progress.
Resolver = Callable[[List[Transition]], Transition]


def prefer_progress(transitions: List[Transition]) -> Transition:
    """Default policy: take a progress transition if one exists,
    otherwise the (forced) abort."""
    for tr in transitions:
        if not tr.ext.is_abort:
            return tr
    return transitions[0]


def prefer_abort(transitions: List[Transition]) -> Transition:
    """Pessimistic policy: abort whenever the TM allows it."""
    for tr in transitions:
        if tr.ext.is_abort:
            return tr
    return transitions[0]


def simulate(
    tm: TMAlgorithm,
    programs: Dict[int, Program],
    schedule: Sequence[int],
    *,
    resolve: Resolver = prefer_progress,
) -> Run:
    """Run ``tm`` under ``schedule`` with per-thread ``programs``.

    Each scheduled step executes one atomic extended command of the
    thread's current command (its pending command, or the next one of
    its program).  A command that responds 0 (abort) is *retried* —
    matching the paper's examples, where an aborted transaction's
    program position does not advance past the aborted command, but the
    abort statement itself appears in the run.  To model a thread that
    gives up, simply schedule it no further.
    """
    state = tm.initial_state()
    pending: Dict[int, Optional[Command]] = {t: None for t in tm.threads()}
    position: Dict[int, int] = {t: 0 for t in tm.threads()}
    aborted_tx: Dict[int, bool] = {t: False for t in tm.threads()}
    run = Run()

    for step_no, t in enumerate(schedule):
        if t not in pending:
            raise ScheduleError(f"step {step_no}: no such thread {t}")
        if pending[t] is not None:
            cmd = pending[t]
        else:
            program = programs.get(t, ())
            if aborted_tx[t]:
                # restart the aborted transaction from its first command
                position[t] = _transaction_start(program, position[t])
                aborted_tx[t] = False
            if position[t] >= len(program):
                raise ScheduleError(
                    f"step {step_no}: thread {t} has no commands left"
                )
            cmd = program[position[t]]
        transitions = tm.transitions(state, cmd, t)
        if not transitions:
            raise ScheduleError(
                f"step {step_no}: no transition for {cmd} by thread {t}"
            )
        tr = resolve(transitions)
        run.steps.append(
            RunStep(t, cmd, tr.ext.name, tr.ext.var, tr.resp)
        )
        state = tr.state
        if tr.resp is Resp.BOT:
            pending[t] = cmd
        else:
            pending[t] = None
            if tr.resp is Resp.DONE:
                position[t] += 1
            else:  # aborted: transaction will restart on next schedule
                aborted_tx[t] = True
    return run


def _transaction_start(program: Program, pos: int) -> int:
    """Index of the first command of the transaction containing ``pos``.

    Transactions in a program are delimited by commits."""
    start = 0
    for i in range(min(pos, len(program))):
        if program[i].kind is Kind.COMMIT:
            start = i + 1
    return start


def program(text: str) -> Program:
    """Parse a thread program like ``"r1 w2 c"`` (read v1, write v2,
    commit)."""
    cmds: List[Command] = []
    for token in text.split():
        if token == "c":
            cmds.append(Command(Kind.COMMIT, None))
        elif token.startswith("r"):
            cmds.append(Command(Kind.READ, int(token[1:])))
        elif token.startswith("w"):
            cmds.append(Command(Kind.WRITE, int(token[1:])))
        else:
            raise ValueError(f"bad program token: {token!r}")
    return tuple(cmds)
