"""Explicit-state exploration of TM algorithms (paper Section 3.2).

A TM algorithm interacts with a scheduler: at every step the scheduler
picks a thread, the thread's enabled command is executed for one atomic
extended command, and the TM responds ⊥ / 0 / 1.  Exploring *every* thread
and *every* enabled command from *every* state is exactly the paper's
"most general program": the resulting transition system's language is the
language of the TM algorithm.

The explorer's nodes pair the TM state with the *pending vector* γ — the
command each thread is in the middle of (rules R1–R4).  Two views are
produced:

* a **safety view** (:func:`build_safety_nfa`): an ε-NFA over statements —
  response 1 emits the command as a statement, response 0 emits ``abort``,
  response ⊥ is an internal ε-move;
* a **liveness view** (:func:`build_liveness_graph`): the same graph with
  *extended* statements on the edges, as required by Section 6's loop
  conditions.

By default exploration runs on the **compiled engine**
(:mod:`repro.tm.compiled`): packed-int nodes, interned thread views and
memoized transition rows.  Every entry point takes ``compiled=False`` to
force the naive tuple-of-frozensets path, which is kept as the
differential reference (the two paths produce identical node orders,
edges, sizes and verdicts — pinned by ``tests/tm/test_compiled.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, List, NamedTuple, Optional, Set, Tuple

from ..automata.nfa import EPSILON, NFA
from ..cache import CacheLike
from ..core.statements import Command, Kind, Statement
from .algorithm import Resp, TMAlgorithm, TMState, Transition
from .compiled import CompiledTM, compile_tm

PendingVec = Tuple[Optional[Command], ...]
Node = Tuple[TMState, PendingVec]


class ExtStatement(NamedTuple):
    """An extended statement ``(d, t)`` with its response — the edge label
    of the liveness view."""

    thread: int
    ext_name: str
    ext_var: Optional[int]
    resp: Resp

    @property
    def is_commit(self) -> bool:
        return self.ext_name == "commit" and self.resp is Resp.DONE

    @property
    def is_abort(self) -> bool:
        return self.resp is Resp.ABORT

    def __str__(self) -> str:
        var = "" if self.ext_var is None else f"({self.ext_var})"
        return f"{self.ext_name}{var}{self.thread}"


def initial_node(tm: TMAlgorithm) -> Node:
    return (tm.initial_state(), (None,) * tm.n)


def iter_node_transitions(
    tm: TMAlgorithm, node: Node
) -> Iterator[Tuple[int, Command, Transition, Node]]:
    """All (thread, command, TM transition, successor node) from ``node``.

    Respects the pending function: a thread with a pending command may
    only continue that command (rules R1–R4); responses 0/1 clear it.
    """
    state, pending = node
    for t in tm.threads():
        slot = pending[t - 1]
        cmds = (slot,) if slot is not None else tm.commands()
        for cmd in cmds:
            for tr in tm.transitions(state, cmd, t):
                new_pending = list(pending)
                new_pending[t - 1] = cmd if tr.resp is Resp.BOT else None
                yield t, cmd, tr, (tr.state, tuple(new_pending))


def explore_packed(
    engine: CompiledTM,
    *,
    max_states: Optional[int] = None,
    jobs: int = 1,
) -> List[int]:
    """All reachable packed nodes, BFS order from the initial node.

    The BFS mirrors the naive :func:`explore_nodes` exactly — compiled
    rows preserve the explorer's transition order, so decoding this list
    reproduces the naive node order element for element.  ``jobs > 1``
    computes each BFS level's new rows on a worker pool via
    :meth:`CompiledTM.expand`; the traversal (and hence the returned
    order) is identical.
    """
    init = engine.initial_node_packed()
    seen: Set[int] = {init}
    order: List[int] = [init]
    with engine.sharded(jobs) as shard:
        if shard is None:
            node_row = engine.node_row
            queue = deque([init])
            while queue:
                node = queue.popleft()
                for entry in node_row(node):
                    succ = entry[4]
                    if succ not in seen:
                        if (
                            max_states is not None
                            and len(seen) >= max_states
                        ):
                            raise RuntimeError(
                                f"exploration exceeded {max_states} nodes"
                                f" (at {len(seen) + 1})"
                            )
                        seen.add(succ)
                        order.append(succ)
                        queue.append(succ)
        else:
            # Level-synchronous twin: identical traversal order, with
            # each level's new rows computed on the worker pool first.
            frontier = [init]
            while frontier:
                nxt: List[int] = []
                for _node, row in engine.expand(frontier, shard):
                    for entry in row:
                        succ = entry[4]
                        if succ not in seen:
                            if (
                                max_states is not None
                                and len(seen) >= max_states
                            ):
                                raise RuntimeError(
                                    f"exploration exceeded {max_states}"
                                    f" nodes (at {len(seen) + 1})"
                                )
                            seen.add(succ)
                            order.append(succ)
                            nxt.append(succ)
                frontier = nxt
    return order


def explore_nodes(
    tm: TMAlgorithm,
    *,
    max_states: Optional[int] = None,
    compiled: bool = True,
    jobs: int = 1,
) -> List[Node]:
    """All reachable explorer nodes, BFS order from the initial node."""
    if compiled:
        engine = compile_tm(tm)
        decode = engine.decode_node
        return [
            decode(p)
            for p in explore_packed(engine, max_states=max_states, jobs=jobs)
        ]
    init = initial_node(tm)
    seen: Set[Node] = {init}
    order: List[Node] = [init]
    queue = deque([init])
    while queue:
        node = queue.popleft()
        for _, _, _, succ in iter_node_transitions(tm, node):
            if succ not in seen:
                if max_states is not None and len(seen) >= max_states:
                    raise RuntimeError(
                        f"exploration exceeded {max_states} nodes"
                        f" (at {len(seen) + 1})"
                    )
                seen.add(succ)
                order.append(succ)
                queue.append(succ)
    return order


def transition_system_size(
    tm: TMAlgorithm, *, compiled: bool = True, jobs: int = 1
) -> int:
    """Number of reachable nodes — the paper's Table 2 "Size" column."""
    if compiled:
        return len(explore_packed(compile_tm(tm), jobs=jobs))
    return len(explore_nodes(tm, compiled=False))


def safety_step(tm: TMAlgorithm) -> Callable[[Node], Iterator]:
    """The safety-view step function of ``tm``.

    ``safety_step(tm)(node)`` yields ``(label, successor)`` pairs with
    :class:`~repro.core.statements.Statement` labels for completed
    commands (response 1) and aborts (response 0), and ``EPSILON`` for
    internal extended commands (response ⊥).  This is the contract of
    ``NFA.from_step`` — and of the lazy product kernel, which streams
    these successors straight into the inclusion check without ever
    materializing the NFA.
    """

    def step(node: Node):
        for t, cmd, tr, succ in iter_node_transitions(tm, node):
            if tr.resp is Resp.BOT:
                yield EPSILON, succ
            elif tr.resp is Resp.DONE:
                yield Statement(cmd.kind, cmd.var, t), succ
            else:
                yield Statement(Kind.ABORT, None, t), succ

    return step


def build_safety_nfa(
    tm: TMAlgorithm, *, max_states: Optional[int] = None
) -> NFA:
    """The TM's language automaton over statements (safety view).

    Materializes the full automaton; all states accept (the language of
    a TM algorithm is prefix-closed).  The safety pipeline defaults to
    the lazy path instead (see :func:`repro.checking.safety.check_safety`),
    which feeds :func:`safety_step` directly into the product kernel.
    """
    return NFA.from_step(
        [initial_node(tm)], safety_step(tm), max_states=max_states
    )


@dataclass(frozen=True)
class LivenessGraph:
    """The TM transition system with extended-statement edge labels."""

    initial: Node
    nodes: Tuple[Node, ...]
    edges: Tuple[Tuple[Node, ExtStatement, Node], ...]


def build_liveness_graph(
    tm: TMAlgorithm,
    *,
    max_states: Optional[int] = None,
    compiled: bool = True,
    jobs: int = 1,
    cache_dir: "CacheLike" = None,
) -> LivenessGraph:
    """Explore the TM and label every edge with its extended statement.

    ``cache_dir`` warm-starts the compiled engine from the on-disk cache
    (:mod:`repro.cache`) and spills back after the build — node rows
    persist in a stable int encoding, so repeated liveness runs across
    processes recompute nothing.
    """
    if compiled:
        return _build_liveness_graph_compiled(
            compile_tm(tm),
            max_states=max_states,
            jobs=jobs,
            cache_dir=cache_dir,
        )
    init = initial_node(tm)
    seen: Set[Node] = {init}
    order: List[Node] = [init]
    edges: List[Tuple[Node, ExtStatement, Node]] = []
    queue = deque([init])
    while queue:
        node = queue.popleft()
        for t, _, tr, succ in iter_node_transitions(tm, node):
            label = ExtStatement(t, tr.ext.name, tr.ext.var, tr.resp)
            edges.append((node, label, succ))
            if succ not in seen:
                if max_states is not None and len(seen) >= max_states:
                    raise RuntimeError(
                        f"exploration exceeded {max_states} nodes"
                        f" (at {len(seen) + 1})"
                    )
                seen.add(succ)
                order.append(succ)
                queue.append(succ)
    return LivenessGraph(initial=init, nodes=tuple(order), edges=tuple(edges))


def _build_liveness_graph_compiled(
    engine: CompiledTM,
    *,
    max_states: Optional[int] = None,
    jobs: int = 1,
    cache_dir: "CacheLike" = None,
) -> LivenessGraph:
    """Compiled :func:`build_liveness_graph`: BFS over packed nodes,
    decoded once per node for the (identical) output graph.  Sharding
    (``jobs > 1``) computes each BFS level's node rows on the worker
    pool; the traversal below then runs on memo hits, level by level,
    in the identical order.

    Serial unbounded builds route through the engine's **dense node
    adjacency** (:meth:`repro.tm.compiled.CompiledTM.dense_node_adjacency`):
    the reachable graph is compiled once into CSR arrays over dense node
    ids — in the identical BFS/row order — and the rich
    :class:`LivenessGraph` is materialized from the arrays, so repeated
    liveness checks on one engine re-walk flat arrays instead of
    re-driving the row memos.  Bounded (``max_states``) builds keep the
    row-by-row loop so the guard raises at the identical point; sharded
    builds keep it for the level-synchronized prefetch."""
    if cache_dir is not None:
        engine.load_warm(cache_dir)
    if max_states is None and (jobs is None or jobs <= 1):
        # Warm runs restore the persisted adjacency CSR directly — the
        # graph then materializes from arrays alone, without driving a
        # single node row (the liveness twin of the dense-csr replay).
        if cache_dir is not None:
            engine.load_dense_adj(cache_dir)
        adj = engine.dense_node_adjacency()
        decode = engine.decode_node
        decoded = [decode(p) for p in adj.nodes]
        labels_rich = [
            ExtStatement(ti + 1, ext.name, ext.var, resp)
            for ti, ext, resp in adj.label_table
        ]
        offsets, targets, labels = adj.offsets, adj.targets, adj.labels
        edges = [
            (decoded[src], labels_rich[labels[e]], decoded[targets[e]])
            for src in range(len(decoded))
            for e in range(offsets[src], offsets[src + 1])
        ]
        if cache_dir is not None:
            engine.save_dense_adj(cache_dir)
            engine.save_warm(cache_dir)
        return LivenessGraph(
            initial=decoded[0], nodes=tuple(decoded), edges=tuple(edges)
        )
    init = engine.initial_node_packed()
    seen: Set[int] = {init}
    order: List[int] = [init]
    edges: List[Tuple[Node, ExtStatement, Node]] = []
    liveness_row = engine.liveness_row
    decode = engine.decode_node
    with engine.sharded(jobs, cache_dir) as shard:
        frontier = [init]
        while frontier:
            if shard is not None:
                shard.prefetch_nodes(frontier)
            nxt: List[int] = []
            for node in frontier:
                node_decoded = decode(node)
                for label, succ in liveness_row(node):
                    edges.append((node_decoded, label, decode(succ)))
                    if succ not in seen:
                        if (
                            max_states is not None
                            and len(seen) >= max_states
                        ):
                            raise RuntimeError(
                                f"exploration exceeded {max_states} nodes"
                                f" (at {len(seen) + 1})"
                            )
                        seen.add(succ)
                        order.append(succ)
                        nxt.append(succ)
            frontier = nxt
    if cache_dir is not None:
        engine.save_warm(cache_dir)
    return LivenessGraph(
        initial=decode(init),
        nodes=tuple(decode(p) for p in order),
        edges=tuple(edges),
    )


def _epsilon_closure(engine: CompiledTM, nodes: Set[int]) -> Set[int]:
    """ε-closure of a packed-node set under the safety view's ⊥-moves."""
    closure = set(nodes)
    stack = list(nodes)
    safety_row = engine.safety_row
    while stack:
        node = stack.pop()
        for symbol, succs in safety_row(node):
            if symbol is None:
                for succ in succs:
                    if succ not in closure:
                        closure.add(succ)
                        stack.append(succ)
    return closure


def language_contains(
    tm: TMAlgorithm, word: Tuple[Statement, ...], *, compiled: bool = True
) -> bool:
    """Membership of a word in the TM algorithm's language.

    Runs the safety view's macro-simulation on the word: the word is
    producible by the TM under some scheduler iff a run exists.  The
    default runs *lazily* on the compiled engine — only the macrostates
    the word actually reaches are expanded, instead of materializing the
    entire safety NFA for a single membership query.  All explorer nodes
    accept (TM languages are prefix-closed), so membership is simply
    non-emptiness of the final macrostate.
    """
    if not compiled:
        return build_safety_nfa(tm).accepts(word)
    engine = compile_tm(tm)
    current = _epsilon_closure(engine, {engine.initial_node_packed()})
    safety_row = engine.safety_row
    for stmt in word:
        moved: Set[int] = set()
        for node in current:
            for symbol, succs in safety_row(node):
                if symbol == stmt:
                    moved.update(succs)
        if not moved:
            return False
        current = _epsilon_closure(engine, moved)
    return True
