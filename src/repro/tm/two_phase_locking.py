"""The two-phase locking TM (paper Algorithm 2).

Every transaction acquires a shared lock (``rlock``) before a global read
and an exclusive lock (``wlock``) before a write; all locks are released
at commit (or abort).  Lock acquisition is a separate atomic extended
command with response ⊥, so the read/write completes on the thread's next
step.  If the required lock is unavailable the command has no progress
transition — it is abort enabled — and the transaction aborts.  φ is
constantly false: 2PL resolves conflicts by construction, not via a
contention manager.

State: per thread, the shared-lock set ``rs`` and exclusive-lock set
``ws``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from ..core.statements import Command, Kind
from .algorithm import Ext, Resp, TMAlgorithm, TMState

ThreadLocks = Tuple[FrozenSet[int], FrozenSet[int]]  # (rs, ws)

EMPTY: FrozenSet[int] = frozenset()


class TwoPhaseLockingTM(TMAlgorithm):
    """Algorithm 2: ``get2PL``.

    State: a tuple of ``(rs, ws)`` frozenset pairs, one per thread.
    """

    name = "2PL"

    def initial_state(self) -> TMState:
        return ((EMPTY, EMPTY),) * self.n

    @staticmethod
    def _with(
        state: Tuple[ThreadLocks, ...], thread: int, rs: FrozenSet[int],
        ws: FrozenSet[int],
    ) -> Tuple[ThreadLocks, ...]:
        idx = thread - 1
        return state[:idx] + ((rs, ws),) + state[idx + 1 :]

    def progress(
        self, state: TMState, cmd: Command, thread: int
    ) -> List[Tuple[Ext, Resp, TMState]]:
        locks: Tuple[ThreadLocks, ...] = state  # type: ignore[assignment]
        rs, ws = locks[thread - 1]
        if cmd.kind is Kind.READ:
            v = cmd.var
            assert v is not None
            if v in ws or v in rs:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            blocked = any(
                v in ws_u
                for u, (_, ws_u) in enumerate(locks, start=1)
                if u != thread
            )
            if blocked:
                return []
            new = self._with(locks, thread, rs | {v}, ws)
            return [(Ext("rlock", v), Resp.BOT, new)]
        if cmd.kind is Kind.WRITE:
            v = cmd.var
            assert v is not None
            if v in ws:
                return [(Ext.of_command(cmd), Resp.DONE, state)]
            blocked = any(
                v in rs_u or v in ws_u
                for u, (rs_u, ws_u) in enumerate(locks, start=1)
                if u != thread
            )
            if blocked:
                return []
            new = self._with(locks, thread, rs, ws | {v})
            return [(Ext("wlock", v), Resp.BOT, new)]
        assert cmd.kind is Kind.COMMIT
        new = self._with(locks, thread, EMPTY, EMPTY)
        return [(Ext.of_command(cmd), Resp.DONE, new)]

    def abort_reset(self, state: TMState, thread: int) -> TMState:
        locks: Tuple[ThreadLocks, ...] = state  # type: ignore[assignment]
        return self._with(locks, thread, EMPTY, EMPTY)

    def view_codec(self):
        from .compiled import status_mask_codec

        return status_mask_codec(self.k, None, 2)  # (rs, ws)
