"""``repro chaos``: seeded fault schedules swept through real runs.

The chaos sweeper closes the loop the fault plane opens
(:mod:`repro.faultplane`): it generates a deterministic **schedule
family** — seed range × fault plane — and drives each schedule through
a *real* ``repro batch`` / ``repro hunt`` / ``repro serve`` run in a
supervised subprocess, then checks the **recovery invariants** the rest
of the repo merely documents:

* ``completed`` — the faulted run finished before the trial deadline
  (no injected fault may turn into a hang);
* ``exit_contract`` — the faulted exit code stayed inside the
  scenario's contract (batch/hunt 0/1/3; the daemon drains to 0);
* ``verdicts_identical`` — the faulted run's verdicts are byte-
  identical to the fault-free baseline (the repo-wide invariant,
  now under substrate fault pressure);
* ``journal_resumable`` — a fault-free re-run over the faulted
  journal reproduces the baseline report byte-for-byte (torn tails
  skipped, last record wins);
* ``doctor_clean`` — ``repro doctor --fix`` repairs whatever the
  faults left in the trial cache directory and a rescan is clean;
* ``faults_observable`` — the injections actually surfaced where the
  acceptance contract says they must (``faultplane`` counts in the
  campaign report for the journal plane, ``wire_faults`` in the
  daemon's stats for the wire plane).

Plane → scenario compatibility: storage faults exercise ``batch`` and
``hunt`` (their cells carry warm caches), journal faults exercise
``batch`` (the outcome log), wire faults exercise ``serve``.

Everything in the emitted report is deterministic — schedules, exit
codes, invariant booleans, canonical digests; no wall-clock times, no
absolute paths — so replaying one schedule by seed reproduces its
trial record byte-for-byte (pinned in ``tests/campaign/test_chaos.py``).

Exit-code contract::

    0  every trial upheld every invariant
    1  >= 1 invariant violation (ranked first in the report)
    2  usage error (bad seed range, bad schedule file)
    3  the harness or a fault-free baseline itself failed
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.faultplane import (
    FaultScheduleError,
    load_schedule,
    schedule_digest,
    validate_schedule,
)

CHAOS_OK = 0
CHAOS_VIOLATIONS = 1
CHAOS_USAGE = 2
CHAOS_HARNESS = 3

PLANES = ("storage", "journal", "wire")

#: The sites each plane owns (classifies externally supplied schedules).
PLANE_SITES: Dict[str, Tuple[str, ...]] = {
    "storage": ("cache.save", "cache.load", "pool.dispatch"),
    "journal": ("journal.append", "journal.fsync"),
    "wire": ("serve.send", "serve.recv"),
}

#: Which scenarios exercise each plane's faults for real.
PLANE_SCENARIOS: Dict[str, Tuple[str, ...]] = {
    "storage": ("batch", "hunt"),
    "journal": ("batch",),
    "wire": ("serve",),
}

#: The batch scenario: one uncached control cell, one disk-cached and
#: one mmap-cached cell (so storage faults hit both file backends), and
#: a known violation (modtl2/op) so the baseline exit is 1 — a chaos
#: run must preserve failing verdicts just as faithfully as passing
#: ones.  Cache paths are relative (resolved against the trial
#: directory), keeping the spec digest — and hence the trial record —
#: byte-stable across replays.
BATCH_SPEC: Dict[str, object] = {
    "name": "chaos-batch",
    "defaults": {"timeout_s": 120, "retries": 1, "backoff_s": 0},
    "cells": [
        {"tm": "seq", "property": "ss", "n": 2, "k": 1},
        {"tm": "2pl", "property": "ss", "n": 2, "k": 1,
         "cache_dir": "cache", "cache_backend": "disk"},
        {"tm": "modtl2", "property": "op", "n": 2, "k": 2,
         "cache_dir": "cache", "cache_backend": "mmap"},
    ],
}

#: The hunt scenario: one seeded mutant the checker must catch
#: (baseline exit 1 — the hunt success code), warm-cached so storage
#: faults land on its cache I/O.
HUNT_SPEC: Dict[str, object] = {
    "name": "chaos-hunt",
    "mutants": ["2pl/no-rlock"],
    "controls": [],
    "properties": ["ss"],
    "sizes": [[2, 2]],
    "defaults": {"timeout_s": 120, "retries": 1, "backoff_s": 0,
                 "cache_dir": "cache", "cache_backend": "disk"},
}

#: The serve scenario's request burst: one passing and one violating
#: check, answered by a single-worker daemon.
SERVE_REQUESTS: List[Dict[str, object]] = [
    {"op": "check", "id": "r1", "tm": "2pl", "property": "ss",
     "n": 2, "k": 1, "timeout_s": 120, "retries": 1, "backoff_s": 0},
    {"op": "check", "id": "r2", "tm": "modtl2", "property": "op",
     "n": 2, "k": 2, "timeout_s": 120, "retries": 1, "backoff_s": 0},
]

#: Client attempts per serve request: attempt 1 eats the scheduled wire
#: fault, attempt 2 is the recovery the invariant checks.
SERVE_CLIENT_ATTEMPTS = 3

_EXIT_CONTRACT = {"batch": (0, 1, 3), "hunt": (0, 1, 3)}


class ChaosHarnessError(RuntimeError):
    """The sweeper itself (or a fault-free baseline) failed — exit 3."""


# ----------------------------------------------------------------------
# The default schedule family
# ----------------------------------------------------------------------


def default_schedule(plane: str, seed: int) -> Dict[str, object]:
    """The family member for ``(plane, seed)``.

    The seed shifts *where* each fault lands (the ``nth`` trigger) and
    feeds the torn-write truncation draws, so a seed range enumerates
    genuinely different cut points through the same run shape.
    """
    if plane == "storage":
        rules = [
            {"site": "cache.save", "nth": 1 + seed % 3,
             "fault": "torn_write"},
            {"site": "cache.save", "nth": 4 + seed % 2, "fault": "eio"},
            {"site": "cache.load", "nth": 1 + seed % 4, "fault": "eio"},
        ]
    elif plane == "journal":
        rules = [
            # nth >= 2 keeps the torn line off the header: tearing a
            # cell record (and merging it with the next append) is the
            # documented skip-the-tail recovery under test.
            {"site": "journal.append", "nth": 2 + seed % 3,
             "fault": "torn_write"},
            {"site": "journal.fsync", "nth": 1 + seed % 4,
             "fault": "drop_fsync"},
        ]
    elif plane == "wire":
        rules = [
            # nth=1 so the lossy fault is consumed by the first
            # response and the client's reconnect sees a clean wire.
            {"site": "serve.send", "match": "server:check", "nth": 1,
             "fault": ("reset", "partial_send", "eio")[seed % 3]},
            {"site": "serve.recv", "match": "server:*",
             "nth": 2 + seed % 3, "fault": "stall_ms", "stall_ms": 25},
        ]
    else:
        raise ChaosHarnessError(f"unknown fault plane {plane!r}")
    return validate_schedule(
        {"name": f"{plane}-s{seed}", "seed": seed, "rules": rules}
    )


def schedule_planes(schedule: Dict[str, object]) -> List[str]:
    """The planes a schedule touches, in canonical order."""
    sites = {rule["site"] for rule in schedule["rules"]}
    return [
        plane for plane in PLANES
        if sites & set(PLANE_SITES[plane])
    ]


# ----------------------------------------------------------------------
# Subprocess plumbing
# ----------------------------------------------------------------------


def _canon(obj: object) -> str:
    return json.dumps(obj, sort_keys=True)


def _sha256(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _base_env(schedule_path: Optional[str] = None) -> Dict[str, str]:
    env = dict(os.environ)
    env.pop("REPRO_FAULT_SCHEDULE", None)
    env.pop("REPRO_CACHE_DIR", None)  # trials own their cache dirs
    # Trials run with cwd inside the workdir, so a relative PYTHONPATH
    # (the repo's own `PYTHONPATH=src` idiom) would stop resolving;
    # pin this package's import root absolutely instead.
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    parts = [src_root] + [
        part for part in env.get("PYTHONPATH", "").split(os.pathsep)
        if part and os.path.abspath(part) != src_root
    ]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if schedule_path is not None:
        env["REPRO_FAULT_SCHEDULE"] = schedule_path
    return env


def _run_cli(
    argv: List[str], cwd: str, env: Dict[str, str], deadline_s: float
) -> Tuple[Optional[int], bool]:
    """``(exit_code, timed_out)`` for one supervised subprocess."""
    cmd = [sys.executable, "-m", "repro"] + argv
    try:
        proc = subprocess.run(
            cmd, cwd=cwd, env=env, timeout=deadline_s,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
    except subprocess.TimeoutExpired:
        return None, True
    return proc.returncode, False


def _read_report(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _strip_faultplane(
    report: Optional[Dict[str, object]],
) -> Optional[Dict[str, object]]:
    if report is None:
        return None
    out = dict(report)
    out.pop("faultplane", None)
    return out


# ----------------------------------------------------------------------
# Batch / hunt trials
# ----------------------------------------------------------------------


def _scenario_argv(scenario: str) -> List[str]:
    if scenario == "batch":
        return ["batch", "spec.json", "--journal", "journal.jsonl",
                "--report-json", "report.json", "--quiet"]
    if scenario == "hunt":
        return ["hunt", "spec.json", "--journal", "journal.jsonl",
                "--report-json", "report.json", "--quiet"]
    raise ChaosHarnessError(f"no CLI scenario {scenario!r}")


def _write_scenario_spec(scenario: str, trial_dir: str) -> None:
    spec = BATCH_SPEC if scenario == "batch" else HUNT_SPEC
    with open(
        os.path.join(trial_dir, "spec.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(spec, fh, sort_keys=True, indent=2)


def _batch_like_baseline(
    scenario: str, workdir: str, deadline_s: float
) -> Dict[str, object]:
    """One fault-free reference run; its report bytes are the oracle
    every faulted trial of this scenario is compared against."""
    base_dir = os.path.join(workdir, f"baseline-{scenario}")
    os.makedirs(base_dir, exist_ok=True)
    _write_scenario_spec(scenario, base_dir)
    code, timed_out = _run_cli(
        _scenario_argv(scenario), base_dir, _base_env(), deadline_s
    )
    report = _read_report(os.path.join(base_dir, "report.json"))
    if timed_out or report is None or code not in (0, 1):
        raise ChaosHarnessError(
            f"fault-free {scenario} baseline failed"
            f" (exit {code}, timed_out={timed_out})"
        )
    return {"exit": code, "report": report, "canon": _canon(report)}


def _doctor_pass(cache_dir: str) -> Tuple[bool, Dict[str, object]]:
    """``(clean_after_fix, observed)`` for one trial cache directory."""
    from .doctor import run_doctor

    if not os.path.isdir(cache_dir):
        return True, {"summary": {}, "rotated": 0}
    fix_code, fix_report = run_doctor(cache_dir, fix=True)
    clean_code, _clean_report = run_doctor(cache_dir, fix=False)
    observed = {
        "summary": fix_report.get("summary", {}),
        "rotated": len(
            (fix_report.get("quarantine") or {}).get("rotated") or ()
        ),
    }
    return (fix_code == 0 and clean_code == 0), observed


def _batch_like_trial(
    scenario: str,
    plane: str,
    schedule: Dict[str, object],
    workdir: str,
    deadline_s: float,
    baseline: Dict[str, object],
) -> Dict[str, object]:
    trial_dir = os.path.join(
        workdir, "trials", f"{schedule['name']}-{scenario}"
    )
    os.makedirs(trial_dir, exist_ok=True)
    _write_scenario_spec(scenario, trial_dir)
    schedule_path = os.path.join(trial_dir, "schedule.json")
    with open(schedule_path, "w", encoding="utf-8") as fh:
        json.dump(schedule, fh, sort_keys=True, indent=2)

    argv = _scenario_argv(scenario)
    faulted_exit, faulted_timeout = _run_cli(
        argv, trial_dir, _base_env(schedule_path), deadline_s
    )
    faulted_report = _read_report(os.path.join(trial_dir, "report.json"))

    # Recovery: a fault-free run over the faulted journal.  Torn tail
    # records are skipped and their cells re-run; the report must come
    # back byte-identical to the baseline.
    resumed_exit, resumed_timeout = _run_cli(
        argv, trial_dir, _base_env(), deadline_s
    )
    resumed_report = _read_report(os.path.join(trial_dir, "report.json"))

    doctor_clean, doctor_observed = _doctor_pass(
        os.path.join(trial_dir, "cache")
    )

    faultplane_counts = (
        (faulted_report or {}).get("faultplane") or {}
    )
    invariants: Dict[str, bool] = {
        "completed": not faulted_timeout and not resumed_timeout,
        "exit_contract": faulted_exit in _EXIT_CONTRACT[scenario],
        "verdicts_identical": (
            faulted_report is not None
            and _canon(_strip_faultplane(faulted_report))
            == baseline["canon"]
        ),
        "journal_resumable": (
            not resumed_timeout
            and resumed_exit == baseline["exit"]
            and resumed_report is not None
            and _canon(_strip_faultplane(resumed_report))
            == baseline["canon"]
        ),
        "doctor_clean": doctor_clean,
    }
    if plane == "journal":
        # The journal plane's observability contract: the injections
        # must land in the campaign report's faultplane tally.
        invariants["faults_observable"] = (
            sum(faultplane_counts.values()) > 0
        )
    return {
        "exits": {
            "baseline": baseline["exit"],
            "faulted": faulted_exit,
            "resumed": resumed_exit,
        },
        "invariants": invariants,
        "observed": {
            "faultplane": faultplane_counts,
            "doctor": doctor_observed,
        },
        "report_sha256": {
            "baseline": _sha256(baseline["canon"]),
            "faulted": (
                _sha256(_canon(_strip_faultplane(faulted_report)))
                if faulted_report is not None else None
            ),
        },
    }


# ----------------------------------------------------------------------
# Serve trials
# ----------------------------------------------------------------------


def _normalize_response(
    response: Optional[Dict[str, object]], request_id: object
) -> Dict[str, object]:
    """The verdict-bearing slice of a daemon response: timings, warm
    stats and retry bookkeeping are legitimately variable; ``status``
    and ``result`` are the byte-identity surface."""
    if response is None:
        return {"id": request_id, "status": "unreachable",
                "result": None}
    return {
        "id": response.get("id"),
        "status": response.get("status"),
        "result": response.get("result"),
    }


def _serve_round(
    workdir: str,
    label: str,
    deadline_s: float,
    schedule_path: Optional[str],
) -> Dict[str, object]:
    """One daemon lifecycle: spawn, burst, stats, health, drain."""
    from ..serve import ServeClient, ServeClientError

    trial_dir = os.path.join(workdir, "trials", label)
    os.makedirs(trial_dir, exist_ok=True)
    # AF_UNIX paths are length-limited (~107 bytes): the socket lives
    # in its own short-lived tmpdir, never under a deep workdir.
    sock_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    sock = os.path.join(sock_dir, "serve.sock")
    stderr_path = os.path.join(trial_dir, "daemon.log")
    deadline = time.monotonic() + deadline_s
    daemon = None
    responses: List[Dict[str, object]] = []
    wire_faults: Dict[str, int] = {}
    health_ok = False
    daemon_exit: Optional[int] = None
    timed_out = False
    try:
        with open(stderr_path, "ab") as errlog:
            daemon = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--socket", sock, "--workers", "1"],
                cwd=trial_dir,
                env=_base_env(schedule_path),
                stdout=subprocess.DEVNULL,
                stderr=errlog,
            )
        for request in SERVE_REQUESTS:
            response = None
            for _attempt in range(SERVE_CLIENT_ATTEMPTS):
                if time.monotonic() >= deadline:
                    break
                try:
                    with ServeClient(
                        socket_path=sock,
                        timeout=max(1.0, deadline - time.monotonic()),
                        connect_timeout=10.0,
                    ) as client:
                        response = client.request(dict(request))
                    break
                except ServeClientError:
                    continue  # reconnect: the recovery under test
            responses.append(
                _normalize_response(response, request.get("id"))
            )
        try:
            with ServeClient(
                socket_path=sock, timeout=10.0, connect_timeout=10.0
            ) as client:
                stats = client.stats()
                wire_faults = dict(stats.get("wire_faults") or {})
            with ServeClient(
                socket_path=sock, timeout=10.0, connect_timeout=10.0
            ) as client:
                health_ok = bool(client.health().get("ok"))
        except ServeClientError:
            health_ok = False
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon_exit = daemon.wait(
                timeout=max(1.0, deadline - time.monotonic())
            )
        except subprocess.TimeoutExpired:
            timed_out = True
            daemon.kill()
            daemon.wait()
    finally:
        if daemon is not None and daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        shutil.rmtree(sock_dir, ignore_errors=True)
    return {
        "exit": daemon_exit,
        "timed_out": timed_out,
        "responses": responses,
        "wire_faults": wire_faults,
        "health_ok": health_ok,
    }


def _serve_baseline(
    workdir: str, deadline_s: float
) -> Dict[str, object]:
    round_ = _serve_round(workdir, "baseline-serve", deadline_s, None)
    ok = (
        not round_["timed_out"]
        and round_["exit"] == 0
        and round_["health_ok"]
        and all(
            resp["status"] in ("pass", "fail")
            for resp in round_["responses"]
        )
    )
    if not ok:
        raise ChaosHarnessError(
            "fault-free serve baseline failed"
            f" (exit {round_['exit']},"
            f" responses {[r['status'] for r in round_['responses']]})"
        )
    return {
        "exit": round_["exit"],
        "responses": round_["responses"],
        "canon": _canon(round_["responses"]),
    }


def _serve_trial(
    plane: str,
    schedule: Dict[str, object],
    workdir: str,
    deadline_s: float,
    baseline: Dict[str, object],
) -> Dict[str, object]:
    label = f"{schedule['name']}-serve"
    trial_dir = os.path.join(workdir, "trials", label)
    os.makedirs(trial_dir, exist_ok=True)
    schedule_path = os.path.join(trial_dir, "schedule.json")
    with open(schedule_path, "w", encoding="utf-8") as fh:
        json.dump(schedule, fh, sort_keys=True, indent=2)
    round_ = _serve_round(workdir, label, deadline_s, schedule_path)
    invariants: Dict[str, bool] = {
        "completed": not round_["timed_out"],
        "exit_contract": round_["exit"] == 0,
        "verdicts_identical": (
            _canon(round_["responses"]) == baseline["canon"]
        ),
        "daemon_responsive": round_["health_ok"],
    }
    if plane == "wire":
        # The wire plane's observability contract: injections must
        # land in the daemon's stats wire_faults counters.
        invariants["faults_observable"] = (
            sum(round_["wire_faults"].values()) > 0
        )
    return {
        "exits": {
            "baseline": baseline["exit"],
            "faulted": round_["exit"],
        },
        "invariants": invariants,
        "observed": {"wire_faults": round_["wire_faults"]},
        "report_sha256": {
            "baseline": _sha256(baseline["canon"]),
            "faulted": _sha256(_canon(round_["responses"])),
        },
    }


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


def parse_seed_range(text: str) -> Tuple[int, int]:
    """``"START:STOP"`` (half-open) → ``(start, stop)``."""
    try:
        start_text, _, stop_text = text.partition(":")
        start, stop = int(start_text), int(stop_text)
    except ValueError:
        raise ValueError(
            f"--seed-range must look like START:STOP (got {text!r})"
        )
    if start < 0 or stop <= start:
        raise ValueError(
            f"--seed-range must be a non-empty half-open range"
            f" (got {text!r})"
        )
    return start, stop


def build_trials(
    *,
    seed_range: Tuple[int, int],
    planes: Optional[List[str]] = None,
    scenarios: Optional[List[str]] = None,
    schedule: Optional[Dict[str, object]] = None,
) -> List[Tuple[str, str, Dict[str, object]]]:
    """The trial matrix: ``(plane, scenario, schedule)`` triples.

    With an explicit ``schedule``, its sites pick the planes and the
    seed range is ignored (the schedule carries its own seed).
    """
    selected_planes = list(planes) if planes else list(PLANES)
    triples: List[Tuple[str, str, Dict[str, object]]] = []
    if schedule is not None:
        touched = schedule_planes(schedule)
        if not touched:
            raise FaultScheduleError(
                "schedule touches no known fault plane"
            )
        for plane in touched:
            if plane not in selected_planes:
                continue
            for scenario in PLANE_SCENARIOS[plane]:
                if scenarios and scenario not in scenarios:
                    continue
                triples.append((plane, scenario, schedule))
        if not triples:
            raise FaultScheduleError(
                "schedule/plane/scenario selection matches no trial"
            )
        return triples
    for seed in range(*seed_range):
        for plane in PLANES:
            if plane not in selected_planes:
                continue
            for scenario in PLANE_SCENARIOS[plane]:
                if scenarios and scenario not in scenarios:
                    continue
                triples.append(
                    (plane, scenario, default_schedule(plane, seed))
                )
    return triples


def run_chaos(
    *,
    workdir: str,
    trials: List[Tuple[str, str, Dict[str, object]]],
    deadline_s: float = 120.0,
    say: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every trial; the ranked, deterministic chaos report."""
    tell = say or (lambda _line: None)
    baselines: Dict[str, Dict[str, object]] = {}

    def baseline_for(scenario: str) -> Dict[str, object]:
        if scenario not in baselines:
            tell(f"baseline: {scenario} ...")
            if scenario == "serve":
                baselines[scenario] = _serve_baseline(
                    workdir, deadline_s
                )
            else:
                baselines[scenario] = _batch_like_baseline(
                    scenario, workdir, deadline_s
                )
        return baselines[scenario]

    records: List[Dict[str, object]] = []
    for index, (plane, scenario, schedule) in enumerate(trials, 1):
        tell(
            f"[{index}/{len(trials)}] {schedule['name']} -> {scenario}"
            " ..."
        )
        baseline = baseline_for(scenario)
        if scenario == "serve":
            outcome = _serve_trial(
                plane, schedule, workdir, deadline_s, baseline
            )
        else:
            outcome = _batch_like_trial(
                scenario, plane, schedule, workdir, deadline_s,
                baseline,
            )
        violations = sorted(
            name for name, held in outcome["invariants"].items()
            if not held
        )
        record = {
            "plane": plane,
            "scenario": scenario,
            "seed": schedule["seed"],
            "schedule": schedule,
            "schedule_digest": schedule_digest(schedule),
            "violations": violations,
        }
        record.update(outcome)
        records.append(record)
        tell(
            "    -> "
            + ("ok" if not violations else
               "VIOLATED: " + ", ".join(violations))
        )

    # Invariant violations rank first; within each class the order is
    # the canonical (plane, scenario, seed) sweep order.
    records.sort(
        key=lambda r: (
            0 if r["violations"] else 1,
            PLANES.index(r["plane"]),
            r["scenario"],
            r["seed"],
        )
    )
    by_invariant: Dict[str, int] = {}
    for record in records:
        for name in record["violations"]:
            by_invariant[name] = by_invariant.get(name, 0) + 1
    return {
        "chaos": "fault-schedule sweep",
        "trials": records,
        "summary": {
            "trials": len(records),
            "violations": sum(
                1 for record in records if record["violations"]
            ),
            "by_invariant": by_invariant,
        },
    }


def chaos_exit_code(report: Dict[str, object]) -> int:
    return (
        CHAOS_VIOLATIONS
        if report["summary"]["violations"]
        else CHAOS_OK
    )


def render_chaos(report: Dict[str, object]) -> str:
    """Human-facing trial table, violations first."""
    lines = [
        "| schedule | scenario | plane | seed | exits (base/faulted) |"
        " violations |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for record in report["trials"]:
        exits = record["exits"]
        lines.append(
            "| {} | {} | {} | {} | {}/{} | {} |".format(
                record["schedule"]["name"],
                record["scenario"],
                record["plane"],
                record["seed"],
                exits.get("baseline"),
                exits.get("faulted"),
                ", ".join(record["violations"]) or "-",
            )
        )
    summary = report["summary"]
    lines.append("")
    lines.append(
        "**chaos**: {trials} trial(s), {violations} with invariant"
        " violations".format(**{
            key: summary[key] for key in ("trials", "violations")
        })
    )
    return "\n".join(lines)


def run_chaos_cli(args) -> int:
    """The ``repro chaos`` entry point (parsed argparse namespace)."""
    say = (
        None if args.quiet
        else (lambda line: print(line, file=sys.stderr, flush=True))
    )
    try:
        schedule = (
            load_schedule(args.schedule) if args.schedule else None
        )
        trials = build_trials(
            seed_range=parse_seed_range(args.seed_range),
            planes=args.plane,
            scenarios=args.scenario,
            schedule=schedule,
        )
    except (FaultScheduleError, ValueError) as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return CHAOS_USAGE
    cleanup = args.workdir is None
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    try:
        report = run_chaos(
            workdir=workdir,
            trials=trials,
            deadline_s=args.deadline_s,
            say=say,
        )
    except ChaosHarnessError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return CHAOS_HARNESS
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(report, sort_keys=True, indent=2))
            fh.write("\n")
    if not args.quiet:
        print(render_chaos(report))
    return chaos_exit_code(report)
