"""Per-cell supervision: isolate, bound, retry, degrade.

Each campaign cell runs ``check_safety`` in its own subprocess: a hang
(e.g. a pool worker SIGKILLed mid-``map``, which ``multiprocessing``
silently swallows), an OOM kill, or a crash takes down only the child,
and the supervisor's wall clock is the one bound that covers *every*
failure shape.  The child reports back over a pipe; the parent waits
with ``poll(timeout)`` **before** joining (join-first deadlocks when
the result exceeds the pipe buffer).

Retry policy: a faulted attempt (timeout, crash, memory, exception) is
retried up to ``retries`` times with exponential backoff, degrading the
configuration monotonically first — ``jobs>1`` falls back to serial,
then a warm ``cache_dir`` falls back to cold — so a fault in the
sharding or cache layer cannot fail a cell that the plain serial path
can finish.  Degradation never changes verdicts: sharding and warm
starts are optimization-only (the repo-wide byte-identical contract).
A cell whose every attempt faults is recorded as ``timeout``/``error``
without aborting the campaign.

Fault injection (spec ``inject``, validated in :mod:`.spec`) exists so
the tests and the CI smoke can exercise exactly these paths: SIGKILL
the child, hang it, raise in it, or balloon its RSS, each on the first
N attempts only — the retry then demonstrates recovery.

``run_cell`` is also the **per-request entry point of the resident
daemon** (:mod:`repro.serve`): the daemon passes its resident tiered
cache backend as ``cache`` (the forked child inherits the in-memory
tier for free) and sets ``collect_warm=True`` so the child ships every
payload it *built* back over the result pipe — the daemon absorbs those
blobs into its resident tier, which is how warm state accumulates in a
process whose checks all run in throwaway children.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time
from typing import Dict, List, Optional, Tuple

#: Fault classes a single attempt can report.
FAULT_TIMEOUT = "timeout"
FAULT_CRASH = "crash"
FAULT_MEMORY = "memory"
FAULT_EXCEPTION = "exception"

#: Grace period for terminate before escalating to SIGKILL.
_TERM_GRACE_S = 5.0

#: Default ceiling on any single retry delay (decorrelated jitter can
#: otherwise triple its way to minutes on high retry counts).  Cells
#: override it with the validated ``backoff_cap_s`` policy key.
BACKOFF_CAP_S = 30.0


def _retry_delay(
    base_s: float, prev_s: float, rng=random.uniform,
    cap_s: float = BACKOFF_CAP_S,
) -> float:
    """The next retry delay: decorrelated jitter.

    ``uniform(base, prev * 3)`` capped at ``cap_s`` (the cell's
    ``backoff_cap_s`` policy, default :data:`BACKOFF_CAP_S`) — the
    expected delay still grows exponentially, but simultaneous faulted
    cells (or daemon requests all hit by the same dying pool) spread out
    instead of retrying in lockstep the way the old deterministic
    ``base * 2**attempt`` schedule made them.
    """
    return min(cap_s, rng(base_s, max(base_s, prev_s * 3)))


def _apply_memory_cap(memory_mb: Optional[int]) -> None:
    if not memory_mb:
        return
    try:
        import resource

        limit = int(memory_mb) * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ImportError, ValueError, OSError):
        # Platform without rlimits (or a cap below the current usage):
        # the wall-clock timeout still bounds the attempt.  Anything
        # else — say a TypeError from a mangled policy value — is a
        # programming error and must surface as an ``exception`` fault,
        # not vanish here.
        pass


def _apply_injections(inject: Dict[str, object], attempt: int) -> None:
    if attempt <= inject.get("sigkill_attempts", 0):
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt <= inject.get("hang_attempts", 0):
        time.sleep(float(inject.get("hang_s", 3600)))
    if attempt <= inject.get("fail_attempts", 0):
        raise RuntimeError(f"injected failure (attempt {attempt})")
    alloc_mb = inject.get("alloc_mb")
    if alloc_mb:
        # Ballast to trip the RLIMIT_AS cap; kept alive via the raise
        # path only — a successful check frees it immediately.
        ballast = bytearray(int(alloc_mb) * 1024 * 1024)
        del ballast


def _resolve_cell_cache(cell: Dict[str, object], cache=None):
    """The warm cache a cell's check should use.

    ``cell["cache_dir"]`` gates warmth (the degradation ladder clears it
    for cold attempts); when a ``cache`` backend object is supplied (the
    daemon's resident tiered store, inherited by the forked child) it
    takes the place of whatever the cell names.
    """
    cache_dir = cell.get("cache_dir")
    if not cache_dir:
        return None
    if cache is not None:
        return cache
    backend = cell.get("cache_backend") or "disk"
    if backend == "disk":
        return cache_dir
    from ..cache import make_backend

    return make_backend(backend, cache_dir)


def _run_check(
    cell: Dict[str, object], cache=None
) -> Tuple[Dict[str, object], Dict[str, object], Optional[Dict[str, float]]]:
    """The actual check, in-process (the child body, minus plumbing).

    Returns ``(result, stats, profile)``: the canonical verdict payload
    (identical whether the check ran here, in a campaign cell, or behind
    the daemon), a small engine-introspection dict — ``safety_rows`` is
    the number of TM transition rows this run actually *built* (0 means
    the check was served entirely from warm state), ``warm_safety_rows``
    the rows restored from the cache — and the per-phase profile split
    when the cell asked for one (``profile: true``).
    """
    from ..checking import check_safety
    from ..cli import PROPERTIES, _make_tm
    from ..core.statements import format_word

    tm = _make_tm(
        cell["tm"], cell["n"], cell["k"], cell.get("manager")
    )
    profile: Optional[Dict[str, float]] = (
        {} if cell.get("profile") else None
    )
    res = check_safety(
        tm,
        PROPERTIES[cell["property"]],
        lazy_spec=bool(cell.get("lazy_spec")),
        compiled=bool(cell.get("compiled", True)),
        spec_compiled=bool(cell.get("spec_compiled", True)),
        dense_kernel=cell.get("dense_kernel"),
        jobs=int(cell.get("jobs") or 1),
        shard_product=bool(cell.get("shard_product", True)),
        chunk_size=cell.get("chunk_size"),
        cache_dir=_resolve_cell_cache(cell, cache),
        max_states=cell.get("max_states"),
        profile=profile,
    )
    result = {
        "tm_name": res.tm_name,
        "holds": res.holds,
        "counterexample": (
            None
            if res.counterexample is None
            else format_word(res.counterexample)
        ),
        "tm_states": res.tm_states,
        "spec_states": res.spec_states,
        "product_states": res.product_states,
        "seconds": round(res.seconds, 6),
    }
    stats: Dict[str, object] = {}
    if cell.get("compiled", True):
        from ..tm.compiled import compile_tm

        engine_stats = compile_tm(tm).stats()
        warm = engine_stats.get("warm_safety_rows", 0)
        stats = {
            "safety_rows": engine_stats["safety_rows"] - warm,
            "warm_safety_rows": warm,
        }
    return result, stats, profile


def _cell_worker(
    conn,
    cell: Dict[str, object],
    attempt: int,
    cache=None,
    collect_warm: bool = False,
) -> None:
    try:
        _apply_memory_cap(cell.get("memory_mb"))
        _apply_injections(cell.get("inject") or {}, attempt)
        baseline = (
            cache.snapshot_keys()
            if collect_warm and cache is not None and cell.get("cache_dir")
            else None
        )
        result, stats, profile = _run_check(cell, cache)
        msg: Dict[str, object] = {
            "ok": True, "result": result, "stats": stats,
        }
        if profile is not None:
            msg["profile"] = {
                key: round(value, 6) for key, value in profile.items()
            }
        if baseline is not None:
            # Ship the payloads this child *built* back to the parent:
            # its forked copy of the resident tier dies with it.
            msg["warm"] = cache.export_blobs(exclude=baseline)
        conn.send(msg)
    except MemoryError:
        conn.send(
            {"ok": False, "fault": FAULT_MEMORY,
             "detail": "memory cap exceeded"}
        )
    except BaseException as exc:  # report, don't die silently
        # Full repr + raise site: a TypeError from a bad mutant must be
        # triageable from the journal alone, not conflated with checker
        # faults ("worker died" / "memory cap exceeded").
        detail = repr(exc)
        tb = getattr(exc, "__traceback__", None)
        if tb is not None:
            import traceback

            frames = traceback.extract_tb(tb)
            if frames:
                last_frame = frames[-1]
                detail += (
                    f" @ {os.path.basename(last_frame.filename)}"
                    f":{last_frame.lineno}"
                )
        conn.send(
            {"ok": False, "fault": FAULT_EXCEPTION, "detail": detail}
        )
    finally:
        conn.close()


def _degrade(cell: Dict[str, object]) -> Optional[str]:
    """Mutate ``cell`` one rung down the ladder; name the rung taken."""
    if int(cell.get("jobs") or 1) > 1:
        cell["jobs"] = 1
        return "serial"
    if cell.get("cache_dir"):
        cell["cache_dir"] = None
        return "cold"
    return None


def _attempt(
    cell: Dict[str, object],
    attempt: int,
    cache=None,
    collect_warm: bool = False,
) -> Dict[str, object]:
    """One supervised attempt: ``{"ok": ..., ...}`` like the child's
    message, plus the synthesized timeout/crash faults."""
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_cell_worker,
        args=(child_conn, cell, attempt, cache, collect_warm),
    )
    proc.start()
    child_conn.close()
    timeout_s = float(cell.get("timeout_s") or 300.0)
    try:
        if not parent_conn.poll(timeout_s):
            proc.terminate()
            proc.join(_TERM_GRACE_S)
            if proc.is_alive():
                proc.kill()
                proc.join()
            return {
                "ok": False,
                "fault": FAULT_TIMEOUT,
                "detail": f"no result within {timeout_s:g}s",
            }
        try:
            msg = parent_conn.recv()
        except EOFError:
            proc.join()
            return {
                "ok": False,
                "fault": FAULT_CRASH,
                "detail": f"worker died (exit code {proc.exitcode})",
            }
        proc.join()
        return msg
    finally:
        parent_conn.close()
        if proc.is_alive():  # pragma: no cover - belt and braces
            proc.kill()
            proc.join()


def run_cell(
    cell: Dict[str, object],
    *,
    cache=None,
    collect_warm: bool = False,
) -> Dict[str, object]:
    """Run one cell to a journal entry (sans ``type``/``id``).

    Statuses: ``pass``/``fail`` from a completed check, ``timeout``
    when the final attempt hit the wall clock, ``error`` for any other
    exhausted fault.  ``faults`` records every failed attempt with the
    degradation rung the *next* attempt took.

    ``cache`` substitutes a live backend object for the cell's named
    ``cache_dir`` (the daemon's resident tiered store); with
    ``collect_warm=True`` a successful outcome carries a ``warm`` dict
    of the encoded payloads the child built, for the caller to absorb.
    The ``result`` payload itself never varies with these knobs — the
    byte-identity contract extends through the daemon.
    """
    cell = dict(cell)  # degradation mutates a private copy
    retries = int(cell.get("retries") or 0)
    backoff_s = float(cell.get("backoff_s") or 0.0)
    backoff_cap_s = float(cell.get("backoff_cap_s") or BACKOFF_CAP_S)
    retry_seed = cell.get("retry_seed")
    # A seeded cell draws its decorrelated jitter from a private PRNG,
    # making the whole retry schedule — and hence hunt wall-clock
    # behaviour under fault injection — reproducible end-to-end.
    rng = (
        random.Random(retry_seed).uniform
        if retry_seed is not None
        else random.uniform
    )
    faults: List[Dict[str, object]] = []
    attempts = 0
    last: Dict[str, object] = {}
    delay = backoff_s
    for attempt in range(1, retries + 2):
        attempts = attempt
        last = _attempt(cell, attempt, cache, collect_warm)
        if last.get("ok"):
            result = dict(last["result"])
            seconds = result.pop("seconds", None)
            outcome = {
                "status": "pass" if result["holds"] else "fail",
                "result": result,
                "error": None,
                "attempts": attempts,
                "faults": faults,
                "seconds": seconds,
            }
            if last.get("stats"):
                outcome["stats"] = last["stats"]
            if last.get("profile") is not None:
                outcome["profile"] = last["profile"]
            if collect_warm:
                outcome["warm"] = last.get("warm") or {}
            return outcome
        degraded = _degrade(cell) if attempt <= retries else None
        faults.append(
            {
                "attempt": attempt,
                "class": last.get("fault", FAULT_EXCEPTION),
                "detail": last.get("detail", ""),
                "degraded": degraded,
            }
        )
        if attempt <= retries and backoff_s > 0:
            delay = _retry_delay(
                backoff_s, delay, rng, cap_s=backoff_cap_s
            )
            time.sleep(delay)
    status = (
        "timeout" if last.get("fault") == FAULT_TIMEOUT else "error"
    )
    return {
        "status": status,
        "result": None,
        "error": last.get("detail", ""),
        "attempts": attempts,
        "faults": faults,
        "seconds": None,
    }
