"""Campaign reports: canonical JSON + markdown, stable exit codes.

The report is a pure function of the spec and the journal entries —
wall-clock times stay in the journal and are deliberately **excluded**
here, so a campaign interrupted and resumed produces a byte-identical
report to an uninterrupted one (pinned by tests and the acceptance
criteria).

Exit-code contract (``repro batch``)::

    0  every cell passed
    1  >= 1 violation (a check that completed and found a bug)
    2  usage error (bad spec, bad flags) — argparse/ValueError level
    3  >= 1 cell errored or timed out (dominates violations: an
       incomplete campaign's "all clear" means nothing)
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.faultplane import injected_counts

from .runner import CampaignRun

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2
EXIT_ERRORS = 3


def build_report(run: CampaignRun) -> Dict[str, object]:
    """The canonical (deterministic, time-free) report document."""
    cells: List[Dict[str, object]] = []
    summary = {"pass": 0, "fail": 0, "timeout": 0, "error": 0,
               "missing": 0}
    for cell in run.spec.cells:
        entry = run.entries.get(cell["id"])
        if entry is None:
            summary["missing"] += 1
            cells.append({"id": cell["id"], "status": "missing"})
            continue
        status = entry.get("status", "error")
        summary[status] = summary.get(status, 0) + 1
        cells.append(
            {
                "id": cell["id"],
                "status": status,
                "attempts": entry.get("attempts"),
                "backoff_cap_s": cell.get("backoff_cap_s"),
                "faults": [
                    {
                        "attempt": fault.get("attempt"),
                        "class": fault.get("class"),
                        "detail": fault.get("detail"),
                        "degraded": fault.get("degraded"),
                    }
                    for fault in entry.get("faults") or ()
                ],
                "result": entry.get("result"),
                "error": entry.get("error"),
            }
        )
    report: Dict[str, object] = {
        "campaign": run.spec.name,
        "digest": run.spec.digest,
        "cells": cells,
        "summary": summary,
    }
    # Chaos-plane observability: when a fault schedule is active in
    # this process, its fired-injection tally (the journal plane fires
    # here; cache faults fire in the forked children and surface via
    # error_counts()/doctor instead) joins the report.  Absent without
    # a schedule, so fault-free reports keep their exact bytes.
    injected = injected_counts()
    if injected:
        report["faultplane"] = injected
    return report


def report_exit_code(report: Dict[str, object]) -> int:
    summary = report["summary"]
    if summary["error"] or summary["timeout"] or summary["missing"]:
        return EXIT_ERRORS
    if summary["fail"]:
        return EXIT_VIOLATIONS
    return EXIT_OK


def render_json(report: Dict[str, object]) -> str:
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_markdown(report: Dict[str, object]) -> str:
    """A human-facing summary table (also deterministic)."""
    lines = [
        f"# campaign `{report['campaign']}`",
        "",
        "| cell | status | attempts | faults | product states |"
        " counterexample |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for cell in report["cells"]:
        result = cell.get("result") or {}
        faults = cell.get("faults") or ()
        fault_text = (
            "; ".join(
                "{}{}".format(
                    fault["class"],
                    f"->{fault['degraded']}" if fault.get("degraded")
                    else "",
                )
                for fault in faults
            )
            or "-"
        )
        counterexample = result.get("counterexample") or "-"
        lines.append(
            "| {} | {} | {} | {} | {} | {} |".format(
                cell["id"],
                cell["status"],
                cell.get("attempts", "-"),
                fault_text,
                result.get("product_states", "-"),
                counterexample,
            )
        )
    summary = report["summary"]
    lines += [
        "",
        "**summary**: {pass} pass, {fail} fail, {timeout} timeout,"
        " {error} error, {missing} missing".format(
            **{key: summary[key] for key in
               ("pass", "fail", "timeout", "error", "missing")}
        ),
        "",
    ]
    return "\n".join(lines)
