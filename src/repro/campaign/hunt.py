"""Bug-hunt campaigns: the mutant farm swept through the batch layer.

A *hunt* is a campaign whose TMs are mutation-farm mutants
(:mod:`repro.tm.mutate`) plus plain control TMs, and whose success
criterion is inverted per TM: a mutant seeded with a bug **must** be
killed (some cell finds a counterexample), a correct variant **must
not** be.  The hunt spec compiles down to an ordinary
:class:`~repro.campaign.spec.CampaignSpec` — mutants × properties ×
sizes through the same validated matrix expansion — so hunts inherit
the whole batch stack unchanged: per-cell subprocess isolation,
timeout/RSS caps, retry-with-degradation, the resumable JSONL journal,
and (because :func:`~repro.campaign.spec.expand_cell` now accepts
mutant ids) the ``repro serve`` daemon as an execution backend.

A hunt spec file looks like::

    {
      "name": "nightly-hunt",
      "mutants": ["tl2/*", "2pl/no-rlock", "opt/split-commit@seed2"],
      "controls": ["tl2", "norec"],
      "properties": ["ss", "op"],
      "sizes": [[2, 2]],
      "defaults": {"timeout_s": 120, "retry_seed": 0}
    }

``mutants`` entries are exact mutant ids or ``fnmatch`` globs over the
default roster; ``controls`` are plain TM names whose expected verdict
comes from :data:`PLAIN_EXPECTATIONS` (every paper TM is correct except
``modtl2``, the Section 5.4 flaw).  Omitting ``mutants`` selects the
full shipped roster — the configuration ``repro hunt`` runs with no
spec file at all.

The verdict layer lives in :mod:`.hunt_report`.
"""

from __future__ import annotations

import fnmatch
import json
from typing import Dict, List, Optional, Sequence, Tuple

from .spec import CampaignSpec, CampaignSpecError, _check_policy, parse_spec

#: Expected verdicts for the plain (non-mutant) control TMs: ``True``
#: means "the checker must find a bug".  Only the paper's deliberately
#: broken modified TL2 is expected-buggy; every other registered TM is
#: a true negative.
PLAIN_EXPECTATIONS: Dict[str, bool] = {"modtl2": True}

_HUNT_KEYS = frozenset(
    ["name", "mutants", "controls", "properties", "sizes", "defaults"]
)

#: Hunt-level policy defaults: seeded retries (reproducible schedules)
#: and a per-attempt timeout far below the campaign default — hunt
#: cells are small by construction.
HUNT_POLICY_DEFAULTS: Dict[str, object] = {
    "timeout_s": 120.0,
    "retry_seed": 0,
}

DEFAULT_CONTROLS: Tuple[str, ...] = ("tl2", "norec")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise CampaignSpecError(message)


def tm_expectation(name: str) -> bool:
    """``expect_bug`` for any hunt TM — mutant id or plain control."""
    if "/" in name:
        from ..tm.mutate import mutant_expectation

        try:
            return mutant_expectation(name)
        except ValueError as exc:
            raise CampaignSpecError(f"hunt spec: {exc}")
    from ..cli import TM_FACTORIES

    _require(
        name.lower() in TM_FACTORIES,
        f"hunt spec: unknown control TM {name!r}"
        f" (choose from {sorted(TM_FACTORIES)})",
    )
    return PLAIN_EXPECTATIONS.get(name.lower(), False)


def _expand_mutant_patterns(patterns: Sequence[object]) -> List[str]:
    """Exact mutant ids pass through; globs select from the default
    roster.  Order-preserving, de-duplicated."""
    from ..tm.mutate import default_mutants, is_mutant_id

    roster = default_mutants()
    out: List[str] = []
    for pattern in patterns:
        _require(
            isinstance(pattern, str) and bool(pattern),
            "hunt spec: mutants entries must be non-empty strings",
        )
        if is_mutant_id(pattern):
            matches = [pattern]
        else:
            matches = [
                mid for mid in roster
                if fnmatch.fnmatchcase(mid, pattern)
            ]
            _require(
                bool(matches),
                f"hunt spec: mutant pattern {pattern!r} matches nothing"
                " (see 'repro hunt --list' for the roster)",
            )
        for mid in matches:
            if mid not in out:
                out.append(mid)
    return out


class HuntSpec:
    """A validated hunt: per-TM expectations over a campaign matrix.

    ``campaign`` is the fully expanded :class:`CampaignSpec` the batch
    layer executes; ``expectations`` maps each TM name (mutant id or
    control) to its expected verdict.  The campaign digest doubles as
    the hunt digest, so journals resume under the standard
    digest-mismatch protection.
    """

    def __init__(
        self,
        name: str,
        tms: List[str],
        properties: List[str],
        sizes: List[List[int]],
        defaults: Dict[str, object],
    ) -> None:
        self.name = name
        self.tms = tms
        self.expectations = {tm: tm_expectation(tm) for tm in tms}
        self.properties = properties
        self.sizes = sizes
        self.defaults = defaults
        self.campaign: CampaignSpec = parse_spec(
            {
                "name": name,
                "defaults": defaults,
                "matrix": {
                    "tms": tms,
                    "properties": properties,
                    "sizes": sizes,
                },
            }
        )

    @property
    def digest(self) -> str:
        return self.campaign.digest


def parse_hunt_spec(data: object) -> HuntSpec:
    """Validate and expand one decoded hunt spec document."""
    _require(
        isinstance(data, dict), "hunt spec must be a JSON object"
    )
    unknown = set(data) - _HUNT_KEYS
    _require(
        not unknown,
        f"hunt spec: unknown key(s) {sorted(unknown)}"
        f" (expected {sorted(_HUNT_KEYS)})",
    )
    name = data.get("name", "hunt")
    _require(
        isinstance(name, str) and bool(name),
        "hunt spec: name must be a non-empty string",
    )

    raw_mutants = data.get("mutants")
    if raw_mutants is None:
        from ..tm.mutate import default_mutants

        mutants = default_mutants()
    else:
        _require(
            isinstance(raw_mutants, list) and bool(raw_mutants),
            "hunt spec: mutants must be a non-empty list",
        )
        mutants = _expand_mutant_patterns(raw_mutants)

    raw_controls = data.get("controls")
    if raw_controls is None:
        controls = list(DEFAULT_CONTROLS)
    else:
        _require(
            isinstance(raw_controls, list),
            "hunt spec: controls must be a list",
        )
        for control in raw_controls:
            _require(
                isinstance(control, str) and bool(control)
                and "/" not in control,
                "hunt spec: controls entries must be plain TM names",
            )
        controls = list(dict.fromkeys(raw_controls))

    properties = data.get("properties", ["ss", "op"])
    _require(
        isinstance(properties, list) and bool(properties),
        "hunt spec: properties must be a non-empty list",
    )
    sizes = data.get("sizes", [[2, 2]])
    _require(
        isinstance(sizes, list) and bool(sizes)
        and all(
            isinstance(size, list) and len(size) == 2 for size in sizes
        ),
        "hunt spec: sizes must be a non-empty list of [n, k] pairs",
    )

    defaults = dict(HUNT_POLICY_DEFAULTS)
    overrides = data.get("defaults", {})
    _require(
        isinstance(overrides, dict),
        "hunt spec: defaults must be an object",
    )
    _check_policy(overrides, "hunt defaults")
    defaults.update(overrides)

    tms = mutants + [c for c in controls if c not in mutants]
    _require(bool(tms), "hunt spec: no mutants or controls selected")
    return HuntSpec(name, tms, properties, sizes, defaults)


def default_hunt_spec() -> HuntSpec:
    """The shipped hunt ``repro hunt`` runs with no spec file: the full
    default mutant roster plus the TL2/NOrec true-negative controls at
    (2, 2) against both properties."""
    return parse_hunt_spec({"name": "default-hunt"})


def load_hunt_spec(path: str) -> HuntSpec:
    """Parse + validate a hunt spec file (bad JSON is a spec error)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise CampaignSpecError(f"cannot read hunt spec: {exc}")
    except json.JSONDecodeError as exc:
        raise CampaignSpecError(f"hunt spec is not valid JSON: {exc}")
    return parse_hunt_spec(data)


def run_hunt(
    spec: HuntSpec,
    journal_path: str,
    *,
    resume: bool = True,
    limit: Optional[int] = None,
    progress=None,
):
    """Execute the hunt's campaign (journal-resumable, fault-isolated)
    and return the :class:`~repro.campaign.runner.CampaignRun` for
    :func:`~repro.campaign.hunt_report.build_hunt_report`."""
    from .runner import run_campaign

    return run_campaign(
        spec.campaign, journal_path,
        resume=resume, limit=limit, progress=progress,
    )
