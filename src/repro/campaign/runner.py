"""The campaign loop: journal-resumable cell-by-cell execution.

``run_campaign`` walks the spec's cells in order, skipping every cell
the journal already records (the resume path) and appending each new
outcome as soon as its supervisor returns — so killing the process at
any point loses at most the in-flight cell.  ``limit`` stops after N
*newly executed* cells; the tests use it to simulate an interruption
deterministically (run 2 cells, "crash", resume, and compare reports).

Signal drain: when SIGTERM/SIGINT lands mid-cell (the CLI converts
SIGTERM into :class:`CampaignInterrupted`), the in-flight cell is
journaled with status ``interrupted`` before the exception propagates,
so orchestrators that TERM a batch get a journal that names exactly
where it stopped — and resume *re-runs* interrupted cells rather than
trusting a half-finished outcome.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .journal import Journal
from .spec import CampaignSpec, CampaignSpecError
from .supervisor import run_cell


class CampaignInterrupted(BaseException):
    """A drain request (SIGTERM) — ``BaseException`` so no check-level
    ``except Exception`` can swallow it on the way out."""


class CampaignRun:
    """Everything a report needs: the spec plus the journal entries."""

    def __init__(
        self,
        spec: CampaignSpec,
        entries: Dict[str, Dict[str, object]],
    ) -> None:
        self.spec = spec
        self.entries = entries

    @property
    def complete(self) -> bool:
        return all(cell["id"] in self.entries for cell in self.spec.cells)


def run_campaign(
    spec: CampaignSpec,
    journal_path: str,
    *,
    resume: bool = True,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignRun:
    """Execute ``spec``, journaling to ``journal_path``.

    With ``resume`` (the default), an existing journal for the *same*
    spec digest replays its completed cells; a journal for a different
    digest raises :class:`CampaignSpecError` (start over with
    ``--no-resume`` or a fresh journal path).  ``resume=False`` always
    truncates.  Faulted cells never raise — every outcome, ``error``
    included, lands in the journal and the campaign moves on.
    """
    say = progress or (lambda _line: None)
    journal = Journal(journal_path)
    entries: Dict[str, Dict[str, object]] = {}
    if resume:
        header, entries = journal.load()
        if header is None:
            entries = {}
            journal.start(spec.name, spec.digest)
        elif header.get("digest") != spec.digest:
            raise CampaignSpecError(
                f"journal {journal_path} was written for a different"
                " campaign spec (digest mismatch); use --no-resume to"
                " start over"
            )
        # Drop journal entries for cells the spec no longer has (a
        # digest match makes this impossible, but stay defensive), and
        # re-run cells a previous run only got to interrupt.
        known = {cell["id"] for cell in spec.cells}
        entries = {
            k: v for k, v in entries.items()
            if k in known and v.get("status") != "interrupted"
        }
        if entries:
            say(f"resuming: {len(entries)} cell(s) replayed from journal")
    else:
        journal.start(spec.name, spec.digest)

    ran = 0
    for cell in spec.cells:
        cell_id = cell["id"]
        if cell_id in entries:
            continue
        if limit is not None and ran >= limit:
            break
        say(f"[{len(entries) + 1}/{len(spec.cells)}] {cell_id} ...")
        try:
            outcome = run_cell(cell)
        except (KeyboardInterrupt, CampaignInterrupted):
            journal.append_cell(
                {
                    "type": "cell",
                    "id": cell_id,
                    "status": "interrupted",
                    "result": None,
                    "error": "interrupted mid-cell",
                    "attempts": 0,
                    "faults": [],
                }
            )
            say("    -> interrupted (journaled; resume re-runs it)")
            raise
        entry = {"type": "cell", "id": cell_id}
        entry.update(outcome)
        journal.append_cell(entry)
        entries[cell_id] = entry
        ran += 1
        status = entry["status"]
        nfaults = len(entry.get("faults") or ())
        suffix = f" ({nfaults} fault(s))" if nfaults else ""
        say(f"    -> {status}{suffix}")
    return CampaignRun(spec, entries)
