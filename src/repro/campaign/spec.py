"""Campaign specs: a validated JSON matrix of checks.

A spec file looks like::

    {
      "name": "nightly",
      "defaults": {"timeout_s": 120, "retries": 2, "cache_dir": "/tmp/c"},
      "matrix": {
        "tms": ["2pl", "dstm"],
        "properties": ["ss", "op"],
        "sizes": [[2, 1], [2, 2]]
      },
      "cells": [
        {"tm": "modtl2", "property": "op", "n": 2, "k": 2,
         "timeout_s": 600}
      ]
    }

``matrix`` expands to the full cross product; ``cells`` adds (or
overrides) individual cells.  Every cell inherits ``defaults`` and may
override any policy key.  Validation is strict — unknown keys, unknown
TM/property/manager names, bad types, and duplicate cell ids are all
:class:`CampaignSpecError`\\ s (a ``ValueError``, so the CLI maps them
to exit 2) — because a campaign that dies on cell 40 of 60 from a typo
wastes the first 39 cells.

The spec digest (sha256 over the canonical JSON of the expanded cells)
names the campaign for journal resume: a journal written for a
different digest refuses to resume rather than silently replaying
mismatched cells.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from ..cache import BACKEND_NAMES


class CampaignSpecError(ValueError):
    """A campaign spec failed validation (CLI exit 2)."""


#: Policy keys a cell (or ``defaults``) may set, with campaign-level
#: defaults.  ``timeout_s`` bounds each *attempt*, not the whole cell.
POLICY_DEFAULTS: Dict[str, object] = {
    "timeout_s": 300.0,
    "retries": 2,
    "backoff_s": 0.1,
    "backoff_cap_s": 30.0,
    "memory_mb": None,
    "jobs": 1,
    "shard_product": True,
    "chunk_size": None,
    "cache_dir": None,
    "cache_backend": "disk",
    "lazy_spec": False,
    "compiled": True,
    "spec_compiled": True,
    "dense_kernel": None,
    "max_states": None,
    "manager": None,
    "inject": None,
    "profile": False,
    "retry_seed": None,
}

#: Fault-injection knobs (testing/CI only): kill/hang/fail the worker
#: on its first N attempts, or allocate ballast to trip the RSS cap.
INJECT_KEYS = frozenset(
    ["sigkill_attempts", "hang_attempts", "hang_s", "fail_attempts",
     "alloc_mb"]
)

_CELL_ONLY_KEYS = frozenset(["tm", "property", "n", "k"])


def _known_names():
    # Imported late: repro.cli imports the campaign package lazily
    # inside its command functions, so this back-reference is safe.
    from ..cli import MANAGERS, PROPERTIES, TM_FACTORIES

    return TM_FACTORIES, PROPERTIES, MANAGERS


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise CampaignSpecError(message)


def _is_mutant_name(name: object) -> bool:
    # Mutant ids (tl2/drop-rvalidate[@seedN]) are first-class TM names
    # everywhere a cell is validated — including daemon check requests,
    # which makes hunts runnable against ``repro serve`` for free.
    if not isinstance(name, str) or "/" not in name:
        return False
    from ..tm.mutate import is_mutant_id

    return is_mutant_id(name)


def _check_policy(policy: Dict[str, object], where: str) -> None:
    tms, props, managers = _known_names()
    for key, value in policy.items():
        _require(
            key in POLICY_DEFAULTS,
            f"{where}: unknown key {key!r}"
            f" (choose from {sorted(POLICY_DEFAULTS)})",
        )
    if "timeout_s" in policy:
        value = policy["timeout_s"]
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and value > 0,
            f"{where}: timeout_s must be a positive number",
        )
    for key in ("retries", "jobs"):
        if key in policy and policy[key] is not None:
            value = policy[key]
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= (0 if key == "retries" else 1),
                f"{where}: {key} must be a non-negative integer"
                if key == "retries"
                else f"{where}: {key} must be a positive integer",
            )
    if "backoff_s" in policy:
        value = policy["backoff_s"]
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and value >= 0,
            f"{where}: backoff_s must be a non-negative number",
        )
    if "backoff_cap_s" in policy:
        value = policy["backoff_cap_s"]
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and value > 0,
            f"{where}: backoff_cap_s must be a positive number",
        )
    for key in ("memory_mb", "max_states", "chunk_size"):
        if key in policy and policy[key] is not None:
            value = policy[key]
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value > 0,
                f"{where}: {key} must be a positive integer or null",
            )
    if "retry_seed" in policy and policy["retry_seed"] is not None:
        value = policy["retry_seed"]
        _require(
            isinstance(value, int) and not isinstance(value, bool)
            and value >= 0,
            f"{where}: retry_seed must be a non-negative integer or null",
        )
    for key in (
        "shard_product", "lazy_spec", "compiled", "spec_compiled",
        "profile",
    ):
        if key in policy:
            _require(
                isinstance(policy[key], bool),
                f"{where}: {key} must be a boolean",
            )
    if "dense_kernel" in policy and policy["dense_kernel"] is not None:
        _require(
            isinstance(policy["dense_kernel"], bool),
            f"{where}: dense_kernel must be a boolean or null",
        )
    if "cache_dir" in policy and policy["cache_dir"] is not None:
        _require(
            isinstance(policy["cache_dir"], str) and policy["cache_dir"],
            f"{where}: cache_dir must be a non-empty string or null",
        )
    if "cache_backend" in policy:
        _require(
            policy["cache_backend"] in BACKEND_NAMES,
            f"{where}: cache_backend must be one of {BACKEND_NAMES}",
        )
    if "manager" in policy and policy["manager"] is not None:
        _require(
            policy["manager"] in managers,
            f"{where}: unknown manager {policy['manager']!r}"
            f" (choose from {sorted(managers)})",
        )
    if "inject" in policy and policy["inject"] is not None:
        inject = policy["inject"]
        _require(
            isinstance(inject, dict),
            f"{where}: inject must be an object",
        )
        for key, value in inject.items():
            _require(
                key in INJECT_KEYS,
                f"{where}: unknown inject key {key!r}"
                f" (choose from {sorted(INJECT_KEYS)})",
            )
            _require(
                isinstance(value, (int, float))
                and not isinstance(value, bool) and value >= 0,
                f"{where}: inject.{key} must be a non-negative number",
            )


def _cell_id(cell: Dict[str, object]) -> str:
    base = "{}/{}/{}x{}".format(
        cell["tm"], cell["property"], cell["n"], cell["k"]
    )
    manager = cell.get("manager")
    return f"{base}+{manager}" if manager else base


def _expand_cell(
    raw: Dict[str, object], defaults: Dict[str, object], where: str
) -> Dict[str, object]:
    tms, props, _managers = _known_names()
    _require(isinstance(raw, dict), f"{where}: cell must be an object")
    unknown = set(raw) - _CELL_ONLY_KEYS - set(POLICY_DEFAULTS)
    _require(
        not unknown,
        f"{where}: unknown key(s) {sorted(unknown)}",
    )
    _require("tm" in raw, f"{where}: missing 'tm'")
    _require("property" in raw, f"{where}: missing 'property'")
    _require(
        raw["tm"] in tms or _is_mutant_name(raw["tm"]),
        f"{where}: unknown TM {raw['tm']!r}"
        f" (choose from {sorted(tms)} or a mutant id)",
    )
    _require(
        raw["property"] in props,
        f"{where}: unknown property {raw['property']!r}"
        f" (choose from {sorted(props)})",
    )
    for key in ("n", "k"):
        if key in raw:
            value = raw[key]
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 1,
                f"{where}: {key} must be a positive integer",
            )
    overrides = {
        key: value for key, value in raw.items()
        if key not in _CELL_ONLY_KEYS
    }
    _check_policy(overrides, where)
    cell = dict(POLICY_DEFAULTS)
    cell.update(defaults)
    cell.update(overrides)
    cell["tm"] = raw["tm"]
    cell["property"] = raw["property"]
    cell["n"] = raw.get("n", 2)
    cell["k"] = raw.get("k", 2)
    cell["id"] = _cell_id(cell)
    return cell


def expand_cell(
    raw: Dict[str, object],
    defaults: Optional[Dict[str, object]] = None,
    where: str = "request",
) -> Dict[str, object]:
    """Validate one raw cell dict into a fully-defaulted cell.

    The public face of :func:`_expand_cell` — the serve layer runs each
    incoming check request through exactly this validation so a daemon
    request and a campaign cell are the same object with the same
    strictness (unknown keys, unknown TM/property names, bad types all
    raise :class:`CampaignSpecError`).
    """
    return _expand_cell(raw, defaults or {}, where)


class CampaignSpec:
    """A validated, fully expanded campaign: ``cells`` in run order."""

    def __init__(
        self, name: str, cells: List[Dict[str, object]]
    ) -> None:
        self.name = name
        self.cells = cells
        canonical = json.dumps(
            {"name": name, "cells": cells}, sort_keys=True
        )
        self.digest = hashlib.sha256(canonical.encode()).hexdigest()

    def cell(self, cell_id: str) -> Optional[Dict[str, object]]:
        for cell in self.cells:
            if cell["id"] == cell_id:
                return cell
        return None


def parse_spec(data: object) -> CampaignSpec:
    """Validate and expand one decoded spec document."""
    _require(isinstance(data, dict), "campaign spec must be a JSON object")
    unknown = set(data) - {"name", "defaults", "matrix", "cells"}
    _require(
        not unknown,
        f"campaign spec: unknown key(s) {sorted(unknown)}"
        " (expected name/defaults/matrix/cells)",
    )
    name = data.get("name", "campaign")
    _require(
        isinstance(name, str) and name, "campaign spec: name must be a"
        " non-empty string"
    )
    defaults = data.get("defaults", {})
    _require(
        isinstance(defaults, dict), "campaign spec: defaults must be an"
        " object"
    )
    _check_policy(defaults, "defaults")

    cells: List[Dict[str, object]] = []
    matrix = data.get("matrix")
    if matrix is not None:
        _require(
            isinstance(matrix, dict), "matrix must be an object"
        )
        unknown = set(matrix) - {"tms", "properties", "sizes"}
        _require(not unknown, f"matrix: unknown key(s) {sorted(unknown)}")
        tms = matrix.get("tms", [])
        props = matrix.get("properties", [])
        sizes = matrix.get("sizes", [[2, 2]])
        _require(
            isinstance(tms, list) and tms,
            "matrix.tms must be a non-empty list",
        )
        _require(
            isinstance(props, list) and props,
            "matrix.properties must be a non-empty list",
        )
        _require(
            isinstance(sizes, list) and sizes
            and all(
                isinstance(size, list) and len(size) == 2 for size in sizes
            ),
            "matrix.sizes must be a non-empty list of [n, k] pairs",
        )
        for tm in tms:
            for prop in props:
                for n, k in sizes:
                    cells.append(
                        _expand_cell(
                            {"tm": tm, "property": prop, "n": n, "k": k},
                            defaults,
                            f"matrix cell {tm}/{prop}/{n}x{k}",
                        )
                    )
    matrix_ids = {cell["id"] for cell in cells}
    for index, raw in enumerate(data.get("cells", [])):
        cell = _expand_cell(raw, defaults, f"cells[{index}]")
        # An explicit cell may override its matrix-expanded twin, but
        # two explicit cells with the same id are a spec mistake.
        if cell["id"] in matrix_ids:
            cells = [c for c in cells if c["id"] != cell["id"]]
            matrix_ids.discard(cell["id"])
        cells.append(cell)
    _require(bool(cells), "campaign spec: no cells (empty matrix/cells)")
    seen = set()
    for cell in cells:
        _require(
            cell["id"] not in seen,
            f"duplicate cell id {cell['id']!r}",
        )
        seen.add(cell["id"])
    return CampaignSpec(name, cells)


def load_spec(path: str) -> CampaignSpec:
    """Parse + validate a spec file (bad JSON is a spec error too)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise CampaignSpecError(f"cannot read campaign spec: {exc}")
    except json.JSONDecodeError as exc:
        raise CampaignSpecError(f"campaign spec is not valid JSON: {exc}")
    return parse_spec(data)
