"""``repro doctor``: cache-directory health scans.

Read-only by default: every ``.pkl``/``.seg`` entry in the directory is
validated with the *same* corrupt/stale/mismatch/truncated rejection
logic the backends' ``load`` uses (:meth:`repro.cache.CacheBackend.
doctor`), orphaned temp files from interrupted atomic saves are
detected, and already-quarantined ``.bad`` files are listed.  With
``fix=True`` anomalies are quarantined (renamed ``<name>.bad``) and
orphans removed, after which a rescan reports the directory clean.

Exit-code contract (papyra-style)::

    0  healthy (or --fix left the directory clean); a missing
       directory is vacuously healthy
    1  anomalies found (read-only mode)
    2  the scan itself failed (unreadable directory)
    3  --fix could not repair everything
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from ..cache import (
    DOCTOR_ANOMALIES,
    DiskCacheBackend,
    MmapCacheBackend,
)

DOCTOR_OK = 0
DOCTOR_ANOMALOUS = 1
DOCTOR_SCAN_FAILED = 2
DOCTOR_FIX_INCOMPLETE = 3

#: Quarantined ``.bad`` files retained after a ``--fix`` rotation.  A
#: chaos-heavy cache directory quarantines on every injected torn
#: write; without a cap the corpses accumulate without bound.
DEFAULT_MAX_QUARANTINE = 16


def run_doctor(
    cache_dir: str, fix: bool = False,
    max_quarantine: int = DEFAULT_MAX_QUARANTINE,
) -> Tuple[int, Dict[str, object]]:
    """Scan ``cache_dir``; ``(exit_code, report)``.

    The report lists one record per file — ``{"name", "status",
    "bytes", "action"}`` with ``backend`` added — a summary of counts
    by status, and a ``quarantine`` section (count + accumulated bytes
    of ``.bad`` files).  With ``fix``, quarantines beyond
    ``max_quarantine`` are rotated out oldest-first (action
    ``"rotated"``).
    """
    entries: List[Dict[str, object]] = []
    if not os.path.isdir(cache_dir):
        report = {
            "cache_dir": cache_dir,
            "exists": False,
            "entries": [],
            "summary": {},
        }
        return DOCTOR_OK, report
    if not os.access(cache_dir, os.R_OK):
        return DOCTOR_SCAN_FAILED, {
            "cache_dir": cache_dir,
            "exists": True,
            "entries": [],
            "summary": {},
            "error": "directory is not readable",
        }
    errors: Dict[str, Dict[str, int]] = {}
    for backend_name, backend in (
        ("disk", DiskCacheBackend(cache_dir)),
        ("mmap", MmapCacheBackend(cache_dir)),
    ):
        records = [dict(record) for record in backend.doctor(fix=fix)]
        for record in records:
            record["backend"] = backend_name
            entries.append(record)
        # The per-backend error surface: whatever this scan rejected,
        # merged with any failures the backend instance itself swallowed
        # (zero for these fresh scanners, live for a resident store).
        counts = dict(backend.error_counts())
        for record in records:
            status = record["status"]
            if status in DOCTOR_ANOMALIES:
                counts[status] = counts.get(status, 0) + 1
        errors[backend_name] = counts
    quarantined = [
        record for record in entries
        if record["status"] == "quarantined"
    ]
    quarantine: Dict[str, object] = {
        "count": len(quarantined),
        "bytes": sum(record.get("bytes") or 0 for record in quarantined),
        "cap": max_quarantine,
        "rotated": [],
    }
    rotation_failed = False
    if fix and len(quarantined) > max_quarantine:
        def _mtime(record: Dict[str, object]) -> float:
            try:
                path = os.path.join(cache_dir, str(record["name"]))
                return os.stat(path).st_mtime
            except OSError:
                return 0.0

        # Oldest first, name as the deterministic tiebreak.
        doomed = sorted(
            quarantined, key=lambda r: (_mtime(r), r["name"])
        )[: len(quarantined) - max_quarantine]
        for record in doomed:
            path = os.path.join(cache_dir, str(record["name"]))
            try:
                os.unlink(path)
                record["action"] = "rotated"
                quarantine["rotated"].append(record["name"])
            except OSError:
                record["action"] = "failed"
                rotation_failed = True
    summary: Dict[str, int] = {}
    for record in entries:
        status = record["status"]
        summary[status] = summary.get(status, 0) + 1
    report = {
        "cache_dir": cache_dir,
        "exists": True,
        "entries": entries,
        "summary": summary,
        "errors": errors,
        "quarantine": quarantine,
    }
    anomalies = [
        record for record in entries
        if record["status"] in DOCTOR_ANOMALIES
    ]
    if not anomalies:
        if fix and rotation_failed:
            return DOCTOR_FIX_INCOMPLETE, report
        return DOCTOR_OK, report
    if not fix:
        return DOCTOR_ANOMALOUS, report
    unfixed = [
        record for record in anomalies if record.get("action") == "failed"
    ]
    if unfixed or rotation_failed:
        return DOCTOR_FIX_INCOMPLETE, report
    return DOCTOR_OK, report


def render_doctor(report: Dict[str, object]) -> str:
    """Human-facing scan listing."""
    lines = [f"doctor: {report['cache_dir']}"]
    if not report.get("exists"):
        lines.append("  directory does not exist; nothing to scan")
        return "\n".join(lines) + "\n"
    if report.get("error"):
        lines.append(f"  error: {report['error']}")
        return "\n".join(lines) + "\n"
    entries = report["entries"]
    if not entries:
        lines.append("  empty cache directory")
    for record in entries:
        action = record.get("action")
        suffix = f" [{action}]" if action else ""
        lines.append(
            "  {:<12} {:>10}B  {}{}".format(
                record["status"],
                record.get("bytes", 0),
                record["name"],
                suffix,
            )
        )
    summary = report["summary"]
    if summary:
        counts = ", ".join(
            f"{count} {status}"
            for status, count in sorted(summary.items())
        )
        lines.append(f"  summary: {counts}")
    quarantine = report.get("quarantine")
    if quarantine and quarantine.get("count"):
        line = "  quarantine: {count} file(s), {bytes}B (cap {cap})".format(
            **{key: quarantine[key] for key in ("count", "bytes", "cap")}
        )
        rotated = quarantine.get("rotated") or ()
        if rotated:
            line += f", rotated {len(rotated)}"
        lines.append(line)
    for backend_name, counts in sorted(
        (report.get("errors") or {}).items()
    ):
        if counts:
            rendered = ", ".join(
                f"{count} {kind}"
                for kind, count in sorted(counts.items())
            )
            lines.append(f"  errors[{backend_name}]: {rendered}")
    return "\n".join(lines) + "\n"
