"""Fault-tolerant campaign execution (``repro batch`` / ``repro doctor``).

A *campaign* is a validated matrix of safety checks — TM × property ×
(n, k), with per-cell overrides — executed one cell at a time under a
supervisor (:mod:`.supervisor`) that isolates each check in its own
subprocess with a wall-clock timeout, an RSS cap, and bounded
retry-with-backoff that degrades sharded→serial and warm→cold before
recording a still-failing cell as ``error`` and moving on.  Every
outcome is appended to an atomic JSONL journal (:mod:`.journal`) so an
interrupted campaign resumes exactly where it stopped, and the final
JSON/markdown reports (:mod:`.report`) are byte-identical whether or
not the campaign was interrupted.  :mod:`.doctor` is the companion
read-only cache-health scanner behind ``repro doctor``.
"""

from .chaos import (
    CHAOS_HARNESS,
    CHAOS_OK,
    CHAOS_USAGE,
    CHAOS_VIOLATIONS,
    build_trials,
    chaos_exit_code,
    default_schedule,
    render_chaos,
    run_chaos,
    run_chaos_cli,
)
from .doctor import DEFAULT_MAX_QUARANTINE, run_doctor
from .hunt import (
    HuntSpec,
    default_hunt_spec,
    load_hunt_spec,
    parse_hunt_spec,
    run_hunt,
)
from .hunt_report import (
    build_hunt_report,
    hunt_exit_code,
    render_hunt_json,
    render_hunt_markdown,
)
from .journal import Journal, JournalError
from .report import (
    EXIT_ERRORS,
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    build_report,
    render_markdown,
    report_exit_code,
)
from .runner import CampaignInterrupted, CampaignRun, run_campaign
from .spec import CampaignSpec, CampaignSpecError, load_spec, parse_spec
from .supervisor import run_cell

__all__ = [
    "CHAOS_HARNESS",
    "CHAOS_OK",
    "CHAOS_USAGE",
    "CHAOS_VIOLATIONS",
    "CampaignInterrupted",
    "CampaignRun",
    "CampaignSpec",
    "CampaignSpecError",
    "DEFAULT_MAX_QUARANTINE",
    "EXIT_ERRORS",
    "EXIT_OK",
    "EXIT_USAGE",
    "EXIT_VIOLATIONS",
    "HuntSpec",
    "Journal",
    "JournalError",
    "build_trials",
    "chaos_exit_code",
    "default_schedule",
    "render_chaos",
    "run_chaos",
    "run_chaos_cli",
    "build_hunt_report",
    "build_report",
    "default_hunt_spec",
    "hunt_exit_code",
    "load_hunt_spec",
    "load_spec",
    "parse_hunt_spec",
    "render_hunt_json",
    "render_hunt_markdown",
    "run_hunt",
    "parse_spec",
    "render_markdown",
    "report_exit_code",
    "run_campaign",
    "run_cell",
    "run_doctor",
]
