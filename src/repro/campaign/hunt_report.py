"""Hunt verdicts: did the checker kill what it should — and only that?

The campaign layer reports per-cell pass/fail; a hunt inverts and
aggregates that per TM against the mutant's ``expect_bug`` ground
truth:

``caught``
    a seeded-bug mutant some cell killed (counterexample found) — the
    report carries the **minimal** counterexample word across all
    killing cells;
``escaped``
    a seeded-bug mutant every completed cell passed — a checker miss,
    the hard failure the farm exists to detect;
``false-kill``
    a correct variant some cell killed — equally hard: the checker
    (or the mutant's ground-truth label) is wrong;
``correct``
    a correct variant no cell killed — the true negative passing;
``incomplete``
    any of the TM's cells missing/errored/timed out — no verdict can
    be trusted, triage the journal.

Exit-code contract (``repro hunt``)::

    0  nothing to catch and nothing miscaught (controls-only hunt)
    1  every seeded bug caught, no false kills — the *success* code
       for a real hunt (bugs were found, as they should be)
    2  usage error (bad spec, bad flags)
    3  >= 1 escaped / false-kill / incomplete — the farm failed

Like the campaign report, the document is a pure function of the spec
and the journal entries (no wall-clock anywhere), so an interrupted and
resumed hunt renders byte-identically — pinned by the CI smoke job.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faultplane import injected_counts

from .report import EXIT_ERRORS, EXIT_OK, EXIT_VIOLATIONS, render_json
from .runner import CampaignRun

__all__ = [
    "build_hunt_report",
    "hunt_exit_code",
    "render_hunt_json",
    "render_hunt_markdown",
]

#: Verdict sort rank: hard failures first, then unfinished work, then
#: kills (ranked among themselves by counterexample length), then the
#: quiet true negatives.
_VERDICT_RANK = {
    "escaped": 0,
    "false-kill": 1,
    "incomplete": 2,
    "caught": 3,
    "correct": 4,
}


def _word_length(word: Optional[str]) -> int:
    """Statement count of a formatted counterexample word."""
    if not word:
        return 0
    return len(word.split(", "))


def build_hunt_report(spec, run: CampaignRun) -> Dict[str, object]:
    """The canonical hunt document: per-TM verdicts, ranked.

    ``spec`` is a :class:`~repro.campaign.hunt.HuntSpec`; ``run`` the
    campaign run over ``spec.campaign``.
    """
    by_tm: Dict[str, List[Dict[str, object]]] = {
        tm: [] for tm in spec.tms
    }
    for cell in spec.campaign.cells:
        entry = run.entries.get(cell["id"])
        by_tm[cell["tm"]].append(
            {
                "id": cell["id"],
                "status": (
                    "missing" if entry is None else entry["status"]
                ),
                "entry": entry,
            }
        )

    mutants: List[Dict[str, object]] = []
    summary = {
        "caught": 0, "escaped": 0, "false-kill": 0, "correct": 0,
        "incomplete": 0,
    }
    for tm in spec.tms:
        expect_bug = spec.expectations[tm]
        cells = by_tm[tm]
        statuses: Dict[str, int] = {}
        killed_by: List[str] = []
        errors: List[Dict[str, object]] = []
        best_word: Optional[str] = None
        best_cell: Optional[str] = None
        for record in cells:
            status = record["status"]
            statuses[status] = statuses.get(status, 0) + 1
            entry = record["entry"]
            if status == "fail":
                killed_by.append(record["id"])
                word = (entry.get("result") or {}).get("counterexample")
                if word and (
                    best_word is None
                    or _word_length(word) < _word_length(best_word)
                ):
                    best_word, best_cell = word, record["id"]
            elif status in ("error", "timeout", "missing"):
                errors.append(
                    {
                        "id": record["id"],
                        "status": status,
                        "error": (
                            entry.get("error") if entry else None
                        ),
                    }
                )
        complete = not errors
        if not complete:
            verdict = "incomplete"
        elif killed_by:
            verdict = "caught" if expect_bug else "false-kill"
        else:
            verdict = "escaped" if expect_bug else "correct"
        summary[verdict] += 1
        mutants.append(
            {
                "tm": tm,
                "expect_bug": expect_bug,
                "verdict": verdict,
                "cells": statuses,
                "killed_by": killed_by,
                "counterexample": best_word,
                "counterexample_len": _word_length(best_word),
                "counterexample_cell": best_cell,
                "errors": errors,
            }
        )

    mutants.sort(
        key=lambda m: (
            _VERDICT_RANK[m["verdict"]],
            m["counterexample_len"] or 10 ** 9,
            m["tm"],
        )
    )
    report: Dict[str, object] = {
        "hunt": spec.name,
        "digest": spec.digest,
        "mutants": mutants,
        "summary": summary,
    }
    # Same chaos-plane observability hook as the batch report: the
    # key only appears when a fault schedule actually fired here.
    injected = injected_counts()
    if injected:
        report["faultplane"] = injected
    return report


def hunt_exit_code(report: Dict[str, object]) -> int:
    summary = report["summary"]
    if (
        summary["escaped"] or summary["false-kill"]
        or summary["incomplete"]
    ):
        return EXIT_ERRORS
    if summary["caught"]:
        return EXIT_VIOLATIONS
    return EXIT_OK


def render_hunt_json(report: Dict[str, object]) -> str:
    return render_json(report)


def render_hunt_markdown(report: Dict[str, object]) -> str:
    """The ranked human-facing table (deterministic, like the JSON)."""
    lines = [
        f"# hunt `{report['hunt']}`",
        "",
        "| rank | mutant | expected | verdict | kills |"
        " minimal counterexample |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for rank, mutant in enumerate(report["mutants"], start=1):
        expected = "bug" if mutant["expect_bug"] else "correct"
        word = mutant["counterexample"]
        cx = (
            f"`{word}` ({mutant['counterexample_len']} stmts)"
            if word
            else "-"
        )
        marker = {
            "escaped": "**ESCAPED**",
            "false-kill": "**FALSE KILL**",
            "incomplete": "**INCOMPLETE**",
        }.get(mutant["verdict"], mutant["verdict"])
        lines.append(
            "| {} | `{}` | {} | {} | {} | {} |".format(
                rank, mutant["tm"], expected, marker,
                len(mutant["killed_by"]), cx,
            )
        )
    summary = report["summary"]
    lines += [
        "",
        "**summary**: {caught} caught, {escaped} escaped,"
        " {fk} false-kill, {correct} correct,"
        " {incomplete} incomplete".format(
            caught=summary["caught"], escaped=summary["escaped"],
            fk=summary["false-kill"], correct=summary["correct"],
            incomplete=summary["incomplete"],
        ),
        "",
    ]
    for mutant in report["mutants"]:
        if mutant["verdict"] in ("escaped", "false-kill", "incomplete"):
            lines.append(
                "- triage `{}`: {} (cells: {})".format(
                    mutant["tm"], mutant["verdict"],
                    ", ".join(
                        f"{k}={v}"
                        for k, v in sorted(mutant["cells"].items())
                    ),
                )
            )
    if lines[-1] != "":
        lines.append("")
    return "\n".join(lines)
