"""The campaign journal: an append-only JSONL outcome log.

Line 1 is a header naming the campaign and its spec digest; every
following line is one cell outcome.  Appends are atomic at the OS level
(one ``write`` of one ``\\n``-terminated line on an ``O_APPEND`` file
descriptor, fsynced before close), so a campaign killed mid-cell loses
at most the in-flight cell — never a recorded one, and never the file's
integrity.  Loading tolerates a torn final line (a crash during the
append) by skipping unparseable lines; resume then simply re-runs the
cell whose record was torn.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.faultplane import fault_check


class JournalError(RuntimeError):
    """An append hit an I/O failure (ENOSPC, EIO, …).

    The campaign cannot safely continue without its outcome log, but it
    can fail *diagnosably*: the CLI turns this into exit 3 with a
    one-line message carrying the journal path and errno instead of an
    unhandled traceback.  Everything already journaled stays resumable.
    """

    def __init__(self, path: str, exc: OSError) -> None:
        name = getattr(exc, "strerror", None) or str(exc)
        code = exc.errno if exc.errno is not None else "?"
        super().__init__(
            f"journal append failed: {path} [errno {code}: {name}]"
        )
        self.path = path
        self.errno = exc.errno


class Journal:
    """One campaign's JSONL journal at ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _append_line(self, obj: Dict[str, object]) -> None:
        line = json.dumps(obj, sort_keys=True) + "\n"
        payload = line.encode("utf-8")
        key = str(obj.get("id", obj.get("type", "")))
        fault = fault_check("journal.append", key)
        if fault is not None:
            fault.stall()
            if fault.fault == "torn_write":
                # A crash mid-append: some prefix of the record makes
                # it to disk, then the process dies from the journal's
                # point of view.  Persist the torn prefix so load()'s
                # skip-unparseable recovery is what gets exercised.
                payload = fault.torn(payload)
        try:
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        except OSError as exc:
            raise JournalError(self.path, exc) from exc
        try:
            if fault is not None:
                fault.raise_io(self.path)
            os.write(fd, payload)
            fsync_fault = fault_check("journal.fsync", key)
            if fsync_fault is not None:
                fsync_fault.stall()
                fsync_fault.raise_io(self.path)
                if fsync_fault.fault == "drop_fsync":
                    return  # fsync silently skipped: data may be lost
            os.fsync(fd)
        except OSError as exc:
            raise JournalError(self.path, exc) from exc
        finally:
            os.close(fd)

    def start(self, name: str, digest: str) -> None:
        """Truncate and write a fresh header."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8"):
            pass
        self._append_line(
            {"type": "campaign", "name": name, "digest": digest,
             "version": 1}
        )

    def append_cell(self, entry: Dict[str, object]) -> None:
        assert entry.get("type") == "cell" and "id" in entry
        self._append_line(entry)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(
        self,
    ) -> Tuple[Optional[Dict[str, object]], Dict[str, Dict[str, object]]]:
        """``(header, {cell_id: entry})``; ``(None, {})`` when absent.

        Unparseable lines (a torn tail from a crash mid-append) are
        skipped; for a duplicated cell id the *last* record wins.
        """
        header: Optional[Dict[str, object]] = None
        entries: Dict[str, Dict[str, object]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return None, {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(obj, dict):
                continue
            if obj.get("type") == "campaign" and header is None:
                header = obj
            elif obj.get("type") == "cell" and isinstance(
                obj.get("id"), str
            ):
                entries[obj["id"]] = obj
        return header, entries
