"""The campaign journal: an append-only JSONL outcome log.

Line 1 is a header naming the campaign and its spec digest; every
following line is one cell outcome.  Appends are atomic at the OS level
(one ``write`` of one ``\\n``-terminated line on an ``O_APPEND`` file
descriptor, fsynced before close), so a campaign killed mid-cell loses
at most the in-flight cell — never a recorded one, and never the file's
integrity.  Loading tolerates a torn final line (a crash during the
append) by skipping unparseable lines; resume then simply re-runs the
cell whose record was torn.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple


class Journal:
    """One campaign's JSONL journal at ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _append_line(self, obj: Dict[str, object]) -> None:
        line = json.dumps(obj, sort_keys=True) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    def start(self, name: str, digest: str) -> None:
        """Truncate and write a fresh header."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8"):
            pass
        self._append_line(
            {"type": "campaign", "name": name, "digest": digest,
             "version": 1}
        )

    def append_cell(self, entry: Dict[str, object]) -> None:
        assert entry.get("type") == "cell" and "id" in entry
        self._append_line(entry)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(
        self,
    ) -> Tuple[Optional[Dict[str, object]], Dict[str, Dict[str, object]]]:
        """``(header, {cell_id: entry})``; ``(None, {})`` when absent.

        Unparseable lines (a torn tail from a crash mid-append) are
        skipped; for a duplicated cell id the *last* record wins.
        """
        header: Optional[Dict[str, object]] = None
        entries: Dict[str, Dict[str, object]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return None, {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(obj, dict):
                continue
            if obj.get("type") == "campaign" and header is None:
                header = obj
            elif obj.get("type") == "cell" and isinstance(
                obj.get("id"), str
            ):
                entries[obj["id"]] = obj
        return header, entries
