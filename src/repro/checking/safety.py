"""The safety verification pipeline (paper Section 5.4, Table 2).

``check_safety`` reproduces one cell of Table 2: explore the TM applied to
the most general program with ``n`` threads and ``k`` variables, build the
deterministic specification, and decide language inclusion by product
reachability (linear in the product, because the specification is
deterministic).  On failure the counterexample word is certified against
the reference decision procedures before being returned — the pipeline
never reports an uncertified violation.

By the reduction theorem (Theorem 1), a verdict for (2, 2) extends to all
programs for TMs satisfying the structural properties P1–P4; and since a
contention manager only restricts the language, safety of the bare TM
covers every managed variant.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from ..automata.dfa import DFA
from ..automata.inclusion import check_inclusion_in_dfa
from ..core.properties import is_opaque, is_strictly_serializable
from ..core.statements import Statement
from ..spec.common import OP, SS, SafetyProperty
from ..spec.det import build_det_spec
from ..tm.algorithm import TMAlgorithm
from ..tm.explore import build_safety_nfa
from .reporting import SafetyResult


class CounterexampleUncertifiedError(AssertionError):
    """The inclusion check produced a word the reference checker accepts.

    This never happens when the specification automata are correct; it is
    raised (rather than silently reported) so that any regression in the
    spec layer surfaces loudly.
    """


def _reference_check(word: Tuple[Statement, ...], prop: SafetyProperty) -> bool:
    if prop is SS:
        return is_strictly_serializable(word)
    return is_opaque(word)


def check_safety(
    tm: TMAlgorithm,
    prop: SafetyProperty,
    *,
    spec: Optional[DFA] = None,
    certify: bool = True,
) -> SafetyResult:
    """Check ``L(tm) ⊆ pi`` for the TM's own (n, k).

    ``spec`` may be passed to reuse a prebuilt deterministic
    specification across several TMs (they only depend on (n, k, prop)).
    """
    t0 = time.time()
    nfa = build_safety_nfa(tm)
    if spec is None:
        spec = build_det_spec(tm.n, tm.k, prop)
    result = check_inclusion_in_dfa(nfa, spec)
    elapsed = time.time() - t0
    if not result.holds and certify:
        assert result.counterexample is not None
        if _reference_check(result.counterexample, prop):
            raise CounterexampleUncertifiedError(
                f"{tm.name}: counterexample {result.counterexample} is"
                f" actually in {prop.value}"
            )
    return SafetyResult(
        tm_name=tm.name,
        prop=prop,
        holds=result.holds,
        tm_states=nfa.num_states,
        spec_states=spec.num_states,
        product_states=result.product_states,
        seconds=elapsed,
        counterexample=result.counterexample,
    )


def check_safety_both(
    tm: TMAlgorithm,
    *,
    specs: Optional[Dict[SafetyProperty, DFA]] = None,
) -> Tuple[SafetyResult, SafetyResult]:
    """Both Table 2 cells (strict serializability and opacity) for one TM."""
    specs = specs or {}
    return (
        check_safety(tm, SS, spec=specs.get(SS)),
        check_safety(tm, OP, spec=specs.get(OP)),
    )


def build_specs(n: int, k: int) -> Dict[SafetyProperty, DFA]:
    """Prebuild both deterministic specifications for reuse."""
    return {SS: build_det_spec(n, k, SS), OP: build_det_spec(n, k, OP)}
