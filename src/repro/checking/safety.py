"""The safety verification pipeline (paper Section 5.4, Table 2).

``check_safety`` reproduces one cell of Table 2: explore the TM applied to
the most general program with ``n`` threads and ``k`` variables, build the
deterministic specification, and decide language inclusion by product
reachability (linear in the product, because the specification is
deterministic).  On failure the counterexample word is certified against
the reference decision procedures before being returned — the pipeline
never reports an uncertified violation.

By default the product is explored *on the fly*: TM successor states
stream straight from the explorer into the interned product kernel, so
the full safety NFA is never materialized and TM states unreachable in
the product (after an early violation) are never even constructed.
``materialize=True`` selects the original two-phase path (build the NFA,
then check); both paths produce identical verdicts and counterexamples.

Specifications are pulled from the process-wide memoizing cache
(:func:`repro.spec.build.cached_det_spec`) unless one is passed in, so
checking several TMs — or several Table cells — rebuilds nothing.

By the reduction theorem (Theorem 1), a verdict for (2, 2) extends to all
programs for TMs satisfying the structural properties P1–P4; and since a
contention manager only restricts the language, safety of the bare TM
covers every managed variant.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from ..automata.dfa import DFA
from ..automata.inclusion import InclusionResult, check_inclusion_in_dfa
from ..cache import CacheLike
from ..automata.kernel import (
    lazy_product_dfa,
    lazy_product_oracle,
    product_dfa_direct,
    product_dfa_packed,
    product_oracle_direct,
    product_oracle_packed,
)
from ..core.properties import is_opaque, is_strictly_serializable
from ..core.statements import Statement
from ..spec.build import cached_det_spec
from ..spec.compiled import cached_spec_dfa, cached_spec_oracle
from ..spec.common import OP, SS, SafetyProperty
from ..spec.det import det_step, initial_state as det_initial_state
from ..tm.algorithm import TMAlgorithm
from ..tm.compiled import PoolCrashError, compile_tm
from ..tm.explore import build_safety_nfa, initial_node, safety_step
from .reporting import SafetyResult


class CounterexampleUncertifiedError(AssertionError):
    """The inclusion check produced a word the reference checker accepts.

    This never happens when the specification automata are correct; it is
    raised (rather than silently reported) so that any regression in the
    spec layer surfaces loudly.
    """


def _reference_check(word: Tuple[Statement, ...], prop: SafetyProperty) -> bool:
    if prop is SS:
        return is_strictly_serializable(word)
    return is_opaque(word)


def _timed_row_fn(row_fn, row_map: Dict, profile: Dict[str, float]):
    """Profiling wrapper for the TM row function: memo hits pass
    through untimed, miss time accumulates under ``row_discovery_s``.
    Used only when a ``profile`` dict was requested — results are
    unchanged, the kernel just loses its direct-memo-probe shortcut."""
    get = row_map.get
    perf_counter = time.perf_counter

    def wrapped(nq: int):
        row = get(nq)
        if row is not None:
            return row
        t0 = perf_counter()
        row = row_fn(nq)
        profile["row_discovery_s"] += perf_counter() - t0
        return row

    return wrapped


def _close_profile(profile: Dict[str, float], t_product: float) -> None:
    """Derive the pair-loop share: total product time minus the row
    discovery and traced-rerun shares the wrappers accumulated."""
    total = time.perf_counter() - t_product
    profile["product_bfs_s"] = max(
        0.0,
        total - profile["row_discovery_s"] - profile["trace_rerun_s"],
    )


def _dense_for(engine, side, prop, dense_kernel, cache_dir, max_states):
    """The dense CSR table a check should use, or ``None``.

    ``dense_kernel`` is tri-state: ``True`` forces recording/replay,
    ``False`` forces the set-based loop, and ``None`` (the default)
    auto-gates — record only when a cache is set (the table will be
    replayed by warm runs) or when the engine already holds a recorded
    table in-process (replay is free).  A one-shot cold run without a
    cache thus no longer pays the 15-35% recording overhead for a table
    nothing will ever replay.  Bounded runs never use the kernel.
    """
    if max_states is not None or dense_kernel is False:
        return None
    csr = engine.dense_csr(side, prop)
    if dense_kernel is True or cache_dir is not None:
        return csr
    return csr if csr is not None and csr.built else None


def _run_sharded_product(run, shard, prop, shard_product):
    """Dispatch one packed-product BFS, degrading to serial on a dead
    pool.

    ``run(prefetch, pair_sharder)`` performs the BFS with the given
    sharding hooks.  If the pool dies beyond revival mid-BFS
    (:class:`~repro.tm.compiled.PoolCrashError` out of the pair
    sharder's level dispatch), the product is simply rerun with both
    hooks disabled: a failed ``map`` merges nothing into the parent, and
    sharding is optimization-only, so the serial rerun is byte-identical
    to what the sharded run would have produced (the rerun reuses the
    rows already memoized — warm memo tables never change results).
    """
    pair_sharder = (
        shard.pair_sharder(prop)
        if shard is not None and shard_product
        else None
    )
    prefetch = None if shard is None else shard.prefetch_safety
    try:
        return run(prefetch, pair_sharder)
    except PoolCrashError:
        return run(None, None)


@contextmanager
def _warm_sharded(
    engine,
    oracle,
    cache_dir,
    jobs: int,
    *,
    dense=None,
    chunk_size: Optional[int] = None,
    reuse_pool: bool = False,
):
    """Shared scaffolding of the compiled branches: warm-load the
    engine(s) from ``cache_dir``, open the sharding pool, yield the
    :class:`~repro.tm.compiled.Sharder` (``None`` when serial), spill on
    exit.  ``oracle`` is any second engine with the ``load_warm``/
    ``save_warm`` contract (the compiled spec oracle or the int-rows
    spec DFA), or ``None``; ``dense`` likewise covers the dense-kernel
    CSR table (:class:`repro.automata.kernel.DenseCSR`), whose restored
    payload lets the product run array-only, without ever touching the
    row memos.  The cache dir is handed to the pool too so workers
    warm-start their own engines; note a product-sharded run computes
    its rows *in* the workers, whose tables die with the pool — it reads
    the row cache but never populates it.  ``chunk_size``/``reuse_pool``
    pass through to :meth:`repro.tm.compiled.CompiledTM.sharded`.

    When the dense table is already recorded (in-process or just
    restored), the product will replay as the array-only BFS and never
    dispatch to a pool — so none is opened: a warm dense run must not
    pay ``jobs`` process spawns for nothing."""
    if cache_dir is not None:
        engine.load_warm(cache_dir)
        if oracle is not None:
            oracle.load_warm(cache_dir)
        if dense is not None:
            dense.load_warm(cache_dir)
    if dense is not None and dense.built:
        jobs = 1
    with engine.sharded(
        jobs, cache_dir, chunk_size=chunk_size, reuse_pool=reuse_pool
    ) as shard:
        yield shard
    if cache_dir is not None:
        engine.save_warm(cache_dir)
        if oracle is not None:
            oracle.save_warm(cache_dir)
        if dense is not None:
            dense.save_warm(cache_dir)


def check_safety(
    tm: TMAlgorithm,
    prop: SafetyProperty,
    *,
    spec: Optional[DFA] = None,
    certify: bool = True,
    materialize: bool = False,
    lazy_spec: bool = False,
    compiled: bool = True,
    spec_compiled: bool = True,
    dense_kernel: Optional[bool] = None,
    jobs: int = 1,
    shard_product: bool = True,
    chunk_size: Optional[int] = None,
    reuse_pool: bool = False,
    cache_dir: "CacheLike" = None,
    max_states: Optional[int] = None,
    profile: Optional[Dict[str, float]] = None,
) -> SafetyResult:
    """Check ``L(tm) ⊆ pi`` for the TM's own (n, k).

    ``spec`` may be passed to reuse a prebuilt deterministic
    specification; otherwise it comes from the memoizing spec cache.
    ``materialize=True`` builds the full safety NFA before checking (the
    original path); the default streams TM states into the product
    lazily.  ``lazy_spec=True`` additionally streams the *specification*
    through its transition function (Algorithm 6's ``detSpec``) instead
    of materializing the DFA — the check is then bounded by the product
    reachable set, which unlocks (n, k) instances whose full
    specification is astronomically large.  ``max_states`` bounds the
    TM state exploration either way.

    By default the lazy paths run on the **compiled engine**
    (:mod:`repro.tm.compiled`): packed-int TM states with memoized
    transition rows stream into the product kernel.  ``compiled=False``
    keeps the naive tuple-of-frozensets streaming as the differential
    reference; verdicts, counterexamples and all reported counts are
    byte-identical between the two.  ``materialize=True`` always takes
    the naive two-phase path.

    On the compiled ``lazy_spec`` path the specification side runs on
    the **compiled spec oracle** (:mod:`repro.spec.compiled`): packed-int
    spec states with process-wide memoized rows, queried by integer
    statement id — the product BFS is int-to-int on both sides.
    ``spec_compiled=False`` keeps the rich ``det_step`` oracle (the PR 2
    engine) as the differential reference for that path.  On the
    *materialized-spec* path (``lazy_spec=False``) the same flag selects
    the **int-rows spec DFA** (:class:`repro.spec.compiled.
    CompiledSpecDFA`): the canonical specification's delta re-indexed by
    integer statement id at build time, so the DFA-sided product hashes
    no Statement either; ``spec_compiled=False`` keeps the
    Statement-keyed delta as the differential reference.  A caller-
    provided ``spec`` always takes the Statement path (arbitrary DFAs
    have no canonical id table).

    ``jobs > 1`` shards work across a ``multiprocessing`` pool.  By
    default (``shard_product=True``) the **product BFS itself** is
    sharded on the all-int paths: pair frontiers are hash-partitioned by
    ``pair % jobs``, workers rebuild both engines from the spawn seed
    and exchange cross-shard successors between level barriers, and the
    parent merges seen-sets deterministically (see
    :func:`repro.automata.kernel._sharded_pair_bfs` for the determinism
    argument).  ``shard_product=False`` — and every configuration the
    pair sharder cannot serve: ``max_states`` bounds, rich-oracle paths,
    caller-provided specs, codec-less TMs — falls back to sharding only
    the computation of new TM transition rows at BFS level boundaries
    (see :meth:`repro.tm.compiled.CompiledTM.expand`).  Either way
    verdicts, counterexamples and all counts are byte-identical to
    ``jobs=1``.

    On the all-int paths the **dense kernel** records the product's
    adjacency into a flat CSR table over dense pair ids on the first
    serial untraced pass (:class:`repro.automata.kernel.DenseCSR`, kept
    on the engine and — with ``cache_dir`` — persisted), and every
    later run of the same product replays as an array-only bitset BFS
    that never touches the row memos.  ``dense_kernel`` is tri-state:
    the default ``None`` auto-gates — recording engages only when a
    cache is set or the engine already holds a recorded table, so a
    one-shot cold run skips the 15-35% recording overhead;
    ``dense_kernel=True`` (CLI ``--dense-kernel``) forces recording
    even without a cache; ``False`` (CLI ``--no-dense-kernel``) keeps
    the set-based pair loop as the differential reference.  Verdicts,
    counterexamples and all counts are byte-identical in every mode.
    Bounded (``max_states``), codec-less and caller-spec configurations
    ignore the flag and stay on the set-based path.

    ``chunk_size`` fixes the row-prefetcher's per-task batch and
    ``reuse_pool=True`` parks the worker pool on the engine across
    checks (call ``compile_tm(tm).close_pools()`` when done) — both are
    scheduling-only knobs with byte-identical results.

    ``cache_dir`` enables the warm-start cache (:mod:`repro.cache`): a
    directory string selects the pickle-on-disk backend, and any
    :class:`repro.cache.CacheBackend` instance (e.g. the zero-copy mmap
    backend, CLI ``--cache-backend mmap``) is used as given.  Interned
    tables and memoized rows of both compiled engines — and the dense
    kernel's CSR tables — are restored before the check and spilled
    after, so repeated process invocations skip re-compilation
    entirely.  With ``jobs > 1`` the cache dir also
    warm-starts the *worker* engines; note that a product-sharded run
    computes new rows in the workers (whose tables die with the pool),
    so it reads the row cache but never grows it — populate the cache
    with a serial or ``shard_product=False`` run first.

    ``profile``, when given an (empty) dict, is filled with a per-phase
    wall-time split: ``engine_build_s`` (compilation, warm loads, spec
    table construction), ``row_discovery_s`` (time inside TM row-memo
    misses), ``product_bfs_s`` (the pair loop proper) and
    ``trace_rerun_s`` (the serial traced rerun after a violation).
    Profiling wraps the row function, so it adds a little overhead but
    changes no result; the CLI exposes it as ``--profile`` (JSON on
    stderr) and the benchmarks record it per cell.

    ``tm_states`` in the result is the number of TM states explored:
    when the inclusion holds it equals the full reachable state space
    on every path, but after a violation the lazy paths report only
    the states discovered up to the counterexample (a subset of the
    materialized count).  With ``lazy_spec``, ``spec_states`` likewise
    counts only the spec states the product discovered.
    """
    t0 = time.perf_counter()
    if profile is not None:
        profile.update(
            engine_build_s=0.0,
            row_discovery_s=0.0,
            product_bfs_s=0.0,
            trace_rerun_s=0.0,
        )
    if lazy_spec:
        if materialize or spec is not None:
            raise ValueError(
                "lazy_spec streams the specification: it cannot be"
                " combined with materialize=True or a prebuilt spec"
            )
        if compiled and spec_compiled:
            engine = compile_tm(tm)
            oracle = cached_spec_oracle(tm.n, tm.k, prop)
            dense = _dense_for(
                engine, "oracle", prop, dense_kernel, cache_dir, max_states
            )
            with _warm_sharded(
                engine,
                oracle,
                cache_dir,
                jobs,
                dense=dense,
                chunk_size=chunk_size,
                reuse_pool=reuse_pool,
            ) as shard:
                # The memo dict must be picked up *after* the warm load
                # above — load_warm rebinds it, and a stale reference
                # would miss every restored row.
                row_fn = engine.safety_row_ids
                row_map = engine.safety_rows_map()
                if profile is not None:
                    row_fn = _timed_row_fn(row_fn, row_map, profile)
                    row_map = None
                    profile["engine_build_s"] = time.perf_counter() - t0
                    t_product = time.perf_counter()
                holds, ce_ids, discovered, tm_states, spec_states = (
                    _run_sharded_product(
                        lambda prefetch, pair_sharder: product_oracle_packed(
                            row_fn,
                            [engine.initial_node_packed()],
                            oracle,
                            node_span=engine.node_span,
                            row_map=row_map,
                            max_states=max_states,
                            prefetch=prefetch,
                            pair_sharder=pair_sharder,
                            dense=dense,
                            profile=profile,
                        ),
                        shard,
                        prop,
                        shard_product,
                    )
                )
                if profile is not None:
                    _close_profile(profile, t_product)
            counterexample = (
                None
                if ce_ids is None
                else tuple(oracle.symbols[s] for s in ce_ids)
            )
        elif compiled:
            engine = compile_tm(tm)
            with _warm_sharded(
                engine,
                None,
                cache_dir,
                jobs,
                chunk_size=chunk_size,
                reuse_pool=reuse_pool,
            ) as shard:
                holds, counterexample, discovered, tm_states, spec_states = (
                    product_oracle_direct(
                        engine.safety_row,
                        [engine.initial_node_packed()],
                        det_initial_state(tm.n),
                        lambda state, stmt: det_step(state, stmt, prop),
                        max_states=max_states,
                        prefetch=(
                            None if shard is None else shard.prefetch_safety
                        ),
                    )
                )
        else:
            holds, counterexample, discovered, tm_states, spec_states = (
                lazy_product_oracle(
                    [initial_node(tm)],
                    safety_step(tm),
                    det_initial_state(tm.n),
                    lambda state, stmt: det_step(state, stmt, prop),
                    max_states=max_states,
                )
            )
        result = InclusionResult(
            holds=holds,
            counterexample=counterexample,
            product_states=discovered,
        )
    else:
        canonical_spec = spec is None
        if not (canonical_spec and compiled and spec_compiled
                and not materialize):
            if spec is None:
                spec = cached_det_spec(tm.n, tm.k, prop)
            spec_states = spec.num_states
        if materialize:
            nfa = build_safety_nfa(tm, max_states=max_states)
            result = check_inclusion_in_dfa(nfa, spec)
            tm_states = nfa.num_states
        elif compiled and spec_compiled and canonical_spec:
            # The all-int DFA-sided product: int-rows spec delta, int
            # statement ids, packed pairs — and, warm-started, no rich
            # DFA is ever materialized.
            engine = compile_tm(tm)
            cdfa = cached_spec_dfa(tm.n, tm.k, prop)
            dense = _dense_for(
                engine, "dfa", prop, dense_kernel, cache_dir, max_states
            )
            with _warm_sharded(
                engine,
                cdfa,
                cache_dir,
                jobs,
                dense=dense,
                chunk_size=chunk_size,
                reuse_pool=reuse_pool,
            ) as shard:
                cdfa.ensure()
                # Post-warm-load pickup; see the oracle branch above.
                row_fn = engine.safety_row_ids
                row_map = engine.safety_rows_map()
                if profile is not None:
                    row_fn = _timed_row_fn(row_fn, row_map, profile)
                    row_map = None
                    profile["engine_build_s"] = time.perf_counter() - t0
                    t_product = time.perf_counter()
                holds, ce_ids, discovered, tm_states = _run_sharded_product(
                    lambda prefetch, pair_sharder: product_dfa_packed(
                        row_fn,
                        [engine.initial_node_packed()],
                        cdfa.rows,
                        node_span=engine.node_span,
                        row_map=row_map,
                        max_states=max_states,
                        prefetch=prefetch,
                        pair_sharder=pair_sharder,
                        dense=dense,
                        profile=profile,
                    ),
                    shard,
                    prop,
                    shard_product,
                )
                if profile is not None:
                    _close_profile(profile, t_product)
            spec_states = cdfa.num_states
            counterexample = (
                None
                if ce_ids is None
                else tuple(cdfa.symbols[s] for s in ce_ids)
            )
            result = InclusionResult(
                holds=holds,
                counterexample=counterexample,
                product_states=discovered,
            )
        elif compiled:
            engine = compile_tm(tm)
            with _warm_sharded(
                engine,
                None,
                cache_dir,
                jobs,
                chunk_size=chunk_size,
                reuse_pool=reuse_pool,
            ) as shard:
                holds, counterexample, discovered, tm_states = (
                    product_dfa_direct(
                        engine.safety_row,
                        [engine.initial_node_packed()],
                        spec,
                        max_states=max_states,
                        prefetch=(
                            None if shard is None else shard.prefetch_safety
                        ),
                    )
                )
            result = InclusionResult(
                holds=holds,
                counterexample=counterexample,
                product_states=discovered,
            )
        else:
            holds, counterexample, discovered, tm_states = lazy_product_dfa(
                [initial_node(tm)],
                safety_step(tm),
                spec,
                max_states=max_states,
            )
            result = InclusionResult(
                holds=holds,
                counterexample=counterexample,
                product_states=discovered,
            )
    elapsed = time.perf_counter() - t0
    if profile is not None and not any(profile.values()):
        # A branch without fine-grained instrumentation (materialized,
        # naive, rich-oracle): report the whole check as the pair loop.
        profile["product_bfs_s"] = elapsed
    if not result.holds and certify:
        assert result.counterexample is not None
        if _reference_check(result.counterexample, prop):
            raise CounterexampleUncertifiedError(
                f"{tm.name}: counterexample {result.counterexample} is"
                f" actually in {prop.value}"
            )
    return SafetyResult(
        tm_name=tm.name,
        prop=prop,
        holds=result.holds,
        tm_states=tm_states,
        spec_states=spec_states,
        product_states=result.product_states,
        seconds=elapsed,
        counterexample=result.counterexample,
    )


def check_safety_both(
    tm: TMAlgorithm,
    *,
    specs: Optional[Dict[SafetyProperty, DFA]] = None,
) -> Tuple[SafetyResult, SafetyResult]:
    """Both Table 2 cells (strict serializability and opacity) for one TM."""
    specs = specs or {}
    return (
        check_safety(tm, SS, spec=specs.get(SS)),
        check_safety(tm, OP, spec=specs.get(OP)),
    )


def build_specs(n: int, k: int) -> Dict[SafetyProperty, DFA]:
    """Both deterministic specifications, from the memoizing cache."""
    return {SS: cached_det_spec(n, k, SS), OP: cached_det_spec(n, k, OP)}
