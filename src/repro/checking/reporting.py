"""Result types and table rendering for the verification pipelines.

These mirror the paper's Tables 2 and 3: per-TM rows with the size of the
explored transition system, a Y/N verdict, the time taken, and — on
failure — a counterexample (a finite word for safety, a lasso for
liveness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.statements import Statement, format_word
from ..spec.common import SafetyProperty
from ..tm.explore import ExtStatement


@dataclass(frozen=True)
class SafetyResult:
    """Outcome of one L(TM) ⊆ L(Σd) check (a Table 2 cell)."""

    tm_name: str
    prop: SafetyProperty
    holds: bool
    tm_states: int
    spec_states: int
    product_states: int
    seconds: float
    counterexample: Optional[Tuple[Statement, ...]] = None

    def verdict(self) -> str:
        if self.holds:
            return f"Y, {self.seconds:.2f}s"
        cex = format_word(self.counterexample or ())
        return f"N, [{cex}], {self.seconds:.2f}s"


@dataclass(frozen=True)
class LivenessResult:
    """Outcome of one liveness check (a Table 3 cell).

    On violation, the counterexample is the lasso ``stem · loop^ω`` over
    *extended* statements (the paper's Table 3 prints the looping part),
    plus its projection to observable statements for certification
    against the Section 2 definitions.
    """

    tm_name: str
    property_name: str
    holds: bool
    graph_states: int
    seconds: float
    stem: Tuple[ExtStatement, ...] = ()
    loop: Tuple[ExtStatement, ...] = ()
    observable_stem: Tuple[Statement, ...] = ()
    observable_loop: Tuple[Statement, ...] = ()

    def verdict(self) -> str:
        if self.holds:
            return f"Y, {self.seconds:.2f}s"
        loop = ", ".join(str(s) for s in self.loop)
        return f"N, loop=[{loop}], {self.seconds:.2f}s"


def render_table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Plain-text table in the style of the paper's result tables."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
