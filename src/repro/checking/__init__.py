"""Verification pipelines: safety (Table 2) and liveness (Table 3)."""

from .reporting import LivenessResult, SafetyResult, render_table
from .safety import (
    CounterexampleUncertifiedError,
    build_specs,
    check_safety,
    check_safety_both,
)
from .liveness import (
    check_liveness_all,
    check_livelock_freedom,
    check_obstruction_freedom,
    check_wait_freedom,
    observable_projection,
)

__all__ = [
    "LivenessResult",
    "SafetyResult",
    "render_table",
    "CounterexampleUncertifiedError",
    "build_specs",
    "check_safety",
    "check_safety_both",
    "check_liveness_all",
    "check_livelock_freedom",
    "check_obstruction_freedom",
    "check_wait_freedom",
    "observable_projection",
]
