"""The liveness verification pipeline (paper Section 6, Table 3).

Liveness depends on the contention manager, so the TM under test is
usually a :class:`~repro.tm.compose.ManagedTM`.  Per Section 6, on the
finite transition system of the TM applied to the most general program:

* **obstruction freedom** fails iff some reachable loop consists of
  statements of a single thread, contains no commit, and contains an
  abort (the single-conjunct escape of the Streett condition);
* **livelock freedom** fails iff some reachable commit-free loop exists
  in which every thread that takes a step also aborts;
* **wait freedom** fails iff some reachable loop contains an abort at
  all (an aborted transaction never commits) — it is strictly stronger
  than livelock freedom, and the paper notes none of its TMs satisfy it.

All three reduce to SCC computations over filtered edge sets of the
liveness graph; violations are returned as lassos over extended
statements and certified against the Section 2 definitions on their
observable projections.  By Theorem 5, a (2, 1) verdict generalizes for
TMs satisfying P5–P6.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..automata.graph import (
    Lasso,
    build_lasso,
    closed_walk_through,
    tarjan_sccs,
)
from ..cache import CacheLike
from ..core.liveness_words import (
    is_livelock_free_lasso,
    is_obstruction_free_lasso,
    is_wait_free_lasso,
)
from ..core.statements import Kind, Statement
from ..tm.algorithm import Resp, TMAlgorithm
from ..tm.explore import ExtStatement, LivenessGraph, build_liveness_graph
from .reporting import LivenessResult

Edge = Tuple[object, ExtStatement, object]


def observable_projection(
    labels: Sequence[ExtStatement],
) -> Tuple[Statement, ...]:
    """Project extended statements to the successful-statement word.

    Completed commands (response 1) become statements, aborts (response
    0) become abort statements, and ⊥-steps vanish.  Note that a command
    whose completing step lies outside the loop contributes nothing —
    matching the paper's definition of the word of a run.
    """
    out: List[Statement] = []
    for lbl in labels:
        if lbl.resp is Resp.DONE:
            kind = Kind(lbl.ext_name)
            out.append(Statement(kind, lbl.ext_var, lbl.thread))
        elif lbl.resp is Resp.ABORT:
            out.append(Statement(Kind.ABORT, None, lbl.thread))
    return tuple(out)


def _violation_result(
    tm: TMAlgorithm,
    property_name: str,
    graph: LivenessGraph,
    lasso: Lasso,
    seconds: float,
    certifier,
) -> LivenessResult:
    stem = lasso.stem_labels()
    loop = lasso.cycle_labels()
    obs_stem = observable_projection(stem)
    obs_loop = observable_projection(loop)
    if obs_loop:  # certify against the Section 2 definition
        assert not certifier(obs_stem, obs_loop), (
            f"{tm.name}: lasso does not actually violate {property_name}"
        )
    return LivenessResult(
        tm_name=tm.name,
        property_name=property_name,
        holds=False,
        graph_states=len(graph.nodes),
        seconds=seconds,
        stem=stem,
        loop=loop,
        observable_stem=obs_stem,
        observable_loop=obs_loop,
    )


def _find_abort_cycle(
    graph: LivenessGraph,
    edges: Sequence[Edge],
    required_threads: Iterable[int],
) -> Optional[Lasso]:
    """A reachable cycle within ``edges`` containing an abort of every
    required thread, or ``None``."""
    required = set(required_threads)
    nodes = {e[0] for e in edges} | {e[2] for e in edges}
    for scc in tarjan_sccs(nodes, edges):
        inner = [e for e in edges if e[0] in scc and e[2] in scc]
        if not inner:
            continue
        abort_edges: List[Edge] = []
        seen_threads: Set[int] = set()
        for e in inner:
            if e[1].is_abort and e[1].thread in required - seen_threads:
                abort_edges.append(e)
                seen_threads.add(e[1].thread)
        if seen_threads != required:
            continue
        walk = closed_walk_through(scc, inner, abort_edges)
        if walk is None:
            continue
        lasso = build_lasso(graph.edges, graph.initial, walk)
        if lasso is not None:
            return lasso
    return None


def check_obstruction_freedom(
    tm: TMAlgorithm,
    *,
    graph: Optional[LivenessGraph] = None,
    compiled: bool = True,
    jobs: int = 1,
    cache_dir: CacheLike = None,
) -> LivenessResult:
    """Does every loop of a single thread without commits avoid aborts?"""
    t0 = time.perf_counter()
    if graph is None:
        graph = build_liveness_graph(
            tm, compiled=compiled, jobs=jobs, cache_dir=cache_dir
        )
    for t in tm.threads():
        edges = [
            e
            for e in graph.edges
            if e[1].thread == t and not e[1].is_commit
        ]
        lasso = _find_abort_cycle(graph, edges, [t])
        if lasso is not None:
            return _violation_result(
                tm,
                "obstruction freedom",
                graph,
                lasso,
                time.perf_counter() - t0,
                is_obstruction_free_lasso,
            )
    return LivenessResult(
        tm_name=tm.name,
        property_name="obstruction freedom",
        holds=True,
        graph_states=len(graph.nodes),
        seconds=time.perf_counter() - t0,
    )


def check_livelock_freedom(
    tm: TMAlgorithm,
    *,
    graph: Optional[LivenessGraph] = None,
    compiled: bool = True,
    jobs: int = 1,
    cache_dir: CacheLike = None,
) -> LivenessResult:
    """Is there no commit-free loop in which every participant aborts?"""
    t0 = time.perf_counter()
    if graph is None:
        graph = build_liveness_graph(
            tm, compiled=compiled, jobs=jobs, cache_dir=cache_dir
        )
    threads = list(tm.threads())
    for size in range(1, len(threads) + 1):
        for subset in combinations(threads, size):
            edges = [
                e
                for e in graph.edges
                if e[1].thread in subset and not e[1].is_commit
            ]
            lasso = _find_abort_cycle(graph, edges, subset)
            if lasso is not None:
                return _violation_result(
                    tm,
                    "livelock freedom",
                    graph,
                    lasso,
                    time.perf_counter() - t0,
                    is_livelock_free_lasso,
                )
    return LivenessResult(
        tm_name=tm.name,
        property_name="livelock freedom",
        holds=True,
        graph_states=len(graph.nodes),
        seconds=time.perf_counter() - t0,
    )


def check_wait_freedom(
    tm: TMAlgorithm,
    *,
    graph: Optional[LivenessGraph] = None,
    compiled: bool = True,
    jobs: int = 1,
    cache_dir: CacheLike = None,
) -> LivenessResult:
    """Is there no reachable loop containing an abort at all?

    An abort occurring infinitely often means infinitely many
    transactions never commit, violating "every transaction eventually
    commits".  (Commit-starvation without aborts cannot occur in the
    paper's TMs: every ⊥-step strictly grows a lock/ownership set, so
    loops always contain completed statements.)
    """
    t0 = time.perf_counter()
    if graph is None:
        graph = build_liveness_graph(
            tm, compiled=compiled, jobs=jobs, cache_dir=cache_dir
        )
    nodes = {e[0] for e in graph.edges} | {e[2] for e in graph.edges}
    for scc in tarjan_sccs(nodes, graph.edges):
        inner = [e for e in graph.edges if e[0] in scc and e[2] in scc]
        aborts = [e for e in inner if e[1].is_abort]
        if not aborts:
            continue
        walk = closed_walk_through(scc, inner, aborts[:1])
        if walk is None:
            continue
        lasso = build_lasso(graph.edges, graph.initial, walk)
        if lasso is not None:
            return _violation_result(
                tm,
                "wait freedom",
                graph,
                lasso,
                time.perf_counter() - t0,
                is_wait_free_lasso,
            )
    return LivenessResult(
        tm_name=tm.name,
        property_name="wait freedom",
        holds=True,
        graph_states=len(graph.nodes),
        seconds=time.perf_counter() - t0,
    )


def check_liveness_all(
    tm: TMAlgorithm,
    *,
    compiled: bool = True,
    jobs: int = 1,
    cache_dir: CacheLike = None,
) -> Tuple[LivenessResult, ...]:
    """Obstruction, livelock and wait freedom on one shared graph
    (``jobs`` shards the graph construction, ``cache_dir`` warm-starts
    the engine's node rows; see
    :func:`repro.tm.explore.build_liveness_graph`)."""
    graph = build_liveness_graph(
        tm, compiled=compiled, jobs=jobs, cache_dir=cache_dir
    )
    return (
        check_obstruction_freedom(tm, graph=graph),
        check_livelock_freedom(tm, graph=graph),
        check_wait_freedom(tm, graph=graph),
    )
