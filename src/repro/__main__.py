"""``python -m repro`` — the command-line checker."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
