"""Command-line interface: the paper's checker as a tool.

Subcommands::

    python -m repro word  "(w,1)2 (r,1)1 c2 (w,2)1 c1"   # decide piss/piop
    python -m repro safety dstm --property op            # one Table 2 cell
    python -m repro safety all                           # full Table 2
    python -m repro liveness dstm --manager aggressive   # one Table 3 row
    python -m repro liveness all                         # full Table 3
    python -m repro specs --threads 2 --vars 2           # spec sizes + Thm 3
    python -m repro simulate 2PL --schedule 111112 \\
        --program "1:r1 w2 c" --program "2:w2 c"         # a Table 1 run
    python -m repro batch campaign.json                  # supervised sweep
    python -m repro hunt                                 # mutant bug-hunt farm
    python -m repro hunt --list                          # the mutant roster
    python -m repro serve --socket /tmp/repro.sock       # resident daemon
    python -m repro serve --socket /tmp/repro.sock \\
        --check-request req.json                         # daemon client
    python -m repro doctor /path/to/cache [--fix]        # cache health
    python -m repro chaos --seed-range 0:8               # fault-schedule sweep

Exit status is 0 when every requested property holds, 1 when a violation
was found, 2 on usage errors — so the tool scripts cleanly into CI for
anyone developing a TM with this library.  ``batch`` adds 3 for cells
that errored or timed out (errors dominate violations) plus 143/130
when drained by SIGTERM/^C mid-campaign (the in-flight cell is
journaled as interrupted and the journal resumes); ``hunt`` inverts the
contract per mutant — 1 means every seeded bug was caught (success), 3
means a mutant escaped, a correct variant was falsely killed, or cells
are incomplete (see :mod:`repro.campaign.hunt_report`); ``doctor``
follows the scanner contract 0/1/2/3 (healthy / anomalies / scan failed
/ fix incomplete); and ``chaos`` exits 0 when every trial upholds the
recovery invariants, 1 on any invariant violation, 2 on a bad schedule
or flags, 3 when the harness or a fault-free baseline itself failed —
see :mod:`repro.campaign`.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .checking import (
    check_livelock_freedom,
    check_obstruction_freedom,
    check_safety,
    check_wait_freedom,
    render_table,
)
from .core.properties import is_opaque, is_strictly_serializable
from .core.statements import format_word, parse_word
from .spec import OP, SS, cached_det_spec, cached_nondet_spec
from .tm import (
    DSTM,
    TL2,
    AggressiveManager,
    BoundedKarmaManager,
    ManagedTM,
    ModifiedTL2,
    NOrecTM,
    OptimisticTM,
    PermissiveManager,
    PoliteManager,
    SequentialTM,
    TMAlgorithm,
    TwoPhaseLockingTM,
    build_liveness_graph,
)
from .tm.runs import parse_schedule, program, simulate

TM_FACTORIES = {
    "seq": SequentialTM,
    "2pl": TwoPhaseLockingTM,
    "dstm": DSTM,
    "tl2": TL2,
    "modtl2": ModifiedTL2,
    "opt": OptimisticTM,
    "norec": NOrecTM,
}

MANAGERS = {
    "aggressive": AggressiveManager,
    "polite": PoliteManager,
    "permissive": PermissiveManager,
    "karma": BoundedKarmaManager,
}

PROPERTIES = {"ss": SS, "op": OP}


def _resolve_cache_dir(args: argparse.Namespace):
    """``--cache-dir [DIR]`` × ``--cache-backend NAME``.

    None when warm-starting is off; otherwise the cache for the given
    (or default) directory — a bare directory string for the default
    disk backend, a constructed :class:`repro.cache.CacheBackend` for
    the others (the checking layer accepts either form).
    """
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    if cache_dir == "":
        from .cache import default_cache_dir

        cache_dir = default_cache_dir()
    backend = getattr(args, "cache_backend", "disk") or "disk"
    if backend == "disk":
        return cache_dir
    from .cache import make_backend

    return make_backend(backend, cache_dir)


def _make_tm(
    name: str, n: int, k: int, manager: Optional[str]
) -> TMAlgorithm:
    if "/" in name:  # mutant ids: tl2/drop-rvalidate[@seedN]
        from .tm.mutate import make_mutant

        try:
            tm = make_mutant(name, n, k)
        except ValueError as exc:
            raise SystemExit(str(exc))
    else:
        try:
            tm = TM_FACTORIES[name.lower()](n, k)
        except KeyError:
            raise SystemExit(
                f"unknown TM {name!r}; choose from"
                f" {sorted(TM_FACTORIES)}, 'all', or a mutant id"
                " (see 'repro hunt --list')"
            )
    if manager is not None:
        try:
            cm_cls = MANAGERS[manager.lower()]
        except KeyError:
            raise SystemExit(
                f"unknown manager {manager!r}; choose from {sorted(MANAGERS)}"
            )
        if cm_cls is BoundedKarmaManager:
            tm = ManagedTM(tm, cm_cls(n))
        else:
            tm = ManagedTM(tm, cm_cls())
    return tm


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_word(args: argparse.Namespace) -> int:
    word = parse_word(args.word)
    ss = is_strictly_serializable(word)
    op = is_opaque(word)
    print(f"word: {format_word(word)}")
    print(f"strictly serializable: {'yes' if ss else 'no'}")
    print(f"opaque:                {'yes' if op else 'no'}")
    if not ss or not op:
        from .core.properties import (
            opacity_witness,
            strict_serializability_witness,
        )

        witness = (
            strict_serializability_witness(word) if not ss
            else opacity_witness(word)
        )
        if witness.cycle_explanation:
            print(f"cycle: {witness.cycle_explanation}")
    return 0 if (ss and op) else 1


def cmd_safety(args: argparse.Namespace) -> int:
    n, k = args.threads, args.vars
    props = (
        [PROPERTIES[args.property]] if args.property else [SS, OP]
    )
    # Specifications are pulled from the process-wide caches inside
    # check_safety (prebuilding them here would pin the Statement-keyed
    # DFA path; passing spec=None lets the int-rows path — and its
    # warm-start, which never materializes the rich DFA — kick in).
    names = (
        sorted(TM_FACTORIES) if args.tm.lower() == "all" else [args.tm]
    )
    rows: List[List[str]] = []
    worst = 0
    cache_dir = _resolve_cache_dir(args)
    for name in names:
        tm = _make_tm(name, n, k, args.manager)
        cells = [tm.name]
        for p in props:
            prof: Optional[Dict[str, float]] = (
                {} if args.profile else None
            )
            res = check_safety(
                tm,
                p,
                materialize=args.materialize,
                lazy_spec=args.lazy_spec,
                compiled=args.compiled,
                spec_compiled=args.spec_compiled,
                dense_kernel=args.dense_kernel,
                jobs=args.jobs,
                shard_product=args.shard_product,
                chunk_size=args.chunk_size,
                cache_dir=cache_dir,
                profile=prof,
            )
            if prof is not None:
                import json

                print(
                    json.dumps(
                        {
                            "tm": tm.name,
                            "prop": p.value,
                            "phases": {
                                key: round(value, 6)
                                for key, value in prof.items()
                            },
                        }
                    ),
                    file=sys.stderr,
                )
            cells.append(res.verdict())
            if not res.holds:
                worst = 1
        rows.append(cells)
    header = ["TM"] + [f"⊆ Σd{p.value}" for p in props]
    print(render_table(f"safety for ({n},{k})", header, rows))
    return worst


def cmd_liveness(args: argparse.Namespace) -> int:
    n, k = args.threads, args.vars
    names = (
        sorted(TM_FACTORIES) if args.tm.lower() == "all" else [args.tm]
    )
    rows: List[List[str]] = []
    worst = 0
    cache_dir = _resolve_cache_dir(args)
    for name in names:
        tm = _make_tm(name, n, k, args.manager)
        graph = build_liveness_graph(
            tm, compiled=args.compiled, jobs=args.jobs, cache_dir=cache_dir
        )
        cells = [tm.name, str(len(graph.nodes))]
        for check in (
            check_obstruction_freedom,
            check_livelock_freedom,
            check_wait_freedom,
        ):
            res = check(tm, graph=graph)
            cells.append(res.verdict())
            if not res.holds:
                worst = 1
        rows.append(cells)
    print(
        render_table(
            f"liveness for ({n},{k})",
            ["TM", "States", "Obstruction f.", "Livelock f.", "Wait f."],
            rows,
        )
    )
    return worst


def cmd_specs(args: argparse.Namespace) -> int:
    n, k = args.threads, args.vars
    for p in (SS, OP):
        nondet = cached_nondet_spec(n, k, p)
        det = cached_det_spec(n, k, p)
        line = (
            f"Σ{p.value}: nondet {nondet.num_states} states,"
            f" det {det.num_states} states"
        )
        if args.check_equivalence:
            from .automata import (
                check_inclusion_antichain,
                check_inclusion_in_dfa,
            )

            fwd = check_inclusion_in_dfa(nondet, det)
            bwd = check_inclusion_antichain(det.to_nfa(), nondet)
            line += f", equivalent: {fwd.holds and bwd.holds}"
            if not (fwd.holds and bwd.holds):
                return 1
        print(line)
    return 0


#: ``repro batch`` interrupted-drain exit codes (128 + signal number,
#: the shell convention orchestrators already match on).
EXIT_SIGTERM = 143
EXIT_SIGINT = 130


def cmd_batch(args: argparse.Namespace) -> int:
    # Imported lazily: the campaign layer back-imports the TM/property
    # registries above, so a module-level import would be circular.
    import signal

    from .campaign import (
        CampaignInterrupted,
        build_report,
        load_spec,
        render_markdown,
        report_exit_code,
        run_campaign,
    )
    from .campaign.journal import JournalError
    from .campaign.report import EXIT_ERRORS, render_json

    spec = load_spec(args.spec)
    journal_path = args.journal or os.path.join(
        os.path.dirname(os.path.abspath(args.spec)), "campaign.jsonl"
    )
    progress = (
        None
        if args.quiet
        else (lambda line: print(line, file=sys.stderr, flush=True))
    )

    def _on_term(signum, frame):  # orchestrator drain: TERM == ^C
        raise CampaignInterrupted(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, _on_term)
    try:
        run = run_campaign(
            spec, journal_path, resume=not args.no_resume,
            progress=progress,
        )
    except CampaignInterrupted:
        # The runner already journaled the in-flight cell as
        # interrupted; a resumed batch re-runs exactly that cell.
        if not args.quiet:
            print(
                "batch: interrupted (SIGTERM); journal is resumable",
                file=sys.stderr, flush=True,
            )
        return EXIT_SIGTERM
    except KeyboardInterrupt:
        if not args.quiet:
            print(
                "batch: interrupted (^C); journal is resumable",
                file=sys.stderr, flush=True,
            )
        return EXIT_SIGINT
    except JournalError as exc:
        # The outcome log is gone (ENOSPC/EIO): no traceback, one
        # diagnosable line; everything already journaled stays
        # resumable once the disk recovers.
        print(f"batch: {exc}", file=sys.stderr, flush=True)
        return EXIT_ERRORS
    finally:
        signal.signal(signal.SIGTERM, previous)
    report = build_report(run)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(render_json(report))
    markdown = render_markdown(report)
    if args.report_markdown:
        with open(args.report_markdown, "w", encoding="utf-8") as fh:
            fh.write(markdown + "\n")
    if not args.quiet:
        print(markdown)
    return report_exit_code(report)


def cmd_hunt(args: argparse.Namespace) -> int:
    # Lazy import for the same circularity reason as cmd_batch.
    import signal

    from .campaign import (
        CampaignInterrupted,
        build_hunt_report,
        default_hunt_spec,
        hunt_exit_code,
        load_hunt_spec,
        render_hunt_json,
        render_hunt_markdown,
        run_hunt,
    )
    from .campaign.journal import JournalError
    from .campaign.report import EXIT_ERRORS

    if args.list:
        from .tm.mutate import OPERATORS, default_mutants

        roster = default_mutants()
        width = max(len(mid) for mid in roster)
        for mid in roster:
            cls = OPERATORS[mid.partition("@")[0]]
            expected = "bug    " if cls.expect_bug else "correct"
            print(f"{mid:{width}s}  {expected}  {cls.summary}")
        return 0

    spec = (
        load_hunt_spec(args.spec) if args.spec else default_hunt_spec()
    )
    journal_path = args.journal or (
        os.path.join(
            os.path.dirname(os.path.abspath(args.spec)), "hunt.jsonl"
        )
        if args.spec
        else "hunt.jsonl"
    )
    progress = (
        None
        if args.quiet
        else (lambda line: print(line, file=sys.stderr, flush=True))
    )

    def _on_term(signum, frame):  # orchestrator drain: TERM == ^C
        raise CampaignInterrupted(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, _on_term)
    try:
        run = run_hunt(
            spec, journal_path, resume=not args.no_resume,
            progress=progress,
        )
    except CampaignInterrupted:
        if not args.quiet:
            print(
                "hunt: interrupted (SIGTERM); journal is resumable",
                file=sys.stderr, flush=True,
            )
        return EXIT_SIGTERM
    except KeyboardInterrupt:
        if not args.quiet:
            print(
                "hunt: interrupted (^C); journal is resumable",
                file=sys.stderr, flush=True,
            )
        return EXIT_SIGINT
    except JournalError as exc:
        print(f"hunt: {exc}", file=sys.stderr, flush=True)
        return EXIT_ERRORS
    finally:
        signal.signal(signal.SIGTERM, previous)
    report = build_hunt_report(spec, run)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(render_hunt_json(report))
    markdown = render_hunt_markdown(report)
    if args.report_markdown:
        with open(args.report_markdown, "w", encoding="utf-8") as fh:
            fh.write(markdown + "\n")
    if not args.quiet:
        print(markdown)
    return hunt_exit_code(report)


def cmd_serve(args: argparse.Namespace) -> int:
    # Lazy import for the same circularity reason as cmd_batch.
    import json

    from .serve import ServeClient, ServeClientError

    client_mode = (
        args.check_request or args.health or args.stats or args.shutdown
    )
    if client_mode:
        try:
            client = ServeClient(
                socket_path=args.socket,
                port=args.port,
                host=args.host,
                connect_timeout=args.connect_timeout,
            )
        except (ServeClientError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        worst = 0
        with client:
            try:
                if args.health:
                    record = client.health()
                    print(json.dumps(record, sort_keys=True))
                    return 0 if record.get("ok") else 3
                if args.stats:
                    print(json.dumps(client.stats(), sort_keys=True))
                    return 0
                if args.shutdown:
                    record = client.shutdown()
                    print(json.dumps(record, sort_keys=True))
                    return 0 if record.get("ok") else 3
                with open(args.check_request, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
                requests = data if isinstance(data, list) else [data]
                for request in requests:
                    record = client.check(request)
                    print(json.dumps(record, sort_keys=True))
                    status = record.get("status")
                    if status == "fail":
                        worst = max(worst, 1)
                    elif status != "pass":
                        worst = 3
            except ServeClientError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 3
        return worst

    from .serve import CheckServer, ResidentStore

    if (args.socket is None) == (args.port is None):
        print(
            "error: serve needs exactly one of --socket / --port",
            file=sys.stderr,
        )
        return 2
    cache_dir = args.cache_dir
    if cache_dir == "":
        from .cache import default_cache_dir

        cache_dir = default_cache_dir()
    defaults: Dict[str, object] = {}
    for key, value in (
        ("timeout_s", args.timeout_s),
        ("retries", args.retries),
        ("backoff_s", args.backoff_s),
        ("memory_mb", args.memory_mb),
        ("jobs", args.serve_jobs),
    ):
        if value is not None:
            defaults[key] = value
    server = CheckServer(
        socket_path=args.socket,
        port=args.port,
        host=args.host,
        workers=args.workers,
        queue_depth=args.queue_depth,
        store=ResidentStore(cache_dir, args.cache_backend),
        defaults=defaults,
        log=(lambda _line: None) if args.quiet else None,
    )
    return server.serve_forever()


def cmd_doctor(args: argparse.Namespace) -> int:
    import json

    from .campaign.doctor import (
        DEFAULT_MAX_QUARANTINE,
        render_doctor,
        run_doctor,
    )

    cache_dir = args.dir
    if cache_dir is None:
        from .cache import default_cache_dir

        cache_dir = default_cache_dir()
    max_quarantine = (
        args.max_quarantine
        if args.max_quarantine is not None
        else DEFAULT_MAX_QUARANTINE
    )
    if max_quarantine < 0:
        print("error: --max-quarantine must be >= 0", file=sys.stderr)
        return 2
    code, report = run_doctor(
        cache_dir, fix=args.fix, max_quarantine=max_quarantine
    )
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(render_doctor(report), end="")
    return code


def cmd_chaos(args: argparse.Namespace) -> int:
    # Lazy import for the same circularity reason as cmd_batch.
    from .campaign.chaos import run_chaos_cli

    return run_chaos_cli(args)


def cmd_simulate(args: argparse.Namespace) -> int:
    tm = _make_tm(args.tm, args.threads, args.vars, args.manager)
    programs: Dict[int, tuple] = {}
    for spec in args.program or []:
        thread_text, _, prog_text = spec.partition(":")
        programs[int(thread_text)] = program(prog_text)
    run = simulate(tm, programs, parse_schedule(args.schedule))
    print(f"run : {run}")
    print(f"word: {format_word(run.word())}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Model checking transactional memories (PLDI 2008).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_word = sub.add_parser("word", help="decide piss/piop for a word")
    p_word.add_argument("word", help='e.g. "(w,1)2 (r,1)1 c2 (w,2)1 c1"')
    p_word.set_defaults(func=cmd_word)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--threads", "-n", type=int, default=2)
        p.add_argument("--vars", "-k", type=int, default=2)
        p.add_argument(
            "--manager",
            "-m",
            choices=sorted(MANAGERS),
            help="compose with a contention manager",
        )

    p_safety = sub.add_parser("safety", help="Table 2: language inclusion")
    p_safety.add_argument("tm", help="seq|2pl|dstm|tl2|modtl2|all")
    p_safety.add_argument("--property", "-p", choices=sorted(PROPERTIES))
    mode = p_safety.add_mutually_exclusive_group()
    mode.add_argument(
        "--materialize",
        action="store_true",
        help="build the full TM automaton before checking instead of"
        " streaming states into the product lazily",
    )
    mode.add_argument(
        "--lazy-spec",
        action="store_true",
        help="also stream the specification through its transition"
        " function instead of materializing it — required for large"
        " (n, k) where the full specification is intractable",
    )
    p_safety.add_argument(
        "--no-compiled",
        dest="compiled",
        action="store_false",
        help="disable the compiled packed-state TM engine and stream"
        " naive tuple states (the differential reference path)",
    )
    p_safety.add_argument(
        "--no-compiled-spec",
        dest="spec_compiled",
        action="store_false",
        help="with --lazy-spec, stream the specification through the"
        " rich det_step oracle instead of the compiled packed-state"
        " spec oracle (the differential reference path)",
    )
    p_safety.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="shard the product BFS itself (level-synchronized,"
        " hash-partitioned pair frontiers) across this many worker"
        " processes on the all-int paths, and TM transition-row"
        " computation elsewhere (verdicts are byte-identical to"
        " --jobs 1)",
    )
    p_safety.add_argument(
        "--no-shard-product",
        dest="shard_product",
        action="store_false",
        help="with --jobs N, shard only TM transition-row computation"
        " instead of the product BFS itself (the PR 3 behaviour; a"
        " differential reference for the sharded product)",
    )
    dense_mode = p_safety.add_mutually_exclusive_group()
    dense_mode.add_argument(
        "--dense-kernel",
        dest="dense_kernel",
        action="store_true",
        default=None,
        help="force dense CSR recording even without a cache (by"
        " default recording only engages when --cache-dir is set, so"
        " one-shot cold runs skip the recording overhead)",
    )
    dense_mode.add_argument(
        "--no-dense-kernel",
        dest="dense_kernel",
        action="store_false",
        help="disable the dense array-backed BFS kernel (CSR successor"
        " tables + bitset seen-sets) and keep the set-based pair loop"
        " (the differential reference path)",
    )
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"must be a positive integer (got {value})"
            )
        return value

    p_safety.add_argument(
        "--chunk-size",
        type=positive_int,
        default=None,
        metavar="N",
        help="with --jobs, fix the row-prefetcher's per-task batch to N"
        " nodes (default: one even chunk per worker; scheduling-only,"
        " results are identical)",
    )
    p_safety.add_argument(
        "--profile",
        action="store_true",
        help="emit a per-phase time split (engine build / row discovery"
        " / product BFS / trace rerun) as one JSON line per check on"
        " stderr",
    )
    p_safety.add_argument(
        "--cache-dir",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="warm-start from (and spill to) an on-disk cache of"
        " compiled-engine tables; without DIR uses $REPRO_CACHE_DIR or"
        " ~/.cache/repro",
    )
    p_safety.add_argument(
        "--cache-backend",
        choices=("disk", "mmap", "memory"),
        default="disk",
        help="storage backend for --cache-dir: pickle files (disk),"
        " zero-copy memory-mapped segment files shared across"
        " processes (mmap), or a process-local store (memory);"
        " results are identical across backends",
    )
    add_common(p_safety)
    p_safety.set_defaults(func=cmd_safety)

    p_live = sub.add_parser("liveness", help="Table 3: loop analysis")
    p_live.add_argument("tm", help="seq|2pl|dstm|tl2|modtl2|all")
    p_live.add_argument(
        "--no-compiled",
        dest="compiled",
        action="store_false",
        help="build the liveness graph with the naive explorer instead"
        " of the compiled packed-state engine",
    )
    p_live.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="shard liveness-graph construction across this many worker"
        " processes (the graph is identical to --jobs 1)",
    )
    p_live.add_argument(
        "--cache-dir",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="warm-start the compiled engine (node rows and the dense"
        " adjacency included) from an on-disk cache; without DIR uses"
        " $REPRO_CACHE_DIR or ~/.cache/repro",
    )
    p_live.add_argument(
        "--cache-backend",
        choices=("disk", "mmap", "memory"),
        default="disk",
        help="storage backend for --cache-dir (see 'safety --help')",
    )
    add_common(p_live)
    p_live.set_defaults(func=cmd_liveness, vars=1)

    p_specs = sub.add_parser("specs", help="specification sizes / Thm 3")
    p_specs.add_argument("--threads", "-n", type=int, default=2)
    p_specs.add_argument("--vars", "-k", type=int, default=2)
    p_specs.add_argument(
        "--check-equivalence",
        action="store_true",
        help="also run the Theorem 3 antichain equivalence",
    )
    p_specs.set_defaults(func=cmd_specs)

    p_batch = sub.add_parser(
        "batch",
        help="run a fault-tolerant campaign from a JSON spec",
    )
    p_batch.add_argument("spec", help="path to the campaign spec (JSON)")
    p_batch.add_argument(
        "--journal",
        metavar="PATH",
        help="journal file (default: campaign.jsonl next to the spec);"
        " an existing journal for the same spec resumes the campaign",
    )
    p_batch.add_argument(
        "--no-resume",
        action="store_true",
        help="truncate any existing journal instead of resuming it",
    )
    p_batch.add_argument(
        "--report-json",
        metavar="PATH",
        help="write the canonical JSON report here",
    )
    p_batch.add_argument(
        "--report-markdown",
        metavar="PATH",
        help="write the markdown report here",
    )
    p_batch.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress progress (stderr) and the stdout report",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_hunt = sub.add_parser(
        "hunt",
        help="sweep seeded-bug TM mutants through the campaign layer",
    )
    p_hunt.add_argument(
        "spec",
        nargs="?",
        help="path to a hunt spec (JSON); omitted = the shipped"
        " default mutant roster at (2,2) against ss and op",
    )
    p_hunt.add_argument(
        "--list",
        action="store_true",
        help="print the default mutant roster (id, expected verdict,"
        " summary) and exit",
    )
    p_hunt.add_argument(
        "--journal",
        metavar="PATH",
        help="journal file (default: hunt.jsonl next to the spec, or"
        " ./hunt.jsonl for the default hunt); an existing journal for"
        " the same hunt resumes it",
    )
    p_hunt.add_argument(
        "--no-resume",
        action="store_true",
        help="truncate any existing journal instead of resuming it",
    )
    p_hunt.add_argument(
        "--report-json",
        metavar="PATH",
        help="write the canonical JSON hunt report here",
    )
    p_hunt.add_argument(
        "--report-markdown",
        metavar="PATH",
        help="write the markdown hunt report here",
    )
    p_hunt.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress progress (stderr) and the stdout report",
    )
    p_hunt.set_defaults(func=cmd_hunt)

    p_serve = sub.add_parser(
        "serve",
        help="run (or talk to) the resident checker daemon",
    )
    endpoint = p_serve.add_argument_group("endpoint")
    endpoint.add_argument(
        "--socket",
        metavar="PATH",
        help="listen on (or connect to) an AF_UNIX socket at PATH",
    )
    endpoint.add_argument(
        "--port",
        type=int,
        metavar="N",
        help="listen on (or connect to) TCP port N (0 picks a free"
        " port and logs it)",
    )
    endpoint.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind/connect address (default: 127.0.0.1)",
    )
    server_group = p_serve.add_argument_group("server mode")
    server_group.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="concurrent supervised checks (default: 1)",
    )
    server_group.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="admitted-but-not-running requests held before answering"
        " busy (default: 8)",
    )
    server_group.add_argument(
        "--cache-dir",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="durable cold tier under the resident hot tier; a"
        " restarted daemon re-hydrates from it (without DIR uses"
        " $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    server_group.add_argument(
        "--cache-backend",
        choices=("disk", "mmap"),
        default="disk",
        help="cold-tier backend for --cache-dir (default: disk)",
    )
    server_group.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="default per-attempt wall clock for requests that don't"
        " set timeout_s (default: the campaign default, 300)",
    )
    server_group.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="default supervised retries per request (default: 2)",
    )
    server_group.add_argument(
        "--backoff-s",
        type=float,
        default=None,
        metavar="S",
        help="default retry backoff base (decorrelated jitter)",
    )
    server_group.add_argument(
        "--memory-mb",
        type=int,
        default=None,
        metavar="MB",
        help="default per-request RSS cap",
    )
    server_group.add_argument(
        "--jobs",
        dest="serve_jobs",
        type=int,
        default=None,
        metavar="N",
        help="default sharding for requests that don't set jobs",
    )
    server_group.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress the daemon's stderr log lines",
    )
    client_group = p_serve.add_argument_group("client mode")
    client_group.add_argument(
        "--check-request",
        metavar="FILE",
        help="send the JSON check request (object or array of objects)"
        " in FILE to a running daemon and print each response line;"
        " exits 0 all-pass / 1 any-fail / 3 any error, timeout or busy",
    )
    client_group.add_argument(
        "--health",
        action="store_true",
        help="print the daemon's health record and exit",
    )
    client_group.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's stats record and exit",
    )
    client_group.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the daemon to drain and exit 0",
    )
    client_group.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="client mode: retry the initial connect for up to S"
        " seconds (rides out the daemon's startup)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_doctor = sub.add_parser(
        "doctor",
        help="scan a warm-start cache directory for damaged entries",
    )
    p_doctor.add_argument(
        "dir",
        nargs="?",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or"
        " ~/.cache/repro)",
    )
    p_doctor.add_argument(
        "--fix",
        action="store_true",
        help="quarantine damaged entries (<name>.bad) and remove"
        " orphaned temporaries; without it the scan is read-only",
    )
    p_doctor.add_argument(
        "--json",
        action="store_true",
        help="emit the scan report as JSON",
    )
    p_doctor.add_argument(
        "--max-quarantine",
        type=int,
        default=None,
        help="quarantined .bad files to retain under --fix (oldest"
        " rotated out beyond this; default 16)",
    )
    p_doctor.set_defaults(func=cmd_doctor)

    p_chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault schedules through batch/serve/hunt"
        " and check recovery invariants",
    )
    p_chaos.add_argument(
        "--seed-range",
        default="0:4",
        help="half-open seed range START:STOP for the schedule family"
        " (default 0:4)",
    )
    p_chaos.add_argument(
        "--plane",
        action="append",
        choices=["storage", "journal", "wire"],
        help="restrict to one or more fault planes (repeatable;"
        " default: all)",
    )
    p_chaos.add_argument(
        "--schedule",
        default=None,
        help="replay one JSON fault-schedule file instead of the"
        " generated family",
    )
    p_chaos.add_argument(
        "--scenario",
        action="append",
        choices=["batch", "serve", "hunt"],
        help="restrict to one or more scenarios (repeatable;"
        " default: whatever the plane supports)",
    )
    p_chaos.add_argument(
        "--deadline-s",
        type=float,
        default=120.0,
        help="per-trial wall-clock deadline (default 120)",
    )
    p_chaos.add_argument(
        "--report-json",
        help="write the chaos report to this path as JSON",
    )
    p_chaos.add_argument(
        "--workdir",
        default=None,
        help="directory for trial scratch state (default: a"
        " temporary directory, removed afterwards)",
    )
    p_chaos.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress per-trial progress lines",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_sim = sub.add_parser("simulate", help="Table 1: run a schedule")
    p_sim.add_argument("tm")
    p_sim.add_argument("--schedule", "-s", required=True, help="e.g. 112122")
    p_sim.add_argument(
        "--program",
        "-P",
        action="append",
        help='per-thread program, e.g. "1:r1 w2 c" (repeatable)',
    )
    add_common(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SystemExit:
        raise
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
