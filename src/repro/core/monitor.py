"""Online safety monitors.

The deterministic TM specifications double as *runtime monitors*: feed
statements one at a time and learn, in O(1) amortized state-size work per
statement, whether the history so far is still strictly serializable /
opaque.  This is the "unbounded online checking" problem that conflict
graphs cannot solve (Section 5's wm example grows without bound) and the
prohibited-set construction does — packaged as a small API.

Example::

    monitor = OpacityMonitor(n_threads=2, n_vars=2)
    monitor.feed(read(1, 1))
    monitor.feed(write(1, 2))
    assert monitor.ok
    monitor.feed(commit(2))
    assert not monitor.would_accept(read(1, 1))  # stale re-read
"""

from __future__ import annotations

from typing import List, Optional

from ..spec.common import OP, SS, SafetyProperty
from ..spec.det import DetSpecState, det_step, initial_state
from .statements import Statement, Word


class SafetyMonitor:
    """Incremental membership in piss/piop for a fixed (n, k).

    Once a violation occurs the monitor latches: ``ok`` stays false and
    further statements are ignored (the properties are prefix-closed, so
    no continuation can repair a violation).
    """

    def __init__(
        self, n_threads: int, n_vars: int, prop: SafetyProperty
    ) -> None:
        if n_threads < 1 or n_vars < 1:
            raise ValueError("need at least one thread and one variable")
        self.n = n_threads
        self.k = n_vars
        self.prop = prop
        self._state: Optional[DetSpecState] = initial_state(n_threads)
        self._history: List[Statement] = []
        self._violation_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def feed(self, stmt: Statement) -> bool:
        """Consume one statement; returns ``ok`` afterwards."""
        self._check_bounds(stmt)
        if self._state is not None:
            nxt = det_step(self._state, stmt, self.prop)
            if nxt is None:
                self._violation_index = len(self._history)
            self._state = nxt
        self._history.append(stmt)
        return self.ok

    def feed_word(self, word: Word) -> bool:
        """Consume a whole word; returns ``ok`` afterwards."""
        for stmt in word:
            self.feed(stmt)
        return self.ok

    def would_accept(self, stmt: Statement) -> bool:
        """Peek: would the history remain safe after ``stmt``?"""
        self._check_bounds(stmt)
        if self._state is None:
            return False
        return det_step(self._state, stmt, self.prop) is not None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """Is the history consumed so far in the property?"""
        return self._state is not None

    @property
    def history(self) -> Word:
        return tuple(self._history)

    @property
    def violation_index(self) -> Optional[int]:
        """Index of the first violating statement, if any."""
        return self._violation_index

    def reset(self) -> None:
        self._state = initial_state(self.n)
        self._history.clear()
        self._violation_index = None

    def _check_bounds(self, stmt: Statement) -> None:
        if not 1 <= stmt.thread <= self.n:
            raise ValueError(
                f"thread {stmt.thread} out of range 1..{self.n}"
            )
        if stmt.var is not None and not 1 <= stmt.var <= self.k:
            raise ValueError(f"variable {stmt.var} out of range 1..{self.k}")


class StrictSerializabilityMonitor(SafetyMonitor):
    """Online membership in piss."""

    def __init__(self, n_threads: int, n_vars: int) -> None:
        super().__init__(n_threads, n_vars, SS)


class OpacityMonitor(SafetyMonitor):
    """Online membership in piop."""

    def __init__(self, n_threads: int, n_vars: int) -> None:
        super().__init__(n_threads, n_vars, OP)
