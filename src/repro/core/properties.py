"""Reference decision procedures for the paper's safety properties.

``piss`` (strict serializability): a word ``w`` is strictly serializable iff
some sequential word is strictly equivalent to ``com(w)``.

``piop`` (opacity): a word ``w`` is opaque iff some sequential word is
strictly equivalent to ``w`` itself — aborting and unfinished transactions
must also observe consistent state.

Both reduce to acyclicity of a precedence graph (see
:mod:`repro.core.serialization_graph`); these functions are *exact* but
offline, and serve as the ground truth for differential testing of the TM
specification automata of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .conflicts import strictly_equivalent
from .serialization_graph import build_graph
from .statements import Statement, Word
from .words import com, is_sequential, transactions


def is_strictly_serializable(word: Sequence[Statement]) -> bool:
    """Decide ``w ∈ piss`` by conflict-graph acyclicity on ``com(w)``."""
    return build_graph(com(word)).is_acyclic()


def is_opaque(word: Sequence[Statement]) -> bool:
    """Decide ``w ∈ piop`` by precedence-graph acyclicity on ``w``."""
    return build_graph(tuple(word)).is_acyclic()


@dataclass(frozen=True)
class SerializationWitness:
    """A witness (or refutation) for a safety property on a word.

    If ``holds``, ``sequential_word`` is a sequential word strictly
    equivalent to the relevant projection of the input (``com(w)`` for
    strict serializability, ``w`` for opacity) and ``order`` lists the
    transaction ids in serialization order.  Otherwise ``cycle_explanation``
    describes one precedence cycle.
    """

    holds: bool
    sequential_word: Optional[Word] = None
    order: Optional[List[int]] = None
    cycle_explanation: Optional[str] = None


def _witness(target: Word) -> SerializationWitness:
    graph = build_graph(target)
    order = graph.topological_order()
    if order is None:
        return SerializationWitness(
            holds=False, cycle_explanation=graph.explain_cycle()
        )
    seq: List[Statement] = []
    for tid in order:
        seq.extend(graph.txs[tid].statements)
    seq_word = tuple(seq)
    # Defensive: the construction must produce a genuine witness.
    assert is_sequential(seq_word)
    assert strictly_equivalent(target, seq_word)
    return SerializationWitness(holds=True, sequential_word=seq_word, order=order)


def strict_serializability_witness(
    word: Sequence[Statement],
) -> SerializationWitness:
    """A checked witness/refutation for ``w ∈ piss``."""
    return _witness(com(word))


def opacity_witness(word: Sequence[Statement]) -> SerializationWitness:
    """A checked witness/refutation for ``w ∈ piop``."""
    return _witness(tuple(word))
