"""Words, thread projections, and transactions (paper Section 2).

A *word* is a finite sequence of statements.  The *thread projection*
``w|t`` keeps the statements of one thread.  A *transaction* of thread ``t``
is a maximal consecutive block of ``w|t`` that starts at an initiating
statement and runs up to (and including) the next finishing statement —
a commit or an abort — or to the end of ``w|t``.  Transactions are
*committing*, *aborting*, or *unfinished* accordingly.

``com(w)`` keeps exactly the statements belonging to committing
transactions; it is the basis of strict serializability, which constrains
only committed work.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .statements import Statement, Word, format_word


class TxStatus(Enum):
    """Outcome of a transaction within a given word."""

    COMMITTING = "committing"
    ABORTING = "aborting"
    UNFINISHED = "unfinished"


@dataclass(frozen=True)
class Transaction:
    """A transaction of one thread inside a word.

    Attributes:
        thread: the thread executing the transaction.
        indices: positions (ascending) of the transaction's statements in
            the enclosing word; never empty.
        statements: the statements at those positions.
        status: committing / aborting / unfinished.
    """

    thread: int
    indices: Tuple[int, ...]
    statements: Tuple[Statement, ...]
    status: TxStatus

    @property
    def first(self) -> int:
        """Index in the word of the transaction's first statement."""
        return self.indices[0]

    @property
    def last(self) -> int:
        """Index in the word of the transaction's last statement."""
        return self.indices[-1]

    @property
    def is_committing(self) -> bool:
        return self.status is TxStatus.COMMITTING

    @property
    def is_aborting(self) -> bool:
        return self.status is TxStatus.ABORTING

    @property
    def is_unfinished(self) -> bool:
        return self.status is TxStatus.UNFINISHED

    def writes(self) -> Set[int]:
        """Variables this transaction writes to."""
        return {s.var for s in self.statements if s.is_write and s.var is not None}

    def global_reads(self) -> Set[int]:
        """Variables this transaction *globally* reads.

        A read of ``v`` is global if the transaction has not written ``v``
        before the read (paper Section 2); reads of one's own earlier
        writes are local and never conflict.
        """
        written: Set[int] = set()
        result: Set[int] = set()
        for s in self.statements:
            if s.is_write and s.var is not None:
                written.add(s.var)
            elif s.is_read and s.var is not None and s.var not in written:
                result.add(s.var)
        return result

    def global_read_positions(self) -> List[int]:
        """Word indices of this transaction's global read statements."""
        written: Set[int] = set()
        result: List[int] = []
        for idx, s in zip(self.indices, self.statements):
            if s.is_write and s.var is not None:
                written.add(s.var)
            elif s.is_read and s.var is not None and s.var not in written:
                result.append(idx)
        return result

    def commit_position(self) -> Optional[int]:
        """Word index of the commit statement, if committing."""
        if self.status is TxStatus.COMMITTING:
            return self.last
        return None

    def precedes(self, other: "Transaction") -> bool:
        """True iff this transaction's last statement occurs before the
        other's first statement (the paper's ``x <w y``)."""
        return self.last < other.first

    def __str__(self) -> str:
        body = format_word(self.statements)
        return f"<tx t{self.thread} [{self.status.value}] {body}>"


def thread_projection(word: Sequence[Statement], thread: int) -> Word:
    """The subsequence ``w|t`` of statements issued by ``thread``."""
    return tuple(s for s in word if s.thread == thread)


def transactions(word: Sequence[Statement]) -> List[Transaction]:
    """All transactions in ``word``, ordered by first statement.

    Each statement of the word belongs to exactly one transaction of its
    thread.  A transaction ends at a commit/abort or at the end of the word.
    """
    open_idx: Dict[int, List[int]] = {}
    result: List[Transaction] = []
    for i, s in enumerate(word):
        open_idx.setdefault(s.thread, []).append(i)
        if s.is_finishing:
            idxs = tuple(open_idx.pop(s.thread))
            status = TxStatus.COMMITTING if s.is_commit else TxStatus.ABORTING
            result.append(
                Transaction(s.thread, idxs, tuple(word[j] for j in idxs), status)
            )
    for thread, idxs_list in open_idx.items():
        idxs = tuple(idxs_list)
        result.append(
            Transaction(
                thread, idxs, tuple(word[j] for j in idxs), TxStatus.UNFINISHED
            )
        )
    result.sort(key=lambda tx: tx.first)
    return result


def transaction_at(word: Sequence[Statement], index: int) -> Transaction:
    """The transaction containing the statement at ``index``."""
    for tx in transactions(word):
        if index in tx.indices:
            return tx
    raise IndexError(f"index {index} out of range for word of length {len(word)}")


def com(word: Sequence[Statement]) -> Word:
    """The subsequence of statements belonging to committing transactions."""
    keep: Set[int] = set()
    for tx in transactions(word):
        if tx.is_committing:
            keep.update(tx.indices)
    return tuple(s for i, s in enumerate(word) if i in keep)


def is_sequential(word: Sequence[Statement]) -> bool:
    """True iff every pair of transactions in ``word`` is ordered.

    Equivalently: transactions never interleave — once a transaction has
    started, no other thread issues a statement until it finishes.
    """
    txs = transactions(word)
    for i, x in enumerate(txs):
        for y in txs[i + 1 :]:
            if not (x.precedes(y) or y.precedes(x)):
                return False
    return True


def committed_transactions(word: Sequence[Statement]) -> List[Transaction]:
    """The committing transactions of ``word`` in order of appearance."""
    return [tx for tx in transactions(word) if tx.is_committing]


def unfinished_transactions(word: Sequence[Statement]) -> List[Transaction]:
    """The unfinished transactions of ``word`` in order of appearance."""
    return [tx for tx in transactions(word) if tx.is_unfinished]
