"""Conflicts between statements and strict equivalence of words.

The paper adopts *deferred-update* semantics (Section 2): a transaction's
writes become visible only at its commit.  Consequently two statements of
distinct transactions conflict iff

* one is a **global read** of a variable ``v`` and the other is the
  **commit** of a transaction that writes ``v``, or
* both are **commits** of transactions writing some common variable.

Strict equivalence between two words requires identical thread projections,
preservation of the relative order of conflicting statements, and
preservation of the real-time order of non-overlapping transactions whose
first member commits or aborts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .statements import Statement
from .words import Transaction, transactions


@dataclass(frozen=True)
class ConflictPair:
    """An ordered pair of conflicting statement positions ``i < j``.

    ``var`` is the variable through which the conflict arises; ``reason``
    is ``"read-commit"`` (a global read of ``var`` vs. a commit of a writer
    of ``var``, in either temporal order) or ``"commit-commit"`` (two
    committing writers of ``var``).
    """

    i: int
    j: int
    var: int
    reason: str


def _position_maps(
    txs: Sequence[Transaction],
) -> Tuple[Dict[int, Transaction], Dict[int, int]]:
    """Map each statement position to its transaction and tx index."""
    tx_of: Dict[int, Transaction] = {}
    txid_of: Dict[int, int] = {}
    for tid, tx in enumerate(txs):
        for idx in tx.indices:
            tx_of[idx] = tx
            txid_of[idx] = tid
    return tx_of, txid_of


def conflicting_pairs(word: Sequence[Statement]) -> List[ConflictPair]:
    """All conflicting statement pairs of ``word``, each with ``i < j``."""
    txs = transactions(word)
    _, txid_of = _position_maps(txs)

    # Per transaction: positions of global reads (with variable) and of the
    # commit, plus the write set.
    global_reads: List[Tuple[int, int, int]] = []  # (position, var, txid)
    commits: List[Tuple[int, int]] = []  # (position, txid)
    for tid, tx in enumerate(txs):
        for pos in tx.global_read_positions():
            var = word[pos].var
            assert var is not None
            global_reads.append((pos, var, tid))
        cpos = tx.commit_position()
        if cpos is not None:
            commits.append((cpos, tid))

    result: List[ConflictPair] = []
    for rpos, var, rtid in global_reads:
        for cpos, ctid in commits:
            if ctid == rtid:
                continue
            if var in txs[ctid].writes():
                i, j = min(rpos, cpos), max(rpos, cpos)
                result.append(ConflictPair(i, j, var, "read-commit"))
    for a in range(len(commits)):
        for b in range(a + 1, len(commits)):
            pa, ta = commits[a]
            pb, tb = commits[b]
            common = txs[ta].writes() & txs[tb].writes()
            if common:
                i, j = min(pa, pb), max(pa, pb)
                result.append(ConflictPair(i, j, min(common), "commit-commit"))
    result.sort(key=lambda p: (p.i, p.j))
    return result


def _thread_ordinals(word: Sequence[Statement]) -> List[Tuple[int, int]]:
    """For each position, the pair (thread, ordinal within that thread).

    Because strict equivalence demands equal thread projections, this pair
    identifies the *same* statement across the two words being compared.
    """
    counters: Dict[int, int] = {}
    result: List[Tuple[int, int]] = []
    for s in word:
        c = counters.get(s.thread, 0)
        result.append((s.thread, c))
        counters[s.thread] = c + 1
    return result


def strictly_equivalent(
    word: Sequence[Statement], other: Sequence[Statement]
) -> bool:
    """Decide strict equivalence of two words (paper Section 2).

    Checks, in order: (i) equal thread projections; (ii) every conflicting
    pair of ``word`` appears in the same relative order in ``other``;
    (iii) for every pair of transactions ``x, y`` of ``word`` with ``x``
    committing or aborting and ``x <w y``, it is not the case that
    ``y <other x``.
    """
    if sorted(s.thread for s in word) != sorted(s.thread for s in other):
        return False
    threads = {s.thread for s in word}
    for t in threads:
        if tuple(s for s in word if s.thread == t) != tuple(
            s for s in other if s.thread == t
        ):
            return False

    # Position of each (thread, ordinal) in `other`.
    pos_in_other: Dict[Tuple[int, int], int] = {
        key: i for i, key in enumerate(_thread_ordinals(other))
    }
    ords = _thread_ordinals(word)
    for pair in conflicting_pairs(word):
        if pos_in_other[ords[pair.i]] > pos_in_other[ords[pair.j]]:
            return False

    txs_w = transactions(word)
    txs_o = transactions(other)
    # Transactions correspond across the words by (thread, per-thread rank).
    def tx_key(tx: Transaction, word_ref: Sequence[Statement]) -> Tuple[int, int]:
        rank = sum(
            1 for u in transactions(word_ref) if u.thread == tx.thread and u.first < tx.first
        )
        return (tx.thread, rank)

    tx_o_by_key = {tx_key(tx, other): tx for tx in txs_o}
    for x in txs_w:
        if x.is_unfinished:
            continue
        for y in txs_w:
            if x is y or not x.precedes(y):
                continue
            xo = tx_o_by_key[tx_key(x, word)]
            yo = tx_o_by_key[tx_key(y, word)]
            if yo.precedes(xo):
                return False
    return True
