"""Liveness predicates on lasso-shaped infinite words (paper Section 2).

Infinite words produced by model checking always come as *lassos*
``prefix · loop^ω``.  On a lasso, "infinitely often X" is simply "X occurs
in the loop", which makes the paper's temporal definitions directly
computable:

* **Obstruction freedom** [18]: for every thread ``t``, if ``t`` aborts
  infinitely often then ``t`` also commits infinitely often or some other
  thread takes infinitely many steps.
* **Livelock freedom** [2]: some thread commits infinitely often, or some
  thread takes infinitely many steps and aborts only finitely often.
* **Wait freedom** [17] (our lasso formalization of "every transaction
  eventually commits"): every thread with infinitely many statements
  commits infinitely often and aborts only finitely often.  Wait freedom
  implies livelock freedom, which implies obstruction freedom.

These predicates certify the counterexamples produced by
:mod:`repro.checking.liveness`.
"""

from __future__ import annotations

from typing import Sequence, Set

from .statements import Statement


def _loop_threads(loop: Sequence[Statement]) -> Set[int]:
    return {s.thread for s in loop}


def _commits_in(loop: Sequence[Statement]) -> Set[int]:
    return {s.thread for s in loop if s.is_commit}


def _aborts_in(loop: Sequence[Statement]) -> Set[int]:
    return {s.thread for s in loop if s.is_abort}


def is_obstruction_free_lasso(
    prefix: Sequence[Statement], loop: Sequence[Statement]
) -> bool:
    """Obstruction freedom of ``prefix · loop^ω``.

    The prefix is irrelevant: only events occurring infinitely often
    matter, and those are exactly the events of the loop.
    """
    del prefix  # finitely many occurrences never matter
    threads = _loop_threads(loop)
    commits = _commits_in(loop)
    for t in _aborts_in(loop):
        others_run = bool(threads - {t})
        if t not in commits and not others_run:
            return False
    return True


def is_livelock_free_lasso(
    prefix: Sequence[Statement], loop: Sequence[Statement]
) -> bool:
    """Livelock freedom of ``prefix · loop^ω``."""
    del prefix
    if _commits_in(loop):
        return True
    aborts = _aborts_in(loop)
    return any(t not in aborts for t in _loop_threads(loop))


def is_wait_free_lasso(
    prefix: Sequence[Statement], loop: Sequence[Statement]
) -> bool:
    """Wait freedom of ``prefix · loop^ω`` (our formalization, see module
    docstring)."""
    del prefix
    commits = _commits_in(loop)
    aborts = _aborts_in(loop)
    for t in _loop_threads(loop):
        if t not in commits or t in aborts:
            return False
    return True
