"""Statements, commands, and alphabets of the TM framework.

The paper (Section 2) fixes a set ``V = {1, ..., k}`` of variables and a set
``T = {1, ..., n}`` of threads.  The *commands* are

    ``C = {commit} ∪ ({read, write} × V)``

and the *extended* command set adds ``abort``.  A *statement* is a command
paired with the thread that issues it; words are finite sequences of
statements.  This module provides hashable, canonical representations for all
of these, plus a compact textual notation used throughout the paper's tables
(e.g. ``(r,1)1`` for "thread 1 reads variable 1" and ``c2`` for "thread 2
commits"), which we can parse and render.

Threads and variables are 1-based everywhere, matching the paper.
"""

from __future__ import annotations

import re
from enum import Enum
from typing import Iterator, NamedTuple, Optional, Sequence, Tuple


class Kind(Enum):
    """The four kinds of statement that can appear in a word."""

    READ = "read"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"

    @property
    def short(self) -> str:
        """One-letter abbreviation used by the paper's tables."""
        return {"read": "r", "write": "w", "commit": "c", "abort": "a"}[self.value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kind.{self.name}"


#: Kinds that constitute the command set ``C`` (no abort).
COMMAND_KINDS = (Kind.READ, Kind.WRITE, Kind.COMMIT)

#: Kinds that end a transaction.
FINISHING_KINDS = (Kind.COMMIT, Kind.ABORT)


class Command(NamedTuple):
    """A command ``c ∈ C ∪ {abort}``: a kind plus an optional variable.

    ``var`` is ``None`` exactly when the kind is ``commit`` or ``abort``.
    """

    kind: Kind
    var: Optional[int]

    def validate(self) -> "Command":
        """Check the kind/variable consistency invariant; return ``self``."""
        needs_var = self.kind in (Kind.READ, Kind.WRITE)
        if needs_var and (self.var is None or self.var < 1):
            raise ValueError(f"{self.kind.value} command requires a variable >= 1")
        if not needs_var and self.var is not None:
            raise ValueError(f"{self.kind.value} command takes no variable")
        return self

    def with_thread(self, thread: int) -> "Statement":
        """Attach a thread, producing a statement."""
        return Statement(self.kind, self.var, thread)

    def __str__(self) -> str:
        if self.var is None:
            return self.kind.short
        return f"({self.kind.short},{self.var})"


class Statement(NamedTuple):
    """A statement ``s ∈ Ŝ = Ĉ × T``: a command issued by a thread."""

    kind: Kind
    var: Optional[int]
    thread: int

    @property
    def command(self) -> Command:
        """The command component (kind and variable, thread stripped)."""
        return Command(self.kind, self.var)

    @property
    def is_read(self) -> bool:
        return self.kind is Kind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is Kind.WRITE

    @property
    def is_commit(self) -> bool:
        return self.kind is Kind.COMMIT

    @property
    def is_abort(self) -> bool:
        return self.kind is Kind.ABORT

    @property
    def is_finishing(self) -> bool:
        """True for commits and aborts, which end a transaction."""
        return self.kind in FINISHING_KINDS

    def __str__(self) -> str:
        if self.var is None:
            return f"{self.kind.short}{self.thread}"
        return f"({self.kind.short},{self.var}){self.thread}"


#: A word is a finite sequence of statements; we use tuples for hashability.
Word = Tuple[Statement, ...]


def read(var: int, thread: int) -> Statement:
    """Statement ``((read, var), thread)``."""
    return Statement(Kind.READ, var, thread)


def write(var: int, thread: int) -> Statement:
    """Statement ``((write, var), thread)``."""
    return Statement(Kind.WRITE, var, thread)


def commit(thread: int) -> Statement:
    """Statement ``(commit, thread)``."""
    return Statement(Kind.COMMIT, None, thread)


def abort(thread: int) -> Statement:
    """Statement ``(abort, thread)``."""
    return Statement(Kind.ABORT, None, thread)


def commands(k: int, *, include_abort: bool = False) -> Tuple[Command, ...]:
    """All commands over ``k`` variables, in a canonical order.

    With ``include_abort`` the extended set ``Ĉ = C ∪ {abort}`` is returned.
    """
    if k < 0:
        raise ValueError("k must be nonnegative")
    result = [Command(Kind.READ, v) for v in range(1, k + 1)]
    result += [Command(Kind.WRITE, v) for v in range(1, k + 1)]
    result.append(Command(Kind.COMMIT, None))
    if include_abort:
        result.append(Command(Kind.ABORT, None))
    return tuple(result)


def statements(n: int, k: int, *, include_abort: bool = True) -> Tuple[Statement, ...]:
    """All statements over ``n`` threads and ``k`` variables.

    By default this is the full set ``Ŝ = Ĉ × T``; with
    ``include_abort=False`` it is ``S = C × T``.
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    return tuple(
        c.with_thread(t)
        for t in range(1, n + 1)
        for c in commands(k, include_abort=include_abort)
    )


_STMT_RE = re.compile(
    r"""
    \(\s*(?P<kind>r|w|read|write)\s*,\s*(?P<var>\d+)\s*\)\s*(?P<thread>\d+)
    |
    (?P<fkind>c|a|commit|abort)\s*(?P<fthread>\d+)
    """,
    re.VERBOSE,
)

_KIND_BY_NAME = {
    "r": Kind.READ,
    "read": Kind.READ,
    "w": Kind.WRITE,
    "write": Kind.WRITE,
    "c": Kind.COMMIT,
    "commit": Kind.COMMIT,
    "a": Kind.ABORT,
    "abort": Kind.ABORT,
}


def parse_statement(text: str) -> Statement:
    """Parse a single statement in the paper's compact notation.

    Examples: ``(r,1)2`` reads variable 1 on thread 2; ``c1`` commits on
    thread 1; ``a2`` aborts on thread 2.  Long-form kinds (``read``,
    ``write``, ``commit``, ``abort``) are also accepted.
    """
    m = _STMT_RE.fullmatch(text.strip())
    if m is None:
        raise ValueError(f"cannot parse statement: {text!r}")
    if m.group("kind") is not None:
        kind = _KIND_BY_NAME[m.group("kind")]
        return Statement(kind, int(m.group("var")), int(m.group("thread")))
    kind = _KIND_BY_NAME[m.group("fkind")]
    return Statement(kind, None, int(m.group("fthread")))


def parse_word(text: str) -> Word:
    """Parse a whitespace- or comma-separated sequence of statements.

    >>> [str(s) for s in parse_word("(w,2)1 (w,1)2 c2 c1")]
    ['(w,2)1', '(w,1)2', 'c2', 'c1']
    """
    parts = [p for p in re.split(r"[,;\s]+(?![^()]*\))", text.strip()) if p]
    return tuple(parse_statement(p) for p in parts)


def format_word(word: Sequence[Statement], sep: str = ", ") -> str:
    """Render a word in the paper's compact notation."""
    return sep.join(str(s) for s in word)


def threads_of(word: Sequence[Statement]) -> Tuple[int, ...]:
    """Sorted tuple of threads that appear in ``word``."""
    return tuple(sorted({s.thread for s in word}))


def variables_of(word: Sequence[Statement]) -> Tuple[int, ...]:
    """Sorted tuple of variables that appear in ``word``."""
    return tuple(sorted({s.var for s in word if s.var is not None}))


def iter_words(
    n: int, k: int, max_len: int, *, include_abort: bool = True
) -> Iterator[Word]:
    """Exhaustively enumerate all words up to ``max_len`` over (n, k).

    Enumeration is in length-then-lexicographic order and starts with the
    empty word.  Used by differential tests; the alphabet has
    ``n * (2k + 1 [+1])`` symbols so keep ``max_len`` small.
    """
    alphabet = statements(n, k, include_abort=include_abort)

    def extend(prefix: Word, remaining: int) -> Iterator[Word]:
        yield prefix
        if remaining == 0:
            return
        for s in alphabet:
            yield from extend(prefix + (s,), remaining - 1)

    yield from extend((), max_len)
