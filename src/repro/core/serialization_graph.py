"""Precedence (serialization) graphs and their acyclicity.

Deciding strict serializability of a word classically builds a *conflict
graph* over the committing transactions (Papadimitriou [22]); opacity uses
the same construction over *all* transactions of the word, with real-time
edges contributed only by committing/aborting predecessors.  The word
satisfies the property iff the graph is acyclic, and any topological order
yields a witness sequential word.

The paper observes that this graph is unbounded for online checking — that
is why the TM specifications of Section 5 exist — but as an *offline*
decision procedure on a given finite word it is exact, so we use it as the
ground truth that all automata in this library are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .statements import Statement
from .words import Transaction, transactions


@dataclass(frozen=True)
class Edge:
    """A precedence constraint: transaction ``src`` must serialize before
    transaction ``dst``.

    ``reason`` is ``"real-time"`` or ``"conflict"``; for conflicts, ``var``
    names the variable and ``positions`` the conflicting statement pair.
    """

    src: int
    dst: int
    reason: str
    var: Optional[int] = None
    positions: Optional[Tuple[int, int]] = None


@dataclass
class SerializationGraph:
    """A precedence digraph over the transactions of a word."""

    txs: List[Transaction]
    edges: List[Edge] = field(default_factory=list)

    def successors(self) -> Dict[int, Set[int]]:
        adj: Dict[int, Set[int]] = {i: set() for i in range(len(self.txs))}
        for e in self.edges:
            if e.src != e.dst:
                adj[e.src].add(e.dst)
        return adj

    def find_cycle(self) -> Optional[List[int]]:
        """A list of transaction ids forming a cycle, or ``None`` if acyclic.

        Iterative DFS with colouring; the returned list ``[v0, ..., vm]``
        satisfies ``v0 == vm`` reading edges left to right.
        """
        adj = self.successors()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {v: WHITE for v in adj}
        parent: Dict[int, Optional[int]] = {}
        for root in adj:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[int, List[int]]] = [(root, sorted(adj[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                v, succs = stack[-1]
                if succs:
                    u = succs.pop(0)
                    if colour[u] == GREY:
                        cycle = [u, v]
                        w = parent[v]
                        while w is not None and cycle[-1] != u:
                            cycle.append(w)
                            w = parent[w]
                        cycle.reverse()
                        if cycle[0] != u:  # pragma: no cover - defensive
                            cycle.insert(0, u)
                        return cycle + [u] if cycle[-1] != u else cycle
                    if colour[u] == WHITE:
                        colour[u] = GREY
                        parent[u] = v
                        stack.append((u, sorted(adj[u])))
                else:
                    colour[v] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def topological_order(self) -> Optional[List[int]]:
        """A topological order of transaction ids, or ``None`` on a cycle.

        Kahn's algorithm with deterministic tie-breaking on the earliest
        statement, so witnesses are stable across runs.
        """
        adj = self.successors()
        indeg = {v: 0 for v in adj}
        for v, succs in adj.items():
            for u in succs:
                indeg[u] += 1
        ready = sorted(
            (v for v in adj if indeg[v] == 0), key=lambda v: self.txs[v].first
        )
        order: List[int] = []
        while ready:
            v = ready.pop(0)
            order.append(v)
            for u in sorted(adj[v]):
                indeg[u] -= 1
                if indeg[u] == 0:
                    ready.append(u)
            ready.sort(key=lambda v: self.txs[v].first)
        if len(order) != len(adj):
            return None
        return order

    def explain_cycle(self) -> Optional[str]:
        """Human-readable description of one precedence cycle, if any."""
        cycle = self.find_cycle()
        if cycle is None:
            return None
        by_pair: Dict[Tuple[int, int], Edge] = {}
        for e in self.edges:
            by_pair.setdefault((e.src, e.dst), e)
        parts: List[str] = []
        for a, b in zip(cycle, cycle[1:]):
            e = by_pair[(a, b)]
            if e.reason == "conflict":
                parts.append(
                    f"tx{a}(t{self.txs[a].thread}) -> tx{b}(t{self.txs[b].thread})"
                    f" [conflict on v{e.var}]"
                )
            else:
                parts.append(
                    f"tx{a}(t{self.txs[a].thread}) -> tx{b}(t{self.txs[b].thread})"
                    f" [real-time]"
                )
        return "; ".join(parts)


def build_graph(
    word: Sequence[Statement], *, realtime_for_all: bool = False
) -> SerializationGraph:
    """Construct the precedence graph of ``word``.

    Conflict edges connect the transaction of the earlier conflicting
    statement to the transaction of the later one.  Real-time edges go from
    ``x`` to ``y`` whenever ``x <w y`` and ``x`` commits or aborts
    (``realtime_for_all=True`` adds them for unfinished ``x`` too; unused
    by the paper's definitions but handy for experimentation).
    """
    txs = transactions(word)
    graph = SerializationGraph(txs=txs)

    txid_of: Dict[int, int] = {}
    for tid, tx in enumerate(txs):
        for idx in tx.indices:
            txid_of[idx] = tid

    # Conflict edges.
    global_reads: List[Tuple[int, int, int]] = []  # (pos, var, txid)
    commits: List[Tuple[int, int]] = []  # (pos, txid)
    for tid, tx in enumerate(txs):
        for pos in tx.global_read_positions():
            var = word[pos].var
            assert var is not None
            global_reads.append((pos, var, tid))
        cpos = tx.commit_position()
        if cpos is not None:
            commits.append((cpos, tid))
    for rpos, var, rtid in global_reads:
        for cpos, ctid in commits:
            if ctid == rtid or var not in txs[ctid].writes():
                continue
            if rpos < cpos:
                graph.edges.append(
                    Edge(rtid, ctid, "conflict", var, (rpos, cpos))
                )
            else:
                graph.edges.append(
                    Edge(ctid, rtid, "conflict", var, (cpos, rpos))
                )
    for a in range(len(commits)):
        for b in range(a + 1, len(commits)):
            pa, ta = commits[a]
            pb, tb = commits[b]
            common = txs[ta].writes() & txs[tb].writes()
            if not common:
                continue
            src, dst = (ta, tb) if pa < pb else (tb, ta)
            lo, hi = min(pa, pb), max(pa, pb)
            graph.edges.append(
                Edge(src, dst, "conflict", min(common), (lo, hi))
            )

    # Real-time edges.
    for i, x in enumerate(txs):
        if x.is_unfinished and not realtime_for_all:
            continue
        for j, y in enumerate(txs):
            if i != j and x.precedes(y):
                graph.edges.append(Edge(i, j, "real-time"))
    return graph
