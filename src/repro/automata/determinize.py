"""Subset construction (ε-aware determinization).

The paper determinizes its nondeterministic TM specifications by hand
(Algorithm 6) because full subset construction is expensive; we provide the
canonical construction anyway — it anchors the correctness of the
hand-built deterministic specifications (Theorem 3) and feeds the
antichain-vs-subset ablation benchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Set

from .dfa import DFA
from .nfa import NFA, State, Symbol


def determinize(nfa: NFA, *, max_states: Optional[int] = None) -> DFA:
    """Determinize ``nfa`` by subset construction.

    Macrostates are frozensets of NFA states.  The empty macrostate (sink)
    is never materialized: missing transitions stand for it, matching the
    partial-function convention of :class:`repro.automata.dfa.DFA`.

    For an all-accepting NFA the result is all-accepting; otherwise a
    macrostate accepts iff it contains an accepting NFA state.
    """
    symbols = sorted(nfa.alphabet(), key=repr)
    initial = nfa.eclosure(nfa.initial)
    delta: Dict[FrozenSet[State], Dict[Symbol, FrozenSet[State]]] = {}
    accept: Set[FrozenSet[State]] = set()
    queue = deque([initial])
    seen: Set[FrozenSet[State]] = {initial}
    while queue:
        macro = queue.popleft()
        if max_states is not None and len(seen) > max_states:
            raise RuntimeError(
                f"subset construction exceeded {max_states} macrostates"
            )
        if nfa.accepting is not None and macro & nfa.accepting:
            accept.add(macro)
        out: Dict[Symbol, FrozenSet[State]] = {}
        for a in symbols:
            succ = nfa.eclosure(nfa.post(macro, a))
            if succ:
                out[a] = succ
                if succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        delta[macro] = out
    return DFA(
        initial=initial,
        delta=delta,
        accepting=frozenset(accept) if nfa.accepting is not None else None,
    )
