"""Automata substrate: ε-NFAs, DFAs, subset construction, inclusion,
antichain algorithms, the interned fast path powering both inclusion
checkers, and graph utilities for liveness lassos."""

from .nfa import EPSILON, NFA
from .dfa import DFA
from .determinize import determinize
from .inclusion import InclusionResult, check_inclusion_in_dfa
from .antichain import (
    EquivalenceResult,
    check_equivalence_antichain,
    check_inclusion_antichain,
)
from .interned import InternedDFA, InternedNFA, intern_dfa, intern_nfa
from .kernel import lazy_product_dfa
from .dot import dfa_to_dot, lasso_to_dot, nfa_to_dot
from .graph import (
    Lasso,
    adjacency,
    build_lasso,
    closed_walk_through,
    shortest_path,
    tarjan_sccs,
)

__all__ = [
    "EPSILON",
    "NFA",
    "DFA",
    "determinize",
    "InclusionResult",
    "check_inclusion_in_dfa",
    "EquivalenceResult",
    "check_equivalence_antichain",
    "check_inclusion_antichain",
    "InternedDFA",
    "InternedNFA",
    "intern_dfa",
    "intern_nfa",
    "lazy_product_dfa",
    "dfa_to_dot",
    "lasso_to_dot",
    "nfa_to_dot",
    "Lasso",
    "adjacency",
    "build_lasso",
    "closed_walk_through",
    "shortest_path",
    "tarjan_sccs",
]
