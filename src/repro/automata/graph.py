"""Directed-graph utilities for liveness model checking.

Liveness violations (Section 6) are *lassos*: a path from the initial
state to a cycle whose labels violate the property.  The checker reduces
both obstruction freedom and livelock freedom to "is there a reachable
cycle, inside a filtered edge set, that passes through certain required
edges?"  This module supplies the pieces: Tarjan SCCs, BFS shortest paths,
and closed-walk construction through required edges of one SCC.

Edges are triples ``(src, label, dst)``; labels are opaque to the graph
layer (the liveness checker uses extended statements).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Label, Node]


def adjacency(edges: Iterable[Edge]) -> Dict[Node, List[Edge]]:
    """Group edges by source node."""
    adj: Dict[Node, List[Edge]] = defaultdict(list)
    for e in edges:
        adj[e[0]].append(e)
    return dict(adj)


def tarjan_sccs(nodes: Iterable[Node], edges: Iterable[Edge]) -> List[Set[Node]]:
    """Strongly connected components (iterative Tarjan).

    Returns components in reverse topological order.  Trivial components
    (single node, no self-loop) are included; callers filter as needed.
    """
    adj = adjacency(edges)
    index: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    sccs: List[Set[Node]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[Node, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            out = adj.get(v, [])
            while pi < len(out):
                w = out[pi][2]
                pi += 1
                if w not in index:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                comp: Set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return sccs


def shortest_path(
    adj: Dict[Node, List[Edge]],
    src: Node,
    dst: Node,
    *,
    allowed: Optional[Set[Node]] = None,
) -> Optional[List[Edge]]:
    """BFS shortest edge-path from ``src`` to ``dst`` (empty if equal).

    ``allowed`` restricts the intermediate and final nodes.
    """
    if src == dst:
        return []
    parent: Dict[Node, Edge] = {}
    queue = deque([src])
    seen = {src}
    while queue:
        v = queue.popleft()
        for e in adj.get(v, []):
            w = e[2]
            if w in seen or (allowed is not None and w not in allowed):
                continue
            parent[w] = e
            if w == dst:
                path: List[Edge] = []
                node = dst
                while node != src:
                    e2 = parent[node]
                    path.append(e2)
                    node = e2[0]
                path.reverse()
                return path
            seen.add(w)
            queue.append(w)
    return None


def closed_walk_through(
    scc: Set[Node], edges: Iterable[Edge], required: Sequence[Edge]
) -> Optional[List[Edge]]:
    """A closed walk inside ``scc`` traversing every ``required`` edge.

    All required edges must have both endpoints in the SCC.  Returns a
    cyclic edge sequence starting and ending at ``required[0][0]``, or
    ``None`` if ``required`` is empty (no canonical base point).
    """
    if not required:
        return None
    inner = [e for e in edges if e[0] in scc and e[2] in scc]
    adj = adjacency(inner)
    walk: List[Edge] = []
    for i, e in enumerate(required):
        walk.append(e)
        nxt = required[(i + 1) % len(required)]
        bridge = shortest_path(adj, e[2], nxt[0], allowed=scc)
        if bridge is None:  # pragma: no cover - SCC guarantees a path
            return None
        walk.extend(bridge)
    return walk


@dataclass(frozen=True)
class Lasso:
    """A reachable cycle: ``stem`` leads from the initial node to the
    cycle's base point, then ``cycle`` repeats forever."""

    stem: Tuple[Edge, ...]
    cycle: Tuple[Edge, ...]

    def stem_labels(self) -> Tuple[Label, ...]:
        return tuple(e[1] for e in self.stem)

    def cycle_labels(self) -> Tuple[Label, ...]:
        return tuple(e[1] for e in self.cycle)


def build_lasso(
    all_edges: Iterable[Edge],
    initial: Node,
    cycle: Sequence[Edge],
) -> Optional[Lasso]:
    """Attach a stem from ``initial`` to the cycle's base point."""
    if not cycle:
        return None
    adj = adjacency(all_edges)
    stem = shortest_path(adj, initial, cycle[0][0])
    if stem is None:
        return None
    return Lasso(stem=tuple(stem), cycle=tuple(cycle))
