"""Directed-graph utilities for liveness model checking.

Liveness violations (Section 6) are *lassos*: a path from the initial
state to a cycle whose labels violate the property.  The checker reduces
both obstruction freedom and livelock freedom to "is there a reachable
cycle, inside a filtered edge set, that passes through certain required
edges?"  This module supplies the pieces: Tarjan SCCs, BFS shortest paths,
and closed-walk construction through required edges of one SCC.

Edges are triples ``(src, label, dst)``; labels are opaque to the graph
layer (the liveness checker uses extended statements).
"""

from __future__ import annotations

from array import array
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Label, Node]


def adjacency(edges: Iterable[Edge]) -> Dict[Node, List[Edge]]:
    """Group edges by source node."""
    adj: Dict[Node, List[Edge]] = defaultdict(list)
    for e in edges:
        adj[e[0]].append(e)
    return dict(adj)


def tarjan_sccs(nodes: Iterable[Node], edges: Iterable[Edge]) -> List[Set[Node]]:
    """Strongly connected components (iterative Tarjan).

    Returns components in reverse topological order.  Trivial components
    (single node, no self-loop) are included; callers filter as needed.

    Internally the graph is compiled to the dense-kernel representation
    first: nodes are interned to dense ids (roots first, in input order,
    then edge endpoints in edge order) and the adjacency becomes flat
    CSR arrays, so the Tarjan stack machine runs over machine ints
    instead of re-hashing rich node tuples per visit.  The dense ids,
    per-node successor order and root order replicate the pre-dense
    rich-object traversal exactly, so the returned components — content
    *and* order — are byte-identical to it.
    """
    ids: Dict[Node, int] = {}
    order: List[Node] = []

    def intern(v: Node) -> int:
        vid = ids.get(v)
        if vid is None:
            vid = ids[v] = len(order)
            order.append(v)
        return vid

    roots = [intern(v) for v in nodes]
    edge_pairs = array("q")
    for e in edges:
        edge_pairs.append(intern(e[0]))
        edge_pairs.append(intern(e[2]))
    n = len(order)
    nedges = len(edge_pairs) // 2

    # Counting-sort CSR build: per-source successor order equals the
    # edge-list order, matching the dict-of-lists adjacency it replaces.
    counts = [0] * (n + 1)
    for i in range(0, 2 * nedges, 2):
        counts[edge_pairs[i] + 1] += 1
    offsets = array("q", counts)
    for i in range(1, n + 1):
        offsets[i] += offsets[i - 1]
    cursor = array("q", offsets[:-1])
    targets = array("q", bytes(8 * nedges))
    for i in range(0, 2 * nedges, 2):
        src = edge_pairs[i]
        targets[cursor[src]] = edge_pairs[i + 1]
        cursor[src] += 1

    UNVISITED = -1
    index = array("q", bytes(8 * n))
    low = array("q", bytes(8 * n))
    for i in range(n):
        index[i] = UNVISITED
    on_stack = bytearray(n)
    stack: List[int] = []
    sccs: List[Set[Node]] = []
    counter = 0

    for root in roots:
        if index[root] != UNVISITED:
            continue
        work: List[Tuple[int, int]] = [(root, offsets[root])]
        while work:
            v, pi = work[-1]
            if pi == offsets[v]:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = 1
            advanced = False
            end = offsets[v + 1]
            while pi < end:
                w = targets[pi]
                pi += 1
                if index[w] == UNVISITED:
                    work[-1] = (v, pi)
                    work.append((w, offsets[w]))
                    advanced = True
                    break
                if on_stack[w] and index[w] < low[v]:
                    low[v] = index[w]
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                comp: Set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    comp.add(order[w])
                    if w == v:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
    return sccs


def shortest_path(
    adj: Dict[Node, List[Edge]],
    src: Node,
    dst: Node,
    *,
    allowed: Optional[Set[Node]] = None,
) -> Optional[List[Edge]]:
    """BFS shortest edge-path from ``src`` to ``dst`` (empty if equal).

    ``allowed`` restricts the intermediate and final nodes.
    """
    if src == dst:
        return []
    parent: Dict[Node, Edge] = {}
    queue = deque([src])
    seen = {src}
    while queue:
        v = queue.popleft()
        for e in adj.get(v, []):
            w = e[2]
            if w in seen or (allowed is not None and w not in allowed):
                continue
            parent[w] = e
            if w == dst:
                path: List[Edge] = []
                node = dst
                while node != src:
                    e2 = parent[node]
                    path.append(e2)
                    node = e2[0]
                path.reverse()
                return path
            seen.add(w)
            queue.append(w)
    return None


def closed_walk_through(
    scc: Set[Node], edges: Iterable[Edge], required: Sequence[Edge]
) -> Optional[List[Edge]]:
    """A closed walk inside ``scc`` traversing every ``required`` edge.

    All required edges must have both endpoints in the SCC.  Returns a
    cyclic edge sequence starting and ending at ``required[0][0]``, or
    ``None`` if ``required`` is empty (no canonical base point).
    """
    if not required:
        return None
    inner = [e for e in edges if e[0] in scc and e[2] in scc]
    adj = adjacency(inner)
    walk: List[Edge] = []
    for i, e in enumerate(required):
        walk.append(e)
        nxt = required[(i + 1) % len(required)]
        bridge = shortest_path(adj, e[2], nxt[0], allowed=scc)
        if bridge is None:  # pragma: no cover - SCC guarantees a path
            return None
        walk.extend(bridge)
    return walk


@dataclass(frozen=True)
class Lasso:
    """A reachable cycle: ``stem`` leads from the initial node to the
    cycle's base point, then ``cycle`` repeats forever."""

    stem: Tuple[Edge, ...]
    cycle: Tuple[Edge, ...]

    def stem_labels(self) -> Tuple[Label, ...]:
        return tuple(e[1] for e in self.stem)

    def cycle_labels(self) -> Tuple[Label, ...]:
        return tuple(e[1] for e in self.cycle)


def build_lasso(
    all_edges: Iterable[Edge],
    initial: Node,
    cycle: Sequence[Edge],
) -> Optional[Lasso]:
    """Attach a stem from ``initial`` to the cycle's base point."""
    if not cycle:
        return None
    adj = adjacency(all_edges)
    stem = shortest_path(adj, initial, cycle[0][0])
    if stem is None:
        return None
    return Lasso(stem=tuple(stem), cycle=tuple(cycle))
