"""Antichain-based language inclusion and equivalence for NFAs.

The paper (Section 5.3) uses the antichain tool of De Wulf, Doyen,
Henzinger and Raskin [28] to prove that the nondeterministic TM
specifications are language-equivalent to their deterministic
counterparts.  This module implements the forward antichain algorithm for
safety automata (all states accepting, prefix-closed languages):

To decide L(A) ⊆ L(B), explore pairs ``(s, S)`` of an A-state and a
B-macrostate.  The inclusion fails iff some reachable pair can take an
observable A-move whose B-macro-successor is empty.  The antichain
optimization: if ``(s, S)`` has been explored and ``S ⊆ S'``, the pair
``(s, S')`` can never expose a violation that ``(s, S)`` does not — the
smaller macrostate rejects more continuations — so only ⊆-minimal
macrostates per A-state are kept.  This is what makes equivalence of the
~10k-state specifications feasible.

By default the check runs on the interned fast path
(:mod:`repro.automata.kernel`): macrostates become integer bitsets, the
⊆ tests single machine operations, and macro steps OR-reductions over
memoized per-(state, symbol) closed successor bitsets.  The naive
implementation is kept (``interned=False``) as the differential-testing
reference; verdicts and counterexamples are identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from .inclusion import InclusionResult, _reconstruct
from .nfa import EPSILON, NFA

Symbol = Hashable


class _Antichain:
    """Per-A-state antichains of ⊆-minimal B-macrostates."""

    def __init__(self) -> None:
        self._by_state: Dict[Hashable, List[FrozenSet]] = {}

    def subsumed(self, state: Hashable, macro: FrozenSet) -> bool:
        """Is some already-kept macrostate a subset of ``macro``?"""
        return any(kept <= macro for kept in self._by_state.get(state, ()))

    def insert(self, state: Hashable, macro: FrozenSet) -> bool:
        """Insert unless subsumed; drop kept supersets.  True if inserted."""
        kept = self._by_state.setdefault(state, [])
        if any(old <= macro for old in kept):
            return False
        kept[:] = [old for old in kept if not macro <= old]
        kept.append(macro)
        return True


def check_inclusion_antichain(
    a: NFA, b: NFA, *, interned: bool = True
) -> InclusionResult:
    """Check L(``a``) ⊆ L(``b``) with the forward antichain algorithm.

    Both automata are safety automata; either may have ε-transitions.
    ε-moves of ``a`` advance the A-component only (the B-macrostate is
    always kept ε-closed).  ``product_states`` uses the shared
    discovered-pair semantics of :class:`InclusionResult`.
    ``interned=False`` selects the naive reference implementation.
    """
    if a.accepting is not None or b.accepting is not None:
        raise ValueError(
            "antichain inclusion assumes safety automata (all states accepting)"
        )
    if interned:
        from .kernel import antichain_inclusion

        holds, counterexample, discovered = antichain_inclusion(a, b)
        return InclusionResult(
            holds=holds,
            counterexample=counterexample,
            product_states=discovered,
        )
    return _check_inclusion_antichain_naive(a, b)


def _check_inclusion_antichain_naive(a: NFA, b: NFA) -> InclusionResult:
    """The pre-interning reference implementation (kept for testing)."""
    b_init = b.eclosure(b.initial)
    antichain = _Antichain()
    parent: Dict[Tuple, Optional[Tuple[Tuple, Optional[Symbol]]]] = {}
    queue: deque = deque()
    for q in sorted(a.initial, key=repr):
        pair = (q, b_init)
        if antichain.insert(q, b_init):
            parent[pair] = None
            queue.append(pair)

    while queue:
        pair = queue.popleft()
        aq, bmacro = pair
        for symbol, succs in a.delta.get(aq, {}).items():
            if symbol is EPSILON:
                for succ in sorted(succs, key=repr):
                    nxt = (succ, bmacro)
                    if antichain.insert(succ, bmacro):
                        parent[nxt] = (pair, None)
                        queue.append(nxt)
                continue
            bsucc = b.eclosure(b.post(bmacro, symbol))
            if not bsucc:
                word = _reconstruct(parent, pair) + (symbol,)
                return InclusionResult(
                    holds=False, counterexample=word, product_states=len(parent)
                )
            for succ in sorted(succs, key=repr):
                nxt = (succ, bsucc)
                if antichain.insert(succ, bsucc):
                    parent[nxt] = (pair, symbol)
                    queue.append(nxt)
    return InclusionResult(holds=True, product_states=len(parent))


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of a language-equivalence check between two automata.

    On failure exactly one of the witness fields is set: a word in
    L(A) \\ L(B) or in L(B) \\ L(A).
    """

    equivalent: bool
    in_a_not_b: Optional[Tuple[Symbol, ...]] = None
    in_b_not_a: Optional[Tuple[Symbol, ...]] = None
    forward_states: int = 0
    backward_states: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence_antichain(a: NFA, b: NFA) -> EquivalenceResult:
    """Decide L(``a``) = L(``b``) via two antichain inclusion checks."""
    fwd = check_inclusion_antichain(a, b)
    if not fwd.holds:
        return EquivalenceResult(
            equivalent=False,
            in_a_not_b=fwd.counterexample,
            forward_states=fwd.product_states,
        )
    bwd = check_inclusion_antichain(b, a)
    if not bwd.holds:
        return EquivalenceResult(
            equivalent=False,
            in_b_not_a=bwd.counterexample,
            forward_states=fwd.product_states,
            backward_states=bwd.product_states,
        )
    return EquivalenceResult(
        equivalent=True,
        forward_states=fwd.product_states,
        backward_states=bwd.product_states,
    )
