"""Language inclusion of a (possibly ε-)NFA in a deterministic automaton.

This is the workhorse of the paper's safety pipeline (Section 5.4): the TM
transition system — an NFA over statements, with ε-labelled internal steps
for extended commands that return response ⊥ — must be included in the
deterministic TM specification.  Because the specification is
deterministic, inclusion is a linear product reachability check: explore
pairs ``(nfa state, dfa state)``; the inclusion fails iff the NFA can emit
an observable symbol the DFA cannot follow.

Both automata are interpreted as safety automata (all states accepting,
prefix-closed languages), which is the only case the paper needs.

By default the check runs on the interned fast path
(:mod:`repro.automata.kernel`): states are compiled to dense integers
with transition rows frozen in the reference iteration order, so verdicts
and counterexamples are identical to the naive implementation, which is
kept (``interned=False``) as the differential-testing reference.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from .dfa import DFA
from .nfa import EPSILON, NFA

Symbol = Hashable


@dataclass(frozen=True)
class InclusionResult:
    """Outcome of an inclusion check.

    ``holds`` tells whether L(A) ⊆ L(B).  On failure ``counterexample``
    is a shortest word (by number of observable symbols, then exploration
    order) in L(A) \\ L(B).  ``product_states`` reports how many product
    pairs the check *discovered* (every pair ever inserted into the BFS
    parent map, initial pairs included) — both the product checker and
    the antichain checker use this same discovered-pair semantics.  The
    paper's Table 2 "Size" column is the size of the TM transition
    system; we also expose the product size.
    """

    holds: bool
    counterexample: Optional[Tuple[Symbol, ...]] = None
    product_states: int = 0

    def __bool__(self) -> bool:
        return self.holds


def check_inclusion_in_dfa(
    nfa: NFA, dfa: DFA, *, interned: bool = True
) -> InclusionResult:
    """Check L(``nfa``) ⊆ L(``dfa``) for safety automata.

    ε-transitions of ``nfa`` advance the product without moving the DFA.
    BFS keeps counterexamples short (minimal in total steps, hence close
    to minimal in observable symbols).  ``interned=False`` selects the
    naive reference implementation (same verdicts, counterexamples and
    ``product_states``; roughly an order of magnitude slower).
    """
    if nfa.accepting is not None or dfa.accepting is not None:
        raise ValueError(
            "inclusion check assumes safety automata (all states accepting)"
        )
    if interned:
        from .kernel import product_dfa

        holds, counterexample, discovered = product_dfa(nfa, dfa)
        return InclusionResult(
            holds=holds,
            counterexample=counterexample,
            product_states=discovered,
        )
    return _check_inclusion_in_dfa_naive(nfa, dfa)


def _check_inclusion_in_dfa_naive(nfa: NFA, dfa: DFA) -> InclusionResult:
    """The pre-interning reference implementation (kept for testing)."""
    start_pairs = [(q, dfa.initial) for q in sorted(nfa.initial, key=repr)]
    # parent: pair -> (previous pair, emitted symbol or None for ε)
    parent: Dict[Tuple, Optional[Tuple[Tuple, Optional[Symbol]]]] = {
        pair: None for pair in start_pairs
    }
    queue = deque(start_pairs)
    while queue:
        pair = queue.popleft()
        nq, dq = pair
        for symbol, succs in nfa.delta.get(nq, {}).items():
            if symbol is EPSILON:
                for succ in sorted(succs, key=repr):
                    nxt = (succ, dq)
                    if nxt not in parent:
                        parent[nxt] = (pair, None)
                        queue.append(nxt)
                continue
            dsucc = dfa.step(dq, symbol)
            if dsucc is None:
                word = _reconstruct(parent, pair) + (symbol,)
                return InclusionResult(
                    holds=False,
                    counterexample=word,
                    product_states=len(parent),
                )
            for succ in sorted(succs, key=repr):
                nxt = (succ, dsucc)
                if nxt not in parent:
                    parent[nxt] = (pair, symbol)
                    queue.append(nxt)
    return InclusionResult(holds=True, product_states=len(parent))


def _reconstruct(
    parent: Dict[Tuple, Optional[Tuple[Tuple, Optional[Symbol]]]],
    pair: Tuple,
) -> Tuple[Symbol, ...]:
    """Observable symbols along the BFS path to ``pair``."""
    symbols: List[Symbol] = []
    current: Optional[Tuple] = pair
    while current is not None:
        entry = parent[current]
        if entry is None:
            break
        prev, symbol = entry
        if symbol is not None:
            symbols.append(symbol)
        current = prev
    symbols.reverse()
    return tuple(symbols)
