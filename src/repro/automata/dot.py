"""Graphviz (DOT) export for automata and liveness graphs.

The paper's figures draw words and conditions; for a library user the
more useful pictures are the machines themselves: small TM transition
systems, specification fragments, and counterexample lassos.  These
functions emit plain DOT text (no graphviz dependency — render with
``dot -Tsvg`` wherever available).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from .dfa import DFA
from .nfa import EPSILON, NFA


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _default_label(value: Hashable) -> str:
    if value is EPSILON:
        return "ε"
    return str(value)


def nfa_to_dot(
    nfa: NFA,
    *,
    name: str = "nfa",
    state_label: Optional[Callable[[Hashable], str]] = None,
    symbol_label: Optional[Callable[[Hashable], str]] = None,
    max_states: int = 200,
) -> str:
    """Render an NFA as DOT.  Raises if the automaton is too large to be
    a readable picture (override ``max_states`` deliberately)."""
    if nfa.num_states > max_states:
        raise ValueError(
            f"{nfa.num_states} states is too many for a diagram;"
            f" raise max_states to force it"
        )
    state_label = state_label or (lambda q: str(q))
    symbol_label = symbol_label or _default_label
    ids: Dict[Hashable, str] = {}
    for i, q in enumerate(sorted(nfa.states(), key=repr)):
        ids[q] = f"q{i}"
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    lines.append("  __init [shape=point];")
    for q in sorted(nfa.initial, key=repr):
        lines.append(f"  __init -> {ids[q]};")
    for q in sorted(nfa.states(), key=repr):
        shape = "doublecircle" if nfa.is_accepting(q) else "circle"
        lines.append(
            f"  {ids[q]} [shape={shape}, label={_quote(state_label(q))}];"
        )
    for q, out in sorted(nfa.delta.items(), key=lambda kv: repr(kv[0])):
        for symbol, succs in sorted(out.items(), key=lambda kv: repr(kv[0])):
            for succ in sorted(succs, key=repr):
                lines.append(
                    f"  {ids[q]} -> {ids[succ]}"
                    f" [label={_quote(symbol_label(symbol))}];"
                )
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(
    dfa: DFA,
    *,
    name: str = "dfa",
    state_label: Optional[Callable[[Hashable], str]] = None,
    symbol_label: Optional[Callable[[Hashable], str]] = None,
    max_states: int = 200,
) -> str:
    """Render a DFA as DOT (missing transitions = implicit reject)."""
    return nfa_to_dot(
        dfa.to_nfa(),
        name=name,
        state_label=state_label,
        symbol_label=symbol_label,
        max_states=max_states,
    )


def lasso_to_dot(
    stem_labels: Iterable[Hashable],
    cycle_labels: Iterable[Hashable],
    *,
    name: str = "lasso",
) -> str:
    """Render a liveness counterexample ``stem · cycle^ω`` as a chain
    with a back edge — the shape of Table 3's counterexamples."""
    stem = [str(l) for l in stem_labels]
    cycle = [str(l) for l in cycle_labels]
    if not cycle:
        raise ValueError("a lasso needs a nonempty cycle")
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    total = len(stem) + len(cycle)
    for i in range(total):
        shape = "doublecircle" if i >= len(stem) else "circle"
        lines.append(f'  s{i} [shape={shape}, label=""];')
    for i, label in enumerate(stem + cycle):
        j = i + 1
        if j == total:  # close the loop back to the cycle entry
            j = len(stem)
            lines.append(
                f"  s{i} -> s{j} [label={_quote(label)}, style=bold];"
            )
        else:
            style = ", style=bold" if i >= len(stem) else ""
            lines.append(f"  s{i} -> s{j} [label={_quote(label)}{style}];")
    lines.append("}")
    return "\n".join(lines)
