"""Deterministic finite automata with partial transition functions.

A missing transition is a rejection (transition into an implicit sink),
matching the paper's deterministic TM specifications: the word so far is in
the language iff the run has not fallen off the automaton.  As with
:class:`repro.automata.nfa.NFA`, ``accepting=None`` means all states
accept (safety-automaton convention).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Sequence,
    Set,
    Tuple,
)

State = Hashable
Symbol = Hashable


@dataclass
class DFA:
    """A DFA with a partial transition function ``delta[q][a] -> q'``."""

    initial: State
    delta: Dict[State, Dict[Symbol, State]]
    accepting: Optional[FrozenSet[State]] = None
    #: Lazily cached ``len(states())`` — ``num_states`` sits on every
    #: ``check_safety`` call and dominated small cells when recomputed.
    _num_states: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_step(
        cls,
        initial: State,
        step: Callable[[State], Iterable[Tuple[Symbol, State]]],
        *,
        accepting: Optional[Callable[[State], bool]] = None,
        max_states: Optional[int] = None,
    ) -> "DFA":
        """Materialize a DFA by BFS from ``initial`` using ``step``.

        ``step(q)`` must yield at most one successor per symbol; duplicate
        symbols with distinct successors raise ``ValueError``.  As in
        :meth:`NFA.from_step`, ``max_states`` is enforced when a state is
        discovered, so at most ``max_states`` states are ever held.
        """
        if max_states is not None and max_states < 1:
            raise RuntimeError(
                f"state-space exploration exceeded {max_states} states (at 1)"
            )
        delta: Dict[State, Dict[Symbol, State]] = {}
        accept: Set[State] = set()
        queue = deque([initial])
        seen: Set[State] = {initial}
        while queue:
            q = queue.popleft()
            if accepting is not None and accepting(q):
                accept.add(q)
            out = delta.setdefault(q, {})
            for symbol, succ in step(q):
                prior = out.get(symbol)
                if prior is not None and prior != succ:
                    raise ValueError(
                        f"nondeterministic step on {symbol!r} from {q!r}"
                    )
                out[symbol] = succ
                if succ not in seen:
                    if max_states is not None and len(seen) >= max_states:
                        raise RuntimeError(
                            f"state-space exploration exceeded {max_states}"
                            f" states (at {len(seen) + 1})"
                        )
                    seen.add(succ)
                    queue.append(succ)
        return cls(
            initial=initial,
            delta=delta,
            accepting=frozenset(accept) if accepting is not None else None,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def states(self) -> Set[State]:
        result: Set[State] = {self.initial}
        for q, out in self.delta.items():
            result.add(q)
            result.update(out.values())
        return result

    @property
    def num_states(self) -> int:
        if self._num_states is None:
            self._num_states = len(self.states())
        return self._num_states

    def alphabet(self) -> Set[Symbol]:
        result: Set[Symbol] = set()
        for out in self.delta.values():
            result.update(out)
        return result

    def is_accepting(self, q: State) -> bool:
        return self.accepting is None or q in self.accepting

    def step(self, q: State, symbol: Symbol) -> Optional[State]:
        """One transition, or ``None`` if undefined (implicit sink)."""
        return self.delta.get(q, {}).get(symbol)

    def run(self, word: Sequence[Symbol]) -> Optional[State]:
        """The state after reading ``word``, or ``None`` if it falls off."""
        q = self.initial
        for a in word:
            nxt = self.step(q, a)
            if nxt is None:
                return None
            q = nxt
        return q

    def accepts(self, word: Sequence[Symbol]) -> bool:
        q = self.run(word)
        return q is not None and self.is_accepting(q)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def compact(self) -> Tuple["DFA", Dict[State, int]]:
        """Renumber states to dense integers in BFS order."""
        order: Dict[State, int] = {self.initial: 0}
        queue = deque([self.initial])
        while queue:
            q = queue.popleft()
            for a in sorted(self.delta.get(q, {}), key=repr):
                succ = self.delta[q][a]
                if succ not in order:
                    order[succ] = len(order)
                    queue.append(succ)
        for q in sorted(self.states(), key=repr):
            if q not in order:
                order[q] = len(order)
        delta = {
            order[q]: {a: order[s] for a, s in out.items()}
            for q, out in self.delta.items()
        }
        accepting = (
            None
            if self.accepting is None
            else frozenset(order[q] for q in self.accepting)
        )
        return DFA(initial=0, delta=delta, accepting=accepting), order

    def minimize(self) -> "DFA":
        """Moore partition refinement; the implicit sink stays implicit.

        For all-accepting partial DFAs this merges states with identical
        future languages (counting "falling off" as rejection), producing
        the canonical minimal safety automaton for the language.
        """
        states = sorted(self.states(), key=repr)
        symbols = sorted(self.alphabet(), key=repr)
        SINK = object()

        # Initial partition: accepting vs rejecting (sink is its own block).
        block: Dict[State, int] = {}
        for q in states:
            block[q] = 0 if self.is_accepting(q) else 1
        block_of_sink = -1

        changed = True
        while changed:
            changed = False
            signature: Dict[State, Tuple] = {}
            for q in states:
                sig = [block[q]]
                for a in symbols:
                    succ = self.step(q, a)
                    sig.append(block_of_sink if succ is None else block[succ])
                signature[q] = tuple(sig)
            remap: Dict[Tuple, int] = {}
            new_block: Dict[State, int] = {}
            for q in states:
                sig = signature[q]
                if sig not in remap:
                    remap[sig] = len(remap)
                new_block[q] = remap[sig]
            if new_block != block:
                block = new_block
                changed = True

        # Rebuild on representatives.
        rep_of_block: Dict[int, State] = {}
        for q in states:
            rep_of_block.setdefault(block[q], q)
        delta: Dict[State, Dict[Symbol, State]] = {}
        for b, rep in rep_of_block.items():
            out: Dict[Symbol, State] = {}
            for a in symbols:
                succ = self.step(rep, a)
                if succ is not None:
                    out[a] = block[succ]
            delta[b] = out
        accepting = (
            None
            if self.accepting is None
            else frozenset(
                b for b, rep in rep_of_block.items() if self.is_accepting(rep)
            )
        )
        return DFA(initial=block[self.initial], delta=delta, accepting=accepting)

    def to_nfa(self) -> "NFA":
        """View this DFA as an NFA (e.g. for antichain algorithms)."""
        from .nfa import NFA

        delta = {
            q: {a: frozenset([s]) for a, s in out.items()}
            for q, out in self.delta.items()
        }
        return NFA(
            initial=frozenset([self.initial]),
            delta=delta,
            accepting=self.accepting,
        )
