"""Nondeterministic finite automata with ε-transitions.

All automata in this library describe *prefix-closed safety languages*: a
word is in the language iff the automaton has a run on it (every state
accepts).  This matches the paper's notion of a TM specification (Section
2): the language is the set of runs, and missing transitions mean
rejection.  The classes nevertheless support explicit accepting-state sets
for generality (used by tests of the automata layer itself).

States may be any hashable values; :meth:`NFA.compact` renumbers them to
dense integers, which the antichain algorithms rely on for speed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Set,
    Tuple,
)


class _Epsilon:
    """Sentinel for the internal (unobservable) transition label."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"


#: The ε label.  ``EPSILON`` never appears in an automaton's alphabet.
EPSILON = _Epsilon()

State = Hashable
Symbol = Hashable


@dataclass
class NFA:
    """An ε-NFA given by initial states and a transition map.

    ``delta[q][a]`` is the set of ``a``-successors of ``q``; the key
    ``EPSILON`` holds internal successors.  ``accepting=None`` means every
    state accepts (safety-automaton convention).
    """

    initial: FrozenSet[State]
    delta: Dict[State, Dict[Symbol, FrozenSet[State]]]
    accepting: Optional[FrozenSet[State]] = None
    #: Lazily cached ``len(states())`` (see the DFA counterpart).
    _num_states: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_step(
        cls,
        initial: Iterable[State],
        step: Callable[[State], Iterable[Tuple[Symbol, State]]],
        *,
        accepting: Optional[Callable[[State], bool]] = None,
        max_states: Optional[int] = None,
    ) -> "NFA":
        """Materialize an NFA by BFS from ``initial`` using ``step``.

        ``step(q)`` yields ``(symbol, successor)`` pairs; use ``EPSILON``
        as the symbol for internal moves.  ``max_states`` guards against
        runaway exploration of an unexpectedly infinite system: the bound
        is enforced when a state is *discovered*, so at most
        ``max_states`` states are ever held.
        """
        init = frozenset(initial)
        if max_states is not None and len(init) > max_states:
            raise RuntimeError(
                f"state-space exploration exceeded {max_states} states"
                f" (at {len(init)})"
            )
        delta: Dict[State, Dict[Symbol, Set[State]]] = {}
        accept: Set[State] = set()
        queue = deque(init)
        seen: Set[State] = set(init)
        while queue:
            q = queue.popleft()
            if accepting is not None and accepting(q):
                accept.add(q)
            out = delta.setdefault(q, {})
            for symbol, succ in step(q):
                out.setdefault(symbol, set()).add(succ)
                if succ not in seen:
                    if max_states is not None and len(seen) >= max_states:
                        raise RuntimeError(
                            f"state-space exploration exceeded {max_states}"
                            f" states (at {len(seen) + 1})"
                        )
                    seen.add(succ)
                    queue.append(succ)
        frozen: Dict[State, Dict[Symbol, FrozenSet[State]]] = {
            q: {a: frozenset(ss) for a, ss in out.items()}
            for q, out in delta.items()
        }
        return cls(
            initial=init,
            delta=frozen,
            accepting=frozenset(accept) if accepting is not None else None,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def states(self) -> Set[State]:
        """All states (domain of delta plus targets plus initial)."""
        result: Set[State] = set(self.initial)
        for q, out in self.delta.items():
            result.add(q)
            for succs in out.values():
                result.update(succs)
        return result

    @property
    def num_states(self) -> int:
        if self._num_states is None:
            self._num_states = len(self.states())
        return self._num_states

    def alphabet(self) -> Set[Symbol]:
        """All non-ε symbols appearing on transitions."""
        result: Set[Symbol] = set()
        for out in self.delta.values():
            result.update(a for a in out if a is not EPSILON)
        return result

    def is_accepting(self, q: State) -> bool:
        return self.accepting is None or q in self.accepting

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def eclosure(self, states: Iterable[State]) -> FrozenSet[State]:
        """ε-closure of a set of states."""
        result: Set[State] = set(states)
        queue = deque(result)
        while queue:
            q = queue.popleft()
            for succ in self.delta.get(q, {}).get(EPSILON, ()):
                if succ not in result:
                    result.add(succ)
                    queue.append(succ)
        return frozenset(result)

    def post(self, states: Iterable[State], symbol: Symbol) -> FrozenSet[State]:
        """Successor set on ``symbol`` (no ε-closure applied)."""
        result: Set[State] = set()
        for q in states:
            result.update(self.delta.get(q, {}).get(symbol, ()))
        return frozenset(result)

    def macro_step(self, states: Iterable[State], symbol: Symbol) -> FrozenSet[State]:
        """``eclosure(post(eclosure(states), symbol))`` — one macro move."""
        return self.eclosure(self.post(self.eclosure(states), symbol))

    def run_macrostates(self, word: Sequence[Symbol]) -> Iterator[FrozenSet[State]]:
        """The macrostates visited while reading ``word`` (incl. initial)."""
        current = self.eclosure(self.initial)
        yield current
        for a in word:
            current = self.eclosure(self.post(current, a))
            yield current

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Language membership (for safety automata: does a run exist?)."""
        current = self.eclosure(self.initial)
        for a in word:
            current = self.eclosure(self.post(current, a))
            if not current:
                return False
        if self.accepting is None:
            return bool(current)
        return bool(current & self.accepting)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def compact(self) -> Tuple["NFA", Dict[State, int]]:
        """Renumber states to dense integers (BFS order).

        Returns the renumbered automaton and the state→int mapping.
        Integer states make frozenset-heavy algorithms (determinization,
        antichains) measurably faster and keep memory bounded.
        """
        order: Dict[State, int] = {}
        queue = deque(sorted(self.initial, key=repr))
        for q in queue:
            order[q] = len(order)
        while queue:
            q = queue.popleft()
            for a in sorted(self.delta.get(q, {}), key=repr):
                for succ in sorted(self.delta[q][a], key=repr):
                    if succ not in order:
                        order[succ] = len(order)
                        queue.append(succ)
        for q in sorted(self.states(), key=repr):  # unreachable stragglers
            if q not in order:
                order[q] = len(order)
        delta: Dict[State, Dict[Symbol, FrozenSet[State]]] = {}
        for q, out in self.delta.items():
            delta[order[q]] = {
                a: frozenset(order[s] for s in succs) for a, succs in out.items()
            }
        accepting = (
            None
            if self.accepting is None
            else frozenset(order[q] for q in self.accepting)
        )
        return (
            NFA(
                initial=frozenset(order[q] for q in self.initial),
                delta=delta,
                accepting=accepting,
            ),
            order,
        )

    def restrict_to_reachable(self) -> "NFA":
        """Restrict to states *forward*-reachable from the initial set.

        (Formerly misnamed ``reverse_reachable``: the computation is a
        forward BFS from ``initial``, not a reverse/co-reachability
        analysis.  The old name remains as a deprecated alias.)
        """
        reachable: Set[State] = set()
        queue = deque(self.initial)
        reachable.update(self.initial)
        while queue:
            q = queue.popleft()
            for succs in self.delta.get(q, {}).values():
                for s in succs:
                    if s not in reachable:
                        reachable.add(s)
                        queue.append(s)
        delta = {
            q: {a: frozenset(s for s in succs if s in reachable)
                for a, succs in out.items()}
            for q, out in self.delta.items()
            if q in reachable
        }
        accepting = (
            None
            if self.accepting is None
            else frozenset(q for q in self.accepting if q in reachable)
        )
        return NFA(initial=self.initial, delta=delta, accepting=accepting)

    def reverse_reachable(self) -> "NFA":
        """Deprecated alias of :meth:`restrict_to_reachable`."""
        import warnings

        warnings.warn(
            "NFA.reverse_reachable computes forward reachability and has"
            " been renamed to restrict_to_reachable",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.restrict_to_reachable()
