"""Dense-integer compilation of automata for the hot inclusion paths.

The inclusion checkers spend their time in two inner loops: walking the
observable/ε transitions of the left automaton and computing macro
successors (``eclosure(post(·, a))``) of the right automaton.  The seed
implementations re-derive both on every visit — hashing rich state
tuples, sorting successor sets with ``key=repr`` per pop, and chasing
ε-edges with a fresh BFS per macro step.  This module compiles an
:class:`~repro.automata.nfa.NFA` or :class:`~repro.automata.dfa.DFA`
*once* into dense-integer states with all of that precomputed:

* states become ``0..n-1``; per-state transition lists are frozen in the
  exact order the naive checkers iterate them (``delta`` dict order for
  symbols, ``repr``-sorted successors), so kernels built on the interned
  form reproduce the naive BFS — and therefore its counterexamples —
  byte for byte;
* macrostates become frozensets of small ints, so the antichain's ⊆
  tests hash and compare machine integers instead of the rich state
  tuples (the spec macrostates stay tiny — a handful of states — which
  makes index sets the right representation, not wide bitsets);
* per-state ε-closures and per-(state, symbol) *closed* successor sets
  (``eclosure(post({q}, a))``) are memoized on first use, so a macro
  step is one union-reduction over a few precomputed sets.

Compiled forms are cached on the source automaton instance (attribute
``_interned``); automata are treated as immutable after construction,
which every construction path in this library respects.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from .dfa import DFA
from .nfa import EPSILON, NFA

Symbol = Hashable

#: Transition row of an interned NFA state: ``(symbol, successors)`` in
#: naive-checker iteration order; ``symbol is None`` marks an ε-move.
TransRow = Tuple[Tuple[Optional[Symbol], Tuple[int, ...]], ...]

_EMPTY: FrozenSet[int] = frozenset()


class InternedNFA:
    """An ε-NFA over dense integer states with memoized closures.

    Attributes:
        source: the NFA this was compiled from.
        n: number of states (indices ``0..n-1``).
        initial: initial state indices, ``repr``-sorted like the naive
            checkers' start order.
        trans: per-state transition rows (see :data:`TransRow`).
        state_of: index → original state.
        index_of: original state → index.
    """

    __slots__ = (
        "source",
        "n",
        "initial",
        "trans",
        "state_of",
        "index_of",
        "_eclosures",
        "_step_closure",
    )

    def __init__(self, nfa: NFA) -> None:
        self.source = nfa
        index: Dict[Hashable, int] = {}
        order: List[Hashable] = []

        def visit(q: Hashable) -> int:
            idx = index.get(q)
            if idx is None:
                idx = index[q] = len(order)
                order.append(q)
            return idx

        def make_row(out: Dict[Symbol, FrozenSet[Hashable]]) -> TransRow:
            row = []
            for symbol, succs in out.items():
                if len(succs) == 1:  # overwhelmingly common; skip repr
                    (succ,) = succs
                    ordered: Tuple[int, ...] = (visit(succ),)
                else:
                    ordered = tuple(
                        visit(s) for s in sorted(succs, key=repr)
                    )
                row.append((None if symbol is EPSILON else symbol, ordered))
            return tuple(row)

        # BFS in the same deterministic order the naive checkers walk.
        init_sorted = sorted(nfa.initial, key=repr)
        for q in init_sorted:
            visit(q)
        trans: List[TransRow] = []
        frontier = 0
        while frontier < len(order):
            q = order[frontier]
            frontier += 1
            trans.append(make_row(nfa.delta.get(q, {})))
        # Unreachable stragglers: indices first (so rows can refer to
        # them), then rows.  Their order is internal — nothing reachable
        # ever iterates them — so no repr-sorting is needed.
        stragglers = [q for q in nfa.delta if q not in index]
        for q in stragglers:
            visit(q)
        for out in nfa.delta.values():
            for succs in out.values():
                for s in succs:
                    visit(s)
        for q in order[frontier:]:
            trans.append(make_row(nfa.delta.get(q, {})))

        self.n = len(order)
        self.state_of: Tuple[Hashable, ...] = tuple(order)
        self.index_of = index
        self.initial: Tuple[int, ...] = tuple(index[q] for q in init_sorted)
        self.trans: Tuple[TransRow, ...] = tuple(trans)
        # Memoized closure machinery (only paid when this automaton is
        # the right-hand side of an antichain check).
        self._eclosures: List[Optional[FrozenSet[int]]] = [None] * self.n
        self._step_closure: Dict[Symbol, List[Optional[FrozenSet[int]]]] = {}

    # ------------------------------------------------------------------
    # Macro-step machinery (used when this automaton is the right-hand
    # side of an antichain inclusion check)
    # ------------------------------------------------------------------

    def eclosure_set(self, i: int) -> FrozenSet[int]:
        """ε-closure of state ``i`` as a frozenset of indices."""
        cached = self._eclosures[i]
        if cached is None:
            result = {i}
            stack = [i]
            while stack:
                q = stack.pop()
                for symbol, succs in self.trans[q]:
                    if symbol is None:
                        for s in succs:
                            if s not in result:
                                result.add(s)
                                stack.append(s)
            cached = self._eclosures[i] = frozenset(result)
        return cached

    def initial_closure(self) -> FrozenSet[int]:
        """``eclosure(initial)`` as a frozenset of indices."""
        result: FrozenSet[int] = _EMPTY
        for i in self.initial:
            result |= self.eclosure_set(i)
        return result

    def closed_post(self, macro: FrozenSet[int], symbol: Symbol) -> FrozenSet[int]:
        """``eclosure(post(macro, symbol))`` as a frozenset of indices.

        One union-reduction over memoized per-(state, symbol) closed
        successor sets.
        """
        table = self._step_closure.get(symbol)
        if table is None:
            table = self._step_closure[symbol] = [None] * self.n
        result: FrozenSet[int] = _EMPTY
        for i in macro:
            entry = table[i]
            if entry is None:
                acc: FrozenSet[int] = _EMPTY
                for sym, succs in self.trans[i]:
                    if sym == symbol:
                        for s in succs:
                            acc |= self.eclosure_set(s)
                entry = table[i] = acc
            result |= entry
        return result

    def to_states(self, macro: FrozenSet[int]) -> FrozenSet[Hashable]:
        """Decode an index macrostate back to original NFA states."""
        return frozenset(self.state_of[i] for i in macro)


class InternedDFA:
    """A DFA over dense integer states with per-state transition dicts.

    ``delta[i]`` maps symbol → successor index; a missing symbol is the
    implicit rejecting sink, exactly as in :class:`DFA`.
    """

    __slots__ = (
        "source",
        "n",
        "initial",
        "delta",
        "state_of",
        "index_of",
        "_delta_ids",
    )

    def __init__(self, dfa: DFA) -> None:
        self.source = dfa
        index: Dict[Hashable, int] = {dfa.initial: 0}
        order: List[Hashable] = [dfa.initial]
        rows: List[Dict[Symbol, int]] = []
        frontier = 0
        while frontier < len(order):
            q = order[frontier]
            frontier += 1
            row: Dict[Symbol, int] = {}
            for symbol, succ in dfa.delta.get(q, {}).items():
                idx = index.get(succ)
                if idx is None:
                    idx = index[succ] = len(order)
                    order.append(succ)
                row[symbol] = idx
            rows.append(row)
        # Unreachable stragglers: index every remaining state (row
        # sources and successor-only targets) first, then build rows,
        # so ``delta`` covers all ``n`` indices.
        for q in dfa.delta:
            if q not in index:
                index[q] = len(order)
                order.append(q)
        for out in dfa.delta.values():
            for succ in out.values():
                if succ not in index:
                    index[succ] = len(order)
                    order.append(succ)
        for q in order[frontier:]:
            rows.append(
                {
                    symbol: index[succ]
                    for symbol, succ in dfa.delta.get(q, {}).items()
                }
            )
        self.n = len(order)
        self.state_of: Tuple[Hashable, ...] = tuple(order)
        self.index_of = index
        self.initial = 0
        self.delta: Tuple[Dict[Symbol, int], ...] = tuple(rows)
        self._delta_ids: Dict[Tuple[Symbol, ...], Tuple[Tuple[int, ...], ...]] = {}

    def delta_by_symbol_ids(
        self, symbols: Tuple[Symbol, ...]
    ) -> Tuple[Tuple[int, ...], ...]:
        """The delta re-indexed by integer symbol id (memoized).

        ``delta_by_symbol_ids(symbols)[i][sym_id]`` is the successor of
        state ``i`` on ``symbols[sym_id]``, or ``-1`` for the implicit
        rejecting sink — the representation the all-int product kernels
        (:func:`repro.automata.kernel.product_dfa_packed`) index with no
        symbol hashing on the hot path.  Symbols of the DFA that are
        missing from ``symbols`` would be unreachable through an id-only
        checker, so they are rejected loudly rather than dropped.
        """
        cached = self._delta_ids.get(symbols)
        if cached is None:
            sym_id = {s: i for i, s in enumerate(symbols)}
            num = len(symbols)
            table = []
            for row in self.delta:
                ids = [-1] * num
                for symbol, succ in row.items():
                    idx = sym_id.get(symbol)
                    if idx is None:
                        raise ValueError(
                            f"DFA symbol {symbol!r} is not in the id table"
                        )
                    ids[idx] = succ
                table.append(tuple(ids))
            cached = self._delta_ids[symbols] = tuple(table)
        return cached


def intern_nfa(nfa: NFA) -> InternedNFA:
    """Compile (and cache on the instance) the interned form of ``nfa``."""
    cached = getattr(nfa, "_interned", None)
    if cached is None:
        cached = InternedNFA(nfa)
        try:
            nfa._interned = cached  # type: ignore[attr-defined]
        except (AttributeError, TypeError):  # frozen/slotted subclass
            pass
    return cached


def intern_dfa(dfa: DFA) -> InternedDFA:
    """Compile (and cache on the instance) the interned form of ``dfa``."""
    cached = getattr(dfa, "_interned", None)
    if cached is None:
        cached = InternedDFA(dfa)
        try:
            dfa._interned = cached  # type: ignore[attr-defined]
        except (AttributeError, TypeError):
            pass
    return cached
