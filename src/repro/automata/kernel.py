"""Shared exploration kernel for the language-inclusion checkers.

Both inclusion checkers — product-vs-DFA (:mod:`repro.automata.inclusion`)
and antichain-vs-NFA (:mod:`repro.automata.antichain`) — are the same
BFS over product pairs; they differ only in the right-hand component (a
single DFA state vs. a ⊆-minimal index macrostate).  This module holds
that BFS once, over the interned representation of
:mod:`repro.automata.interned`, so both checkers share:

* **pair semantics** — ``product_states`` counts *discovered* pairs
  (every pair ever inserted into the parent map, initial pairs
  included), not popped pairs;
* **counterexample reconstruction** — the parent map records, per pair,
  its BFS predecessor and the observable symbol emitted (``None`` for
  ε), and failures replay that chain;
* **iteration order** — transition rows are frozen at interning time in
  the exact order the pre-interning implementations iterated, so
  verdicts *and* counterexamples are identical to the naive checkers.

A third entry point, :func:`lazy_product_dfa`, runs the same product
BFS against a *step function* instead of a materialized left automaton:
successor states stream directly into the product and each state's
transition row is computed (and ordered) exactly once, on first visit.
This is what lets the safety pipeline skip building the full TM NFA.

Finally, :func:`product_dfa_direct` / :func:`product_oracle_direct` run
the same BFS over *pre-encoded* left states: the compiled TM engine
(:mod:`repro.tm.compiled`) hands over packed-int states with rows
already symbol-grouped and ordered, so pairs encode without any per-run
re-interning while BFS order (and hence verdicts and counterexamples)
stays byte-identical to the naive streamed path.

The all-int endgame is :func:`product_oracle_packed` and its DFA-sided
twin :func:`product_dfa_packed`: integer statement ids on both sides,
single-machine-word pair keys, untraced traversal with a traced rerun on
violation — and, given a :class:`PairSharder`, the product BFS *itself*
runs level-synchronized across a process pool, hash-partitioned by
``pair % jobs``, with a determinism argument (:func:`_sharded_pair_bfs`)
that keeps every observable output byte-identical to serial.

On top of the packed products sits the **dense kernel**
(:class:`DenseCSR`): the first serial untraced pass additionally interns
product pairs into dense ids ``0..P-1`` and records every successor list
into flat CSR arrays (``array('q')`` offsets/targets).  Every later run
of the same product — a repeated check, a benchmark round, a process
warm-started from the on-disk cache — then never touches the
dict-of-dicts row memos at all: the BFS becomes batched "gather
successors → mask out seen → extend frontier" sweeps over the CSR with a
bitset seen-set (a vectorizing numpy fast path is auto-detected; the
pure-stdlib bytearray path is always present).  Violating products
keep their partial CSR with the violating pair flagged, so warm reruns
short-circuit straight to the serial traced twin — verdicts,
counterexamples and every reported count stay byte-identical to the
set-based path, which remains available as the differential reference
(``check_safety(dense_kernel=False)`` / ``--no-dense-kernel``).
"""

from __future__ import annotations

from array import array
from collections import deque
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..cache import (
    is_int_vector,
    load_payload,
    narrow_int_vector,
    save_payload,
)
from .dfa import DFA
from .interned import intern_dfa, intern_nfa
from .nfa import EPSILON, NFA

try:  # optional fast path; the stdlib path below is always present
    import numpy as _np
except Exception:  # pragma: no cover - numpy genuinely absent
    _np = None


def _np_vec(np, vec):
    """Zero-copy numpy view of an int vector — ``array('i'/'q')`` or a
    memoryview cast served by the mmap cache backend — with the dtype
    derived from the vector's own item width (the typed-width policy:
    the payload carries the width, consumers adapt)."""
    return np.frombuffer(
        vec, dtype=np.int32 if vec.itemsize == 4 else np.int64
    )

Symbol = Hashable

# Parent map over pair keys (encoded ints or tuples): pair ->
# (predecessor pair, symbol or None for an ε-move); initial pairs map
# to None.
ParentMap = Dict[Hashable, Optional[Tuple[Hashable, Optional[Symbol]]]]


def reconstruct(parent: ParentMap, pair: Hashable) -> Tuple[Symbol, ...]:
    """Observable symbols along the BFS path to ``pair``."""
    symbols: List[Symbol] = []
    current: Optional[Hashable] = pair
    while current is not None:
        entry = parent[current]
        if entry is None:
            break
        prev, symbol = entry
        if symbol is not None:
            symbols.append(symbol)
        current = prev
    symbols.reverse()
    return tuple(symbols)


def product_dfa(a: NFA, dfa: DFA):
    """Product reachability of ``a`` against a deterministic ``dfa``.

    Returns ``(holds, counterexample, discovered_pairs)``.
    """
    ia = intern_nfa(a)
    ib = intern_dfa(dfa)
    trans = ia.trans
    b_delta = ib.delta
    nb = ib.n
    # Pairs are encoded as a_state * nb + dfa_state: one small-int key.
    start = [q * nb + ib.initial for q in ia.initial]
    parent: ParentMap = {pair: None for pair in start}
    queue = deque(start)
    pop = queue.popleft
    push = queue.append
    while queue:
        pair = pop()
        nq, dq = divmod(pair, nb)
        brow = b_delta[dq]
        for symbol, succs in trans[nq]:
            if symbol is None:  # ε: advance the NFA component only
                for succ in succs:
                    nxt = succ * nb + dq
                    if nxt not in parent:
                        parent[nxt] = (pair, None)
                        push(nxt)
                continue
            dsucc = brow.get(symbol)
            if dsucc is None:
                word = reconstruct(parent, pair) + (symbol,)
                return False, word, len(parent)
            for succ in succs:
                nxt = succ * nb + dsucc
                if nxt not in parent:
                    parent[nxt] = (pair, symbol)
                    push(nxt)
    return True, None, len(parent)


class _IndexAntichain:
    """Per-left-state antichains of ⊆-minimal index macrostates.

    Macrostates are frozensets of dense ints — they stay tiny for the
    paper's specifications, so subset tests cost a handful of integer
    hashes (and frozensets cache their own hash for the parent map).
    """

    __slots__ = ("_by_state",)

    def __init__(self, n: int) -> None:
        self._by_state: List[List[frozenset]] = [[] for _ in range(n)]

    def insert(self, state: int, macro: frozenset) -> bool:
        """Insert unless subsumed; drop kept supersets.  True if inserted."""
        kept = self._by_state[state]
        for old in kept:
            if old <= macro:
                return False
        kept[:] = [old for old in kept if not macro <= old]
        kept.append(macro)
        return True


def antichain_inclusion(a: NFA, b: NFA):
    """Forward antichain inclusion of ``a`` in ``b`` (both safety NFAs).

    Returns ``(holds, counterexample, discovered_pairs)``.
    """
    ia = intern_nfa(a)
    ib = intern_nfa(b)
    trans = ia.trans
    closed_post = ib.closed_post
    b_init = ib.initial_closure()
    antichain = _IndexAntichain(ia.n)
    parent: Dict[Tuple[int, frozenset], Optional[Tuple]] = {}
    queue: deque = deque()
    for q in ia.initial:
        if antichain.insert(q, b_init):
            pair = (q, b_init)
            parent[pair] = None
            queue.append(pair)
    pop = queue.popleft
    push = queue.append
    while queue:
        pair = pop()
        aq, bmacro = pair
        for symbol, succs in trans[aq]:
            if symbol is None:  # ε: advance the A component only
                for succ in succs:
                    if antichain.insert(succ, bmacro):
                        nxt = (succ, bmacro)
                        parent[nxt] = (pair, None)
                        push(nxt)
                continue
            bsucc = closed_post(bmacro, symbol)
            if not bsucc:
                word = reconstruct(parent, pair) + (symbol,)
                return False, word, len(parent)
            for succ in succs:
                if antichain.insert(succ, bsucc):
                    nxt = (succ, bsucc)
                    parent[nxt] = (pair, symbol)
                    push(nxt)
    return True, None, len(parent)


StepFn = Callable[[Hashable], Iterable[Tuple[Symbol, Hashable]]]


class _LazyLeft:
    """Incremental interning of a streamed ε-NFA (the product's left side).

    States are indexed on first sight; each state's transition row is
    computed once, on first expansion, in the exact order ``from_step``
    plus the product checker would have used (first-occurrence symbol
    order, ``repr``-sorted successors).  ``max_states`` bounds the
    number of distinct states interned, mirroring ``from_step``'s guard.
    """

    __slots__ = ("step", "max_states", "index", "states_of", "rows")

    def __init__(
        self, step: StepFn, max_states: Optional[int] = None
    ) -> None:
        self.step = step
        self.max_states = max_states
        self.index: Dict[Hashable, int] = {}
        self.states_of: List[Hashable] = []
        self.rows: List[Optional[Tuple]] = []

    def visit(self, q: Hashable) -> int:
        idx = self.index.get(q)
        if idx is None:
            if (
                self.max_states is not None
                and len(self.index) >= self.max_states
            ):
                raise RuntimeError(
                    f"state-space exploration exceeded {self.max_states}"
                    f" states (at {len(self.index) + 1})"
                )
            idx = self.index[q] = len(self.rows)
            self.states_of.append(q)
            self.rows.append(None)
        return idx

    def row_of(self, idx: int) -> Tuple:
        row = self.rows[idx]
        if row is None:
            grouped: Dict[Optional[Symbol], List[Hashable]] = {}
            for symbol, succ in self.step(self.states_of[idx]):
                key = None if symbol is EPSILON else symbol
                grouped.setdefault(key, []).append(succ)
            visit = self.visit
            row = tuple(
                (
                    symbol,
                    tuple(visit(s) for s in sorted(set(succs), key=repr)),
                )
                for symbol, succs in grouped.items()
            )
            self.rows[idx] = row
        return row


RowFn = Callable[[int], Tuple]


def _discover_row(
    row: Tuple,
    discovered: set,
    max_states: Optional[int],
) -> None:
    """Record a freshly expanded row's successors as discovered states.

    Mirrors :class:`_LazyLeft`'s interning moment exactly: the naive
    path interns every successor when a state's row is first built, so
    the discovered-state count (and the ``max_states`` guard, message
    included) stays byte-identical on the direct packed path.
    """
    if max_states is None:
        for _symbol, succs in row:
            discovered.update(succs)
        return
    for _symbol, succs in row:
        for succ in succs:
            if succ not in discovered:
                if len(discovered) >= max_states:
                    raise RuntimeError(
                        f"state-space exploration exceeded {max_states}"
                        f" states (at {len(discovered) + 1})"
                    )
                discovered.add(succ)


#: Level hook for sharded runs: called with the left states of each BFS
#: level before the level is processed, so an engine can batch-compute
#: (e.g. across a process pool) the rows the level will demand.
#: Prefetching is an optimization only — rows are memoized either way —
#: so a ``None`` prefetch is byte-identical to any other.
PrefetchFn = Callable[[List[int]], None]


class PairSharder:
    """Backend protocol of the *sharded product BFS* (duck-typed).

    Where :data:`PrefetchFn` only batch-computes left rows, a pair
    sharder executes whole product levels on a worker pool: the parent
    partitions each pair frontier by ``pair % jobs``, workers expand
    their shard (left row + right step, both against worker-local
    engines rebuilt from the algorithm seed) and return the successor
    pairs, and the parent merges them into the seen-set between level
    barriers.  Pairs cross process boundaries in a *stable* encoding
    ``right_key << span_bits | stable_node`` — the right component is
    the canonical packed spec state (process-independent by
    construction), the left the codec-bits node encoding of
    :meth:`repro.tm.compiled.CompiledTM.stable_of_node`.

    The concrete implementation lives in :mod:`repro.tm.compiled`
    (``Sharder.pair_sharder``); the kernel only needs:

    * ``jobs`` — the shard count;
    * ``stable_pairs(packed_nodes)`` — initial pairs (right key 0) in
      stable encoding, in input order;
    * ``expand_pairs(shards)`` — one ``(violated, successor_pairs)``
      result per shard, aligned with the input order; the successor
      container is any int sequence (the concrete backend ships flat
      ``array('q')`` slices where the pairs fit a machine word).
    """

    jobs: int

    def stable_pairs(self, packed_nodes: List[int]) -> List[int]:
        raise NotImplementedError

    def expand_pairs(
        self, shards: List[List[int]]
    ) -> List[Tuple[bool, Sequence[int]]]:
        raise NotImplementedError


def _sharded_pair_bfs(
    sharder: PairSharder, init_stable: List[int], span_bits: int
):
    """Level-synchronized, hash-partitioned product BFS over stable pairs.

    Returns ``(violated, pairs, states_seen, spec_states_seen)``.  The
    determinism argument: a BFS level is a pure function of the previous
    level and the seen-set (``level_{i+1} = succ(level_i) \\ seen``), so
    the level *sets* — and with them the final seen-set — are invariant
    under how a level is partitioned across shards and in which order a
    shard's successors are merged back.  Every count reported by the
    holding case is a function of the seen-set alone:

    * ``pairs`` is its size;
    * ``states_seen`` is the number of distinct left components — in the
      holding case every successor of every expanded row becomes a pair,
      so this equals the serial ``discovered`` set (initial states plus
      all row successors of expanded states);
    * ``spec_states_seen`` is the number of distinct right components,
      exactly the serial parent-map recovery.

    Violations carry no counts: the caller reruns the serial *traced*
    twin, which is byte-identical to the serial path by construction
    (it *is* the serial path).  ``max_states`` guards are likewise left
    to the serial path — callers must not hand a sharder over when a
    bound is set, so the guard's message stays byte-identical.

    The two component counts are tracked *incrementally* as pairs enter
    the seen-set (a full-set comprehension at the end would re-walk —
    and briefly duplicate — the whole seen-set, which at millions of
    pairs is real time and real memory).  Workers ship their successor
    slices back as flat ``array('q')`` chunks where the stable pairs fit
    a machine word (see :func:`repro.tm.compiled._worker_expand_pairs`);
    the merge below is agnostic to the container.
    """
    jobs = sharder.jobs
    span_mask = (1 << span_bits) - 1
    frontier = list(dict.fromkeys(init_stable))
    seen = set(frontier)
    add = seen.add
    left_seen = {p & span_mask for p in frontier}
    right_seen = {p >> span_bits for p in frontier}
    left_add = left_seen.add
    right_add = right_seen.add
    while frontier:
        shards: List[List[int]] = [[] for _ in range(jobs)]
        for p in frontier:
            shards[p % jobs].append(p)
        nxt: List[int] = []
        push = nxt.append
        # Shard results are merged in shard-index order: deterministic,
        # and — per the argument above — any order yields the same sets.
        for violated, succs in sharder.expand_pairs(shards):
            if violated:
                return True, 0, 0, 0
            for s in succs:
                if s not in seen:
                    add(s)
                    push(s)
                    left_add(s & span_mask)
                    right_add(s >> span_bits)
        frontier = nxt
    return False, len(seen), len(left_seen), len(right_seen)


def _discover_row_ids(
    row: Tuple,
    discovered: set,
    max_states: Optional[int],
) -> None:
    """:func:`_discover_row` for all-int id rows, whose singleton
    successor groups are bare ints rather than 1-tuples (see
    ``CompiledTM.safety_row_ids``).  Semantics — counts, guard, message —
    are identical."""
    if max_states is None:
        for _symbol, succs in row:
            if type(succs) is int:
                discovered.add(succs)
            else:
                discovered.update(succs)
        return
    for _symbol, succs in row:
        for succ in (succs,) if type(succs) is int else succs:
            if succ not in discovered:
                if len(discovered) >= max_states:
                    raise RuntimeError(
                        f"state-space exploration exceeded {max_states}"
                        f" states (at {len(discovered) + 1})"
                    )
                discovered.add(succ)


# ----------------------------------------------------------------------
# The dense kernel: CSR successor tables + bitset BFS over dense pair ids
# ----------------------------------------------------------------------

#: Edge budget of a dense CSR recording.  Beyond this many successor
#: entries the recorder frees its arrays and disables itself for the
#: engine's lifetime — the build degrades to the plain set-based
#: semantics (results are byte-identical either way; only the array
#: fast path for *later* runs is lost).  48M ``int32`` entries ≈ 192 MB,
#: far above every paper instance (DSTM (2,3) records ~30M).  The cap
#: also guarantees dense ids and offsets always fit int32 (the
#: typed-width policy's invariant for the recorded vectors).
DENSE_MAX_EDGES = 48_000_000


class DenseCSR:
    """Array-backed successor table of one product-reachability problem.

    Product pairs are interned into *dense ids* ``0..P-1`` in BFS
    discovery order (initial pairs first); the adjacency is stored in
    CSR form — ``targets[offsets[i]:offsets[i+1]]`` are the dense ids of
    pair ``i``'s successors, in exactly the order the packed product
    functions emit them.  Two parallel arrays keep the pair components
    for count recovery: ``node_keys[i]`` is the left (TM) component and
    ``spec_ids[i]`` the right (spec) component of pair ``i`` — both used
    only for *distinct* counts and the initial-pair match, so any
    per-run bijective relabeling of either side is admissible.

    A CSR is built as a by-product of the first serial untraced pass
    (:func:`_product_oracle_packed_dense` / :func:`_product_dfa_packed_dense`)
    and replayed by :meth:`run`: a level-synchronous BFS over the arrays
    with a bitset seen-set — "gather successors → mask out seen → extend
    frontier".  With numpy the sweep is vectorized (fancy-indexed
    gather, boolean-mask seen filtering, dedup through a level-local
    marker bitset extracted with ``flatnonzero`` — same sorted frontier
    as ``np.unique`` without its general sort); the stdlib fallback
    fuses gather and mask into one loop over a ``bytearray`` bitset.
    Holding products are *complete* (every
    reachable pair recorded, no flags): :meth:`run` re-derives the exact
    set-path counts.  Violating products keep a *partial* CSR whose
    violating pair is flagged; :meth:`run` then only answers "violated"
    and the caller reruns the serial traced twin, so counterexamples and
    violation counts are byte-identical by construction.

    ``node_keys`` starts in the builder's engine-local packed encoding
    and is re-digited to the process-stable codec-bits encoding
    (:meth:`repro.tm.compiled.CompiledTM.stable_of_node`) on first
    :meth:`save_warm` — both encodings biject with TM nodes, so the
    distinct counts are unchanged.  Persisted payloads (one per
    ``(algorithm, n, k, property, side)``; see
    :meth:`repro.tm.compiled.CompiledTM.dense_csr`) let a warm process
    run the whole product BFS without touching the row memos at all.

    The vectors follow the typed-width policy of :mod:`repro.cache`:
    recorded as int32 wherever the values provably fit (dense ids and
    offsets always do under :data:`DENSE_MAX_EDGES`; left keys when the
    node span is narrower than 32 bits), int64 otherwise, and a loaded
    table may hold either width — as ``array`` objects from the pickle
    backends or zero-copy ``memoryview`` casts from the mmap backend
    (the BFS indexes them identically; numpy wraps them with
    ``np.frombuffer`` at the loaded width).
    """

    __slots__ = (
        "span_bits",
        "stable_of_node",
        "cache_key",
        "node_keys",
        "spec_ids",
        "offsets",
        "targets",
        "flags",
        "num_init",
        "complete",
        "stable_keys",
        "disabled",
        "_dirty",
    )

    def __init__(
        self,
        span_bits: int,
        stable_of_node: Callable[[int], int],
        cache_key: Optional[tuple] = None,
    ) -> None:
        self.span_bits = span_bits
        self.stable_of_node = stable_of_node
        self.cache_key = cache_key
        self.reset()

    def reset(self) -> None:
        """Drop any recorded table (used before a rebuild and on the
        edge-budget bailout)."""
        self.node_keys: Optional[array] = None
        self.spec_ids: Optional[array] = None
        self.offsets: Optional[array] = None
        self.targets: Optional[array] = None
        self.flags: Tuple[int, ...] = ()
        self.num_init = 0
        self.complete = False
        #: Whether ``node_keys`` is in the codec-bits stable encoding
        #: (after a save/load) or the builder's engine-local packing.
        self.stable_keys = False
        self.disabled = False
        self._dirty = False

    @property
    def built(self) -> bool:
        return self.offsets is not None and not self.disabled

    def stats(self) -> Dict[str, int]:
        """Table sizes (for benchmarks and tests)."""
        if not self.built:
            return {"pairs": 0, "edges": 0, "complete": False}
        return {
            "pairs": len(self.node_keys),
            "edges": len(self.targets),
            "complete": self.complete,
        }

    def matches_init(self, init: Sequence[int]) -> bool:
        """Whether this table was recorded from exactly these initial
        packed nodes (right component 0, the canonical initial spec
        state, is enforced at record time)."""
        if not self.built or self.num_init != len(init):
            return False
        keys = self.node_keys
        if self.stable_keys:
            stable = self.stable_of_node
            return all(keys[i] == stable(p) for i, p in enumerate(init))
        return all(keys[i] == p for i, p in enumerate(init))

    # ------------------------------------------------------------------
    # The array-only BFS
    # ------------------------------------------------------------------

    def run(self) -> Tuple[bool, int, int, int]:
        """Replay the product BFS over the recorded arrays.

        Returns ``(violated, pairs, states_seen, spec_states_seen)``
        with the holding-case counts equal to the set-based path's (the
        :func:`_sharded_pair_bfs` seen-set argument applies verbatim:
        all three are functions of the reachable pair set alone).  A
        violated result carries no counts — the caller reruns the serial
        traced twin.
        """
        if _np is not None:
            return self._run_numpy(_np)
        return self._run_python()

    def _run_python(self) -> Tuple[bool, int, int, int]:
        offsets = self.offsets
        targets = self.targets
        npairs = len(self.node_keys)
        seen = bytearray(npairs)  # the bitset seen-set (one byte per id)
        frontier = list(range(self.num_init))
        flagged = None
        if self.flags:
            flagged = bytearray(npairs)
            for f in self.flags:
                flagged[f] = 1
            if any(flagged[i] for i in frontier):
                return True, 0, 0, 0
        for i in frontier:
            seen[i] = 1
        pairs = len(frontier)
        while frontier:
            nxt: List[int] = []
            append = nxt.append
            # Gather + mask fused: slice the CSR row, drop already-seen
            # ids via the bitset (which also dedups within the batch).
            for p in frontier:
                for s in targets[offsets[p] : offsets[p + 1]]:
                    if not seen[s]:
                        seen[s] = 1
                        append(s)
            if flagged is not None and any(flagged[s] for s in nxt):
                return True, 0, 0, 0
            pairs += len(nxt)
            frontier = nxt
        states_seen, spec_seen = self._distinct_counts_python(seen)
        return False, pairs, states_seen, spec_seen

    def _distinct_counts_python(
        self, seen: bytearray
    ) -> Tuple[int, int]:
        if self.complete:  # seen covers every recorded pair
            return len(set(self.node_keys)), len(set(self.spec_ids))
        node_keys = self.node_keys  # pragma: no cover - partial CSRs
        spec_ids = self.spec_ids  # always flag a reachable violation
        lefts = {node_keys[i] for i, b in enumerate(seen) if b}
        rights = {spec_ids[i] for i, b in enumerate(seen) if b}
        return len(lefts), len(rights)

    def _run_numpy(self, np) -> Tuple[bool, int, int, int]:
        offsets = _np_vec(np, self.offsets)
        targets = _np_vec(np, self.targets)
        npairs = len(self.node_keys)
        seen = np.zeros(npairs, dtype=bool)
        frontier = np.arange(self.num_init, dtype=np.int64)
        flagged = None
        if self.flags:
            flagged = np.zeros(npairs, dtype=bool)
            flagged[list(self.flags)] = True
            if flagged[frontier].any():
                return True, 0, 0, 0
        seen[frontier] = True
        pairs = int(frontier.size)
        arange = np.arange
        repeat = np.repeat
        marker = np.zeros(npairs, dtype=bool)  # level-local dedup bitset
        while frontier.size:
            # Gather: one fancy-indexed pull of every successor of the
            # level (the arange/repeat pattern expands the CSR slices).
            starts = offsets[frontier]
            counts = offsets[frontier + 1] - starts
            total = int(counts.sum())
            if not total:
                break
            shift = np.cumsum(counts) - counts
            succ = targets[
                arange(total, dtype=np.int64) + repeat(starts - shift, counts)
            ]
            cand = succ[~seen[succ]]  # mask out seen (dups remain)
            if not cand.size:
                break
            # Dedup through the bitset: mark candidates, extract the set
            # bits in sorted id order, clear for the next level.  (A
            # sort-based ``np.unique`` gives the identical frontier but
            # pays an O(E log E) sort where the bitset pays O(P).)
            marker[cand] = True
            fresh = np.flatnonzero(marker)
            marker[fresh] = False
            if flagged is not None and flagged[fresh].any():
                return True, 0, 0, 0
            seen[fresh] = True
            pairs += int(fresh.size)
            frontier = fresh
        if self.complete:
            states_seen = int(np.unique(_np_vec(np, self.node_keys)).size)
            spec_seen = int(np.unique(_np_vec(np, self.spec_ids)).size)
        else:  # pragma: no cover - partial CSRs always flag a violation
            states_seen, spec_seen = self._distinct_counts_python(
                bytearray(seen.tobytes())
            )
        return False, pairs, states_seen, spec_seen

    # ------------------------------------------------------------------
    # Warm-start persistence
    # ------------------------------------------------------------------

    def save_warm(self, cache_dir: str) -> bool:
        """Spill the table to ``cache_dir`` (no-op unless newly recorded
        since the last save/load).  ``node_keys`` is re-digited to the
        stable encoding first, in place — an idempotent, count-preserving
        relabeling."""
        if self.cache_key is None or not self._dirty or not self.built:
            return False
        if not self.stable_keys:
            stable = self.stable_of_node
            self.node_keys = narrow_int_vector(
                stable(p) for p in self.node_keys
            )
            self.stable_keys = True
        ok = save_payload(
            cache_dir,
            self.cache_key,
            {
                "span_bits": self.span_bits,
                "num_init": self.num_init,
                "complete": self.complete,
                "flags": list(self.flags),
                "node_keys": self.node_keys,
                "spec_ids": self.spec_ids,
                "offsets": self.offsets,
                "targets": self.targets,
            },
        )
        if ok:
            self._dirty = False
        return ok

    def load_warm(self, cache_dir: str) -> bool:
        """Restore a table from ``cache_dir`` into a *fresh* (nothing
        recorded) CSR.  Malformed payloads are rejected wholesale;
        returns True iff the table was restored.

        Validation is structural — array types, a monotone offset
        vector, every target/flag id in range, initial pairs on spec
        state 0, left keys within the node span (vectorized under
        numpy).  Keys are *not* re-decoded against the view codec: an
        in-range forged key can only perturb the two distinct-component
        counts, the same trust already extended to ``spec_ids``.
        """
        if self.cache_key is None or self.built or self._dirty:
            return False
        data = load_payload(cache_dir, self.cache_key)
        if not isinstance(data, dict):
            return False
        node_keys = data.get("node_keys")
        spec_ids = data.get("spec_ids")
        offsets = data.get("offsets")
        targets = data.get("targets")
        flags = data.get("flags")
        num_init = data.get("num_init")
        complete = data.get("complete")
        if (
            data.get("span_bits") != self.span_bits
            or not isinstance(num_init, int)
            or not isinstance(complete, bool)
            or not isinstance(flags, list)
            or not all(
                is_int_vector(a)
                for a in (node_keys, spec_ids, offsets, targets)
            )
        ):
            return False
        npairs = len(node_keys)
        if (
            not npairs
            or len(spec_ids) != npairs
            or len(offsets) != npairs + 1
            or not 0 < num_init <= npairs
            or (complete and flags)
            or (not complete and not flags)
            or offsets[0] != 0
            or offsets[-1] != len(targets)
        ):
            return False
        if not all(
            isinstance(f, int) and 0 <= f < npairs for f in flags
        ):
            return False
        if any(spec_ids[i] for i in range(num_init)):
            return False
        span = 1 << self.span_bits
        if _np is not None:
            o = _np_vec(_np, offsets)
            t = _np_vec(_np, targets)
            k = _np_vec(_np, node_keys)
            if (_np.diff(o) < 0).any():
                return False
            if t.size and not (
                (t >= 0).all() and (t < npairs).all()
            ):
                return False
            if not ((k >= 0).all() and (k < span).all()):
                return False
        else:
            if any(
                offsets[i] > offsets[i + 1] for i in range(npairs)
            ):
                return False
            if not all(0 <= s < npairs for s in targets):
                return False
            if not all(0 <= key < span for key in node_keys):
                return False
        self.node_keys = node_keys
        self.spec_ids = spec_ids
        self.offsets = offsets
        self.targets = targets
        self.flags = tuple(flags)
        self.num_init = num_init
        self.complete = complete
        self.stable_keys = True
        self._dirty = False
        return True


class DenseAdjacency(NamedTuple):
    """CSR adjacency of a labeled transition system over dense node ids.

    The liveness side of the dense layer: nodes are interned in BFS
    discovery order (``nodes[i]`` is the packed node of dense id ``i``),
    ``targets[offsets[i]:offsets[i+1]]`` are the dense ids of node
    ``i``'s successors in exact row order, and ``labels`` holds — per
    edge, aligned with ``targets`` — an index into ``label_table``
    (``(thread_index, ext, resp)`` triples, interned).  Built by
    :meth:`repro.tm.compiled.CompiledTM.dense_node_adjacency` from the
    memoized node rows; consumed by
    :func:`repro.tm.explore.build_liveness_graph`.
    """

    nodes: List[int]
    offsets: array
    targets: array
    labels: array
    label_table: List[Tuple]


def product_dfa_direct(
    row_fn: RowFn,
    initial: Iterable[int],
    dfa: DFA,
    *,
    max_states: Optional[int] = None,
    prefetch: Optional[PrefetchFn] = None,
):
    """Product reachability over *pre-encoded* left states.

    The left side is given by ``row_fn(packed_state)`` returning
    ``((symbol_or_None, (packed_succ, ...)), ...)`` with symbols in
    first-occurrence order and successors deduplicated and ordered
    exactly as :class:`_LazyLeft` would have produced them — the
    compiled TM engine (:mod:`repro.tm.compiled`) guarantees this.
    Because left states are already small ints, product pairs encode as
    ``packed_state * |dfa| + dfa_state`` with no per-run re-interning,
    and rows memoized inside ``row_fn`` are shared across runs.

    Returns ``(holds, counterexample, discovered_pairs, states_seen)``
    with semantics identical to :func:`lazy_product_dfa` — except that
    ``initial`` must already be in the naive path's order (packed states
    cannot be repr-sorted to match decoded-node order here; duplicates
    are dropped, first occurrence wins).

    NOTE: the BFS bodies of the two ``*_direct`` and the two
    ``_run_product_*`` functions are intentionally parallel; any change
    to violation handling, ε-moves or the ``max_states`` message must be
    mirrored across all four (the differential tests in
    ``tests/checking/test_safety_paths.py`` and
    ``tests/tm/test_compiled.py`` pin their byte-identity).
    """
    ib = intern_dfa(dfa)
    b_delta = ib.delta
    nb = ib.n

    init = list(dict.fromkeys(initial))
    if max_states is not None and len(init) > max_states:
        raise RuntimeError(
            f"state-space exploration exceeded {max_states}"
            f" states (at {max_states + 1})"
        )
    discovered = set(init)
    expanded = set()
    start = [q * nb + ib.initial for q in init]
    parent: ParentMap = {pair: None for pair in start}
    queue = deque(start)
    pop = queue.popleft
    push = queue.append
    # A FIFO BFS holds exactly one depth level whenever the previous
    # level has fully drained, so draining ``len(queue)`` pairs per
    # outer iteration visits pairs in the identical order while exposing
    # each level to ``prefetch`` first.
    while queue:
        if prefetch is not None:
            prefetch([p // nb for p in queue])
        for _ in range(len(queue)):
            pair = pop()
            nq, dq = divmod(pair, nb)
            row = row_fn(nq)
            if nq not in expanded:
                expanded.add(nq)
                _discover_row(row, discovered, max_states)
            brow = b_delta[dq]
            for symbol, succs in row:
                if symbol is None:
                    for succ in succs:
                        nxt = succ * nb + dq
                        if nxt not in parent:
                            parent[nxt] = (pair, None)
                            push(nxt)
                    continue
                dsucc = brow.get(symbol)
                if dsucc is None:
                    word = reconstruct(parent, pair) + (symbol,)
                    return False, word, len(parent), len(discovered)
                for succ in succs:
                    nxt = succ * nb + dsucc
                    if nxt not in parent:
                        parent[nxt] = (pair, symbol)
                        push(nxt)
    return True, None, len(parent), len(discovered)


def product_oracle_direct(
    row_fn: RowFn,
    initial: Iterable[int],
    spec_initial: Hashable,
    spec_step: "DetStepFn",
    *,
    max_states: Optional[int] = None,
    prefetch: Optional[PrefetchFn] = None,
):
    """:func:`product_dfa_direct` against a deterministic oracle.

    The right side is streamed through ``spec_step`` exactly as in
    :func:`lazy_product_oracle`; pairs are ``(packed_state, spec_index)``
    tuples because the spec side grows on demand.

    Returns ``(holds, counterexample, discovered_pairs, states_seen,
    spec_states_seen)``.  ``initial`` ordering/dedup semantics match
    :func:`product_dfa_direct`.
    """
    init = list(dict.fromkeys(initial))
    if max_states is not None and len(init) > max_states:
        raise RuntimeError(
            f"state-space exploration exceeded {max_states}"
            f" states (at {max_states + 1})"
        )
    discovered = set(init)
    expanded = set()

    b_index: Dict[Hashable, int] = {spec_initial: 0}
    b_states: List[Hashable] = [spec_initial]
    b_rows: List[Dict[Symbol, object]] = [{}]

    start = [(q, 0) for q in init]
    parent: Dict[Tuple[int, int], Optional[Tuple]] = {
        pair: None for pair in start
    }
    queue = deque(start)
    pop = queue.popleft
    push = queue.append
    while queue:
        if prefetch is not None:  # see the level note in product_dfa_direct
            prefetch([p[0] for p in queue])
        for _ in range(len(queue)):
            pair = pop()
            nq, dq = pair
            row = row_fn(nq)
            if nq not in expanded:
                expanded.add(nq)
                _discover_row(row, discovered, max_states)
            brow = b_rows[dq]
            for symbol, succs in row:
                if symbol is None:
                    for succ in succs:
                        nxt = (succ, dq)
                        if nxt not in parent:
                            parent[nxt] = (pair, None)
                            push(nxt)
                    continue
                dsucc = brow.get(symbol)
                if dsucc is None:  # not yet queried: ask the oracle once
                    target = spec_step(b_states[dq], symbol)
                    if target is None:
                        dsucc = brow[symbol] = _SINK
                    else:
                        didx = b_index.get(target)
                        if didx is None:
                            didx = b_index[target] = len(b_states)
                            b_states.append(target)
                            b_rows.append({})
                        dsucc = brow[symbol] = didx
                if dsucc is _SINK:
                    word = reconstruct(parent, pair) + (symbol,)
                    return (
                        False,
                        word,
                        len(parent),
                        len(discovered),
                        len(b_index),
                    )
                for succ in succs:
                    nxt = (succ, dsucc)
                    if nxt not in parent:
                        parent[nxt] = (pair, symbol)
                        push(nxt)
    return True, None, len(parent), len(discovered), len(b_index)


def product_oracle_packed(
    row_fn: RowFn,
    initial: Iterable[int],
    oracle,
    *,
    node_span: int,
    row_map: Optional[Dict[int, Tuple]] = None,
    max_states: Optional[int] = None,
    prefetch: Optional[PrefetchFn] = None,
    pair_sharder: Optional[PairSharder] = None,
    dense: Optional[DenseCSR] = None,
    profile: Optional[Dict[str, float]] = None,
):
    """:func:`product_oracle_direct` with *integer statement ids* on both
    sides: an all-int hot path.

    ``row_fn(packed_state)`` returns ``((sym_id, (packed_succ, ...)),
    ...)`` rows with negative ids for ε-moves
    (``CompiledTM.safety_row_ids``); ``row_map``, when given, is the
    memo dict behind ``row_fn``, probed directly to skip a Python call
    per pop on warm rows.  ``oracle`` is a
    :class:`repro.spec.compiled.CompiledSpecOracle` whose memoized
    ``rows[spec_id][sym_id]`` table is indexed directly — no dict lookup
    keyed by rich Statement tuples anywhere.  ``node_span`` is an
    exclusive bound on packed left states (``CompiledTM.node_span``), so
    product pairs encode as ``spec_id * node_span + packed_state``: one
    machine-word key, like :func:`product_dfa_direct`'s.

    Because the oracle is shared (and possibly warm from a previous run
    or the disk cache), spec states are *not* re-interned per run; the
    per-run ``spec_states_seen`` is recovered from the parent map
    instead, which provably equals the rich path's count (every spec
    state the rich path interns appears as the right component of a
    discovered pair).

    Returns ``(holds, counterexample_sym_ids, discovered_pairs,
    states_seen, spec_states_seen)`` — the counterexample is a tuple of
    statement *ids*; callers map them through ``oracle.symbols``.
    Ordering/dedup semantics of ``initial`` match
    :func:`product_dfa_direct`, and the BFS body intentionally parallels
    the other product functions (see the NOTE in
    :func:`product_dfa_direct`).

    With a ``pair_sharder`` (and no ``max_states`` bound — bounded runs
    stay serial so the guard's raise point is byte-identical), the BFS
    itself runs sharded across the pool (see :func:`_sharded_pair_bfs`);
    a violating sharded run falls back to the serial traced twin, so
    verdicts, counterexamples and every count are byte-identical to a
    serial run.

    A ``dense`` :class:`DenseCSR` (again only without a ``max_states``
    bound) engages the dense kernel: an already-recorded table replays
    as the array-only bitset BFS (beating both the serial set path and —
    on warm products — the sharded one, so it takes precedence over
    ``pair_sharder``); an empty table is recorded as a by-product of a
    *serial* first pass — sharded runs of either flavour (a
    ``pair_sharder``, or a ``prefetch`` hook feeding a row pool) keep
    their own machinery and record nothing, so a pool is never left
    idle behind the recorder.  ``profile``, when given, accumulates the
    traced rerun's time under ``"trace_rerun_s"``.
    """
    init = list(dict.fromkeys(initial))
    if max_states is not None and len(init) > max_states:
        raise RuntimeError(
            f"state-space exploration exceeded {max_states}"
            f" states (at {max_states + 1})"
        )

    def rerun_traced():
        t0 = perf_counter()
        out = _product_oracle_packed_traced(
            row_fn,
            init,
            oracle,
            node_span=node_span,
            row_map=row_map,
            max_states=max_states,
        )
        if profile is not None:
            profile["trace_rerun_s"] = (
                profile.get("trace_rerun_s", 0.0) + perf_counter() - t0
            )
        return out

    if dense is not None and max_states is None and not dense.disabled:
        assert oracle.initial_id == 0
        assert node_span & (node_span - 1) == 0, "node_span must be 2**b"
        if dense.built and dense.matches_init(init):
            violated, pairs, states_seen, spec_seen = dense.run()
            if not violated:
                return True, None, pairs, states_seen, spec_seen
            return rerun_traced()
        if pair_sharder is None and prefetch is None:
            res = _product_oracle_packed_dense(
                row_fn,
                init,
                oracle,
                node_span=node_span,
                row_map=row_map,
                dense=dense,
            )
            if res is not None:
                return res
            return rerun_traced()
    if pair_sharder is not None and max_states is None:
        assert oracle.initial_id == 0
        assert node_span & (node_span - 1) == 0, "node_span must be 2**b"
        bits = node_span.bit_length() - 1
        violated, pairs, states_seen, spec_seen = _sharded_pair_bfs(
            pair_sharder, pair_sharder.stable_pairs(init), bits
        )
        if not violated:
            return True, None, pairs, states_seen, spec_seen
        return rerun_traced()
    discovered = set(init)
    expanded = set()

    orows = oracle.rows
    fill = oracle.fill
    rows_get = (row_map or {}).get

    # Pairs are spec_id * node_span + packed_node; the initial spec
    # state has id 0, so the start pairs are the packed nodes themselves.
    #
    # This traversal is *untraced*: discovered pairs go into a plain set
    # and an insertion-order list (no parent back-pointers), which is
    # measurably cheaper on the holding cells where the whole product is
    # visited.  When a violation turns up, the traced twin below reruns
    # the identical BFS with a parent map to reconstruct the word — the
    # rerun stops at the violation and every row/oracle query it needs
    # is already memoized, so its cost is a fraction of the first pass.
    assert oracle.initial_id == 0
    assert node_span & (node_span - 1) == 0, "node_span must be 2**b"
    span_bits = node_span.bit_length() - 1
    span_mask = node_span - 1
    seen = set(init)
    order = list(init)
    add = seen.add
    append = order.append
    i = 0
    if prefetch is not None:
        prefetch([p & span_mask for p in order])
        boundary = len(order)
    else:
        boundary = -1
    while i < len(order):
        if i == boundary:  # see the level note in product_dfa_direct
            prefetch([p & span_mask for p in order[i:]])
            boundary = len(order)
        pair = order[i]
        i += 1
        nq = pair & span_mask
        dq = pair >> span_bits
        row = rows_get(nq)
        if row is None:
            row = row_fn(nq)
        if nq not in expanded:
            expanded.add(nq)
            _discover_row_ids(row, discovered, max_states)
        brow = orows[dq]
        for symbol, succs in row:
            if symbol < 0:  # ε: advance the TM component only
                base = pair - nq
            else:
                dsucc = brow[symbol]
                if dsucc == -2:  # UNQUERIED: ask the oracle once, ever
                    dsucc = fill(dq, symbol)
                if dsucc == -1:  # SINK: rerun traced for the word
                    return rerun_traced()
                base = dsucc << span_bits
            if type(succs) is int:  # singleton group (the common case)
                nxt = base + succs
                if nxt not in seen:
                    add(nxt)
                    append(nxt)
            else:
                for s in succs:
                    nxt = base + s
                    if nxt not in seen:
                        add(nxt)
                        append(nxt)
    spec_seen = len({p >> span_bits for p in seen})
    return True, None, len(seen), len(discovered), spec_seen


def _product_oracle_packed_traced(
    row_fn: RowFn,
    init: List[int],
    oracle,
    *,
    node_span: int,
    row_map: Optional[Dict[int, Tuple]],
    max_states: Optional[int],
):
    """The parent-map twin of :func:`product_oracle_packed`, run when a
    violation needs its counterexample reconstructed.  Must visit pairs
    in the identical order (the NOTE in :func:`product_dfa_direct`
    applies)."""
    discovered = set(init)
    expanded = set()
    orows = oracle.rows
    fill = oracle.fill
    rows_get = (row_map or {}).get
    span_bits = node_span.bit_length() - 1
    span_mask = node_span - 1

    parent: ParentMap = {pair: None for pair in init}
    queue = deque(init)
    pop = queue.popleft
    push = queue.append
    while queue:
        pair = pop()
        nq = pair & span_mask
        dq = pair >> span_bits
        row = rows_get(nq)
        if row is None:
            row = row_fn(nq)
        if nq not in expanded:
            expanded.add(nq)
            _discover_row_ids(row, discovered, max_states)
        brow = orows[dq]
        for symbol, succs in row:
            if symbol < 0:  # ε: advance the TM component only
                base = pair - nq
                label = None
            else:
                dsucc = brow[symbol]
                if dsucc == -2:
                    dsucc = fill(dq, symbol)
                if dsucc == -1:  # SINK
                    word = reconstruct(parent, pair) + (symbol,)
                    spec_seen = len({p >> span_bits for p in parent})
                    return (
                        False,
                        word,
                        len(parent),
                        len(discovered),
                        spec_seen,
                    )
                base = dsucc << span_bits
                label = symbol
            for succ in (succs,) if type(succs) is int else succs:
                nxt = base + succ
                if nxt not in parent:
                    parent[nxt] = (pair, label)
                    push(nxt)
    raise AssertionError(
        "traced rerun found no violation after the untraced pass did"
    )


def _product_oracle_packed_dense(
    row_fn: RowFn,
    init: List[int],
    oracle,
    *,
    node_span: int,
    row_map: Optional[Dict[int, Tuple]],
    dense: DenseCSR,
):
    """The untraced pass of :func:`product_oracle_packed`, recording a
    :class:`DenseCSR` as it goes.

    Pairs are interned into dense ids in discovery order (the insertion-
    order ``order`` list of the set path *is* the id assignment) and
    every emitted successor — fresh or already seen — is appended to the
    CSR row, so the recorded table is the product's full adjacency in
    the exact emission order.  Returns the holds-tuple, or ``None`` on a
    violation: the violating pair is flagged in the (partial) table and
    the caller reruns the serial traced twin.  Beyond
    :data:`DENSE_MAX_EDGES` recorded entries the recorder bails out
    (``dense.disabled``) and the pass continues with plain set
    semantics — byte-identical results, no array fast path.

    Recording costs the cold pass ~15-35% over the bare set loop on the
    largest cells (appends + dense-id interning), bought back many
    times over by every replay; one-shot cold runs can opt out with
    ``dense_kernel=False``.  NOTE: this builder and
    :func:`_product_dfa_packed_dense` are twins by the same mirroring
    policy as the four product bodies (see :func:`product_dfa_direct`) —
    any change to interning, recording, the edge budget or violation
    padding must be applied to both.
    """
    orows = oracle.rows
    fill = oracle.fill
    rows_get = (row_map or {}).get
    span_bits = node_span.bit_length() - 1
    span_mask = node_span - 1

    ids: Dict[int, int] = {}
    order: List[int] = []
    # Typed-width policy, chosen up front (no per-append try/except):
    # dense ids and offsets are bounded by DENSE_MAX_EDGES < 2**31 so
    # always int32; left keys need the node span's width.
    node_keys = array("i" if span_bits < 32 else "q")
    spec_ids = array("i")
    offsets = array("i", (0,))
    targets = array("i")
    tappend = targets.append
    for p in init:
        ids[p] = len(order)
        order.append(p)
        node_keys.append(p & span_mask)
        spec_ids.append(0)
    recording = True
    violated_at = -1
    i = 0
    while i < len(order):
        pair = order[i]
        nq = pair & span_mask
        dq = pair >> span_bits
        row = rows_get(nq)
        if row is None:
            row = row_fn(nq)
        brow = orows[dq]
        for symbol, succs in row:
            if symbol < 0:  # ε: advance the TM component only
                base = pair - nq
                sbase = dq
            else:
                dsucc = brow[symbol]
                if dsucc == -2:  # UNQUERIED: ask the oracle once, ever
                    dsucc = fill(dq, symbol)
                if dsucc == -1:  # SINK
                    violated_at = i
                    break
                base = dsucc << span_bits
                sbase = dsucc
            for s in (succs,) if type(succs) is int else succs:
                nxt = base + s
                sid = ids.get(nxt)
                if sid is None:
                    sid = ids[nxt] = len(order)
                    order.append(nxt)
                    if recording:
                        node_keys.append(s)
                        spec_ids.append(sbase)
                if recording:
                    tappend(sid)
        if violated_at >= 0:
            break
        if recording and len(targets) > DENSE_MAX_EDGES:
            recording = False
            node_keys = spec_ids = offsets = targets = None
            dense.reset()
            dense.disabled = True
        if recording:
            offsets.append(len(targets))
        i += 1
    if recording:
        npairs = len(order)
        if violated_at >= 0:  # close the aborted row, pad the unexpanded
            offsets.append(len(targets))
            offsets.extend([len(targets)] * (npairs + 1 - len(offsets)))
        dense.node_keys = node_keys
        dense.spec_ids = spec_ids
        dense.offsets = offsets
        dense.targets = targets
        dense.flags = (violated_at,) if violated_at >= 0 else ()
        dense.num_init = len(init)
        dense.complete = violated_at < 0
        dense.stable_keys = False
        dense._dirty = True
    if violated_at >= 0:
        return None
    if recording:
        states_seen = len(set(node_keys))
        spec_seen = len(set(spec_ids))
    else:
        states_seen = len({p & span_mask for p in ids})
        spec_seen = len({p >> span_bits for p in ids})
    return True, None, len(order), states_seen, spec_seen


def product_dfa_packed(
    row_fn: RowFn,
    initial: Iterable[int],
    spec_rows: Sequence[Sequence[int]],
    *,
    node_span: int,
    row_map: Optional[Dict[int, Tuple]] = None,
    max_states: Optional[int] = None,
    prefetch: Optional[PrefetchFn] = None,
    pair_sharder: Optional[PairSharder] = None,
    dense: Optional[DenseCSR] = None,
    profile: Optional[Dict[str, float]] = None,
):
    """:func:`product_dfa_direct` with *integer statement ids* on both
    sides — the DFA-sided twin of :func:`product_oracle_packed`.

    ``row_fn`` serves all-int safety rows (``CompiledTM.safety_row_ids``,
    negative ids for ε) and ``spec_rows`` is the specification's complete
    int-indexed delta: ``spec_rows[dfa_state][sym_id]`` is the successor
    state index or ``-1`` for the implicit rejecting sink, with state 0
    initial (see :class:`repro.spec.compiled.CompiledSpecDFA`).  No
    Statement is hashed anywhere on the hot path.  Pairs encode as
    ``dfa_state << span_bits | packed_node``; the traversal is untraced
    with a traced rerun on violation, exactly as in
    :func:`product_oracle_packed` (whose ``initial`` semantics, sharding
    behaviour and byte-identity NOTE all apply).  CAUTION: a
    ``pair_sharder``'s workers re-derive the specification from its
    ``(n, k, prop)`` identity, so the sharded path is only sound when
    ``spec_rows`` is the *canonical* table for that identity — the
    contract ``check_safety`` enforces by keeping caller-provided specs
    on the unsharded Statement path; never pass a sharder together with
    hand-built rows.

    Returns ``(holds, counterexample_sym_ids, discovered_pairs,
    states_seen)`` — the DFA side is fully materialized, so no
    spec-states count is reported (callers know ``len(spec_rows)``).
    ``dense`` and ``profile`` behave exactly as on the oracle-sided
    twin.
    """
    init = list(dict.fromkeys(initial))
    if max_states is not None and len(init) > max_states:
        raise RuntimeError(
            f"state-space exploration exceeded {max_states}"
            f" states (at {max_states + 1})"
        )
    assert node_span & (node_span - 1) == 0, "node_span must be 2**b"
    span_bits = node_span.bit_length() - 1

    def rerun_traced():
        t0 = perf_counter()
        out = _product_dfa_packed_traced(
            row_fn,
            init,
            spec_rows,
            node_span=node_span,
            row_map=row_map,
            max_states=max_states,
        )
        if profile is not None:
            profile["trace_rerun_s"] = (
                profile.get("trace_rerun_s", 0.0) + perf_counter() - t0
            )
        return out

    if dense is not None and max_states is None and not dense.disabled:
        if dense.built and dense.matches_init(init):
            violated, pairs, states_seen, _spec_seen = dense.run()
            if not violated:
                return True, None, pairs, states_seen
            return rerun_traced()
        if pair_sharder is None and prefetch is None:
            res = _product_dfa_packed_dense(
                row_fn,
                init,
                spec_rows,
                node_span=node_span,
                row_map=row_map,
                dense=dense,
            )
            if res is not None:
                return res
            return rerun_traced()
    if pair_sharder is not None and max_states is None:
        violated, pairs, states_seen, _spec_seen = _sharded_pair_bfs(
            pair_sharder, pair_sharder.stable_pairs(init), span_bits
        )
        if not violated:
            return True, None, pairs, states_seen
        return rerun_traced()
    discovered = set(init)
    expanded = set()
    rows_get = (row_map or {}).get
    span_mask = node_span - 1

    seen = set(init)
    order = list(init)
    add = seen.add
    append = order.append
    i = 0
    if prefetch is not None:
        prefetch([p & span_mask for p in order])
        boundary = len(order)
    else:
        boundary = -1
    while i < len(order):
        if i == boundary:  # see the level note in product_dfa_direct
            prefetch([p & span_mask for p in order[i:]])
            boundary = len(order)
        pair = order[i]
        i += 1
        nq = pair & span_mask
        dq = pair >> span_bits
        row = rows_get(nq)
        if row is None:
            row = row_fn(nq)
        if nq not in expanded:
            expanded.add(nq)
            _discover_row_ids(row, discovered, max_states)
        brow = spec_rows[dq]
        for symbol, succs in row:
            if symbol < 0:  # ε: advance the TM component only
                base = pair - nq
            else:
                dsucc = brow[symbol]
                if dsucc < 0:  # sink: rerun traced for the word
                    return rerun_traced()
                base = dsucc << span_bits
            if type(succs) is int:  # singleton group (the common case)
                nxt = base + succs
                if nxt not in seen:
                    add(nxt)
                    append(nxt)
            else:
                for s in succs:
                    nxt = base + s
                    if nxt not in seen:
                        add(nxt)
                        append(nxt)
    return True, None, len(seen), len(discovered)


def _product_dfa_packed_traced(
    row_fn: RowFn,
    init: List[int],
    spec_rows: Sequence[Sequence[int]],
    *,
    node_span: int,
    row_map: Optional[Dict[int, Tuple]],
    max_states: Optional[int],
):
    """The parent-map twin of :func:`product_dfa_packed` (see
    :func:`_product_oracle_packed_traced`)."""
    discovered = set(init)
    expanded = set()
    rows_get = (row_map or {}).get
    span_bits = node_span.bit_length() - 1
    span_mask = node_span - 1

    parent: ParentMap = {pair: None for pair in init}
    queue = deque(init)
    pop = queue.popleft
    push = queue.append
    while queue:
        pair = pop()
        nq = pair & span_mask
        dq = pair >> span_bits
        row = rows_get(nq)
        if row is None:
            row = row_fn(nq)
        if nq not in expanded:
            expanded.add(nq)
            _discover_row_ids(row, discovered, max_states)
        brow = spec_rows[dq]
        for symbol, succs in row:
            if symbol < 0:  # ε: advance the TM component only
                base = pair - nq
                label = None
            else:
                dsucc = brow[symbol]
                if dsucc < 0:  # sink
                    word = reconstruct(parent, pair) + (symbol,)
                    return False, word, len(parent), len(discovered)
                base = dsucc << span_bits
                label = symbol
            for succ in (succs,) if type(succs) is int else succs:
                nxt = base + succ
                if nxt not in parent:
                    parent[nxt] = (pair, label)
                    push(nxt)
    raise AssertionError(
        "traced rerun found no violation after the untraced pass did"
    )


def _product_dfa_packed_dense(
    row_fn: RowFn,
    init: List[int],
    spec_rows: Sequence[Sequence[int]],
    *,
    node_span: int,
    row_map: Optional[Dict[int, Tuple]],
    dense: DenseCSR,
):
    """:func:`_product_oracle_packed_dense` for the DFA-sided product
    (complete int-indexed spec delta, no oracle fill).  Its twin's
    mirroring NOTE applies: keep the two builders in lockstep."""
    rows_get = (row_map or {}).get
    span_bits = node_span.bit_length() - 1
    span_mask = node_span - 1

    ids: Dict[int, int] = {}
    order: List[int] = []
    # Same typed-width choice as the oracle-sided twin.
    node_keys = array("i" if span_bits < 32 else "q")
    spec_ids = array("i")
    offsets = array("i", (0,))
    targets = array("i")
    tappend = targets.append
    for p in init:
        ids[p] = len(order)
        order.append(p)
        node_keys.append(p & span_mask)
        spec_ids.append(0)
    recording = True
    violated_at = -1
    i = 0
    while i < len(order):
        pair = order[i]
        nq = pair & span_mask
        dq = pair >> span_bits
        row = rows_get(nq)
        if row is None:
            row = row_fn(nq)
        brow = spec_rows[dq]
        for symbol, succs in row:
            if symbol < 0:  # ε: advance the TM component only
                base = pair - nq
                sbase = dq
            else:
                dsucc = brow[symbol]
                if dsucc < 0:  # sink
                    violated_at = i
                    break
                base = dsucc << span_bits
                sbase = dsucc
            for s in (succs,) if type(succs) is int else succs:
                nxt = base + s
                sid = ids.get(nxt)
                if sid is None:
                    sid = ids[nxt] = len(order)
                    order.append(nxt)
                    if recording:
                        node_keys.append(s)
                        spec_ids.append(sbase)
                if recording:
                    tappend(sid)
        if violated_at >= 0:
            break
        if recording and len(targets) > DENSE_MAX_EDGES:
            recording = False
            node_keys = spec_ids = offsets = targets = None
            dense.reset()
            dense.disabled = True
        if recording:
            offsets.append(len(targets))
        i += 1
    if recording:
        npairs = len(order)
        if violated_at >= 0:
            offsets.append(len(targets))
            offsets.extend([len(targets)] * (npairs + 1 - len(offsets)))
        dense.node_keys = node_keys
        dense.spec_ids = spec_ids
        dense.offsets = offsets
        dense.targets = targets
        dense.flags = (violated_at,) if violated_at >= 0 else ()
        dense.num_init = len(init)
        dense.complete = violated_at < 0
        dense.stable_keys = False
        dense._dirty = True
    if violated_at >= 0:
        return None
    if recording:
        states_seen = len(set(node_keys))
    else:
        states_seen = len({p & span_mask for p in ids})
    return True, None, len(order), states_seen


def _run_product_dfa(left, initial: List[Hashable], dfa: DFA):
    """Shared BFS of the streamed-left × DFA product."""
    ib = intern_dfa(dfa)
    b_delta = ib.delta
    nb = ib.n

    row_of = left.row_of
    start_states = [left.visit(q) for q in initial]
    start = [q * nb + ib.initial for q in start_states]
    parent: ParentMap = {pair: None for pair in start}
    queue = deque(start)
    pop = queue.popleft
    push = queue.append
    while queue:
        pair = pop()
        nq, dq = divmod(pair, nb)
        brow = b_delta[dq]
        for symbol, succs in row_of(nq):
            if symbol is None:
                for succ in succs:
                    nxt = succ * nb + dq
                    if nxt not in parent:
                        parent[nxt] = (pair, None)
                        push(nxt)
                continue
            dsucc = brow.get(symbol)
            if dsucc is None:
                word = reconstruct(parent, pair) + (symbol,)
                return False, word, len(parent), len(left.index)
            for succ in succs:
                nxt = succ * nb + dsucc
                if nxt not in parent:
                    parent[nxt] = (pair, symbol)
                    push(nxt)
    return True, None, len(parent), len(left.index)


def lazy_product_dfa(
    initial: Iterable[Hashable],
    step: StepFn,
    dfa: DFA,
    *,
    max_states: Optional[int] = None,
):
    """On-the-fly product reachability of a streamed ε-NFA against ``dfa``.

    ``step(q)`` yields ``(symbol, successor)`` pairs with ``EPSILON`` for
    internal moves — the same contract as ``NFA.from_step`` — but no NFA
    is ever materialized (see :class:`_LazyLeft`).

    Returns ``(holds, counterexample, discovered_pairs, states_seen)``
    where ``states_seen`` counts distinct left states *discovered*
    (successors of every expanded state included, even after an early
    violation) — when inclusion holds this equals the full reachable
    state count of the streamed automaton.
    """
    left = _LazyLeft(step, max_states)
    return _run_product_dfa(left, sorted(set(initial), key=repr), dfa)


DetStepFn = Callable[[Hashable, Hashable], Optional[Hashable]]

_SINK = object()  # cached "no transition" marker in lazy spec rows


def lazy_product_oracle(
    initial: Iterable[Hashable],
    step: StepFn,
    spec_initial: Hashable,
    spec_step: DetStepFn,
    *,
    max_states: Optional[int] = None,
):
    """Fully lazy product: streamed ε-NFA against a *deterministic oracle*.

    Like :func:`lazy_product_dfa`, but the right-hand side is given by
    its transition function ``spec_step(state, symbol) -> state | None``
    instead of a materialized DFA — nothing on either side is built up
    front, so the check is bounded by the *product* reachable set, not
    by the (possibly astronomically larger) full specification.  Spec
    states are interned on first sight and each (state, symbol) query is
    evaluated at most once.

    Returns ``(holds, counterexample, discovered_pairs, states_seen,
    spec_states_seen)``.
    """
    left = _LazyLeft(step, max_states)
    return _run_product_oracle(
        left, sorted(set(initial), key=repr), spec_initial, spec_step
    )


def _run_product_oracle(
    left,
    initial: List[Hashable],
    spec_initial: Hashable,
    spec_step: DetStepFn,
):
    """Shared BFS of the streamed-left × deterministic-oracle product."""
    row_of = left.row_of

    b_index: Dict[Hashable, int] = {spec_initial: 0}
    b_states: List[Hashable] = [spec_initial]
    b_rows: List[Dict[Symbol, object]] = [{}]

    # Pairs are (left index, spec index) tuples: the spec side grows
    # on demand, so no fixed-width encoding is available.
    start = [(left.visit(q), 0) for q in initial]
    parent: Dict[Tuple[int, int], Optional[Tuple]] = {
        pair: None for pair in start
    }
    queue = deque(start)
    pop = queue.popleft
    push = queue.append
    while queue:
        pair = pop()
        nq, dq = pair
        brow = b_rows[dq]
        for symbol, succs in row_of(nq):
            if symbol is None:
                for succ in succs:
                    nxt = (succ, dq)
                    if nxt not in parent:
                        parent[nxt] = (pair, None)
                        push(nxt)
                continue
            dsucc = brow.get(symbol)
            if dsucc is None:  # not yet queried: ask the oracle once
                target = spec_step(b_states[dq], symbol)
                if target is None:
                    dsucc = brow[symbol] = _SINK
                else:
                    didx = b_index.get(target)
                    if didx is None:
                        didx = b_index[target] = len(b_states)
                        b_states.append(target)
                        b_rows.append({})
                    dsucc = brow[symbol] = didx
            if dsucc is _SINK:
                word = reconstruct(parent, pair) + (symbol,)
                return False, word, len(parent), len(left.index), len(b_index)
            for succ in succs:
                nxt = (succ, dsucc)
                if nxt not in parent:
                    parent[nxt] = (pair, symbol)
                    push(nxt)
    return True, None, len(parent), len(left.index), len(b_index)
