"""Bounded language enumeration for differential and closure testing."""

from .enumerate import (
    enumerate_nfa_language,
    enumerate_tm_language,
    language_size_by_length,
)

__all__ = [
    "enumerate_nfa_language",
    "enumerate_tm_language",
    "language_size_by_length",
]
