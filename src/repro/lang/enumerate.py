"""Bounded enumeration of TM-algorithm languages.

The structural properties P1–P6 (Sections 4 and 6.1) are closure
properties of a TM's language.  The paper discharges them by inspecting
each algorithm; we additionally *test* them mechanically on all words of
the language up to a length bound.  This module enumerates those words by
walking the determinized-on-the-fly safety NFA: since every state
accepts, the words of length ≤ L are exactly the paths of length ≤ L in
the subset automaton, each path giving a distinct word.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Tuple

from ..automata.nfa import NFA
from ..core.statements import Word
from ..tm.algorithm import TMAlgorithm
from ..tm.explore import build_safety_nfa


def enumerate_nfa_language(
    nfa: NFA, max_len: int, *, max_words: Optional[int] = None
) -> Iterator[Word]:
    """All words of length ≤ ``max_len`` in a safety NFA's language.

    Yields words in length-then-discovery order, starting with the empty
    word.  ``max_words`` truncates the enumeration (None = unbounded);
    truncation raises ``RuntimeError`` to avoid silently passing tests on
    partial evidence.
    """
    if nfa.accepting is not None:
        raise ValueError("enumeration assumes a safety NFA (all accepting)")
    symbols = sorted(nfa.alphabet(), key=repr)
    init = nfa.eclosure(nfa.initial)
    queue: deque = deque([((), init)])
    produced = 0
    while queue:
        word, macro = queue.popleft()
        yield word
        produced += 1
        if max_words is not None and produced > max_words:
            raise RuntimeError(f"language enumeration exceeded {max_words} words")
        if len(word) == max_len:
            continue
        for a in symbols:
            succ = nfa.eclosure(nfa.post(macro, a))
            if succ:
                queue.append((word + (a,), succ))


def enumerate_tm_language(
    tm: TMAlgorithm, max_len: int, *, max_words: Optional[int] = None
) -> Iterator[Word]:
    """All words of length ≤ ``max_len`` in ``L(tm)``."""
    yield from enumerate_nfa_language(
        build_safety_nfa(tm), max_len, max_words=max_words
    )


def language_size_by_length(tm: TMAlgorithm, max_len: int) -> Tuple[int, ...]:
    """Number of words of each length 0..max_len — a quick fingerprint of
    a TM's permissiveness, used by comparison benchmarks."""
    counts = [0] * (max_len + 1)
    for word in enumerate_tm_language(tm, max_len):
        counts[len(word)] += 1
    return tuple(counts)
