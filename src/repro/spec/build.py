"""Canonical specification automata via subset construction.

The paper hand-builds its deterministic specifications (Algorithm 6)
because determinizing Algorithm 5 is expensive; this module provides the
canonical constructions anyway — they anchor Theorem 3 (the hand-built
DFA must be language-equivalent to the determinization) and yield the
*minimal* safety DFA for each property, a number the paper never
reports but that anyone re-implementing the specifications will want.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from ..automata.determinize import determinize
from ..automata.dfa import DFA
from ..automata.interned import intern_dfa
from ..automata.nfa import NFA
from ..core.statements import statements as all_statements
from .common import SafetyProperty
from .det import build_det_spec
from .nondet import build_nondet_spec


def build_canonical_spec(
    n: int, k: int, prop: SafetyProperty, *, max_states: Optional[int] = None
) -> DFA:
    """Subset construction of Σ — the canonical deterministic spec.

    Much larger than Algorithm 6's automaton (for (2,2) strict
    serializability: ~204k macrostates vs. 3424) but correct by
    construction once Algorithm 5 is; used as a cross-check.
    """
    nondet, _ = build_nondet_spec(n, k, prop).compact()
    return determinize(nondet, max_states=max_states)


def build_minimal_spec(n: int, k: int, prop: SafetyProperty) -> DFA:
    """The minimal safety DFA for pi(n,k), via Moore minimization of the
    hand-built deterministic specification."""
    compacted, _ = cached_det_spec(n, k, prop).compact()
    return compacted.minimize()


# ----------------------------------------------------------------------
# Memoizing spec cache
# ----------------------------------------------------------------------
#
# The specifications depend only on (n, k, prop), and the (2, 2)
# instances take seconds to materialize — yet every Table 2/3 cell, every
# benchmark and every CLI invocation used to rebuild them from scratch.
# These wrappers make repeated builds free within a process.  Cached
# automata are shared: callers must treat them as immutable (every
# algorithm in this library does).


@lru_cache(maxsize=None)
def cached_det_spec(n: int, k: int, prop: SafetyProperty) -> DFA:
    """Memoized :func:`~repro.spec.det.build_det_spec` (shared instance)."""
    return build_det_spec(n, k, prop)


@lru_cache(maxsize=None)
def cached_nondet_spec(n: int, k: int, prop: SafetyProperty) -> NFA:
    """Memoized :func:`~repro.spec.nondet.build_nondet_spec` (shared
    instance)."""
    return build_nondet_spec(n, k, prop)


def interned_spec_rows(
    n: int, k: int, prop: SafetyProperty, *, spec: Optional[DFA] = None
) -> Tuple[Tuple[int, ...], ...]:
    """The deterministic specification's delta as int-indexed rows.

    Interns the spec DFA's :class:`~repro.core.statements.Statement`
    symbols into their canonical integer ids (the index into
    ``statements(n, k, include_abort=True)`` — the id space shared by the
    compiled TM engine and the compiled spec oracle) at build time, so
    product checkers over the result never hash a Statement:
    ``rows[state][sym_id]`` is the successor state index or ``-1`` for
    the rejecting sink, with state 0 initial.  ``spec`` defaults to the
    memoized canonical specification; the interned form is cached on the
    DFA instance either way.
    """
    if spec is None:
        spec = cached_det_spec(n, k, prop)
    interned = intern_dfa(spec)
    assert interned.initial == 0
    return interned.delta_by_symbol_ids(
        all_statements(n, k, include_abort=True)
    )


def clear_spec_cache() -> None:
    """Drop all memoized specifications (frees the automata and their
    interned forms)."""
    cached_det_spec.cache_clear()
    cached_nondet_spec.cache_clear()
