"""Compiled deterministic-spec oracle: packed states, memoized rows.

The lazy-spec safety path (``check_safety(..., lazy_spec=True)``) streams
the specification through :func:`repro.spec.det.det_step`, which thaws a
tuple-of-frozensets state, mutates lists, and refreezes on every query —
with the TM side compiled to packed ints (PR 2), this pure-Python rich
stepping is the bottleneck of the large lazy-spec runs.  This module
compiles the spec side the same way the TM side was compiled:

* **packed states** — a whole Algorithm 6 state is one int, with one
  fixed-width record per thread: status (2 bits), the sticky ``doomed``
  flag (1 bit), the ``rs``/``ws``/``prs``/``pws`` variable sets as
  ``k``-bit masks and the ``wp``/``sp`` predecessor sets as ``n``-bit
  masks.  Set algebra becomes mask algebra; no frozensets, no hashing of
  nested tuples;
* **integer statement ids** — statements are indexed by their position
  in :func:`repro.core.statements.statements`, so transition rows are
  flat lists indexed by statement id instead of dicts keyed by rich
  :class:`~repro.core.statements.Statement` tuples (whose enum-bearing
  hashes dominated the product BFS);
* **memoized rows** — each ``(state, statement)`` query is evaluated at
  most once per :class:`CompiledSpecOracle`, and oracles are shared
  process-wide via :func:`cached_spec_oracle` (mirroring
  :func:`repro.spec.build.cached_det_spec`), so repeated checks — the
  two Table 2 properties, benchmark rounds — replay memoized rows
  instead of re-deriving Algorithm 6;
* **warm starts** — the interned state table and memoized rows are pure
  ints, so they spill to the versioned on-disk cache
  (:mod:`repro.cache`) and repeated CLI invocations start warm;
* **dense rows** — transition rows live in flat typed vectors
  (``array('i')`` under the typed-width policy of :mod:`repro.cache`,
  int64 only on overflow; one machine word per ``(state, statement)``
  cell) rather than Python lists: the dense kernel's storage
  discipline, which shrinks the resident tables, makes the persisted
  payloads raw machine words — servable zero-copy by the mmap cache
  backend — and keeps row indexing a C-level operation.

The packed stepper is *exact*: :func:`make_packed_step` mirrors
:func:`~repro.spec.det.det_step` statement for statement (the packing is
a bijection on states, pinned by ``tests/spec/test_spec_compiled.py``'s
exhaustive differentials over the reachable state spaces), so the
product BFS over the compiled oracle is byte-identical to the rich path.
"""

from __future__ import annotations

from array import array
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from ..cache import (
    int_vector_typecode,
    is_int_vector,
    load_payload,
    narrow_int_vector,
    save_payload,
)
from ..core.statements import Kind, Statement, statements as all_statements
from .common import FINISHED, PENDING, STARTED, OP, SafetyProperty
from .det import DetSpecState

#: Row sentinels: ``UNQUERIED`` marks a (state, statement) pair never
#: evaluated; ``SINK`` caches a rejection (``det_step`` returned None).
UNQUERIED = -2
SINK = -1

#: Status codes of the packed record (2 bits).  Algorithm 6 uses only
#: these three statuses; "finished" is 0 so the reset record is 0 and
#: the initial state packs to the integer 0.
_STATUS_CODE = {FINISHED: 0, STARTED: 1, PENDING: 2}
_STATUS_OF_CODE = (FINISHED, STARTED, PENDING)

_DOOMED = 4  # bit 2 of a record


def _layout(n: int, k: int) -> Tuple[int, ...]:
    """Bit offsets of the packed per-thread record.

    Layout (LSB first): status (2) | doomed (1) | rs (k) | ws (k) |
    prs (k) | pws (k) | wp (n) | sp (n).
    """
    s_rs = 3
    s_ws = s_rs + k
    s_prs = s_ws + k
    s_pws = s_prs + k
    s_wp = s_pws + k
    s_sp = s_wp + n
    width = s_sp + n
    return s_rs, s_ws, s_prs, s_pws, s_wp, s_sp, width


def pack_spec_state(state: DetSpecState, n: int, k: int) -> int:
    """The packed int of a rich Algorithm 6 state (a bijection)."""
    s_rs, _s_ws, _s_prs, _s_pws, s_wp, _s_sp, width = _layout(n, k)
    del s_rs, s_wp
    packed = 0
    for i, rec in enumerate(state):
        status, doomed, rs, ws, prs, pws, wp, sp = rec
        bits = _STATUS_CODE[status]
        if doomed:
            bits |= _DOOMED
        shift = 3
        for vars_ in (rs, ws, prs, pws):
            for v in vars_:
                bits |= 1 << (shift + v - 1)
            shift += k
        for threads in (wp, sp):
            for t in threads:
                bits |= 1 << (shift + t - 1)
            shift += n
        packed |= bits << (width * i)
    return packed


def unpack_spec_state(packed: int, n: int, k: int) -> DetSpecState:
    """Inverse of :func:`pack_spec_state`."""
    _s_rs, _s_ws, _s_prs, _s_pws, _s_wp, _s_sp, width = _layout(n, k)
    rmask = (1 << width) - 1
    out = []
    for i in range(n):
        bits = (packed >> (width * i)) & rmask
        status = _STATUS_OF_CODE[bits & 3]
        doomed = bool(bits & _DOOMED)
        shift = 3
        sets: List[frozenset] = []
        for size in (k, k, k, k, n, n):
            mask = (bits >> shift) & ((1 << size) - 1)
            members = []
            m, x = mask, 1
            while m:
                if m & 1:
                    members.append(x)
                m >>= 1
                x += 1
            sets.append(frozenset(members))
            shift += size
        out.append((status, doomed, *sets))
    return tuple(out)  # type: ignore[return-value]


# Statement opcodes for the packed stepper's dispatch.
_OP_READ, _OP_WRITE, _OP_COMMIT, _OP_ABORT = 0, 1, 2, 3
_OP_OF_KIND = {
    Kind.READ: _OP_READ,
    Kind.WRITE: _OP_WRITE,
    Kind.COMMIT: _OP_COMMIT,
    Kind.ABORT: _OP_ABORT,
}


def statement_table(n: int, k: int) -> Tuple[Statement, ...]:
    """The canonical statement-id table: ``statement_table(n, k)[i]`` is
    the statement with id ``i``.  This is exactly
    :func:`repro.core.statements.statements` — statement ids are shared
    between the compiled TM engine and the compiled spec oracle."""
    return all_statements(n, k, include_abort=True)


def make_packed_step(
    n: int, k: int, prop: SafetyProperty
) -> Callable[[int, int], Optional[int]]:
    """``det_step`` compiled to mask algebra over packed states.

    Returns ``step(packed_state, statement_id) -> packed_state | None``
    with semantics identical to
    ``det_step(state, statement, prop)`` under the
    :func:`pack_spec_state` bijection.  The body mirrors
    :func:`repro.spec.det.det_step` line for line; see that module for
    the algorithmic commentary.
    """
    s_rs, s_ws, s_prs, s_pws, s_wp, s_sp, width = _layout(n, k)
    nmask = (1 << n) - 1
    kmask = (1 << k) - 1
    rmask = (1 << width) - 1
    op_mode = prop is OP
    rng = tuple(range(n))
    shifts = tuple(width * i for i in rng)

    # Per-statement-id dispatch parameters: (opcode, thread index, var bit).
    params: List[Tuple[int, int, int]] = []
    for stmt in statement_table(n, k):
        vb = 0 if stmt.var is None else 1 << (stmt.var - 1)
        params.append((_OP_OF_KIND[stmt.kind], stmt.thread - 1, vb))
    params_t = tuple(params)

    def _start_if_finished(q: List[int], ti: int) -> None:
        if q[ti] & 3:
            return  # already started or pending
        pending_mask = 0
        pending_preds = 0
        for j in rng:
            if (q[j] & 3) == 2:
                pending_mask |= 1 << j
                pending_preds |= (q[j] >> s_sp) & nmask
        q[ti] = (
            (q[ti] | (pending_mask << s_wp))
            | ((pending_mask | pending_preds) << s_sp)
        ) | 1  # status := started (from finished = 0)

    def _reset_thread(q: List[int], ti: int) -> None:
        q[ti] = 0
        clear = ~(((1 << ti) << s_wp) | ((1 << ti) << s_sp))
        for j in rng:
            if j != ti:
                q[j] &= clear

    def step(state: int, sym: int) -> Optional[int]:
        opcode, ti, vb = params_t[sym]
        q = [(state >> sh) & rmask for sh in shifts]
        tb = 1 << ti

        if opcode == _OP_READ:
            if (q[ti] >> s_ws) & vb:
                return state  # local read of an own write
            if op_mode:
                # Threads forced strongly before t by this read: those
                # prohibited from reading v, plus their strong preds.
                strong_new = 0
                for j in rng:
                    if (q[j] >> s_prs) & vb:
                        strong_new |= (1 << j) | ((q[j] >> s_sp) & nmask)
                if strong_new & tb:
                    return None  # reading v closes a strong cycle
            _start_if_finished(q, ti)
            q[ti] |= vb << s_rs
            if (q[ti] >> s_prs) & vb:
                q[ti] |= _DOOMED
            wp_add = 0
            for j in rng:
                if (q[j] >> s_ws) & vb:
                    q[j] |= tb << s_wp
                if (q[j] >> s_prs) & vb:
                    wp_add |= 1 << j
            q[ti] |= wp_add << s_wp
            if op_mode:
                if strong_new:
                    sp_add = strong_new << s_sp
                    for j in rng:
                        if j == ti or ((q[j] >> s_sp) & tb):
                            q[j] |= sp_add
                sp_t = (q[ti] >> s_sp) & nmask
                j = 0
                while sp_t:
                    if sp_t & 1:
                        q[j] |= vb << s_pws
                        if (q[j] >> s_ws) & vb:
                            q[j] |= _DOOMED
                    sp_t >>= 1
                    j += 1

        elif opcode == _OP_WRITE:
            _start_if_finished(q, ti)
            q[ti] |= vb << s_ws
            if (q[ti] >> s_pws) & vb:
                q[ti] |= _DOOMED
            wp_add = 0
            doomed = 0
            for j in rng:
                if j == ti:
                    continue
                if (q[j] >> s_rs) & vb:
                    wp_add |= 1 << j
                    if op_mode and ((q[j] >> s_sp) & tb):
                        doomed = _DOOMED
                if (q[j] >> s_pws) & vb:
                    wp_add |= 1 << j
            q[ti] |= (wp_add << s_wp) | doomed

        elif opcode == _OP_COMMIT:
            rec = q[ti]
            wp_t = (rec >> s_wp) & nmask
            if wp_t & tb:
                return None  # a weak-predecessor cycle through t
            if rec & _DOOMED:
                return None
            strong = 0
            if op_mode:
                # Strong closure of the weak predecessors.
                strong = wp_t
                m, j = wp_t, 0
                while m:
                    if m & 1:
                        strong |= (q[j] >> s_sp) & nmask
                    m >>= 1
                    j += 1
                if strong & tb:
                    return None  # committing closes a strong cycle
            ws_t = (rec >> s_ws) & kmask
            rs_t = (rec >> s_rs) & kmask
            prs_t = (rec >> s_prs) & kmask
            pws_t = (rec >> s_pws) & kmask
            wp_targets = 0  # threads with t in wp, or a ww-conflict with t
            for j in rng:
                if (q[j] >> s_wp) & tb:
                    wp_targets |= 1 << j
                elif j != ti and ((q[j] >> s_ws) & kmask) & ws_t:
                    wp_targets |= 1 << j
            prs_add = (prs_t | ws_t) << s_prs
            pws_add = (pws_t | ws_t | rs_t) << s_pws
            m, j = wp_t, 0
            while m:
                if m & 1:
                    r = q[j]
                    if ((r >> s_ws) & kmask) & ws_t:
                        r |= _DOOMED
                    r = ((r & ~3) | 2) | prs_add | pws_add  # := pending
                    q[j] = r
                m >>= 1
                j += 1
            if wp_t:
                wp_add = wp_t << s_wp
                m, j = wp_targets, 0
                while m:
                    if m & 1:
                        q[j] |= wp_add
                    m >>= 1
                    j += 1
            if op_mode and strong:
                sp_add = strong << s_sp
                for j in rng:
                    if j == ti or ((q[j] >> s_sp) & tb):
                        q[j] |= sp_add
            _reset_thread(q, ti)

        else:  # abort
            _reset_thread(q, ti)

        packed = 0
        for i in rng:
            packed |= q[i] << shifts[i]
        return packed

    return step


class CompiledSpecOracle:
    """Interned, memoized Algorithm 6 oracle over packed states.

    ``rows[state_id][statement_id]`` is the successor's dense state id,
    :data:`SINK` for a rejection, or :data:`UNQUERIED` — filled on
    demand by :meth:`fill`.  Rows are flat typed vectors — ``array('i')``
    under the typed-width policy of :mod:`repro.cache`, widened to
    ``array('q')`` per row on overflow.  State id 0 is always the
    initial state
    (which packs to the integer 0).  Construct via
    :func:`cached_spec_oracle` to share tables process-wide.
    """

    def __init__(self, n: int, k: int, prop: SafetyProperty) -> None:
        self.n = n
        self.k = k
        self.prop = prop
        self.symbols = statement_table(n, k)
        self.num_symbols = len(self.symbols)
        self.step_packed = make_packed_step(n, k, prop)
        self._ids = {0: 0}
        # Typed-width policy: rows start int32 (state ids, SINK and
        # UNQUERIED all fit) and individual rows widen to int64 in
        # :meth:`fill` in the (never yet observed) case of > 2**31 - 1
        # interned states.
        self._fresh_row = array("i", [UNQUERIED]) * self.num_symbols
        self.states: List[int] = [0]
        self.rows: List[array] = [array("i", self._fresh_row)]
        self._dirty = False

    #: Dense id of the initial state.
    initial_id = 0

    def step_id(self, state_id: int, sym: int) -> int:
        """Memoized dense-id transition; :data:`SINK` rejects."""
        succ = self.rows[state_id][sym]
        if succ == UNQUERIED:
            succ = self.fill(state_id, sym)
        return succ

    def fill(self, state_id: int, sym: int) -> int:
        """Evaluate and memoize one ``(state, statement)`` query."""
        target = self.step_packed(self.states[state_id], sym)
        succ = SINK if target is None else self.intern_packed(target)
        try:
            self.rows[state_id][sym] = succ
        except OverflowError:  # pragma: no cover - > 2**31 - 1 states
            self.rows[state_id] = row = array("q", self.rows[state_id])
            row[sym] = succ
        self._dirty = True
        return succ

    def intern_packed(self, packed: int) -> int:
        """The dense id of a packed state handed in from outside — e.g.
        a product pair shipped to a worker process by the sharded product
        BFS, whose stable spec component *is* the packed state."""
        sid = self._ids.get(packed)
        if sid is None:
            sid = self._ids[packed] = len(self.states)
            self.states.append(packed)
            self.rows.append(array("i", self._fresh_row))
            self._dirty = True
        return sid

    def stats(self) -> dict:
        """Sizes of the intern/memo tables (for benchmarks and tests)."""
        filled = sum(
            1 for row in self.rows for cell in row if cell != UNQUERIED
        )
        return {"states": len(self.states), "filled_rows": filled}

    # ------------------------------------------------------------------
    # Warm-start persistence
    # ------------------------------------------------------------------

    def _cache_key(self) -> tuple:
        return ("spec-oracle", self.n, self.k, self.prop.value)

    def load_warm(self, cache_dir: str) -> bool:
        """Restore interned states and rows from ``cache_dir``.

        Only a *fresh* oracle (nothing interned beyond the initial
        state) is restored — merging differently-ordered tables is not
        supported.  Malformed payloads are rejected wholesale; returns
        True iff the oracle was warmed.
        """
        if len(self.states) > 1 or self._dirty:
            return False
        data = load_payload(cache_dir, self._cache_key())
        if not isinstance(data, dict):
            return False
        states = data.get("states")
        rows = data.get("rows")
        # Packed states usually persist as a typed int vector
        # (narrowed), but can exceed int64 on large (n, k) — a plain
        # list of Python ints is the declared fallback.
        if not (isinstance(states, list) or is_int_vector(states)):
            return False
        states = list(states)
        if not states or states[0] != 0:
            return False
        nstates = len(states)
        tc = int_vector_typecode(rows)
        if tc is None or len(rows) != nstates * self.num_symbols:
            return False
        for state in states:
            if not isinstance(state, int) or state < 0:
                return False
        if len(set(states)) != nstates:
            return False
        for cell in rows:
            if not UNQUERIED <= cell < nstates:
                return False
        ns = self.num_symbols
        # Copy each flat-row slice into a mutable per-state array —
        # :meth:`fill` writes into rows, so mmap-served views must not
        # be aliased here.
        self.states = states
        self.rows = [
            array(tc, rows[i * ns : (i + 1) * ns]) for i in range(nstates)
        ]
        self._ids = {state: i for i, state in enumerate(states)}
        self._dirty = False
        return True

    def save_warm(self, cache_dir: str) -> bool:
        """Spill the tables to ``cache_dir`` (no-op unless dirty).  Rows
        flatten into one typed int vector (int32 unless any row widened)
        — raw machine words on disk, sliced back on load; packed states
        narrow to the smallest width they fit (a plain list if even
        int64 overflows)."""
        if not self._dirty:
            return False
        tc = "q" if any(r.typecode == "q" for r in self.rows) else "i"
        flat = array(tc)
        for row in self.rows:
            flat.extend(row)
        try:
            states: object = narrow_int_vector(self.states)
        except OverflowError:  # beyond int64: pickle the plain ints
            states = list(self.states)
        ok = save_payload(
            cache_dir,
            self._cache_key(),
            {"states": states, "rows": flat},
        )
        if ok:
            self._dirty = False
        return ok


@lru_cache(maxsize=None)
def cached_spec_oracle(
    n: int, k: int, prop: SafetyProperty
) -> CompiledSpecOracle:
    """The process-wide shared oracle for ``(n, k, prop)`` — every check
    and benchmark round on the same instance replays one memo table."""
    return CompiledSpecOracle(n, k, prop)


def clear_spec_oracle_cache() -> None:
    """Drop all shared oracles (frees their interned tables)."""
    cached_spec_oracle.cache_clear()


class CompiledSpecDFA:
    """The *materialized* deterministic spec, compiled to int rows.

    The DFA-sided safety product (``check_safety(lazy_spec=False)``)
    used to hash a rich :class:`~repro.core.statements.Statement` per
    transition against the spec DFA's delta dicts.  This class holds the
    same automaton as a complete int-indexed table —
    ``rows[state][sym_id]`` is the successor index or :data:`SINK`,
    state 0 initial, symbol ids the canonical statement ids shared with
    the compiled TM engine — which is exactly what
    :func:`repro.automata.kernel.product_dfa_packed` consumes.

    The table is built on demand (:meth:`ensure`) from the memoized
    canonical specification via
    :func:`repro.spec.build.interned_spec_rows`; because it is pure
    ints, it also spills to the on-disk warm cache, and a warm-started
    process runs the DFA-sided check without ever materializing the rich
    DFA.  All observable product outputs are invariant under the state
    indexing (any bijection yields the same verdicts, counterexamples
    and counts), so disk-restored tables are interchangeable with
    freshly interned ones.  Construct via :func:`cached_spec_dfa`.
    """

    def __init__(self, n: int, k: int, prop: SafetyProperty) -> None:
        self.n = n
        self.k = k
        self.prop = prop
        self.symbols = statement_table(n, k)
        self.num_symbols = len(self.symbols)
        #: One flat typed int vector per state — ``array('i')`` when
        #: built, zero-copy slices of the persisted flat table when
        #: warm-loaded (memoryviews under the mmap backend).
        self.rows: Optional[Tuple] = None
        self._dirty = False

    @property
    def num_states(self) -> int:
        assert self.rows is not None, "ensure() the table first"
        return len(self.rows)

    def ensure(self) -> "CompiledSpecDFA":
        """Build the table unless already built (or warm-loaded via
        :meth:`load_warm`); idempotent."""
        if self.rows is not None:
            return self
        from .build import interned_spec_rows

        self.rows = tuple(
            array("i", row)
            for row in interned_spec_rows(self.n, self.k, self.prop)
        )
        self._dirty = True
        return self

    # ------------------------------------------------------------------
    # Warm-start persistence
    # ------------------------------------------------------------------

    def _cache_key(self) -> tuple:
        return ("spec-dfa", self.n, self.k, self.prop.value)

    def load_warm(self, cache_dir: str) -> bool:
        """Restore the int table from ``cache_dir`` (fresh tables only;
        malformed payloads rejected wholesale)."""
        if self.rows is not None or self._dirty:
            return False
        data = load_payload(cache_dir, self._cache_key())
        if not isinstance(data, dict):
            return False
        flat = data.get("rows")
        nstates = data.get("num_states")
        ns = self.num_symbols
        if (
            not is_int_vector(flat)
            or not isinstance(nstates, int)
            or nstates <= 0
            or len(flat) != nstates * ns
        ):
            return False
        for cell in flat:
            if not SINK <= cell < nstates:
                return False
        # Rows are read-only after ensure(): slices of the flat vector
        # suffice, and under the mmap backend they are zero-copy views
        # straight into the page cache.
        self.rows = tuple(
            flat[i * ns : (i + 1) * ns] for i in range(nstates)
        )
        self._dirty = False
        return True

    def save_warm(self, cache_dir: str) -> bool:
        """Spill the table to ``cache_dir`` (no-op unless dirty): one
        flat typed vector plus the state count."""
        if not self._dirty or self.rows is None:
            return False
        flat = array(self.rows[0].typecode if self.rows else "i")
        for row in self.rows:
            flat.extend(row)
        ok = save_payload(
            cache_dir,
            self._cache_key(),
            {"rows": flat, "num_states": len(self.rows)},
        )
        if ok:
            self._dirty = False
        return ok


@lru_cache(maxsize=None)
def cached_spec_dfa(n: int, k: int, prop: SafetyProperty) -> CompiledSpecDFA:
    """The process-wide shared int-rows spec DFA for ``(n, k, prop)``
    (built lazily — call :meth:`CompiledSpecDFA.ensure` before use)."""
    return CompiledSpecDFA(n, k, prop)


def clear_spec_dfa_cache() -> None:
    """Drop all shared int-rows spec DFAs."""
    cached_spec_dfa.cache_clear()
