"""Shared pieces of the TM specifications (paper Section 5).

Both the nondeterministic (Algorithm 5) and deterministic (Algorithm 6)
specifications keep, per thread, a status, the read/write sets of the
current transaction, *prohibited* read/write sets (the finite summary of
everything committed transactions impose on the future), and predecessor
sets over threads.  This module holds the property enum, status constants
and the frozen per-thread record helpers they share.
"""

from __future__ import annotations

from enum import Enum
from typing import FrozenSet


class SafetyProperty(Enum):
    """The two safety properties of Section 2."""

    STRICT_SERIALIZABILITY = "ss"
    OPACITY = "op"

    @property
    def short(self) -> str:
        return self.value


#: Convenient aliases.
SS = SafetyProperty.STRICT_SERIALIZABILITY
OP = SafetyProperty.OPACITY

# Status values (shared; "serialized" is nondet-only, "pending" det-only).
FINISHED = "fin"
STARTED = "start"
SERIALIZED = "ser"
INVALID = "inv"
PENDING = "pend"

EMPTY: FrozenSet[int] = frozenset()
