"""Nondeterministic TM specifications Σss and Σop (paper Algorithm 5).

Every transaction *guesses* its serialization point: an internal
ε-transition that flips its status from started to serialized.  A branch
of the automaton corresponds to one guessed serialization order, which
makes the construction natural — each branch only has to police one
order:

* a commit is allowed only for serialized, non-doomed threads, and makes
  the committer's footprint *prohibited* for the threads serialized
  before it (their reads/writes must remain consistent with being
  earlier);
* for opacity, global reads are additionally policed at read time — even
  a transaction that will abort must never observe an inconsistent value,
  so a read of a prohibited variable simply kills the branch.

The per-thread record is ``(status, doomed, rs, ws, prs, pws, sp)`` where
``prs`` / ``pws`` are the prohibited read/write sets and ``sp`` the set
of threads serialized before this one.  Once a transaction finishes we
never need to remember it — the prohibited sets carry all residual
constraints — which is what keeps the state space finite despite
unbounded transaction delay (Section 5's key idea).

**Transcription note** (see DESIGN.md): the paper folds "cannot commit"
into the status value ``invalid``.  Taking that literally loses
information: a serialized thread that becomes invalid drops out of every
``Status(u) = serialized`` test, so later commits fail to extend its
prohibited sets and its subsequent inconsistent reads are accepted
(e.g. the word ``(r,1)1 (w,2)1 (r,2)2 (w,1)2 c2 (r,1)1`` would wrongly
be called opaque).  We therefore keep ``doomed`` as an orthogonal sticky
flag: dooming a thread only forbids its commit, never rewrites its
serialization bookkeeping.  Exhaustive differential tests against the
reference checkers pin this down.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from ..automata.nfa import EPSILON, NFA
from ..core.statements import Kind, Statement, statements as all_statements
from .common import EMPTY, FINISHED, OP, SERIALIZED, STARTED, SafetyProperty

# Per-thread record: (status, doomed, rs, ws, prs, pws, sp)
ThreadSpec = Tuple[
    str, bool, FrozenSet[int], FrozenSet[int], FrozenSet[int], FrozenSet[int],
    FrozenSet[int],
]
SpecState = Tuple[ThreadSpec, ...]

# Record field indices, for readable mutation of thawed states.
STATUS, DOOMED, RS, WS, PRS, PWS, SP = range(7)

RESET: ThreadSpec = (FINISHED, False, EMPTY, EMPTY, EMPTY, EMPTY, EMPTY)


def initial_state(n: int) -> SpecState:
    """``qinit``: every thread finished with empty sets."""
    return (RESET,) * n


def _thaw(state: SpecState) -> List[List]:
    return [list(rec) for rec in state]


def _freeze(q: List[List]) -> SpecState:
    return tuple(tuple(rec) for rec in q)  # type: ignore[return-value]


def _reset_thread(q: List[List], t: int) -> None:
    """``ResetState``: finish ``t`` and drop it from everyone's ``sp``."""
    q[t - 1] = list(RESET)
    for u, rec in enumerate(q, start=1):
        if u != t:
            rec[SP] = rec[SP] - {t}


def _serialized_set(q: List[List]) -> FrozenSet[int]:
    return frozenset(
        u for u, rec in enumerate(q, start=1) if rec[STATUS] == SERIALIZED
    )


def nondet_step(
    state: SpecState, stmt: Statement, prop: SafetyProperty
) -> Optional[SpecState]:
    """One statement transition of Algorithm 5 (``nondetSpec``).

    Returns the successor state, or ``None`` when the branch rejects the
    statement (the paper's ``return ⊥``).
    """
    t = stmt.thread
    q = _thaw(state)
    rec = q[t - 1]

    if stmt.kind is Kind.READ:
        v = stmt.var
        assert v is not None
        if v in rec[WS]:
            return state  # local read of an own write
        if rec[STATUS] == FINISHED:
            rec[SP] = _serialized_set(q)
            rec[STATUS] = STARTED
        rec[RS] = rec[RS] | {v}
        if prop is OP:
            if v in rec[PRS]:
                return None  # an inconsistent read, fatal in this branch
            for u, r in enumerate(q, start=1):
                if u == t:
                    continue
                if r[STATUS] == SERIALIZED and t not in r[SP]:
                    # u serializes before t, so u's uncommitted write to v
                    # (or a future one) would invalidate this read.
                    if v in r[WS]:
                        r[DOOMED] = True
                    else:
                        r[PWS] = r[PWS] | {v}
        else:
            if rec[STATUS] == SERIALIZED and v in rec[PRS]:
                rec[DOOMED] = True
        return _freeze(q)

    if stmt.kind is Kind.WRITE:
        v = stmt.var
        assert v is not None
        if rec[STATUS] == FINISHED:
            rec[SP] = _serialized_set(q)
            rec[STATUS] = STARTED
        elif rec[STATUS] == SERIALIZED and v in rec[PWS]:
            rec[DOOMED] = True
        rec[WS] = rec[WS] | {v}
        return _freeze(q)

    if stmt.kind is Kind.COMMIT:
        if rec[STATUS] == STARTED or rec[DOOMED]:
            return None  # must have serialized, and stayed consistent
        rs_t, ws_t, sp_t = rec[RS], rec[WS], rec[SP]
        for u, r in enumerate(q, start=1):
            if u == t:
                continue
            if u in sp_t:
                # u serialized before t: t's committed footprint becomes
                # prohibited for u, and overlapping writes doom u now.
                r[PRS] = r[PRS] | ws_t
                r[PWS] = r[PWS] | rs_t | ws_t
                if r[WS] & (ws_t | rs_t):
                    r[DOOMED] = True
            else:
                # u serializes after t: its global reads of t's writes
                # were stale.
                if ws_t & r[RS]:
                    r[DOOMED] = True
        _reset_thread(q, t)
        return _freeze(q)

    assert stmt.kind is Kind.ABORT
    _reset_thread(q, t)
    return _freeze(q)


def nondet_epsilon(
    state: SpecState, t: int, prop: SafetyProperty
) -> Optional[SpecState]:
    """The ε-transition of thread ``t``: guess its serialization point."""
    q = _thaw(state)
    rec = q[t - 1]
    if rec[STATUS] != STARTED or rec[DOOMED]:
        return None
    rec[SP] = _serialized_set(q)
    rec[STATUS] = SERIALIZED
    if prop is OP:
        for u, r in enumerate(q, start=1):
            if u == t:
                continue
            if r[STATUS] == STARTED:
                # u will serialize after t; its existing global reads of
                # t's writes would become stale if t commits.
                if r[RS] & rec[WS]:
                    rec[DOOMED] = True
                rec[PWS] = rec[PWS] | r[RS]
            elif r[STATUS] == SERIALIZED:
                # u serialized before t; t's reads must already reflect
                # u's writes, which are not committed yet.
                if r[WS] & rec[RS]:
                    r[DOOMED] = True
                r[PWS] = r[PWS] | rec[RS]
    return _freeze(q)


def build_nondet_spec(
    n: int, k: int, prop: SafetyProperty, *, max_states: Optional[int] = None
) -> NFA:
    """Materialize Σss / Σop for ``n`` threads and ``k`` variables."""
    alphabet = all_statements(n, k, include_abort=True)

    def step(state: SpecState):
        for stmt in alphabet:
            succ = nondet_step(state, stmt, prop)
            if succ is not None:
                yield stmt, succ
        for t in range(1, n + 1):
            succ = nondet_epsilon(state, t, prop)
            if succ is not None:
                yield EPSILON, succ

    return NFA.from_step([initial_state(n)], step, max_states=max_states)


def spec_accepts(
    word: Tuple[Statement, ...], n: int, k: int, prop: SafetyProperty
) -> bool:
    """Membership in L(Σ) by on-the-fly macro-simulation.

    Avoids materializing the automaton; used heavily by differential
    tests against the reference checkers.
    """
    current = _eclose({initial_state(n)}, n, prop)
    for stmt in word:
        nxt = set()
        for q in current:
            succ = nondet_step(q, stmt, prop)
            if succ is not None:
                nxt.add(succ)
        current = _eclose(nxt, n, prop)
        if not current:
            return False
    return True


def _eclose(states: set, n: int, prop: SafetyProperty) -> set:
    result = set(states)
    frontier = list(states)
    while frontier:
        q = frontier.pop()
        for t in range(1, n + 1):
            succ = nondet_epsilon(q, t, prop)
            if succ is not None and succ not in result:
                result.add(succ)
                frontier.append(succ)
    return result
