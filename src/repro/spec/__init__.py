"""TM specifications (Section 5): nondeterministic (Algorithm 5) and
deterministic (Algorithm 6) automata for strict serializability and
opacity, plus the canonical determinization used to anchor Theorem 3."""

from .common import OP, SS, SafetyProperty
from .nondet import (
    build_nondet_spec,
    initial_state as nondet_initial_state,
    nondet_epsilon,
    nondet_step,
    spec_accepts,
)
from .build import (
    build_canonical_spec,
    build_minimal_spec,
    cached_det_spec,
    cached_nondet_spec,
    clear_spec_cache,
)
from .det import (
    build_det_spec,
    det_spec_accepts,
    det_step,
    initial_state as det_initial_state,
)
from .compiled import (
    CompiledSpecOracle,
    cached_spec_oracle,
    clear_spec_oracle_cache,
    make_packed_step,
    pack_spec_state,
    unpack_spec_state,
)

__all__ = [
    "OP",
    "SS",
    "SafetyProperty",
    "build_nondet_spec",
    "nondet_initial_state",
    "nondet_epsilon",
    "nondet_step",
    "spec_accepts",
    "build_canonical_spec",
    "build_minimal_spec",
    "cached_det_spec",
    "cached_nondet_spec",
    "clear_spec_cache",
    "build_det_spec",
    "det_spec_accepts",
    "det_step",
    "det_initial_state",
    "CompiledSpecOracle",
    "cached_spec_oracle",
    "clear_spec_oracle_cache",
    "make_packed_step",
    "pack_spec_state",
    "unpack_spec_state",
]
