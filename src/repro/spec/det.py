"""Deterministic TM specifications Σdss and Σdop (paper Algorithm 6).

Unlike Algorithm 5, no serialization point is guessed: the automaton
tracks, deterministically, *all* serialization orders at once through two
predecessor relations over threads:

* ``u ∈ wp(t)`` — *weak* predecessor: if both ``u`` and ``t`` commit,
  ``u`` must serialize before ``t`` (not transitive; extended at
  commits);
* ``u ∈ sp(t)`` — *strong* predecessor: ``u`` must serialize before
  ``t`` no matter what (transitive; drives the opacity checks, where even
  aborting transactions are constrained).

A commit is refused iff it closes a precedence cycle through the
committing thread (``t ∈ wp(t)``, a doomed status, or — for opacity — a
strong cycle).  When ``t`` commits, its weak predecessors become
``pending``: still running, forced to serialize before a transaction that
has already committed, and therefore saddled with prohibited read/write
sets.

Transcription notes (see DESIGN.md):

* As in :mod:`repro.spec.nondet`, "invalid" is kept as an orthogonal
  sticky ``doomed`` flag instead of a status value.  Algorithm 6's literal
  ``Status(u) := pending`` at commit would *resurrect* an invalid thread
  (making ``(r,1)1 (w,1)2 c2 (r,2)2 (w,1)1 c2 c1`` wrongly strictly
  serializable); with the flag, the pending-bookkeeping happens while the
  doom sticks.
* Algorithm 6 leaves the strong-predecessor update at commit scoped under
  the opacity guard where its set ``U`` is defined; in ss-mode we take
  ``U = ∅`` (the ss checks never read ``sp`` beyond the pending
  inheritance).  Both readings are discharged by the Theorem 3
  equivalence check against Algorithm 5 and by differential tests
  against the reference checkers.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..automata.dfa import DFA
from ..core.statements import Kind, Statement, statements as all_statements
from .common import (
    EMPTY,
    FINISHED,
    PENDING,
    SS,
    STARTED,
    OP,
    SafetyProperty,
)

# Per-thread record: (status, doomed, rs, ws, prs, pws, wp, sp)
ThreadDetSpec = Tuple[
    str, bool, FrozenSet[int], FrozenSet[int], FrozenSet[int], FrozenSet[int],
    FrozenSet[int], FrozenSet[int],
]
DetSpecState = Tuple[ThreadDetSpec, ...]

# Record field indices, for readable mutation of thawed states.
STATUS, DOOMED, RS, WS, PRS, PWS, WP, SP = range(8)

RESET: ThreadDetSpec = (FINISHED, False, EMPTY, EMPTY, EMPTY, EMPTY, EMPTY, EMPTY)


def initial_state(n: int) -> DetSpecState:
    return (RESET,) * n


def _thaw(state: DetSpecState) -> List[List]:
    return [list(rec) for rec in state]


def _freeze(q: List[List]) -> DetSpecState:
    return tuple(tuple(rec) for rec in q)  # type: ignore[return-value]


def _reset_thread(q: List[List], t: int) -> None:
    q[t - 1] = list(RESET)
    for u, rec in enumerate(q, start=1):
        if u != t:
            rec[WP] = rec[WP] - {t}
            rec[SP] = rec[SP] - {t}


def _start_if_finished(q: List[List], t: int) -> None:
    """The Status(t) = finished branch of read/write: a fresh transaction
    inherits the pending threads (and their strong predecessors) as
    predecessors — they serialize before an already-committed transaction
    that really-happened-before this new one."""
    rec = q[t - 1]
    if rec[STATUS] != FINISHED:
        return
    pending = {u for u, r in enumerate(q, start=1) if r[STATUS] == PENDING}
    pending_preds: Set[int] = set()
    for r in q:
        if r[STATUS] == PENDING:
            pending_preds |= set(r[SP])
    rec[WP] = rec[WP] | pending
    rec[SP] = rec[SP] | pending | pending_preds
    rec[STATUS] = STARTED


def det_step(
    state: DetSpecState, stmt: Statement, prop: SafetyProperty
) -> Optional[DetSpecState]:
    """One transition of Algorithm 6 (``detSpec``); ``None`` rejects."""
    t = stmt.thread
    q = _thaw(state)
    rec = q[t - 1]

    if stmt.kind is Kind.READ:
        v = stmt.var
        assert v is not None
        if v in rec[WS]:
            return state  # local read of an own write
        strong_new: Set[int] = set()
        if prop is OP:
            # Threads forced strongly before t by reading the committed
            # value of v: those prohibited from reading v themselves, and
            # the strong predecessors of such threads.
            for u, r in enumerate(q, start=1):
                if v in r[PRS]:
                    strong_new.add(u)
                elif any(u in r2[SP] and v in r2[PRS] for r2 in q):
                    strong_new.add(u)
            if t in strong_new:
                return None  # reading v closes a strong cycle
        _start_if_finished(q, t)
        rec[RS] = rec[RS] | {v}
        if v in rec[PRS]:
            rec[DOOMED] = True
        for u, r in enumerate(q, start=1):
            if v in r[WS]:
                r[WP] = r[WP] | {t}
            if v in r[PRS]:
                rec[WP] = rec[WP] | {u}
        if prop is SS:
            return _freeze(q)
        frozen_new = frozenset(strong_new)
        for u, r in enumerate(q, start=1):
            if u == t or t in r[SP]:
                r[SP] = r[SP] | frozen_new
        for u in sorted(rec[SP]):
            r = q[u - 1]
            r[PWS] = r[PWS] | {v}
            if v in r[WS]:
                r[DOOMED] = True
        return _freeze(q)

    if stmt.kind is Kind.WRITE:
        v = stmt.var
        assert v is not None
        _start_if_finished(q, t)
        rec[WS] = rec[WS] | {v}
        if v in rec[PWS]:
            rec[DOOMED] = True
        for u, r in enumerate(q, start=1):
            if u == t:
                continue
            if v in r[RS]:
                rec[WP] = rec[WP] | {u}
                if prop is OP and t in r[SP]:
                    rec[DOOMED] = True
            if v in r[PWS]:
                rec[WP] = rec[WP] | {u}
        return _freeze(q)

    if stmt.kind is Kind.COMMIT:
        if t in rec[WP]:
            return None  # a weak-predecessor cycle through t
        if rec[DOOMED]:
            return None
        strong: Set[int] = set()
        if prop is OP:
            # Strong closure of the weak predecessors: they all serialize
            # before t once t commits.
            strong = set(rec[WP])
            for u2 in rec[WP]:
                strong |= set(q[u2 - 1][SP])
            if t in strong:
                return None  # committing closes a strong cycle
        wp_snapshot = frozenset(rec[WP])
        ws_t, rs_t = rec[WS], rec[RS]
        prs_t, pws_t = rec[PRS], rec[PWS]
        t_in_wp = frozenset(
            u2 for u2, r2 in enumerate(q, start=1) if t in r2[WP]
        )
        ww_conflict = frozenset(
            u2
            for u2, r2 in enumerate(q, start=1)
            if u2 != t and r2[WS] & ws_t
        )
        for u in sorted(wp_snapshot):
            r = q[u - 1]
            if r[WS] & ws_t:
                r[DOOMED] = True
            r[STATUS] = PENDING
            r[PRS] = r[PRS] | prs_t | ws_t
            r[PWS] = r[PWS] | pws_t | ws_t | rs_t
            for u2 in t_in_wp:
                q[u2 - 1][WP] = q[u2 - 1][WP] | {u}
            for u2 in ww_conflict:
                q[u2 - 1][WP] = q[u2 - 1][WP] | {u}
        frozen_strong = frozenset(strong)
        for u, r in enumerate(q, start=1):
            if u == t or t in r[SP]:
                r[SP] = r[SP] | frozen_strong
        _reset_thread(q, t)
        return _freeze(q)

    assert stmt.kind is Kind.ABORT
    _reset_thread(q, t)
    return _freeze(q)


def build_det_spec(
    n: int, k: int, prop: SafetyProperty, *, max_states: Optional[int] = None
) -> DFA:
    """Materialize Σdss / Σdop for ``n`` threads and ``k`` variables."""
    alphabet = all_statements(n, k, include_abort=True)

    def step(state: DetSpecState):
        for stmt in alphabet:
            succ = det_step(state, stmt, prop)
            if succ is not None:
                yield stmt, succ

    return DFA.from_step(initial_state(n), step, max_states=max_states)


def det_spec_accepts(
    word: Tuple[Statement, ...], n: int, k: int, prop: SafetyProperty
) -> bool:
    """Membership in L(Σd) without materializing the automaton."""
    state: Optional[DetSpecState] = initial_state(n)
    for stmt in word:
        assert state is not None
        state = det_step(state, stmt, prop)
        if state is None:
            return False
    return True
