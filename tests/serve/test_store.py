"""The daemon's resident store: stats face and failure tallies."""

from array import array

from repro.serve.store import RESIDENT_MARKER, ResidentStore

PAYLOAD = {"offsets": array("i", [0, 1, 2]), "num_states": 3}


def test_stats_carry_the_error_tally(tmp_path):
    store = ResidentStore(cache_dir=str(tmp_path), cache_backend="disk")
    assert store.stats()["errors"] == {}
    assert store.backend.save(("k", 1), PAYLOAD)
    # poison the hot tier in place: the next load rejects and tallies
    store.backend.hot._entries[("k", 1)] = b"garbage"
    assert store.backend.load(("k", 1)) is not None  # cold tier saves it
    stats = store.stats()
    assert stats["errors"]["corrupt"] == 1
    assert stats["cold"] == "disk"


def test_absorb_counts_taken_blobs():
    store = ResidentStore()
    assert store.absorb({}) == 0
    source = ResidentStore()
    assert source.backend.save(("k", 2), PAYLOAD)
    blobs = source.backend.export_blobs()
    assert store.absorb(blobs) == 1
    assert store.stats()["cold"] is None


def test_resident_marker_is_stable():
    # the supervisor's degradation ladder string-matches this
    assert RESIDENT_MARKER == "<resident>"
