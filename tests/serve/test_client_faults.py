"""``ServeClient`` under wire faults: retries, torn lines, dead peers.

Half raw-socket puppetry (a fake daemon scripted byte-by-byte), half
the real in-process daemon with an installed fault schedule — every
failure shape must surface as a clean :class:`ServeClientError`, never
a hang or a stray ``JSONDecodeError``.
"""

import socket
import threading
import time

import pytest

from repro.faultplane import installed, reset
from repro.serve import CheckServer, ServeClient, ServeClientError
from repro.serve.protocol import encode

DEFAULTS = {"timeout_s": 60, "retries": 1, "backoff_s": 0}


class _Daemon:
    """An in-process daemon (same shape as tests/serve/test_server)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("defaults", DEFAULTS)
        kwargs.setdefault("log", lambda _line: None)
        self.server = CheckServer(**kwargs)
        self.server.bind()
        self.thread = threading.Thread(
            target=lambda: self.server.serve_forever(
                install_signals=False
            ),
            daemon=True,
        )
        self.thread.start()

    def client(self, **kwargs):
        return ServeClient(port=self.server.port, **kwargs)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        if self.thread.is_alive():
            self.server.initiate_drain()
            self.thread.join(timeout=60)
            assert not self.thread.is_alive(), "daemon failed to drain"


@pytest.fixture(autouse=True)
def _pristine_plane():
    reset()
    yield
    reset()


class _Puppet:
    """A one-connection fake daemon with a scripted response."""

    def __init__(self, sock_path, script, bind_delay=0.0):
        self.sock_path = str(sock_path)
        self.script = script
        self.bind_delay = bind_delay
        self.request_line = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        if self.bind_delay:
            time.sleep(self.bind_delay)
        srv = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        srv.bind(self.sock_path)
        srv.listen(1)
        conn, _addr = srv.accept()
        try:
            self.request_line = conn.makefile("rb").readline()
            self.script(conn)
        finally:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
            srv.close()

    def join(self):
        self.thread.join(timeout=30)
        assert not self.thread.is_alive()


def test_connect_retry_rides_out_a_late_bind(tmp_path):
    # The daemon binds its socket a beat after the client starts: the
    # connect loop must absorb the refused/missing-socket window.
    sock = tmp_path / "late.sock"
    puppet = _Puppet(
        sock,
        lambda conn: conn.sendall(
            encode({"op": "health", "ok": True})
        ),
        bind_delay=0.3,
    )
    with ServeClient(
        socket_path=str(sock), timeout=10.0, connect_timeout=10.0
    ) as client:
        assert client.health()["ok"] is True
    puppet.join()


def test_connect_gives_up_cleanly_when_nothing_listens(tmp_path):
    with pytest.raises(ServeClientError, match="cannot reach daemon"):
        ServeClient(
            socket_path=str(tmp_path / "absent.sock"),
            connect_timeout=0.3,
        )


def test_partial_line_recv_is_reassembled(tmp_path):
    # The response dribbles in one byte at a time: readline must
    # reassemble the full NDJSON line, not surface a fragment.
    payload = encode({"op": "health", "ok": True, "pad": "x" * 64})

    def dribble(conn):
        for index in range(len(payload)):
            conn.sendall(payload[index:index + 1])
            if index % 16 == 0:
                time.sleep(0.01)

    sock = tmp_path / "dribble.sock"
    puppet = _Puppet(sock, dribble)
    with ServeClient(
        socket_path=str(sock), timeout=10.0, connect_timeout=10.0
    ) as client:
        response = client.health()
    assert response["ok"] is True and response["pad"] == "x" * 64
    puppet.join()


def test_mid_response_death_is_a_clean_error(tmp_path):
    # The daemon dies halfway through a response line: the client
    # reports a truncated response, it does not hang or mis-parse.
    payload = encode({"op": "health", "ok": True})

    def die_midline(conn):
        conn.sendall(payload[: len(payload) // 2])

    sock = tmp_path / "dead.sock"
    puppet = _Puppet(sock, die_midline)
    with ServeClient(
        socket_path=str(sock), timeout=10.0, connect_timeout=10.0
    ) as client:
        with pytest.raises(
            ServeClientError, match="truncated response"
        ):
            client.health()
    puppet.join()


def test_death_before_response_is_a_clean_error(tmp_path):
    sock = tmp_path / "eof.sock"
    puppet = _Puppet(sock, lambda conn: None)
    with ServeClient(
        socket_path=str(sock), timeout=10.0, connect_timeout=10.0
    ) as client:
        with pytest.raises(
            ServeClientError, match="closed the connection"
        ):
            client.health()
    puppet.join()


def test_garbage_response_is_a_clean_error(tmp_path):
    sock = tmp_path / "garbage.sock"
    puppet = _Puppet(
        sock, lambda conn: conn.sendall(b"not json at all\n")
    )
    with ServeClient(
        socket_path=str(sock), timeout=10.0, connect_timeout=10.0
    ) as client:
        with pytest.raises(
            ServeClientError, match="unparseable response"
        ):
            client.health()
    puppet.join()


# ----------------------------------------------------------------------
# Injected wire faults against the real daemon
# ----------------------------------------------------------------------


def _request():
    return {
        "op": "check", "id": "r1", "tm": "dstm", "property": "ss",
        "n": 2, "k": 1,
    }


def test_server_reset_then_reconnect_recovers():
    schedule = {
        "name": "wire-reset", "seed": 0,
        "rules": [{"site": "serve.send", "match": "server:check",
                   "nth": 1, "fault": "reset"}],
    }
    with installed(schedule), _Daemon() as daemon:
        with pytest.raises(ServeClientError):
            with daemon.client(timeout=30.0) as client:
                client.request(_request())
        # The schedule's window is spent: a fresh connection gets the
        # verdict the first request already computed.
        with daemon.client(timeout=60.0) as client:
            response = client.request(_request())
        assert response["status"] == "pass"
        stats = daemon.server.stats_record()
        assert stats["wire_faults"] == {"serve.send:reset": 1}


def test_server_partial_send_surfaces_and_recovers():
    schedule = {
        "name": "wire-torn", "seed": 3,
        "rules": [{"site": "serve.send", "match": "server:check",
                   "nth": 1, "fault": "partial_send"}],
    }
    with installed(schedule), _Daemon() as daemon:
        with pytest.raises(ServeClientError):
            with daemon.client(timeout=30.0) as client:
                client.request(_request())
        with daemon.client(timeout=60.0) as client:
            response = client.request(_request())
        assert response["status"] == "pass"
        assert daemon.server.stats_record()["wire_faults"] == {
            "serve.send:partial_send": 1
        }


def test_client_send_faults_raise_cleanly():
    schedule = {
        "name": "client-reset", "seed": 0,
        "rules": [{"site": "serve.send", "match": "client:*",
                   "nth": 1, "fault": "reset"}],
    }
    with installed(schedule), _Daemon() as daemon:
        with pytest.raises(ServeClientError, match="injected reset"):
            with daemon.client(timeout=30.0) as client:
                client.request(_request())
        with daemon.client(timeout=60.0) as client:
            assert client.request(_request())["status"] == "pass"
        # Client-side faults never touch the daemon's wire counters.
        assert daemon.server.stats_record()["wire_faults"] == {}


def test_recv_stall_only_delays():
    schedule = {
        "name": "wire-stall", "seed": 0,
        "rules": [{"site": "serve.recv", "match": "server:*",
                   "nth": 1, "fault": "stall_ms", "stall_ms": 50}],
    }
    with installed(schedule), _Daemon() as daemon:
        with daemon.client(timeout=60.0) as client:
            assert client.request(_request())["status"] == "pass"
        assert daemon.server.stats_record()["wire_faults"] == {
            "serve.recv:stall_ms": 1
        }
