"""The serve wire protocol: strict validation, canonical encoding."""

import json

import pytest

from repro.serve.protocol import (
    ProtocolError,
    build_cell,
    busy_response,
    check_response,
    encode,
    error_response,
    parse_request,
)


def _line(obj) -> bytes:
    return (json.dumps(obj) + "\n").encode()


def test_parse_defaults_op_to_check():
    request = parse_request(_line({"tm": "dstm", "property": "ss"}))
    assert request["op"] == "check"


def test_parse_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        parse_request(b"{nope\n")
    with pytest.raises(ProtocolError, match="JSON object"):
        parse_request(b"[1, 2]\n")
    with pytest.raises(ProtocolError, match="unknown op"):
        parse_request(_line({"op": "frobnicate"}))
    with pytest.raises(ProtocolError, match="id must be"):
        parse_request(_line({"op": "health", "id": [1]}))
    with pytest.raises(ProtocolError, match="no keys beyond id"):
        parse_request(_line({"op": "health", "tm": "dstm"}))


def test_build_cell_is_campaign_strict():
    request = parse_request(
        _line({"tm": "dstm", "property": "ss", "n": 2, "k": 1,
               "timeout_s": 5, "id": 7})
    )
    cell, warm = build_cell(request)
    assert warm is True
    assert cell["tm"] == "dstm" and cell["timeout_s"] == 5
    assert cell["retries"] == 2  # campaign POLICY_DEFAULTS apply

    # same strictness as a campaign spec: unknown keys/names are errors
    with pytest.raises(ProtocolError, match="unknown key"):
        build_cell(parse_request(
            _line({"tm": "dstm", "property": "ss", "bogus": 1})
        ))
    with pytest.raises(ProtocolError, match="unknown TM"):
        build_cell(parse_request(
            _line({"tm": "nope", "property": "ss"})
        ))
    with pytest.raises(ProtocolError, match="missing 'property'"):
        build_cell(parse_request(_line({"tm": "dstm"})))


def test_build_cell_owns_the_cache():
    for key in ("cache_dir", "cache_backend"):
        with pytest.raises(ProtocolError, match="daemon owns"):
            build_cell(parse_request(_line(
                {"tm": "dstm", "property": "ss", key: "/tmp/x"}
            )))
    with pytest.raises(ProtocolError, match="warm must be"):
        build_cell(parse_request(_line(
            {"tm": "dstm", "property": "ss", "warm": "yes"}
        )))
    _cell, warm = build_cell(parse_request(_line(
        {"tm": "dstm", "property": "ss", "warm": False}
    )))
    assert warm is False


def test_build_cell_applies_server_defaults_under_request():
    request = parse_request(
        _line({"tm": "dstm", "property": "ss", "retries": 0})
    )
    cell, _warm = build_cell(
        request, {"timeout_s": 9.0, "retries": 5}
    )
    assert cell["timeout_s"] == 9.0  # server default fills the gap
    assert cell["retries"] == 0  # the request wins


def test_responses_round_trip_and_sort_keys():
    outcome = {
        "status": "pass",
        "result": {"holds": True},
        "error": None,
        "attempts": 1,
        "faults": [],
        "seconds": 0.01,
        "stats": {"safety_rows": 0, "warm_safety_rows": 5},
    }
    record = check_response("abc", outcome)
    assert record["id"] == "abc" and record["status"] == "pass"
    assert record["stats"]["safety_rows"] == 0
    line = encode(record)
    assert line.endswith(b"\n")
    assert json.loads(line) == record
    # sorted keys: canonical bytes for differential pins
    assert line == encode(json.loads(line.decode()))

    busy = busy_response(1)
    assert busy["status"] == "busy" and busy["result"] is None
    err = error_response(None, "boom")
    assert err["op"] == "error" and err["error"] == "boom"
