"""Daemon lifecycle: conformance, resident warmth, isolation, drain.

In-process tests run the accept loop in a thread against a loopback
TCP port (0 = ephemeral); the subprocess tests exercise the real CLI
over an AF_UNIX socket, including kill -9 + restart re-hydration and
SIGTERM drain.  Checks are tiny (2,1) instances so each supervised
fork round-trip stays fast.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign.supervisor import run_cell
from repro.serve import CheckServer, ResidentStore, ServeClient
from repro.serve.protocol import encode, parse_request

DEFAULTS = {"timeout_s": 60, "retries": 1, "backoff_s": 0}


class _Daemon:
    """An in-process daemon: server thread + exit-code capture."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("defaults", DEFAULTS)
        kwargs.setdefault("log", lambda _line: None)
        self.server = CheckServer(**kwargs)
        self.server.bind()
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        self.exit_code = self.server.serve_forever(
            install_signals=False
        )

    def client(self, **kwargs):
        return ServeClient(port=self.server.port, **kwargs)

    def stop(self, timeout=60):
        self.server.initiate_drain()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "daemon failed to drain"
        return self.exit_code

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        if self.thread.is_alive():
            self.stop()


def _check(client, **request):
    request.setdefault("tm", "dstm")
    request.setdefault("property", "ss")
    request.setdefault("n", 2)
    request.setdefault("k", 1)
    return client.check(request)


# ----------------------------------------------------------------------
# Conformance: byte-identical to the one-shot path, warm or cold
# ----------------------------------------------------------------------


def test_daemon_verdicts_byte_identical_across_axes(tmp_path):
    # the supervised one-shot reference (itself pinned against
    # check_safety in the campaign tests)
    from repro.campaign.spec import expand_cell

    reference = {}
    for tm, prop in (("dstm", "ss"), ("modtl2", "op")):
        cell = expand_cell(
            {"tm": tm, "property": prop, "n": 2, "k": 1}, DEFAULTS
        )
        reference[tm, prop] = run_cell(cell)["result"]

    with _Daemon(
        store=ResidentStore(str(tmp_path / "cold"), "mmap"), workers=2
    ) as daemon:
        with daemon.client() as client:
            for tm, prop in reference:
                for warm in (True, False):
                    for jobs in (1, 2):
                        record = _check(
                            client, tm=tm, property=prop,
                            warm=warm, jobs=jobs,
                        )
                        assert record["status"] in ("pass", "fail")
                        assert record["result"] == reference[tm, prop], (
                            f"{tm}/{prop} warm={warm} jobs={jobs}"
                        )
                        # canonical encoding: byte-identical lines
                        assert encode(
                            {"result": record["result"]}
                        ) == encode(
                            {"result": reference[tm, prop]}
                        )


def test_second_identical_request_hits_resident_tier():
    with _Daemon() as daemon:
        with daemon.client() as client:
            first = _check(client)
            assert first["status"] == "pass"
            assert first["stats"]["safety_rows"] > 0
            second = _check(client)
            assert second["result"] == first["result"]
            assert second["stats"]["safety_rows"] == 0
            assert second["stats"]["warm_safety_rows"] > 0
            stats = client.stats()
            assert stats["cache"]["keys"] > 0
            assert stats["requests"]["pass"] == 2


def test_concurrent_clients_byte_identical():
    with _Daemon(workers=2, queue_depth=16) as daemon:
        with daemon.client() as warmup:
            expected = {}
            for tm in ("seq", "dstm"):
                record = _check(warmup, tm=tm)
                assert record["status"] == "pass"
                expected[tm] = record["result"]

        results = []
        errors = []

        def hammer(tm, count):
            try:
                with daemon.client() as client:
                    for _ in range(count):
                        results.append(
                            (tm, _check(client, tm=tm))
                        )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(tm, 3))
            for tm in ("seq", "dstm", "seq", "dstm")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(results) == 12
        for tm, record in results:
            assert record["status"] == "pass"
            assert record["result"] == expected[tm]


# ----------------------------------------------------------------------
# Isolation and backpressure
# ----------------------------------------------------------------------


def test_injected_faults_fail_only_their_request():
    with _Daemon() as daemon:
        with daemon.client() as client:
            killed = _check(
                client, tm="seq",
                inject={"sigkill_attempts": 5}, retries=1,
            )
            assert killed["status"] == "error"
            assert [f["class"] for f in killed["faults"]] == [
                "crash", "crash"
            ]

            hung = _check(
                client, tm="seq",
                inject={"hang_attempts": 5, "hang_s": 60},
                timeout_s=1.0, retries=0,
            )
            assert hung["status"] == "timeout"

            ballooned = _check(
                client, tm="seq",
                inject={"alloc_mb": 512}, memory_mb=128, retries=0,
            )
            assert ballooned["status"] == "error"

            # the daemon took three faulted requests and kept serving
            clean = _check(client, tm="seq")
            assert clean["status"] == "pass"
            health = client.health()
            assert health["ok"] and not health["draining"]
            stats = client.stats()
            assert stats["faults"]["crash"] == 2
            assert stats["faults"]["timeout"] == 1


def test_corrupted_resident_payload_degrades_not_dies():
    with _Daemon() as daemon:
        with daemon.client() as client:
            first = _check(client)
            assert first["status"] == "pass"
            # poison every resident blob: loads now reject (and
            # quarantine), which must read as a cold rebuild, never an
            # error or a changed verdict
            hot = daemon.server.store.backend.hot
            for key in hot.snapshot_keys():
                hot.put_blob_if_changed(key, b"\x80garbage not pickle")
            again = _check(client)
            assert again["status"] == "pass"
            assert again["result"] == first["result"]
            assert again["stats"]["safety_rows"] > 0  # rebuilt cold
            assert client.health()["ok"]


def test_queue_full_answers_busy():
    with _Daemon(workers=1, queue_depth=1) as daemon:
        hang = dict(
            tm="seq", property="ss", n=2, k=1,
            inject={"hang_attempts": 1, "hang_s": 60},
            timeout_s=3.0, retries=0,
        )
        def _await(poll, predicate, what):
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = poll.stats()
                if predicate(stats):
                    return
                time.sleep(0.05)
            pytest.fail(f"daemon never {what}: {stats}")

        # fill the worker first, then the one queue slot: admission
        # capacity counts *waiting* requests, so the sends must be
        # sequenced for the overflow to be deterministic
        blocked = [daemon.client(), daemon.client()]
        with daemon.client() as poll:
            blocked[0]._sock.sendall(encode(dict(hang, op="check")))
            _await(
                poll,
                lambda s: s["inflight"] == 1 and s["queued"] == 0,
                "started the first hang",
            )
            blocked[1]._sock.sendall(encode(dict(hang, op="check")))
            _await(
                poll, lambda s: s["queued"] == 1, "queued the second"
            )
            rejected = _check(poll, tm="seq", id="overflow")
            assert rejected["status"] == "busy"
            assert rejected["id"] == "overflow"
            assert poll.stats()["requests"]["busy"] == 1
        # the blocked requests still complete (as timeouts) — nothing
        # was lost, only the overflow was refused
        for client in blocked:
            with client:
                response = json.loads(
                    client._reader.readline().decode()
                )
                assert response["status"] == "timeout"


def test_drain_finishes_inflight_and_refuses_new(tmp_path):
    daemon = _Daemon(workers=1)
    with daemon.client() as client:
        assert _check(client, tm="seq")["status"] == "pass"
        record = client.shutdown()
        assert record["ok"] is True
        late = _check(client, tm="seq", id="late")
        assert late["status"] == "busy"
        assert "draining" in late["error"]
    assert daemon.stop() == 0
    final = daemon.server.stats_record()
    assert final["requests"]["pass"] == 1
    assert final["requests"]["busy"] == 1


def test_protocol_errors_answered_inline():
    with _Daemon() as daemon:
        with daemon.client() as client:
            bad = client.request({"op": "check", "tm": "dstm"})
            assert bad["op"] == "error"
            assert "missing 'property'" in bad["error"]
            worse = client.request({"op": "check", "tm": "dstm",
                                    "property": "ss", "cache_dir": "x"})
            assert worse["op"] == "error"
            assert client.stats()["requests"]["protocol_error"] == 2
            # raw garbage on the wire is also answered, not fatal
            client._sock.sendall(b"{not json\n")
            line = json.loads(client._reader.readline().decode())
            assert line["op"] == "error"
            assert client.health()["ok"]


# ----------------------------------------------------------------------
# Subprocess: the real CLI daemon over AF_UNIX
# ----------------------------------------------------------------------


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    return env


def _spawn_daemon(sock, cache_dir):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", sock, "--cache-dir", cache_dir,
         "--cache-backend", "mmap", "--timeout-s", "60",
         "--retries", "1", "--quiet"],
        env=_env(),
    )


@pytest.mark.slow
def test_kill9_restart_rehydrates_from_cold_tier(tmp_path):
    sock = str(tmp_path / "serve.sock")
    cache_dir = str(tmp_path / "segments")
    daemon = _spawn_daemon(sock, cache_dir)
    try:
        with ServeClient(socket_path=sock, connect_timeout=30) as client:
            first = _check(client)
            assert first["status"] == "pass"
            assert first["stats"]["safety_rows"] > 0
        os.kill(daemon.pid, signal.SIGKILL)
        daemon.wait(timeout=30)
        assert daemon.returncode == -signal.SIGKILL
    finally:
        if daemon.poll() is None:  # pragma: no cover - cleanup
            daemon.kill()

    # restart against the same segments: the first request re-hydrates
    # through the cold tier instead of recomputing
    daemon = _spawn_daemon(sock, cache_dir)
    try:
        with ServeClient(socket_path=sock, connect_timeout=30) as client:
            again = _check(client)
            assert again["status"] == "pass"
            assert again["result"] == first["result"]
            assert again["stats"]["safety_rows"] == 0
            assert again["stats"]["warm_safety_rows"] > 0
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=30) == 0
        assert not os.path.exists(sock)  # drain removed the socket
    finally:
        if daemon.poll() is None:  # pragma: no cover - cleanup
            daemon.kill()


@pytest.mark.slow
def test_cli_client_mode_and_sigterm_drain(tmp_path):
    sock = str(tmp_path / "serve.sock")
    cache_dir = str(tmp_path / "segments")
    request_file = tmp_path / "requests.json"
    request_file.write_text(json.dumps([
        {"id": "a", "tm": "dstm", "property": "ss", "n": 2, "k": 1},
        {"id": "b", "tm": "dstm", "property": "ss", "n": 2, "k": 1},
    ]))
    daemon = _spawn_daemon(sock, cache_dir)
    try:
        out = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--check-request", str(request_file)],
            env=_env(), capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        lines = [json.loads(l) for l in out.stdout.splitlines()]
        assert [l["id"] for l in lines] == ["a", "b"]
        assert all(l["status"] == "pass" for l in lines)
        assert lines[0]["result"] == lines[1]["result"]
        assert lines[1]["stats"]["safety_rows"] == 0

        health = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--socket", sock,
             "--health"],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert health.returncode == 0
        assert json.loads(health.stdout)["ok"] is True

        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=30) == 0
    finally:
        if daemon.poll() is None:  # pragma: no cover - cleanup
            daemon.kill()


def test_parse_request_accepts_client_encoding():
    # the client and server agree on the line format end to end
    line = encode({"op": "check", "tm": "dstm", "property": "ss"})
    request = parse_request(line)
    assert request["tm"] == "dstm"
