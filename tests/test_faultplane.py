"""The deterministic fault plane: validation, windows, determinism."""

import json

import pytest

from repro import faultplane
from repro.faultplane import (
    FaultPlane,
    FaultScheduleError,
    MAX_STALL_MS,
    fault_check,
    injected_counts,
    install,
    installed,
    load_schedule,
    reset,
    schedule_digest,
    uninstall,
    validate_schedule,
)


@pytest.fixture(autouse=True)
def _pristine_plane():
    reset()
    yield
    reset()


def _schedule(**overrides):
    base = {
        "name": "t",
        "seed": 0,
        "rules": [{"site": "cache.save", "fault": "eio"}],
    }
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_canonical_form_fills_defaults():
    canon = validate_schedule(_schedule())
    assert canon["rules"][0] == {
        "site": "cache.save", "match": "*", "nth": 1, "count": 1,
        "fault": "eio",
    }


def test_equivalent_schedules_share_a_digest():
    explicit = _schedule(
        rules=[{"site": "cache.save", "fault": "eio", "match": "*",
                "nth": 1, "count": 1}]
    )
    assert schedule_digest(_schedule()) == schedule_digest(explicit)


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda s: s.update(bogus=1), "unknown key"),
        (lambda s: s.update(seed=-1), "seed"),
        (lambda s: s.update(seed=True), "seed"),
        (lambda s: s.update(rules=[]), "non-empty list"),
        (lambda s: s["rules"][0].update(site="disk.save"),
         "unknown site"),
        (lambda s: s["rules"][0].update(fault="explode"),
         "unknown fault"),
        (lambda s: s["rules"][0].update(nth=0), "nth"),
        (lambda s: s["rules"][0].update(count=0), "count"),
        (lambda s: s["rules"][0].update(match=""), "match"),
        (lambda s: s["rules"][0].update(stall_ms=10), "stall_ms"),
        (lambda s: s["rules"][0].update(keep_bytes=3), "keep_bytes"),
    ],
)
def test_validation_rejects(mutate, fragment):
    schedule = _schedule()
    mutate(schedule)
    with pytest.raises(FaultScheduleError, match=fragment):
        validate_schedule(schedule)


def test_site_fault_compatibility_enforced():
    # drop_fsync belongs to journal.fsync, never to a cache save.
    with pytest.raises(FaultScheduleError, match="cannot be injected"):
        validate_schedule(
            _schedule(rules=[{"site": "cache.save",
                              "fault": "drop_fsync"}])
        )


def test_stall_requires_bounded_duration():
    for bad in (0, -5, MAX_STALL_MS + 1):
        with pytest.raises(FaultScheduleError, match="stall_ms"):
            validate_schedule(
                _schedule(rules=[{"site": "cache.load",
                                  "fault": "stall_ms",
                                  "stall_ms": bad}])
            )


def test_load_schedule_rejects_bad_json(tmp_path):
    path = tmp_path / "s.json"
    path.write_text("{not json")
    with pytest.raises(FaultScheduleError, match="not valid JSON"):
        load_schedule(str(path))
    with pytest.raises(FaultScheduleError, match="cannot read"):
        load_schedule(str(tmp_path / "absent.json"))


# ----------------------------------------------------------------------
# Trigger windows and matching
# ----------------------------------------------------------------------


def test_nth_and_count_open_a_window():
    plane = FaultPlane(
        _schedule(rules=[{"site": "cache.save", "fault": "eio",
                          "nth": 2, "count": 2}])
    )
    fired = [
        plane.check("cache.save", "k") is not None for _ in range(5)
    ]
    assert fired == [False, True, True, False, False]
    assert plane.counts() == {"cache.save:eio": 2}


def test_match_glob_scopes_a_rule():
    plane = FaultPlane(
        _schedule(rules=[{"site": "serve.send", "fault": "reset",
                          "match": "server:check"}])
    )
    assert plane.check("serve.send", "server:health") is None
    assert plane.check("serve.send", "client:check") is None
    assert plane.check("serve.send", "server:check") is not None


def test_first_open_rule_wins_but_all_counters_advance():
    plane = FaultPlane(
        _schedule(rules=[
            {"site": "cache.save", "fault": "eio", "nth": 1},
            {"site": "cache.save", "fault": "enospc", "nth": 1,
             "count": 2},
        ])
    )
    first = plane.check("cache.save", "k")
    assert first.fault == "eio"
    # Rule 2's counter advanced during call 1, so its nth=1..2 window
    # still covers call 2.
    second = plane.check("cache.save", "k")
    assert second.fault == "enospc"
    assert plane.check("cache.save", "k") is None


def test_raise_io_carries_errno_and_path():
    plane = FaultPlane(
        _schedule(rules=[{"site": "cache.save", "fault": "enospc"}])
    )
    fault = plane.check("cache.save", "k")
    with pytest.raises(OSError) as exc:
        fault.raise_io("/some/path")
    import errno

    assert exc.value.errno == errno.ENOSPC
    assert exc.value.filename == "/some/path"
    assert "injected" in str(exc.value)


# ----------------------------------------------------------------------
# Torn-write draws
# ----------------------------------------------------------------------


def test_torn_draws_are_seed_deterministic():
    def draws(seed):
        plane = FaultPlane(
            _schedule(seed=seed, rules=[
                {"site": "cache.save", "fault": "torn_write",
                 "count": 4},
            ])
        )
        out = []
        for _ in range(4):
            fault = plane.check("cache.save", "k")
            out.append(len(fault.torn(b"x" * 100)))
        return out

    assert draws(7) == draws(7)
    assert draws(7) != draws(8)  # astronomically unlikely to collide
    assert all(length < 100 for length in draws(7))


def test_keep_bytes_pins_the_truncation():
    plane = FaultPlane(
        _schedule(rules=[{"site": "journal.append",
                          "fault": "torn_write", "keep_bytes": 5}])
    )
    fault = plane.check("journal.append", "k")
    assert fault.torn(b"0123456789") == b"01234"
    assert fault.torn(b"ab") == b"ab"  # never longer than the data


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------


def test_fault_check_is_inert_without_a_schedule():
    assert fault_check("cache.save", "k") is None
    assert injected_counts() == {}


def test_installed_context_scopes_activation():
    with installed(_schedule()) as plane:
        fault = fault_check("cache.save", "k")
        assert fault is not None and fault.fault == "eio"
        assert injected_counts() == {"cache.save:eio": 1}
        assert plane.counts() == {"cache.save:eio": 1}
    assert fault_check("cache.save", "k") is None


def test_env_schedule_loads_lazily(tmp_path, monkeypatch):
    path = tmp_path / "s.json"
    path.write_text(json.dumps(_schedule()))
    monkeypatch.setenv(faultplane.SCHEDULE_ENV, str(path))
    reset()  # env is consulted on the next check
    assert fault_check("cache.save", "k") is not None
    assert injected_counts() == {"cache.save:eio": 1}


def test_broken_env_schedule_raises_loudly(tmp_path, monkeypatch):
    path = tmp_path / "s.json"
    path.write_text("{broken")
    monkeypatch.setenv(faultplane.SCHEDULE_ENV, str(path))
    reset()
    with pytest.raises(FaultScheduleError):
        fault_check("cache.save", "k")


def test_uninstall_beats_the_env(tmp_path, monkeypatch):
    path = tmp_path / "s.json"
    path.write_text(json.dumps(_schedule()))
    monkeypatch.setenv(faultplane.SCHEDULE_ENV, str(path))
    reset()
    uninstall()  # explicit deactivation wins over the env var
    assert fault_check("cache.save", "k") is None


def test_install_replaces_the_active_plane():
    install(_schedule())
    install(
        _schedule(rules=[{"site": "cache.load", "fault": "eio"}])
    )
    assert fault_check("cache.save", "k") is None
    assert fault_check("cache.load", "k") is not None
