"""The rules validator must catch deliberately broken TM algorithms.

``validate_rules`` passes on all shipped TMs (test_framework.py); these
tests confirm it is not vacuous by feeding it TMs that violate each rule
in turn.
"""

from typing import List, Tuple

from repro.core.statements import Command, Kind
from repro.tm import Ext, Resp, SequentialTM, TMAlgorithm, validate_rules
from repro.tm.algorithm import ABORT_EXT, Transition
from repro.tm.explore import explore_nodes


class _BrokenBase(SequentialTM):
    """Sequential TM with a hook for targeted breakage."""


class TestRuleViolations:
    def test_r5_missing_transition_detected(self):
        class NoCommitTM(_BrokenBase):
            name = "no-commit"

            def transitions(self, state, cmd, thread):
                if cmd.kind is Kind.COMMIT:
                    return []  # neither progress nor abort: violates R5
                return super().transitions(state, cmd, thread)

        tm = NoCommitTM(2, 1)
        problems = validate_rules(tm, explore_nodes(tm))
        assert any(p.startswith("R5") for p in problems)

    def test_r6_abort_with_wrong_response_detected(self):
        class BadAbortTM(_BrokenBase):
            name = "bad-abort"

            def transitions(self, state, cmd, thread):
                result = super().transitions(state, cmd, thread)
                return [
                    Transition(tr.ext, Resp.DONE, tr.state)
                    if tr.ext.is_abort
                    else tr
                    for tr in result
                ]

        tm = BadAbortTM(2, 1)
        problems = validate_rules(tm, explore_nodes(tm))
        assert any(p.startswith("R6") for p in problems)

    def test_r7_duplicate_extended_command_detected(self):
        class DuplicateTM(_BrokenBase):
            name = "dup"

            def progress(self, state, cmd, thread):
                result = super().progress(state, cmd, thread)
                if result and cmd.kind is Kind.READ:
                    ext, resp, q = result[0]
                    other = self.abort_reset(q, thread)
                    if other != q:
                        return result + [(ext, resp, other)]
                    # force a distinct successor: flip thread 1's status
                    flipped = (1 - q[0],) + q[1:]
                    return result + [(ext, resp, flipped)]
                return result

        tm = DuplicateTM(2, 1)
        problems = validate_rules(tm, explore_nodes(tm))
        assert any(p.startswith("R7") for p in problems)

    def test_r8_nondeterminism_without_conflict_detected(self):
        class TwoWayTM(_BrokenBase):
            name = "two-way"

            def progress(self, state, cmd, thread):
                result = super().progress(state, cmd, thread)
                if result and cmd.kind is Kind.READ:
                    ext, resp, q = result[0]
                    # a second, distinct extended command for the same
                    # statement with φ = false
                    return result + [(Ext("peek", cmd.var), resp, q)]
                return result

        tm = TwoWayTM(2, 1)
        problems = validate_rules(tm, explore_nodes(tm))
        assert any(p.startswith("R8") for p in problems)

    def test_r8_allowed_under_conflict(self):
        class ConflictingTM(_BrokenBase):
            name = "conflicting"

            def conflict(self, state, cmd, thread):
                return cmd.kind is Kind.READ

            def progress(self, state, cmd, thread):
                result = super().progress(state, cmd, thread)
                if result and cmd.kind is Kind.READ:
                    ext, resp, q = result[0]
                    return result + [(Ext("peek", cmd.var), resp, q)]
                return result

        tm = ConflictingTM(2, 1)
        problems = validate_rules(tm, explore_nodes(tm))
        assert not any(p.startswith("R8") for p in problems)

    def test_clean_tm_passes(self):
        tm = SequentialTM(2, 1)
        assert validate_rules(tm, explore_nodes(tm)) == []
