"""Differential tests for sharded (``jobs > 1``) exploration.

The sharded paths ship nodes to worker processes in the codec-bits
*stable* encoding and merge the returned rows back into the parent's
dense intern tables; every observable output — verdicts,
counterexamples, node orders, edge lists, all reported counts — must be
byte-identical to the serial ``jobs=1`` paths.  Instances are kept small
so the pool start-up cost stays bounded.
"""

import pytest

from repro.checking import check_safety
from repro.spec import OP, SS
from repro.tm import (
    DSTM,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    TwoPhaseLockingTM,
    compile_tm,
)
from repro.tm.compiled import _spawn_seed
from repro.tm.explore import build_liveness_graph, explore_nodes


def test_stable_encoding_round_trips():
    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    for node in explore_nodes(tm)[:200]:
        packed = engine.encode_node(node)
        stable = engine.stable_of_node(packed)
        assert engine.node_of_stable(stable) == packed


def test_stable_encoding_translates_across_engines():
    """A fresh engine (different intern order) resolves another engine's
    stable ids to the same rich nodes."""
    a = compile_tm(DSTM(2, 2))
    b = compile_tm(DSTM(2, 2))
    nodes = explore_nodes(DSTM(2, 2))
    # warm engine a in exploration order, engine b in reverse order, so
    # their dense view ids genuinely differ
    for node in nodes:
        a.encode_node(node)
    for node in reversed(nodes):
        b.encode_node(node)
    for node in nodes[:100]:
        stable = a.stable_of_node(a.encode_node(node))
        assert b.decode_node(b.node_of_stable(stable)) == node


def test_explore_nodes_jobs_identical():
    assert explore_nodes(DSTM(2, 2), jobs=2) == explore_nodes(DSTM(2, 2))


def test_liveness_graph_jobs_identical():
    par = build_liveness_graph(TwoPhaseLockingTM(2, 1), jobs=2)
    ser = build_liveness_graph(TwoPhaseLockingTM(2, 1))
    assert par.initial == ser.initial
    assert par.nodes == ser.nodes
    assert par.edges == ser.edges


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
@pytest.mark.parametrize("lazy_spec", [False, True], ids=["dfa", "oracle"])
def test_check_safety_jobs_identical(prop, lazy_spec):
    par = check_safety(DSTM(2, 2), prop, lazy_spec=lazy_spec, jobs=2)
    ser = check_safety(DSTM(2, 2), prop, lazy_spec=lazy_spec)
    assert par.holds == ser.holds
    assert par.counterexample == ser.counterexample
    assert par.tm_states == ser.tm_states
    assert par.spec_states == ser.spec_states
    assert par.product_states == ser.product_states


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_check_safety_jobs_identical_on_violation(prop):
    """The failing Table 2 cell: identical certified counterexample.

    ModifiedTL2+polite has no codec, so ``sharded`` falls back to the
    serial path — the point pinned here is that ``jobs=2`` stays correct
    (and identical) for fallback-interned TMs too.
    """
    make = lambda: ManagedTM(ModifiedTL2(2, 2), PoliteManager())
    par = check_safety(make(), prop, jobs=2)
    ser = check_safety(make(), prop)
    assert not par.holds and not ser.holds
    assert par.counterexample == ser.counterexample
    assert par.product_states == ser.product_states


def test_max_states_guard_identical_under_jobs():
    with pytest.raises(RuntimeError) as par:
        check_safety(TL2(2, 2), SS, max_states=50, jobs=2)
    with pytest.raises(RuntimeError) as ser:
        check_safety(TL2(2, 2), SS, max_states=50)
    assert str(par.value) == str(ser.value)


def test_spawn_seed_rederives_paper_tms():
    for factory in (
        lambda: DSTM(2, 2),
        lambda: TL2(3, 1),
        lambda: TwoPhaseLockingTM(2, 2),
    ):
        tm = factory()
        seed = _spawn_seed(tm)
        assert seed is not None
        cls, args = seed
        clone = cls(*args)
        assert type(clone) is type(tm)
        assert (clone.n, clone.k) == (tm.n, tm.k)
        assert clone.initial_state() == tm.initial_state()


def test_spawn_seed_refuses_composed_tms():
    assert _spawn_seed(ManagedTM(ModifiedTL2(2, 1), PoliteManager())) is None


def test_sharded_yields_none_when_unavailable():
    managed = compile_tm(ManagedTM(ModifiedTL2(2, 1), PoliteManager()))
    with managed.sharded(2) as shard:
        assert shard is None
    codec_tm = compile_tm(DSTM(2, 1))
    with codec_tm.sharded(1) as shard:
        assert shard is None  # jobs=1 never pays for a pool


# ----------------------------------------------------------------------
# Row-prefetch short-circuit on warm memo tables
#
# (Sharded-product differentials — jobs x shard_product x warm/cold, on
# holding and violating cells, plus the bounded-run guard — live in the
# cross-engine sweep, tests/checking/test_conformance_matrix.py.)
# ----------------------------------------------------------------------


def _result_tuple(res):
    return (
        res.holds,
        res.counterexample,
        res.tm_states,
        res.spec_states,
        res.product_states,
    )


def test_prefetch_short_circuits_on_hot_rows():
    """After a level of pure memo hits the prefetcher skips the pool;
    after a cold (skipped) level it dispatches again."""
    engine = compile_tm(DSTM(2, 1))
    init = engine.initial_node_packed()
    row = engine.safety_row_ids(init)  # warm exactly one row
    succs = list(
        dict.fromkeys(
            s
            for _sym, group in row
            for s in ((group,) if type(group) is int else group)
            if s != init
        )
    )
    assert succs
    memo = engine.safety_rows_map()
    with engine.sharded(2) as shard:
        shard.prefetch_safety([init])  # all hits: records rate 1.0
        assert shard.skipped_prefetches == 0
        shard.prefetch_safety(succs)  # hot: pool skipped, rows stay cold
        assert shard.skipped_prefetches == 1
        assert not any(s in memo for s in succs)
        shard.prefetch_safety(succs)  # previous level was cold: dispatch
        assert shard.skipped_prefetches == 1
        assert all(s in memo for s in succs)


def test_hot_short_circuit_is_verdict_neutral():
    """A fully warm engine short-circuits every level — results must
    still be byte-identical to serial."""
    tm = DSTM(2, 2)
    ser = check_safety(tm, SS, lazy_spec=True)  # warms the shared engine
    par = check_safety(tm, SS, lazy_spec=True, jobs=2, shard_product=False)
    assert _result_tuple(par) == _result_tuple(ser)


def test_chunk_size_knob_is_result_neutral():
    """--chunk-size is scheduling-only: any per-task batch size must
    reproduce the serial results bit for bit (row-sharding flavour, so
    the prefetcher actually consumes the knob)."""
    serial = check_safety(DSTM(2, 2), SS, lazy_spec=True)
    for chunk in (1, 7, 10_000):
        sharded = check_safety(
            DSTM(2, 2), SS, lazy_spec=True, jobs=2,
            shard_product=False, chunk_size=chunk,
        )
        assert (
            sharded.holds, sharded.counterexample, sharded.tm_states,
            sharded.spec_states, sharded.product_states,
        ) == (
            serial.holds, serial.counterexample, serial.tm_states,
            serial.spec_states, serial.product_states,
        )


def test_reuse_pool_parks_and_closes():
    """reuse_pool=True keeps one pool on the engine across checks (and
    across both properties); close_pools tears it down."""
    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    serial = check_safety(DSTM(2, 2), SS, lazy_spec=True)
    for prop in (SS, OP):
        res = check_safety(
            tm, prop, lazy_spec=True, jobs=2, reuse_pool=True,
            dense_kernel=False,
        )
        if prop is SS:
            assert (res.holds, res.product_states) == (
                serial.holds, serial.product_states,
            )
    assert len(engine._pools) == 1  # one pool, reused across checks
    engine.close_pools()
    assert not engine._pools


def test_worker_pair_slices_are_flat_arrays():
    """Workers ship successor slices as array('q') chunks when the
    stable pairs fit a machine word (in-process worker simulation)."""
    from array import array

    from repro.spec.compiled import clear_spec_oracle_cache
    from repro.tm import compiled as C

    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    span_bits = engine.node_span.bit_length() - 1
    init_stable = engine.stable_of_node(engine.initial_node_packed())
    old = C._WORKER_ENGINE, C._WORKER_CACHE_DIR
    try:
        C._worker_init(DSTM, (2, 2))
        violated, succs = C._worker_expand_pairs(
            (SS, span_bits, [init_stable])
        )
    finally:
        C._WORKER_ENGINE, C._WORKER_CACHE_DIR = old
        clear_spec_oracle_cache()
    assert not violated
    assert isinstance(succs, array) and succs.typecode == "q"
    assert len(succs) == len(set(succs)) > 0


def test_reuse_pool_not_parked_after_failure():
    """An exception inside a reuse_pool sharding context must evict the
    (possibly broken) pool instead of parking it for the next check."""
    engine = compile_tm(DSTM(2, 2))
    with pytest.raises(RuntimeError, match="boom"):
        with engine.sharded(2, reuse_pool=True) as shard:
            assert shard is not None
            raise RuntimeError("boom")
    assert not engine._pools


def test_nonpositive_chunk_size_clamps_to_default():
    """Sharder clamps chunk_size < 1 to the per-worker default instead
    of starving the pool (range step 0/-1 would dispatch nothing)."""
    for chunk in (0, -5):
        res = check_safety(
            DSTM(2, 2), SS, lazy_spec=True, jobs=2,
            shard_product=False, chunk_size=chunk,
        )
        assert res.holds


def test_dense_recording_stays_serial():
    """Sharded runs of either flavour keep their own machinery: a cold
    jobs>1 run must not silently build the CSR behind an idle pool; the
    next serial check records it."""
    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    check_safety(tm, SS, lazy_spec=True, jobs=2, shard_product=False)
    csr = engine.dense_csr("oracle", SS)
    assert not csr.built  # the prefetch path ran, nothing recorded
    # dense_kernel=True: recording no longer engages by default on
    # cache-less one-shot runs (the auto-gating default).
    check_safety(tm, SS, lazy_spec=True, dense_kernel=True)
    assert csr.built and csr.complete


# ----------------------------------------------------------------------
# Pool supervision: crash recovery, serial fallback, interrupt hygiene
#
# A worker SIGKILLed mid-``map`` makes multiprocessing.Pool hang rather
# than raise (it respawns workers but loses the task) — the in-process
# cover for that shape is the campaign supervisor's wall clock
# (tests/campaign/test_supervisor.py).  What *is* detectable in-process
# is a raising dispatch (the BrokenProcessPool shape): these tests
# fault the real worker entrypoints — fork start propagates the
# monkeypatch into pool workers — and pin the respawn-retry, the
# PoolCrashError escalation, and the byte-identical serial fallback.
# ----------------------------------------------------------------------


def _boom(*_args, **_kwargs):
    raise RuntimeError("injected worker fault")


def test_dead_pair_pool_falls_back_to_identical_serial(monkeypatch):
    """Every sharded-product dispatch fails -> PoolCrashError ->
    check_safety reruns serially; verdict and counts are byte-identical
    to a plain serial run (on a holding and a violating cell)."""
    from repro.tm import compiled as C

    monkeypatch.setattr(C, "_worker_expand_pairs", _boom)
    par = check_safety(DSTM(2, 1), SS, lazy_spec=True, jobs=2)
    ser = check_safety(DSTM(2, 1), SS, lazy_spec=True)
    assert _result_tuple(par) == _result_tuple(ser)

    par = check_safety(ModifiedTL2(2, 2), OP, jobs=2)
    ser = check_safety(ModifiedTL2(2, 2), OP)
    assert not par.holds
    assert _result_tuple(par) == _result_tuple(ser)


def test_dead_prefetch_pool_degrades_silently(monkeypatch):
    """Row prefetching is optimization-only: a dead pool during
    row-sharded runs degrades to on-demand serial rows mid-check, with
    identical results and no exception."""
    from repro.tm import compiled as C

    monkeypatch.setattr(C, "_worker_expand", _boom)
    par = check_safety(
        DSTM(2, 1), SS, lazy_spec=True, jobs=2, shard_product=False
    )
    ser = check_safety(DSTM(2, 1), SS, lazy_spec=True)
    assert _result_tuple(par) == _result_tuple(ser)


def test_pool_respawn_retries_once():
    """A single transient dispatch failure is absorbed: the sharder
    respawns the pool and retries the level; the check still runs
    sharded (no PoolCrashError escapes)."""
    from repro.tm import compiled as C

    engine = compile_tm(DSTM(2, 1))
    with engine.sharded(2) as shard:
        assert shard is not None
        original = shard.pool

        class _DiesOnce:
            def map(self, _func, _tasks):
                raise RuntimeError("transient")

            def terminate(self):
                pass

            def join(self):
                pass

        shard.pool = _DiesOnce()
        shard._closed = False
        init = engine.stable_of_node(engine.initial_node_packed())
        parts = shard._pool_map(
            C._worker_expand, [("safety", [init])]
        )
        assert parts and parts[0][0][0] == init
        assert not shard.broken
        original.terminate()
        original.join()


def test_pool_failing_twice_raises_poolcrash_and_marks_broken():
    from repro.tm.compiled import PoolCrashError
    from repro.tm import compiled as C

    engine = compile_tm(DSTM(2, 1))
    with engine.sharded(2) as shard:
        assert shard is not None
        shard.make_pool = lambda: (_ for _ in ()).throw(
            RuntimeError("respawn failed")
        )

        class _Dead:
            def map(self, _func, _tasks):
                raise RuntimeError("boom")

            def terminate(self):
                pass

            def join(self):
                pass

        real = shard.pool
        shard.pool = _Dead()
        with pytest.raises(PoolCrashError):
            shard._pool_map(C._worker_expand, [("safety", [])])
        assert shard.broken
        # once broken, dispatch refuses upfront
        with pytest.raises(PoolCrashError):
            shard._pool_map(C._worker_expand, [("safety", [])])
        real.terminate()
        real.join()


def test_keyboard_interrupt_terminates_and_unparks_pool():
    """Ctrl-C during a sharded dispatch must terminate+join the workers
    (no zombies) and evict any parked pool."""
    engine = compile_tm(DSTM(2, 1))
    with engine.sharded(2, reuse_pool=True) as shard:
        assert shard is not None
        assert engine._pools

        class _Interrupted:
            def map(self, _func, _tasks):
                raise KeyboardInterrupt

            def terminate(self):
                self.terminated = True

            def join(self):
                self.joined = True

        stub = _Interrupted()
        shard.pool = stub
        with pytest.raises(KeyboardInterrupt):
            shard._pool_map(lambda x: x, [1])
        assert stub.terminated and stub.joined
        assert not engine._pools
    assert not engine._pools


def test_engine_context_manager_closes_parked_pools():
    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    with engine:
        check_safety(
            tm, SS, lazy_spec=True, jobs=2, reuse_pool=True,
            dense_kernel=False,
        )
        assert engine._pools
    assert not engine._pools


def test_parked_pools_are_registered_for_atexit_cleanup():
    from repro.tm import compiled as C

    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    with engine:
        check_safety(
            tm, SS, lazy_spec=True, jobs=2, reuse_pool=True,
            dense_kernel=False,
        )
        assert C._ATEXIT_REGISTERED
        assert engine in C._PARKED_ENGINES
        # the atexit sweeper is safe to run early and repeatedly
        C._close_parked_pools()
        assert not engine._pools
