"""Differential tests for the compiled packed-state TM engine.

The compiled engine (:mod:`repro.tm.compiled`) must be *exact*: for
every entry point routed through it — exploration, the liveness graph,
the safety product, word membership — it has to reproduce the naive
tuple-of-frozensets path byte for byte: identical reachable-state
counts and orders, identical verdicts, identical counterexamples.
These tests pin that contract for all four paper TMs at (2, 2), the
managed (fallback-interned) TM, and the extra optimistic TM, plus
round-trip tests for the view codecs themselves.
"""

import pytest

from repro.checking import check_safety
from repro.core.statements import parse_word
from repro.spec import OP, SS
from repro.tm import (
    DSTM,
    TL2,
    CompiledTM,
    ManagedTM,
    ModifiedTL2,
    OptimisticTM,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    compile_tm,
)
from repro.tm.explore import (
    build_liveness_graph,
    explore_nodes,
    language_contains,
    transition_system_size,
)

# The four TMs of the paper at (2, 2); factories so each test gets a
# fresh instance (and therefore a cold engine).
PAPER_TMS = [
    ("seq", lambda: SequentialTM(2, 2)),
    ("2PL", lambda: TwoPhaseLockingTM(2, 2)),
    ("dstm", lambda: DSTM(2, 2)),
    ("TL2", lambda: TL2(2, 2)),
]
IDS = [name for name, _ in PAPER_TMS]


# ----------------------------------------------------------------------
# View codec round trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        lambda: SequentialTM(2, 2),
        lambda: TwoPhaseLockingTM(2, 2),
        lambda: DSTM(2, 2),
        lambda: TL2(2, 2),
        lambda: ModifiedTL2(2, 2),
        lambda: OptimisticTM(2, 2),
    ],
    ids=["seq", "2PL", "dstm", "TL2", "modTL2", "opt"],
)
def test_view_codec_round_trip_on_reachable_views(factory):
    """pack/unpack is the identity on every reachable thread view."""
    tm = factory()
    codec = tm.view_codec()
    assert codec is not None
    seen_bits = set()
    for state, _pending in explore_nodes(tm, compiled=False):
        for view in state:
            bits = codec.pack(view)
            assert 0 <= bits < (1 << codec.width)
            assert codec.unpack(bits) == view
            seen_bits.add(bits)
    # packing is injective on the reachable views by construction of the
    # round trip; there must be more than one view to make that claim
    assert len(seen_bits) > 1


def test_managed_tm_has_no_codec_and_falls_back():
    tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
    assert tm.view_codec() is None
    engine = compile_tm(tm)
    state = tm.initial_state()
    packed = engine.encode_state(state)
    assert engine.decode_state(packed) == state


@pytest.mark.parametrize("name,factory", PAPER_TMS, ids=IDS)
def test_state_and_node_round_trip(name, factory):
    tm = factory()
    engine = compile_tm(tm)
    for node in explore_nodes(tm, compiled=False)[:200]:
        packed = engine.encode_node(node)
        assert engine.decode_node(packed) == node
        state, _ = node
        assert engine.decode_state(engine.encode_state(state)) == state


@pytest.mark.parametrize("name,factory", PAPER_TMS, ids=IDS)
def test_incremental_successor_encoding_matches_full(name, factory):
    """``_encode_successor`` (changed-digit re-packing) must agree with a
    full ``encode_state`` on every reachable transition."""
    tm = factory()
    engine = compile_tm(tm)
    for state, _pending in explore_nodes(tm, compiled=False)[:300]:
        packed = engine.encode_state(state)
        for t in tm.threads():
            for cmd in tm.commands():
                for tr in tm.transitions(state, cmd, t):
                    incremental = engine._encode_successor(
                        packed, state, tr.state
                    )
                    assert incremental == engine.encode_state(tr.state)


# ----------------------------------------------------------------------
# Exploration differentials
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name,factory", PAPER_TMS, ids=IDS)
def test_reachable_state_counts_match(name, factory):
    assert transition_system_size(factory()) == transition_system_size(
        factory(), compiled=False
    )


@pytest.mark.parametrize(
    "factory",
    [lambda: DSTM(2, 2), lambda: ManagedTM(ModifiedTL2(2, 1), PoliteManager())],
    ids=["dstm", "modTL2+pol"],
)
def test_explore_nodes_order_identical(factory):
    assert explore_nodes(factory()) == explore_nodes(
        factory(), compiled=False
    )


@pytest.mark.parametrize(
    "factory",
    [
        lambda: TwoPhaseLockingTM(2, 1),
        lambda: DSTM(2, 1),
        lambda: ManagedTM(ModifiedTL2(2, 1), PoliteManager()),
    ],
    ids=["2PL", "dstm", "modTL2+pol"],
)
def test_liveness_graph_identical(factory):
    compiled = build_liveness_graph(factory())
    naive = build_liveness_graph(factory(), compiled=False)
    assert compiled.initial == naive.initial
    assert compiled.nodes == naive.nodes
    assert compiled.edges == naive.edges


def test_explore_max_states_guard_on_compiled_path():
    with pytest.raises(RuntimeError):
        explore_nodes(TL2(2, 2), max_states=10)
    with pytest.raises(RuntimeError):
        build_liveness_graph(TL2(2, 2), max_states=10)


# ----------------------------------------------------------------------
# Safety differentials
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name,factory", PAPER_TMS, ids=IDS)
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_safety_verdicts_identical(name, factory, prop):
    fast = check_safety(factory(), prop)
    slow = check_safety(factory(), prop, compiled=False)
    assert fast.holds == slow.holds
    assert fast.counterexample == slow.counterexample
    assert fast.tm_states == slow.tm_states
    assert fast.spec_states == slow.spec_states
    assert fast.product_states == slow.product_states


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_violating_counterexample_byte_identical(prop):
    """The failing Table 2 cell: same certified counterexample word."""
    make = lambda: ManagedTM(ModifiedTL2(2, 2), PoliteManager())
    fast = check_safety(make(), prop)
    slow = check_safety(make(), prop, compiled=False)
    assert not fast.holds and not slow.holds
    assert fast.counterexample == slow.counterexample
    assert fast.product_states == slow.product_states


def test_lazy_spec_identical_on_compiled_path():
    fast = check_safety(DSTM(2, 2), SS, lazy_spec=True)
    slow = check_safety(DSTM(2, 2), SS, lazy_spec=True, compiled=False)
    assert fast.holds == slow.holds
    assert fast.tm_states == slow.tm_states
    assert fast.spec_states == slow.spec_states
    assert fast.product_states == slow.product_states


def test_safety_max_states_guard_on_compiled_path():
    with pytest.raises(RuntimeError):
        check_safety(TL2(2, 2), SS, max_states=50)
    with pytest.raises(RuntimeError):
        check_safety(TL2(2, 2), SS, max_states=50, lazy_spec=True)


# ----------------------------------------------------------------------
# Engine API
# ----------------------------------------------------------------------


def test_compile_tm_caches_engine_per_instance():
    tm = DSTM(2, 2)
    assert compile_tm(tm) is compile_tm(tm)
    assert compile_tm(DSTM(2, 2)) is not compile_tm(tm)


def test_compiled_transitions_contract():
    """CompiledTM serves the TMAlgorithm transitions contract."""
    tm = DSTM(2, 2)
    engine = CompiledTM(tm)
    assert engine.initial_state() == tm.initial_state()
    state = tm.initial_state()
    for t in tm.threads():
        for cmd in tm.commands():
            assert engine.transitions(state, cmd, t) == tm.transitions(
                state, cmd, t
            )


def test_expand_batches_node_rows():
    tm = TwoPhaseLockingTM(2, 1)
    engine = compile_tm(tm)
    init = engine.initial_node_packed()
    [(node, row)] = engine.expand([init])
    assert node == init
    assert row == engine.node_row(init)
    # successors of the frontier expand in one further batch
    frontier = sorted({entry[4] for entry in row})
    expanded = engine.expand(frontier)
    assert [n for n, _ in expanded] == frontier


def test_engine_stats_reflect_interning():
    tm = DSTM(2, 2)
    engine = compile_tm(tm)
    transition_system_size(tm)
    stats = engine.stats()
    # 4 statuses x 2^2 x 2^2 = 64 possible DSTM views; far fewer reachable
    assert 1 < stats["views"] <= 64
    assert stats["node_rows"] == transition_system_size(tm)


# ----------------------------------------------------------------------
# Lazy word membership
# ----------------------------------------------------------------------

WORDS = [
    "(r,1)1 (w,2)1 c1 (w,1)2 c2",
    "(r,1)1 (w,1)2 (w,2)1 c1 a2",
    "(r,1)1 (w,1)2 c2 (w,2)1 a1",
    "c1 c2 a1 a2",
    "(r,1)1 c2 c2 (w,2)2 c1",
]


@pytest.mark.parametrize(
    "factory",
    [lambda: SequentialTM(2, 2), lambda: DSTM(2, 2), lambda: TL2(2, 2)],
    ids=["seq", "dstm", "TL2"],
)
@pytest.mark.parametrize("text", WORDS)
def test_language_contains_matches_nfa_simulation(factory, text):
    word = parse_word(text)
    assert language_contains(factory(), word) == language_contains(
        factory(), word, compiled=False
    )


def test_dense_node_adjacency_memoized_and_covers_graph():
    """The liveness-side dense adjacency: one CSR per engine, node set
    and edge count equal to the (byte-identical) rich graph."""
    tm = DSTM(2, 1)
    engine = compile_tm(tm)
    adj = engine.dense_node_adjacency()
    assert engine.dense_node_adjacency() is adj  # memoized
    graph = build_liveness_graph(tm)
    assert len(adj.nodes) == len(graph.nodes)
    assert len(adj.targets) == len(adj.labels) == len(graph.edges)
    assert len(adj.offsets) == len(adj.nodes) + 1
    decoded = [engine.decode_node(p) for p in adj.nodes]
    assert tuple(decoded) == graph.nodes
