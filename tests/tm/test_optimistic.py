"""Tests for the lock-free OptimisticTM (our extension, Section 8 style)."""

import pytest

from repro.core.statements import Command, Kind, parse_word
from repro.spec import OP, SS
from repro.tm import Resp, language_contains, transition_system_size
from repro.tm.optimistic import OptimisticTM


def fresh():
    return OptimisticTM(2, 2)


def step(tm, state, kind, var, thread):
    steps = tm.progress(state, Command(kind, var), thread)
    assert len(steps) == 1, steps
    return steps[0]


class TestMechanics:
    def test_reads_and_writes_single_step(self):
        tm = fresh()
        ext, resp, q = step(tm, tm.initial_state(), Kind.READ, 1, 1)
        assert resp is Resp.DONE and 1 in q[0][0]
        ext, resp, q = step(tm, q, Kind.WRITE, 2, 1)
        assert resp is Resp.DONE and 2 in q[0][1]

    def test_stale_read_aborts(self):
        tm = fresh()
        views = (
            (frozenset(), frozenset(), frozenset([1])),  # v1 modified
            (frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.READ, 1), 1) == []

    def test_own_write_shadows_staleness(self):
        tm = fresh()
        views = (
            (frozenset(), frozenset([1]), frozenset([1])),
            (frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.READ, 1), 1) != []

    def test_commit_publishes_to_active_threads(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.READ, 2, 2)  # t2 active
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)
        assert 1 in q[1][2]  # ms of t2
        assert q[0] == (frozenset(),) * 3

    def test_commit_skips_idle_threads(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)
        assert q[1][2] == frozenset()

    def test_doomed_commit_aborts(self):
        tm = fresh()
        views = (
            (frozenset([1]), frozenset(), frozenset([1])),
            (frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.COMMIT, None), 1) == []

    def test_write_write_race_detected_at_commit(self):
        tm = fresh()
        views = (
            (frozenset(), frozenset([1]), frozenset([1])),
            (frozenset(), frozenset(), frozenset()),
        )
        # t1 wrote v1, but someone committed v1 meanwhile: ws ∩ ms ≠ ∅
        assert tm.progress(views, Command(Kind.COMMIT, None), 1) == []

    def test_no_conflict_function(self):
        tm = fresh()
        q = tm.initial_state()
        for cmd in tm.commands():
            assert not tm.conflict(q, cmd, 1)


class TestSafety:
    def test_opaque_22(self, det_spec_op_22):
        from repro.checking import check_safety

        res = check_safety(fresh(), OP, spec=det_spec_op_22)
        assert res.holds

    def test_strictly_serializable_22(self, det_spec_ss_22):
        from repro.checking import check_safety

        res = check_safety(fresh(), SS, spec=det_spec_ss_22)
        assert res.holds

    def test_known_bad_word_not_producible(self):
        w = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
        assert not language_contains(fresh(), w)

    def test_concurrent_disjoint_commits(self):
        w = parse_word("(w,1)1 (w,2)2 c1 c2")
        assert language_contains(fresh(), w)

    def test_reader_aborted_by_writer_commit(self):
        w = parse_word("(r,1)1 (w,1)2 c2 a1")
        assert language_contains(fresh(), w)


class TestLiveness:
    """The headline: lock-freedom buys obstruction *and* livelock
    freedom with no contention manager — none of the paper's TMs manage
    both (Table 3)."""

    def test_obstruction_free(self):
        from repro.checking import check_obstruction_freedom

        assert check_obstruction_freedom(OptimisticTM(2, 1)).holds

    def test_livelock_free(self):
        from repro.checking import check_livelock_freedom

        assert check_livelock_freedom(OptimisticTM(2, 1)).holds

    def test_not_wait_free(self):
        from repro.checking import check_wait_freedom

        res = check_wait_freedom(OptimisticTM(2, 1))
        assert not res.holds
        # the starving thread aborts while the other commits forever
        threads_committing = {
            s.thread for s in res.loop if s.is_commit
        }
        threads_aborting = {s.thread for s in res.loop if s.is_abort}
        assert threads_committing and threads_aborting
        assert threads_committing.isdisjoint(threads_aborting)

    def test_size(self):
        assert transition_system_size(fresh()) == 1696


class TestStructuralProperties:
    """It also satisfies the reduction hypotheses, so the (2,2) and
    (2,1) verdicts generalize to all programs."""

    def test_p1_p3_and_monotonicity(self):
        from repro.reduction import check_all_safety_properties

        for rep in check_all_safety_properties(fresh(), 4):
            assert rep.holds, str(rep)

    def test_liveness_properties(self):
        from repro.reduction import check_all_liveness_properties

        for rep in check_all_liveness_properties(fresh(), 4):
            assert rep.holds, str(rep)
