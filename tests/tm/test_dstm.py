"""Tests for DSTM (Algorithm 3): ownership, stealing, validation."""

from repro.core.statements import Command, Kind, parse_word
from repro.tm import DSTM, Resp, language_contains
from repro.tm.dstm import ABORTED, FINISHED, INVALID, VALIDATED


def fresh():
    return DSTM(2, 2)


def run_progress(tm, state, kind, var, thread):
    cmd = Command(kind, var)
    steps = tm.progress(state, cmd, thread)
    assert len(steps) == 1, steps
    return steps[0]


class TestOwnership:
    def test_write_owns_then_completes(self):
        tm = fresh()
        ext, resp, q1 = run_progress(
            tm, tm.initial_state(), Kind.WRITE, 1, 1
        )
        assert ext.name == "own" and resp is Resp.BOT
        assert 1 in q1[0][2]  # os of thread 1
        ext2, resp2, _ = run_progress(tm, q1, Kind.WRITE, 1, 1)
        assert ext2.name == "write" and resp2 is Resp.DONE

    def test_stealing_aborts_owner(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        # thread 2 steals ownership of v1
        _, _, q2 = run_progress(tm, q1, Kind.WRITE, 1, 2)
        assert q2[0][0] == ABORTED
        assert q2[0][2] == frozenset()  # os cleared
        assert 1 in q2[1][2]

    def test_conflict_function_on_write(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        assert tm.conflict(q1, Command(Kind.WRITE, 1), 2)
        assert not tm.conflict(q1, Command(Kind.WRITE, 2), 2)

    def test_aborted_thread_must_abort(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        _, _, q2 = run_progress(tm, q1, Kind.WRITE, 1, 2)
        # thread 1 (status aborted) has no progress on any command
        for cmd in tm.commands():
            assert tm.progress(q2, cmd, 1) == []


class TestReads:
    def test_read_is_single_step(self):
        tm = fresh()
        ext, resp, q1 = run_progress(tm, tm.initial_state(), Kind.READ, 1, 1)
        assert ext.name == "read" and resp is Resp.DONE
        assert 1 in q1[0][1]  # rs

    def test_read_of_owned_var_no_rs_update(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        _, _, q2 = run_progress(tm, q1, Kind.READ, 1, 1)
        assert q2[0][1] == frozenset()  # no global read recorded

    def test_read_does_not_conflict(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        assert not tm.conflict(q1, Command(Kind.READ, 1), 2)


class TestCommit:
    def test_validate_then_commit(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.READ, 1, 1)
        ext, resp, q2 = run_progress(tm, q1, Kind.COMMIT, None, 1)
        assert ext.name == "validate" and resp is Resp.BOT
        assert q2[0][0] == VALIDATED
        ext2, resp2, q3 = run_progress(tm, q2, Kind.COMMIT, None, 1)
        assert ext2.name == "commit" and resp2 is Resp.DONE
        assert q3[0][0] == FINISHED

    def test_validate_aborts_owner_of_read_var(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.READ, 1, 1)
        _, _, q2 = run_progress(tm, q1, Kind.WRITE, 1, 2)  # t2 owns v1
        _, _, q3 = run_progress(tm, q2, Kind.COMMIT, None, 1)  # validate
        assert q3[1][0] == ABORTED

    def test_commit_invalidates_readers(self):
        tm = fresh()
        _, _, q1 = run_progress(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        _, _, q2 = run_progress(tm, q1, Kind.READ, 1, 2)  # t2 reads v1
        _, _, q3 = run_progress(tm, q2, Kind.COMMIT, None, 1)  # validate t1
        _, _, q4 = run_progress(tm, q3, Kind.COMMIT, None, 1)  # commit t1
        assert q4[1][0] == INVALID

    def test_invalid_thread_cannot_commit(self):
        tm = fresh()
        views = (
            (FINISHED, frozenset(), frozenset()),
            (INVALID, frozenset([1]), frozenset()),
        )
        assert tm.progress(views, Command(Kind.COMMIT, None), 2) == []

    def test_commit_conflict_function(self):
        tm = fresh()
        views = (
            (FINISHED, frozenset([1]), frozenset()),
            (FINISHED, frozenset(), frozenset([1])),
        )
        assert tm.conflict(views, Command(Kind.COMMIT, None), 1)


class TestLanguage:
    def test_table1_run_a(self):
        w = parse_word("(r,1)1 (w,1)2 (w,2)1 c1 a2")
        assert language_contains(fresh(), w)

    def test_table1_run_b(self):
        w = parse_word("(r,1)1 (w,1)2 c2 (w,2)1 a1")
        assert language_contains(fresh(), w)

    def test_early_validation_interleaving(self):
        # validate may precede the other thread's ownership
        w = parse_word("(r,1)1 (w,1)2 c1 c2")
        assert language_contains(fresh(), w)

    def test_never_produces_bad_word(self):
        w = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
        assert not language_contains(fresh(), w)
