"""Tests for TL2 and the modified TL2 of Section 5.4."""

import pytest

from repro.core.statements import Command, Kind, parse_word
from repro.tm import TL2, ModifiedTL2, PoliteManager, ManagedTM, Resp, language_contains
from repro.tm.tl2 import ABORTED, FINISHED, RVALIDATED, VALIDATED

BUG_WORD = "(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1"


def fresh(**kw):
    return TL2(2, 2, **kw)


def step(tm, state, kind, var, thread):
    cmd = Command(kind, var)
    steps = tm.progress(state, cmd, thread)
    assert len(steps) == 1, steps
    return steps[0]


class TestReadsAndWrites:
    def test_write_buffers_locally(self):
        tm = fresh()
        ext, resp, q1 = step(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        assert ext.name == "write" and resp is Resp.DONE
        assert 1 in q1[0][2]  # ws

    def test_read_own_write(self):
        tm = fresh()
        _, _, q1 = step(tm, tm.initial_state(), Kind.WRITE, 1, 1)
        _, _, q2 = step(tm, q1, Kind.READ, 1, 1)
        assert q2[0][1] == frozenset()  # not a global read

    def test_read_of_modified_var_aborts(self):
        tm = fresh()
        views = (
            (FINISHED, frozenset(), frozenset(), frozenset(), frozenset([1])),
            (FINISHED, frozenset(), frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.READ, 1), 1) == []

    def test_read_of_locked_var_aborts_by_default(self):
        tm = fresh()
        views = (
            (FINISHED, frozenset(), frozenset(), frozenset(), frozenset()),
            (FINISHED, frozenset(), frozenset([1]), frozenset([1]), frozenset()),
        )
        assert tm.progress(views, Command(Kind.READ, 1), 1) == []

    def test_literal_read_ignores_locks_when_disabled(self):
        tm = fresh(read_checks_lock=False)
        views = (
            (FINISHED, frozenset(), frozenset(), frozenset(), frozenset()),
            (FINISHED, frozenset(), frozenset([1]), frozenset([1]), frozenset()),
        )
        assert tm.progress(views, Command(Kind.READ, 1), 1) != []


class TestCommitPhases:
    def test_lock_phase_in_variable_order(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.WRITE, 2, 1)
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        ext, resp, q = step(tm, q, Kind.COMMIT, None, 1)
        assert ext.name == "lock" and ext.var == 1 and resp is Resp.BOT
        ext, _, q = step(tm, q, Kind.COMMIT, None, 1)
        assert ext.name == "lock" and ext.var == 2

    def test_validate_after_locks(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)  # lock v1
        ext, resp, q = step(tm, q, Kind.COMMIT, None, 1)
        assert ext.name == "validate" and q[0][0] == VALIDATED

    def test_lock_steal_aborts_holder(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)  # t1 locks v1
        _, _, q = step(tm, q, Kind.WRITE, 1, 2)
        # t2's commit: φ holds (lock conflict), lock transition steals
        trans = tm.transitions(q, Command(Kind.COMMIT, None), 2)
        lock = [t for t in trans if t.ext.name == "lock"]
        assert len(lock) == 1
        assert lock[0].state[0][0] == ABORTED  # t1 stolen from
        # and the abort option exists too (nondeterministic resolution)
        assert any(t.ext.is_abort for t in trans)

    def test_commit_updates_modified_sets_of_active_threads(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.READ, 2, 2)  # t2 active
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)  # lock
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)  # validate
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)  # commit
        assert 1 in q[1][4]  # ms of t2
        assert q[0] == (FINISHED,) + (frozenset(),) * 4

    def test_commit_skips_idle_threads(self):
        tm = fresh()
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)
        assert q[1][4] == frozenset()  # idle t2 not poisoned

    def test_validation_fails_on_modified_read_set(self):
        tm = fresh()
        views = (
            (FINISHED, frozenset([1]), frozenset(), frozenset(), frozenset([1])),
            (FINISHED, frozenset(), frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.COMMIT, None), 1) == []

    def test_validation_fails_on_foreign_lock(self):
        # chklock folded into validate: read set locked by other thread
        tm = fresh()
        views = (
            (FINISHED, frozenset([1]), frozenset(), frozenset(), frozenset()),
            (FINISHED, frozenset(), frozenset([1]), frozenset([1]), frozenset()),
        )
        assert tm.progress(views, Command(Kind.COMMIT, None), 1) == []


class TestModifiedTL2:
    def test_validate_split_into_two_steps(self):
        tm = ModifiedTL2(2, 2)
        q = tm.initial_state()
        _, _, q = step(tm, q, Kind.WRITE, 1, 1)
        _, _, q = step(tm, q, Kind.COMMIT, None, 1)  # lock
        ext, resp, q = step(tm, q, Kind.COMMIT, None, 1)
        assert ext.name == "rvalidate" and q[0][0] == RVALIDATED
        ext, resp, q = step(tm, q, Kind.COMMIT, None, 1)
        assert ext.name == "chklock" and q[0][0] == VALIDATED

    def test_bug_word_in_modified_language(self):
        assert language_contains(ModifiedTL2(2, 2), parse_word(BUG_WORD))

    def test_bug_word_in_managed_modified_language(self):
        tm = ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        assert language_contains(tm, parse_word(BUG_WORD))

    def test_bug_word_not_in_atomic_tl2(self):
        assert not language_contains(fresh(), parse_word(BUG_WORD))

    def test_bug_word_not_in_literal_read_tl2(self):
        # the read-lock check is irrelevant to the §5.4 bug
        assert not language_contains(
            fresh(read_checks_lock=False), parse_word(BUG_WORD)
        )


class TestLanguage:
    def test_table1_run_both_commit(self):
        w = parse_word("(r,1)1 (w,2)1 (w,1)2 c1 c2")
        assert language_contains(fresh(), w)

    def test_table1_run_with_abort(self):
        w = parse_word("(r,1)1 (w,2)1 (w,1)2 a1 c2")
        assert language_contains(fresh(), w)

    def test_aborted_status_forces_abort(self):
        tm = fresh()
        views = (
            (ABORTED, frozenset(), frozenset([1]), frozenset(), frozenset()),
            (FINISHED, frozenset(), frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.COMMIT, None), 1) == []
