"""Tests for the scheduler-driven simulator against Table 1."""

import pytest

from repro.core.statements import format_word
from repro.tm import DSTM, TL2, SequentialTM, TwoPhaseLockingTM
from repro.tm.runs import (
    ScheduleError,
    parse_schedule,
    prefer_abort,
    prefer_progress,
    program,
    simulate,
)


class TestParsers:
    def test_parse_schedule(self):
        assert parse_schedule("11122") == [1, 1, 1, 2, 2]

    def test_parse_schedule_rejects_letters(self):
        with pytest.raises(ValueError):
            parse_schedule("1a2")

    def test_program(self):
        p = program("r1 w2 c")
        assert [c.kind.value for c in p] == ["read", "write", "commit"]
        assert [c.var for c in p] == [1, 2, None]

    def test_program_rejects_garbage(self):
        with pytest.raises(ValueError):
            program("x3")


# Table 1 rows as (TM, schedule, programs, expected run, expected word).
TABLE1_RUNS = [
    (
        SequentialTM(2, 2),
        "11122",
        {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (w,2)1, c1, (w,1)2, c2",
        "(r,1)1, (w,2)1, c1, (w,1)2, c2",
    ),
    (
        SequentialTM(2, 2),
        "112122",
        {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (w,2)1, a2, c1, (w,1)2, c2",
        "(r,1)1, (w,2)1, a2, c1, (w,1)2, c2",
    ),
    (
        TwoPhaseLockingTM(2, 2),
        "111112",
        {1: "r1 w2 c", 2: "w2 c"},
        "(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2",
        "(r,1)1, (w,2)1, c1",
    ),
    (
        TwoPhaseLockingTM(2, 2),
        "1211112",
        {1: "r1 w2 c", 2: "w1 c"},
        # the paper's run ends with t2 opening a fresh transaction; our
        # simulator retries the aborted command, so the final ⊥-step
        # locks v1 instead of v2 — the observable word is identical
        "(rl,1)1, a2, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,1)2",
        "a2, (r,1)1, (w,2)1, c1",
    ),
    (
        DSTM(2, 2),
        "12211112",
        {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (o,1)2, (w,1)2, (o,2)1, (w,2)1, v1, c1, a2",
        "(r,1)1, (w,1)2, (w,2)1, c1, a2",
    ),
    (
        TL2(2, 2),
        "112112212",
        {1: "r1 w2 c", 2: "w1 c"},
        "(r,1)1, (w,2)1, (w,1)2, (l,2)1, v1, (l,1)2, v2, c1, c2",
        "(r,1)1, (w,2)1, (w,1)2, c1, c2",
    ),
]


class TestTable1Runs:
    @pytest.mark.parametrize(
        "tm,sched,progs,run_text,word_text",
        TABLE1_RUNS,
        ids=[f"{r[0].name}-{r[1]}" for r in TABLE1_RUNS],
    )
    def test_run_and_word(self, tm, sched, progs, run_text, word_text):
        programs = {t: program(p) for t, p in progs.items()}
        run = simulate(tm, programs, parse_schedule(sched))
        assert str(run) == run_text
        assert format_word(run.word()) == word_text


class TestSimulatorSemantics:
    def test_pending_command_resumes(self):
        tm = TwoPhaseLockingTM(2, 1)
        run = simulate(tm, {1: program("r1 c")}, [1, 1, 1])
        assert [s.ext_name for s in run.steps] == ["rlock", "read", "commit"]

    def test_aborted_transaction_restarts(self):
        # t2 blocked by t1's write lock aborts, then retries after c1
        tm = TwoPhaseLockingTM(2, 1)
        run = simulate(
            tm,
            {1: program("w1 c"), 2: program("r1 c")},
            parse_schedule("1211222"),
        )
        word = format_word(run.word())
        assert word == "a2, (w,1)1, c1, (r,1)2, c2"

    def test_exhausted_program_raises(self):
        tm = SequentialTM(2, 1)
        with pytest.raises(ScheduleError):
            simulate(tm, {1: program("c")}, [1, 1])

    def test_unknown_thread_raises(self):
        tm = SequentialTM(2, 1)
        with pytest.raises(ScheduleError):
            simulate(tm, {1: program("c")}, [7])

    def test_prefer_abort_policy(self):
        # DSTM write conflict: default steals, prefer_abort yields
        tm = DSTM(2, 1)
        programs = {1: program("w1 c"), 2: program("w1 c")}
        steal = simulate(tm, programs, parse_schedule("1122"))
        assert not any(s.resp.name == "ABORT" for s in steal.steps[:3])
        polite = simulate(
            tm, programs, parse_schedule("1122"), resolve=prefer_abort
        )
        assert any(s.resp.name == "ABORT" for s in polite.steps)

    def test_word_is_in_tm_language(self):
        """Whatever the simulator produces must be a language member."""
        from repro.tm import build_safety_nfa

        tm = TL2(2, 2)
        nfa = build_safety_nfa(tm)
        run = simulate(
            tm,
            {1: program("r1 w2 c"), 2: program("w1 c")},
            parse_schedule("112112212"),
        )
        assert nfa.accepts(run.word())
