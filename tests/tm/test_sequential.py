"""Tests for the sequential TM (Algorithm 1)."""

from repro.core.statements import parse_word
from repro.tm import SequentialTM, language_contains, transition_system_size
from repro.lang import enumerate_tm_language


class TestStateSpace:
    def test_table2_size_is_3(self):
        """Table 2: the sequential TM for (2,2) has exactly 3 states —
        both-finished plus one started state per thread."""
        assert transition_system_size(SequentialTM(2, 2)) == 3

    def test_three_threads(self):
        assert transition_system_size(SequentialTM(3, 1)) == 4


class TestLanguage:
    def test_table1_first_run(self):
        w = parse_word("(r,1)1 (w,2)1 c1 (w,1)2 c2")
        assert language_contains(SequentialTM(2, 2), w)

    def test_table1_second_run_with_abort(self):
        w = parse_word("(r,1)1 (w,2)1 a2 c1 (w,1)2 c2")
        assert language_contains(SequentialTM(2, 2), w)

    def test_no_interleaving(self):
        w = parse_word("(r,1)1 (w,1)2 c1 c2")
        assert not language_contains(SequentialTM(2, 2), w)

    def test_commit_blocked_while_other_started(self):
        w = parse_word("(r,1)1 c2 c1")
        assert not language_contains(SequentialTM(2, 2), w)

    def test_empty_commit_allowed_when_idle(self):
        assert language_contains(SequentialTM(2, 2), parse_word("c1 c2 c1"))

    def test_interrupting_thread_aborts_immediately(self):
        w = parse_word("(r,1)1 a2 a2 (w,1)1 c1")
        assert language_contains(SequentialTM(2, 2), w)

    def test_every_language_word_is_transaction_sequential(self):
        """Modulo empty aborts/commits, transactions never interleave."""
        from repro.core.words import is_sequential

        for w in enumerate_tm_language(SequentialTM(2, 1), 5):
            meaningful = tuple(
                s for s in w if not (s.is_finishing and _is_empty_tx(w, s))
            )
            assert is_sequential(meaningful)


def _is_empty_tx(word, stmt):
    """Is this finishing statement an empty transaction (no reads/writes)?"""
    idx = None
    for i, s in enumerate(word):
        if s is stmt:
            idx = i
            break
    assert idx is not None
    # scan backwards for a statement of the same thread in this tx
    for j in range(idx - 1, -1, -1):
        if word[j].thread == stmt.thread:
            return word[j].is_finishing
    return True
