"""Tests for the NOrec-style value-validation TM (`repro.tm.norec`).

NOrec is the farm's flagship true negative: dropping the write-set
conjunct from the optimistic commit check *looks* like a seeded bug but
is exactly NOrec's value validation, and the checker must certify it
safe — both here and as the ``opt/drop-ws-validation`` mutant.
"""

from repro.checking import check_safety
from repro.core.statements import Command, Kind, parse_word
from repro.spec import OP, SS
from repro.tm import NOrecTM, language_contains


def fresh():
    return NOrecTM(2, 2)


class TestMechanics:
    def test_commit_over_concurrent_write_allowed(self):
        """The NOrec relaxation itself: ws ∩ ms ≠ ∅ does not doom a
        commit — buffered writes land last-writer-wins."""
        tm = fresh()
        views = (
            (frozenset(), frozenset([1]), frozenset([1])),
            (frozenset(), frozenset(), frozenset()),
        )
        steps = tm.progress(views, Command(Kind.COMMIT, None), 1)
        assert len(steps) == 1

    def test_commit_still_revalidates_reads(self):
        tm = fresh()
        views = (
            (frozenset([1]), frozenset(), frozenset([1])),
            (frozenset(), frozenset(), frozenset()),
        )
        assert tm.progress(views, Command(Kind.COMMIT, None), 1) == []

    def test_commit_publishes_to_active_threads(self):
        tm = fresh()
        q = tm.initial_state()
        (_, _, q), = tm.progress(q, Command(Kind.READ, 2), 2)
        (_, _, q), = tm.progress(q, Command(Kind.WRITE, 1), 1)
        (_, _, q), = tm.progress(q, Command(Kind.COMMIT, None), 1)
        assert 1 in q[1][2]  # t2's ms saw the committed write

    def test_write_write_race_commits_both(self):
        w = parse_word("(w,1)1 (w,1)2 c2 c1")
        assert language_contains(fresh(), w)

    def test_read_of_committed_write_still_aborts(self):
        w = parse_word("(r,1)1 (w,1)2 c2 c1")
        assert not language_contains(fresh(), w)


class TestSafety:
    def test_strictly_serializable_22(self, det_spec_ss_22):
        res = check_safety(fresh(), SS, spec=det_spec_ss_22)
        assert res.holds, res.counterexample

    def test_opaque_22(self, det_spec_op_22):
        res = check_safety(fresh(), OP, spec=det_spec_op_22)
        assert res.holds, res.counterexample

    def test_compiled_and_naive_agree(self):
        fast = check_safety(fresh(), SS, compiled=True)
        slow = check_safety(fresh(), SS, compiled=False)
        assert fast.holds and slow.holds
        assert fast.tm_states == slow.tm_states
        assert fast.product_states == slow.product_states
