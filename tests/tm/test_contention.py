"""Tests for contention managers and the TM × manager product."""

import pytest

from repro.core.statements import Command, Kind, parse_word
from repro.lang import enumerate_tm_language
from repro.tm import (
    DSTM,
    TL2,
    AggressiveManager,
    BoundedKarmaManager,
    Ext,
    ManagedTM,
    PermissiveManager,
    PoliteManager,
    build_safety_nfa,
    language_contains,
)


class TestManagers:
    def test_aggressive_blocks_abort(self):
        cm = AggressiveManager()
        p = cm.initial_state()
        assert cm.step(p, Ext("abort"), 1) == []
        assert cm.step(p, Ext("own", 1), 1) == [p]

    def test_polite_allows_only_abort(self):
        cm = PoliteManager()
        p = cm.initial_state()
        assert cm.step(p, Ext("abort"), 1) == [p]
        assert cm.step(p, Ext("lock", 1), 2) == []

    def test_permissive_allows_everything(self):
        cm = PermissiveManager()
        p = cm.initial_state()
        for ext in [Ext("abort"), Ext("read", 1), Ext("validate")]:
            assert cm.step(p, ext, 1) == [p]

    def test_karma_tracks_priorities(self):
        cm = BoundedKarmaManager(2, bound=3)
        p = cm.initial_state()
        (p,) = cm.step(p, Ext("read", 1), 1)
        (p,) = cm.step(p, Ext("write", 1), 1)
        assert p == (2, 0)

    def test_karma_saturates(self):
        cm = BoundedKarmaManager(2, bound=1)
        p = cm.initial_state()
        (p,) = cm.step(p, Ext("read", 1), 1)
        (p,) = cm.step(p, Ext("read", 1), 1)
        assert p == (1, 0)

    def test_karma_protects_prioritized_thread(self):
        cm = BoundedKarmaManager(2, bound=3)
        # thread 1 has strictly higher priority: it may not self-abort
        assert cm.step((2, 1), Ext("abort"), 1) == []
        # equal or lower priority threads may abort (and reset)
        assert cm.step((1, 1), Ext("abort"), 1) == [(0, 1)]

    def test_karma_validation(self):
        with pytest.raises(ValueError):
            BoundedKarmaManager(0)
        with pytest.raises(ValueError):
            BoundedKarmaManager(2, bound=0)


class TestManagedTM:
    def test_name_composition(self):
        tm = ManagedTM(DSTM(2, 2), AggressiveManager())
        assert tm.name == "dstm+aggr"

    def test_manager_restricts_language(self):
        """L(Acm) ⊆ L(A) — the key fact behind verifying safety without
        managers (Section 4)."""
        base = TL2(2, 1)
        managed = ManagedTM(TL2(2, 1), PoliteManager())
        base_nfa = build_safety_nfa(base)
        for w in enumerate_tm_language(managed, 4):
            assert base_nfa.accepts(w)

    def test_permissive_manager_preserves_language(self):
        base = DSTM(2, 1)
        managed = ManagedTM(DSTM(2, 1), PermissiveManager())
        base_words = set(enumerate_tm_language(base, 4))
        managed_words = set(enumerate_tm_language(managed, 4))
        assert base_words == managed_words

    def test_aggressive_forbids_conflict_self_abort(self):
        tm = ManagedTM(DSTM(2, 2), AggressiveManager())
        # reach a state where t2 owns v1 and t1 wants to write v1
        q = tm.initial_state()
        (q,) = [
            tr.state
            for tr in tm.transitions(q, Command(Kind.WRITE, 1), 2)
            if tr.ext.name == "own"
        ]
        trans = tm.transitions(q, Command(Kind.WRITE, 1), 1)
        # conflict: φ true; aggressive removes the abort option
        assert not any(tr.ext.is_abort for tr in trans)
        assert any(tr.ext.name == "own" for tr in trans)

    def test_polite_forces_conflict_abort(self):
        tm = ManagedTM(TL2(2, 1), PoliteManager())
        # t2 locks v1 mid-commit; t1 wrote v1 and tries to commit
        q = tm.initial_state()
        (q,) = [
            tr.state
            for tr in tm.transitions(q, Command(Kind.WRITE, 1), 2)
        ]
        (q,) = [
            tr.state
            for tr in tm.transitions(q, Command(Kind.COMMIT, None), 2)
            if tr.ext.name == "lock"
        ]
        (q,) = [
            tr.state
            for tr in tm.transitions(q, Command(Kind.WRITE, 1), 1)
        ]
        trans = tm.transitions(q, Command(Kind.COMMIT, None), 1)
        assert all(tr.ext.is_abort for tr in trans)

    def test_forced_aborts_survive_aggressive_manager(self):
        """Aggressive only vetoes φ-conflict aborts, not abort-enabled
        ones (rule ii applies only at conflicts)."""
        tm = ManagedTM(DSTM(2, 1), AggressiveManager())
        w = parse_word("(w,1)1 (w,1)2 a1")
        # t2 steals v1 from t1 (allowed, it's an own); t1 then must abort
        assert language_contains(tm, w)

    def test_conflict_passthrough(self):
        base = DSTM(2, 2)
        managed = ManagedTM(DSTM(2, 2), PoliteManager())
        q = base.initial_state()
        mq = managed.initial_state()
        cmd = Command(Kind.WRITE, 1)
        assert managed.conflict(mq, cmd, 1) == base.conflict(q, cmd, 1)


class TestManagedKarma:
    """The stateful Karma manager composed with a TM: priorities evolve
    through the product and gate self-aborts exactly at φ-points."""

    def _state_after(self, tm, steps):
        q = tm.initial_state()
        for cmd, thread, ext_name in steps:
            (q,) = [
                tr.state
                for tr in tm.transitions(q, cmd, thread)
                if tr.ext.name == ext_name
            ]
        return q

    def test_priorities_accumulate_through_the_product(self):
        tm = ManagedTM(DSTM(2, 2), BoundedKarmaManager(2, bound=3))
        q = self._state_after(
            tm,
            [
                (Command(Kind.WRITE, 1), 1, "own"),
                (Command(Kind.WRITE, 1), 1, "write"),
            ],
        )
        _tm_state, cm_state = q
        assert cm_state == (2, 0)

    def test_karma_vetoes_self_abort_at_conflict(self):
        tm = ManagedTM(DSTM(2, 2), BoundedKarmaManager(2, bound=3))
        # t1 owns+writes v1 (priority 2 vs 0); t2 writing v1 is a
        # φ-point where low-priority t2 retains its abort resolution...
        q = self._state_after(
            tm,
            [
                (Command(Kind.WRITE, 1), 1, "own"),
                (Command(Kind.WRITE, 1), 1, "write"),
            ],
        )
        trans_t2 = tm.transitions(q, Command(Kind.WRITE, 1), 2)
        assert any(tr.ext.is_abort for tr in trans_t2)
        # ... while t1, strictly higher priority, may not self-abort at
        # its own φ-point (writing v2 after t2 took ownership of it).
        (q2,) = [
            tr.state
            for tr in tm.transitions(q, Command(Kind.WRITE, 2), 2)
            if tr.ext.name == "own"
        ]
        assert tm.conflict(q2, Command(Kind.WRITE, 2), 1)
        trans_t1 = tm.transitions(q2, Command(Kind.WRITE, 2), 1)
        assert trans_t1  # the conflict is resolvable...
        assert not any(tr.ext.is_abort for tr in trans_t1)  # ...not by
        # the prioritized thread aborting itself

    def test_abort_resets_priority(self):
        cm = BoundedKarmaManager(2, bound=3)
        (after,) = cm.step((1, 2), Ext("abort"), 1)
        assert after == (0, 2)

    def test_karma_managed_language_within_base(self):
        base = DSTM(2, 1)
        managed = ManagedTM(DSTM(2, 1), BoundedKarmaManager(2))
        base_nfa = build_safety_nfa(base)
        for w in enumerate_tm_language(managed, 4):
            assert base_nfa.accepts(w)
