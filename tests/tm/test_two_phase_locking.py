"""Tests for the two-phase locking TM (Algorithm 2)."""

from repro.core.statements import Command, Kind, parse_word
from repro.tm import Resp, TwoPhaseLockingTM, language_contains
from repro.tm.explore import build_safety_nfa


def fresh():
    return TwoPhaseLockingTM(2, 2)


class TestLockSemantics:
    def test_read_acquires_shared_lock_in_two_steps(self):
        tm = fresh()
        q0 = tm.initial_state()
        steps = tm.progress(q0, Command(Kind.READ, 1), 1)
        assert len(steps) == 1
        ext, resp, q1 = steps[0]
        assert ext.name == "rlock" and resp is Resp.BOT
        assert 1 in q1[0][0]  # rs of thread 1
        # the read completes in the next step
        done = tm.progress(q1, Command(Kind.READ, 1), 1)
        assert done[0][1] is Resp.DONE

    def test_write_acquires_exclusive_lock(self):
        tm = fresh()
        steps = tm.progress(tm.initial_state(), Command(Kind.WRITE, 2), 1)
        ext, resp, q1 = steps[0]
        assert ext.name == "wlock" and resp is Resp.BOT
        assert 2 in q1[0][1]  # ws of thread 1

    def test_shared_locks_coexist(self):
        w = parse_word("(r,1)1 (r,1)2 c1 c2")
        assert language_contains(fresh(), w)

    def test_exclusive_lock_blocks_readers(self):
        w = parse_word("(w,1)1 (r,1)2 c1 c2")
        assert not language_contains(fresh(), w)

    def test_reader_blocks_writer(self):
        w = parse_word("(r,1)1 (w,1)2 c1 c2")
        assert not language_contains(fresh(), w)

    def test_blocked_thread_aborts(self):
        w = parse_word("(w,1)1 a2 c1")
        assert language_contains(fresh(), w)

    def test_lock_upgrade_own_read_lock(self):
        w = parse_word("(r,1)1 (w,1)1 c1")
        assert language_contains(fresh(), w)

    def test_upgrade_blocked_by_other_reader(self):
        w = parse_word("(r,1)1 (r,1)2 (w,1)1 c1 c2")
        assert not language_contains(fresh(), w)

    def test_commit_releases_locks(self):
        w = parse_word("(w,1)1 c1 (w,1)2 c2")
        assert language_contains(fresh(), w)

    def test_abort_releases_locks(self):
        tm = fresh()
        q0 = tm.initial_state()
        _, _, q1 = tm.progress(q0, Command(Kind.WRITE, 1), 1)[0]
        q2 = tm.abort_reset(q1, 1)
        assert q2 == q0

    def test_repeated_read_single_step(self):
        tm = fresh()
        _, _, q1 = tm.progress(tm.initial_state(), Command(Kind.READ, 1), 1)[0]
        # second read of the same variable: direct DONE, no new lock step
        steps = tm.progress(q1, Command(Kind.READ, 1), 1)
        assert steps[0][1] is Resp.DONE


class TestLanguage:
    def test_table1_run(self):
        assert language_contains(fresh(), parse_word("(r,1)1 (w,2)1 c1"))

    def test_table1_run_with_abort(self):
        assert language_contains(fresh(), parse_word("a2 (r,1)1 (w,2)1 c1"))

    def test_disjoint_variables_interleave(self):
        w = parse_word("(r,1)1 (r,2)2 (w,1)1 (w,2)2 c1 c2")
        assert language_contains(fresh(), w)

    def test_never_produces_unserializable_word(self):
        w = parse_word("(w,2)1 (w,1)2 (r,2)2 (r,1)1 c2 c1")
        assert not language_contains(fresh(), w)

    def test_size_matches_expectation(self):
        nfa = build_safety_nfa(fresh())
        # measured size of our encoding (paper reports 99 for theirs;
        # we track pending commands explicitly)
        assert nfa.num_states == 240
