"""Tests for the seeded-mutant generator (`repro.tm.mutate`).

The verdict table below is the module's ground truth: every default
mutant's ``expect_bug`` flag is *verified* here at (2, 2) against the
real safety checker, counterexamples certified.  If an operator's
behaviour drifts (a "bug" mutant becomes safe, or a true negative
starts violating), these tests — not the hunt report — fail first.
"""

import pytest

from repro.checking import check_safety
from repro.core.properties import is_opaque, is_strictly_serializable
from repro.spec import OP, SS
from repro.tm import (
    OPERATORS,
    default_mutants,
    format_mutant_id,
    is_mutant_id,
    language_contains,
    make_mutant,
    mutant_expectation,
    parse_mutant_id,
)

#: Every default mutant that must violate strict serializability at
#: (2, 2) — the farm's seeded bugs (minus the one OP-only operator).
SS_BUGS = [
    "tl2/split-validation",
    "tl2/drop-rvalidate",
    "tl2/drop-chklock",
    "tl2/skip-version-bump",
    "tl2/skip-version-bump@seed1",
    "2pl/no-rlock",
    "2pl/early-release",
    "2pl/wlock-ignores-readers",
    "dstm/skip-invalidate",
    "dstm/invalid-can-commit",
    "opt/split-commit",
]

#: Deliberate true negatives: mutant-shaped changes that are *not*
#: bugs.  Both properties must hold, or the farm starts reporting
#: false kills.
CORRECT = [
    "tl2/shuffle-lock-order",
    "tl2/shuffle-lock-order@seed1",
    "dstm/drop-validate",
    "dstm/own-no-steal",
    "opt/drop-ws-validation",
]


class TestIdentity:
    def test_format_default_seed_has_no_suffix(self):
        assert format_mutant_id("tl2/drop-rvalidate") == "tl2/drop-rvalidate"
        assert (
            format_mutant_id("tl2/drop-rvalidate", 3)
            == "tl2/drop-rvalidate@seed3"
        )

    @pytest.mark.parametrize("mid", default_mutants())
    def test_default_roster_round_trips(self, mid):
        operator, seed = parse_mutant_id(mid)
        assert format_mutant_id(operator, seed) == mid
        assert is_mutant_id(mid)

    def test_parse_rejects_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown mutant operator"):
            parse_mutant_id("tl2/no-such-op")
        assert not is_mutant_id("tl2/no-such-op")

    def test_parse_rejects_bad_seed_suffix(self):
        for bad in (
            "tl2/drop-rvalidate@3",
            "tl2/drop-rvalidate@seed",
            "tl2/drop-rvalidate@seedx",
        ):
            with pytest.raises(ValueError, match="bad mutant seed suffix"):
                parse_mutant_id(bad)

    def test_plain_tm_names_are_not_mutant_ids(self):
        assert not is_mutant_id("tl2")
        assert not is_mutant_id("modtl2")

    def test_mutant_name_is_its_id(self):
        tm = make_mutant("tl2/skip-version-bump@seed1", 2, 2)
        assert tm.name == "tl2/skip-version-bump@seed1"
        assert tm.seed == 1

    def test_expectation_matches_registry(self):
        assert mutant_expectation("tl2/split-validation") is True
        assert mutant_expectation("tl2/shuffle-lock-order@seed7") is False


class TestRegistry:
    def test_operator_keys_match_class_attributes(self):
        for key, cls in OPERATORS.items():
            assert cls.operator == key
            assert isinstance(cls.expect_bug, bool)
            assert cls.summary

    def test_default_roster_covers_every_operator(self):
        roster = default_mutants()
        assert len(roster) == len(set(roster))
        assert {parse_mutant_id(mid)[0] for mid in roster} == set(OPERATORS)

    def test_default_roster_rediscovers_the_paper_bug(self):
        assert "tl2/split-validation" in default_mutants()

    def test_verdict_table_covers_the_default_roster(self):
        assert set(default_mutants()) == (
            set(SS_BUGS) | set(CORRECT) | {"opt/read-ignores-ms"}
        )


class TestSeededParameters:
    def test_skip_version_bump_draws_distinct_variables(self):
        by_seed = {
            seed: make_mutant(
                format_mutant_id("tl2/skip-version-bump", seed), 2, 2
            )._skip_var
            for seed in range(4)
        }
        assert set(by_seed.values()) == {1, 2}
        # stable per seed: reconstructing draws the same parameter
        again = make_mutant("tl2/skip-version-bump@seed1", 2, 2)
        assert again._skip_var == by_seed[1]

    def test_shuffle_lock_order_draws_distinct_permutations(self):
        ranks = {
            tuple(
                sorted(
                    make_mutant(
                        format_mutant_id("tl2/shuffle-lock-order", seed), 2, 3
                    )._lock_rank.items()
                )
            )
            for seed in range(6)
        }
        assert len(ranks) > 1


class TestVerdicts:
    @pytest.mark.parametrize("mid", SS_BUGS)
    def test_seeded_bugs_violate_ss(self, mid, det_spec_ss_22):
        assert mutant_expectation(mid)
        tm = make_mutant(mid, 2, 2)
        res = check_safety(tm, SS, spec=det_spec_ss_22)
        assert not res.holds, mid
        assert res.counterexample is not None
        assert not is_strictly_serializable(res.counterexample)
        assert language_contains(tm, res.counterexample)

    @pytest.mark.parametrize("mid", CORRECT)
    def test_true_negatives_hold_both_properties(
        self, mid, det_spec_ss_22, det_spec_op_22
    ):
        assert not mutant_expectation(mid)
        assert check_safety(
            make_mutant(mid, 2, 2), SS, spec=det_spec_ss_22
        ).holds, mid
        assert check_safety(
            make_mutant(mid, 2, 2), OP, spec=det_spec_op_22
        ).holds, mid

    def test_read_ignores_ms_is_the_op_only_bug(
        self, det_spec_ss_22, det_spec_op_22
    ):
        """The property-sensitive operator: strictly serializable at
        (2, 2) yet not opaque — the reason hunts sweep {SS, OP}."""
        tm = make_mutant("opt/read-ignores-ms", 2, 2)
        assert check_safety(tm, SS, spec=det_spec_ss_22).holds
        res = check_safety(tm, OP, spec=det_spec_op_22)
        assert not res.holds
        assert not is_opaque(res.counterexample)
        assert language_contains(tm, res.counterexample)

    def test_compiled_engine_agrees_on_a_seeded_replicate(self):
        """Non-zero seeds fail the spawn-seed reconstruction probe and
        must still check identically through the compiled path."""
        mid = "tl2/skip-version-bump@seed1"
        fast = check_safety(make_mutant(mid, 2, 2), SS, compiled=True)
        slow = check_safety(make_mutant(mid, 2, 2), SS, compiled=False)
        assert (fast.holds, fast.counterexample) == (
            slow.holds,
            slow.counterexample,
        )
