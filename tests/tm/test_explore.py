"""Tests for the explorer: most-general-program semantics, sizes, views."""

import pytest

from repro.automata.nfa import EPSILON
from repro.core.statements import parse_word
from repro.tm import (
    DSTM,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    Resp,
    SequentialTM,
    TwoPhaseLockingTM,
    build_liveness_graph,
    build_safety_nfa,
    language_contains,
    transition_system_size,
)

# Table 1: (TM, word-of-run) rows; every word must be in the language.
TABLE1 = [
    (SequentialTM(2, 2), "(r,1)1 (w,2)1 c1 (w,1)2 c2"),
    (SequentialTM(2, 2), "(r,1)1 (w,2)1 a2 c1 (w,1)2 c2"),
    (TwoPhaseLockingTM(2, 2), "(r,1)1 (w,2)1 c1"),
    (TwoPhaseLockingTM(2, 2), "a2 (r,1)1 (w,2)1 c1"),
    (DSTM(2, 2), "(r,1)1 (w,1)2 (w,2)1 c1 a2"),
    (DSTM(2, 2), "(r,1)1 (w,1)2 c2 (w,2)1 a1"),
    (TL2(2, 2), "(r,1)1 (w,2)1 (w,1)2 c1 c2"),
    (TL2(2, 2), "(r,1)1 (w,2)1 (w,1)2 a1 c2"),
]


class TestTable1:
    @pytest.mark.parametrize(
        "tm,word", TABLE1, ids=[f"{tm.name}-{i}" for i, (tm, _) in enumerate(TABLE1)]
    )
    def test_run_word_in_language(self, tm, word):
        assert language_contains(tm, parse_word(word))


class TestSizes:
    """Transition-system sizes (Table 2's Size column, our encoding)."""

    def test_seq(self):
        assert transition_system_size(SequentialTM(2, 2)) == 3

    def test_sizes_are_stable(self):
        sizes = {
            "2PL": transition_system_size(TwoPhaseLockingTM(2, 2)),
            "dstm": transition_system_size(DSTM(2, 2)),
        }
        assert sizes == {"2PL": 240, "dstm": 2864}

    def test_ordering_matches_paper(self):
        """seq < 2PL < dstm < TL2 ≈ modTL2+pol, as in Table 2."""
        seq = transition_system_size(SequentialTM(2, 2))
        tpl = transition_system_size(TwoPhaseLockingTM(2, 2))
        dstm = transition_system_size(DSTM(2, 2))
        tl2 = transition_system_size(TL2(2, 2))
        assert seq < tpl < dstm < tl2


class TestSafetyNFA:
    def test_epsilon_for_bot_steps(self):
        nfa = build_safety_nfa(TwoPhaseLockingTM(2, 1))
        has_eps = any(
            EPSILON in out for out in nfa.delta.values()
        )
        assert has_eps

    def test_seq_has_no_internal_steps(self):
        nfa = build_safety_nfa(SequentialTM(2, 2))
        assert all(
            EPSILON not in out for out in nfa.delta.values()
        )

    def test_prefix_closed(self):
        nfa = build_safety_nfa(DSTM(2, 1))
        w = parse_word("(r,1)1 (w,1)2 c2")
        if nfa.accepts(w):
            for i in range(len(w)):
                assert nfa.accepts(w[:i])

    def test_max_states_guard(self):
        with pytest.raises(RuntimeError):
            build_safety_nfa(TL2(2, 2), max_states=10)


class TestLivenessGraph:
    def test_edges_labeled_with_extended_statements(self):
        g = build_liveness_graph(TwoPhaseLockingTM(2, 1))
        names = {e[1].ext_name for e in g.edges}
        assert "rlock" in names or "wlock" in names
        assert "abort" in names

    def test_commit_flag(self):
        g = build_liveness_graph(SequentialTM(2, 1))
        commits = [e[1] for e in g.edges if e[1].is_commit]
        assert commits and all(l.resp is Resp.DONE for l in commits)

    def test_abort_flag(self):
        g = build_liveness_graph(SequentialTM(2, 1))
        aborts = [e[1] for e in g.edges if e[1].is_abort]
        assert aborts and all(l.ext_name == "abort" for l in aborts)

    def test_node_count_matches_explorer(self):
        tm = DSTM(2, 1)
        g = build_liveness_graph(tm)
        assert len(g.nodes) == transition_system_size(tm)

    def test_initial_node_is_first(self):
        g = build_liveness_graph(SequentialTM(2, 1))
        assert g.nodes[0] == g.initial


class TestManagedSize:
    def test_modtl2_polite_size(self):
        size = transition_system_size(
            ManagedTM(ModifiedTL2(2, 2), PoliteManager())
        )
        assert size == 16552  # our encoding (paper: 17520)
