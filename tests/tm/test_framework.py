"""Tests for the TM-algorithm framework: rules R1–R8, pending semantics."""

import pytest

from repro.core.statements import Command, Kind
from repro.tm import (
    DSTM,
    TL2,
    AggressiveManager,
    Ext,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    Resp,
    SequentialTM,
    TwoPhaseLockingTM,
    validate_rules,
)
from repro.tm.explore import explore_nodes, initial_node, iter_node_transitions

ALL_TMS = [
    SequentialTM(2, 2),
    TwoPhaseLockingTM(2, 2),
    DSTM(2, 2),
    TL2(2, 2),
    ModifiedTL2(2, 2),
]


class TestConstruction:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            SequentialTM(0, 1)

    def test_rejects_zero_variables(self):
        with pytest.raises(ValueError):
            DSTM(1, 0)

    def test_commands_match_k(self):
        tm = TL2(2, 3)
        cmds = tm.commands()
        assert len(cmds) == 2 * 3 + 1

    def test_describe(self):
        assert SequentialTM(2, 2).describe() == "seq(n=2, k=2)"


class TestExt:
    def test_of_command(self):
        e = Ext.of_command(Command(Kind.READ, 2))
        assert e.name == "read" and e.var == 2

    def test_abort_flag(self):
        assert Ext("abort").is_abort
        assert not Ext("read", 1).is_abort

    def test_commit_flag(self):
        assert Ext("commit").is_commit

    def test_str(self):
        assert str(Ext("rlock", 2)) == "rlock(2)"
        assert str(Ext("validate")) == "validate"


@pytest.mark.parametrize("tm", ALL_TMS, ids=lambda t: t.name)
class TestPaperRules:
    def test_rules_hold_on_reachable_states(self, tm):
        """R5–R8 of Section 3, checked on every reachable node."""
        nodes = explore_nodes(tm)
        problems = validate_rules(tm, nodes)
        assert problems == [], problems[:5]

    def test_initial_state_no_pending(self, tm):
        _, pending = initial_node(tm)
        assert all(p is None for p in pending)

    def test_abort_transitions_have_response_zero(self, tm):
        for node in explore_nodes(tm)[:200]:
            for _, _, tr, _ in iter_node_transitions(tm, node):
                assert tr.ext.is_abort == (tr.resp is Resp.ABORT)


@pytest.mark.parametrize("tm", ALL_TMS, ids=lambda t: t.name)
class TestPendingSemantics:
    def test_bot_sets_pending(self, tm):
        """After a ⊥ response, the thread's pending slot holds the command
        and only that command is offered next."""
        for node in explore_nodes(tm)[:300]:
            for t, cmd, tr, succ in iter_node_transitions(tm, node):
                _, pending = succ
                if tr.resp is Resp.BOT:
                    assert pending[t - 1] == cmd
                else:
                    assert pending[t - 1] is None

    def test_pending_thread_only_continues_pending_command(self, tm):
        for node in explore_nodes(tm)[:300]:
            _, pending = node
            for t, cmd, _, _ in iter_node_transitions(tm, node):
                if pending[t - 1] is not None:
                    assert cmd == pending[t - 1]

    def test_other_threads_pending_untouched(self, tm):
        for node in explore_nodes(tm)[:300]:
            _, pending = node
            for t, _, _, (_, new_pending) in iter_node_transitions(tm, node):
                for u in tm.threads():
                    if u != t:
                        assert new_pending[u - 1] == pending[u - 1]


class TestAbortEnabledness:
    def test_seq_blocks_second_thread(self):
        tm = SequentialTM(2, 1)
        state = (1, 0)  # thread 1 started
        cmd = Command(Kind.READ, 1)
        assert tm.is_abort_enabled(state, cmd, 2)
        assert not tm.is_abort_enabled(state, cmd, 1)

    def test_abort_transition_exists_iff_enabled_or_conflict(self):
        tm = DSTM(2, 2)
        for node in explore_nodes(tm)[:400]:
            state, pending = node
            for t in tm.threads():
                cmds = (
                    [pending[t - 1]]
                    if pending[t - 1] is not None
                    else list(tm.commands())
                )
                for cmd in cmds:
                    trans = tm.transitions(state, cmd, t)
                    has_abort = any(tr.ext.is_abort for tr in trans)
                    expected = tm.is_abort_enabled(
                        state, cmd, t
                    ) or tm.conflict(state, cmd, t)
                    assert has_abort == expected
