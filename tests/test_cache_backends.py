"""The cache backend protocol's shared conformance contract.

Every backend — pickle-on-disk, in-memory, mmap segment files — must
behave identically at the protocol level: round-trip payloads intact,
reject stale/corrupt/mismatched entries by returning ``None`` (never
raising), save atomically, preserve the typed widths of integer
vectors, and report ``keys``/``stat`` honestly.  On top of that the
mmap backend is pinned to its reason for existing: loaded vectors are
zero-copy memoryview casts over the mapping, and a warm dense safety
run off a pure-segment cache deserializes no rows at all.
"""

import os
import pickle
from array import array

import pytest

import repro.cache as cache_mod
from repro.cache import (
    ENGINE_VERSION,
    INT32_MAX,
    SEGMENT_MAGIC,
    CacheBackend,
    DiskCacheBackend,
    MemoryCacheBackend,
    MmapCacheBackend,
    int_vector_typecode,
    is_int_vector,
    load_payload,
    make_backend,
    narrow_int_vector,
    resolve_backend,
    save_payload,
    widen_int_vector,
)

BACKENDS = ("disk", "memory", "mmap")

KEY = ("unit-test", 2, 1, "ss")
OTHER_KEY = ("unit-test", 3, 2, "op")

#: A payload shaped like the engines' real ones: typed vectors of both
#: widths plus non-vector metadata riding in the same dict.
PAYLOAD = {
    "offsets": array("i", [0, 2, 5]),
    "targets": array("q", [1, 2, 1 << 40, -5, 0]),
    "label_table": [("inv", "read", 0, 1)],
    "num_states": 3,
}


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    return make_backend(request.param, str(tmp_path))


def _assert_payload_round_trip(loaded):
    assert loaded is not None
    assert loaded["label_table"] == PAYLOAD["label_table"]
    assert loaded["num_states"] == 3
    for name in ("offsets", "targets"):
        got = loaded[name]
        assert is_int_vector(got)
        assert int_vector_typecode(got) == PAYLOAD[name].typecode
        assert list(got) == list(PAYLOAD[name])


# ----------------------------------------------------------------------
# Protocol conformance (all backends)
# ----------------------------------------------------------------------


def test_round_trip_preserves_vectors_and_meta(backend):
    assert backend.save(KEY, PAYLOAD)
    _assert_payload_round_trip(backend.load(KEY))


def test_missing_key_loads_none(backend):
    assert backend.load(KEY) is None
    assert backend.stat(KEY) is None
    assert backend.keys() == []


def test_stale_engine_version_rejected(backend, monkeypatch):
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", ENGINE_VERSION - 1)
    assert backend.save(KEY, PAYLOAD)
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", ENGINE_VERSION)
    assert backend.load(KEY) is None
    assert backend.keys() == []  # keys() lists only readable payloads


def test_key_mismatch_rejected(backend):
    """A payload filed under another key's slot is ignored — the key
    stored *inside* the payload is authoritative, not the file name."""
    assert backend.save(KEY, PAYLOAD)
    if isinstance(backend, MemoryCacheBackend):
        backend._entries[OTHER_KEY] = backend._entries[KEY]
    else:
        with open(backend.path_for(KEY), "rb") as fh:
            blob = fh.read()
        with open(backend.path_for(OTHER_KEY), "wb") as fh:
            fh.write(blob)
    assert backend.load(OTHER_KEY) is None


def test_corrupt_bytes_load_none(backend):
    assert backend.save(KEY, PAYLOAD)
    garbage = b"\x80garbage that is neither pickle nor segment"
    if isinstance(backend, MemoryCacheBackend):
        backend._entries[KEY] = garbage
    else:
        with open(backend.path_for(KEY), "wb") as fh:
            fh.write(garbage)
    assert backend.load(KEY) is None
    assert backend.keys() == []


def test_save_overwrites_atomically(backend):
    assert backend.save(KEY, PAYLOAD)
    assert backend.save(KEY, {"offsets": array("i", [0, 1])})
    loaded = backend.load(KEY)
    assert list(loaded["offsets"]) == [0, 1]
    assert "targets" not in loaded
    if not isinstance(backend, MemoryCacheBackend):
        leftovers = [
            n
            for n in os.listdir(backend.cache_dir)
            if n.startswith(".tmp-")
        ]
        assert leftovers == []  # no torn temp files left behind


def test_save_failure_swallowed(tmp_path):
    """Disk-backed backends report unwritable destinations as False
    rather than raising — the cache is an optimization only."""
    blocker = tmp_path / "not-a-dir"
    blocker.write_bytes(b"")
    for cls in (DiskCacheBackend, MmapCacheBackend):
        b = cls(str(blocker / "sub"))
        assert b.save(KEY, PAYLOAD) is False
        assert b.load(KEY) is None


def test_keys_and_stat_contract(backend):
    assert backend.save(KEY, PAYLOAD)
    assert backend.save(OTHER_KEY, {"v": 1})
    assert sorted(backend.keys()) == sorted([KEY, OTHER_KEY])
    st = backend.stat(KEY)
    assert st is not None and st["bytes"] > 0
    if isinstance(backend, MemoryCacheBackend):
        assert st["path"] is None
    else:
        assert st["path"] == backend.path_for(KEY)
        assert os.stat(st["path"]).st_size == st["bytes"]


def test_width_round_trip_both_widths(backend):
    """int32 stays int32 and int64 stays int64 across a round trip —
    the width travels inside the payload."""
    data = {
        "narrow": array("i", [INT32_MAX, -1, 0]),
        "wide": array("q", [INT32_MAX + 1, 0]),
    }
    assert backend.save(KEY, data)
    loaded = backend.load(KEY)
    assert loaded["narrow"].itemsize == 4
    assert loaded["wide"].itemsize == 8
    assert list(loaded["narrow"]) == [INT32_MAX, -1, 0]
    assert list(loaded["wide"]) == [INT32_MAX + 1, 0]


def test_backend_object_as_cache_dir(backend):
    """The polymorphic wrappers accept a backend wherever the code base
    used to take a directory string."""
    assert save_payload(backend, KEY, PAYLOAD)
    _assert_payload_round_trip(load_payload(backend, KEY))
    assert load_payload(None, KEY) is None
    assert save_payload(None, KEY, PAYLOAD) is False


def test_default_cache_dir_env_precedence(monkeypatch, tmp_path):
    from repro.cache import cache_path, default_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
    assert default_cache_dir() == str(tmp_path / "explicit")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == str(tmp_path / "xdg" / "repro")
    monkeypatch.delenv("XDG_CACHE_HOME")
    assert default_cache_dir().endswith(os.path.join(".cache", "repro"))
    # Distinct keys must map to distinct, filesystem-safe file names.
    p1 = cache_path(str(tmp_path), ("a b", 1))
    p2 = cache_path(str(tmp_path), ("a b", 2))
    assert p1 != p2 and p1.endswith(".pkl")
    assert os.path.basename(p1) == os.path.basename(p1).replace(" ", "")


def test_resolve_backend_contract(tmp_path):
    assert resolve_backend(None) is None
    disk = resolve_backend(str(tmp_path))
    assert isinstance(disk, DiskCacheBackend)
    mm = MmapCacheBackend(str(tmp_path))
    assert resolve_backend(mm) is mm
    with pytest.raises(ValueError):
        make_backend("redis", str(tmp_path))


# ----------------------------------------------------------------------
# Typed-width helpers
# ----------------------------------------------------------------------


def test_narrow_int_vector_widens_on_overflow():
    small = narrow_int_vector([0, INT32_MAX, -(INT32_MAX + 1)])
    assert small.typecode == "i"
    wide = narrow_int_vector([0, 1 << 40])
    assert wide.typecode == "q"
    with pytest.raises(OverflowError):
        narrow_int_vector([1 << 70])  # beyond int64: caller's problem
    assert widen_int_vector(small).typecode == "q"
    assert list(widen_int_vector(small)) == list(small)


def test_int_vector_predicates():
    assert is_int_vector(array("i", [1]))
    assert is_int_vector(array("q", [1]))
    assert is_int_vector(memoryview(array("i", [1])))
    assert not is_int_vector([1, 2])
    assert not is_int_vector(array("d", [1.0]))
    assert not is_int_vector(b"\x00" * 8)
    assert int_vector_typecode(memoryview(array("q", [1]))) == "q"
    assert int_vector_typecode("nope") is None


# ----------------------------------------------------------------------
# Mmap specifics
# ----------------------------------------------------------------------


def test_mmap_load_returns_zero_copy_views(tmp_path):
    b = MmapCacheBackend(str(tmp_path))
    assert b.save(KEY, PAYLOAD)
    loaded = b.load(KEY)
    for name in ("offsets", "targets"):
        view = loaded[name]
        assert isinstance(view, memoryview)
        assert view.format == PAYLOAD[name].typecode
        assert list(view) == list(PAYLOAD[name])
    # Views must be independently usable after the load call returns
    # (they keep the mapping alive through the buffer protocol).
    assert loaded["offsets"][2] == 5


def test_mmap_segments_are_aligned(tmp_path):
    """Every raw segment starts on an 8-byte boundary in the file, so
    ``memoryview.cast`` and ``np.frombuffer`` never see a misaligned
    int64."""
    b = MmapCacheBackend(str(tmp_path))
    assert b.save(KEY, PAYLOAD)
    with open(b.path_for(KEY), "rb") as fh:
        blob = fh.read()
    assert blob[:8] == SEGMENT_MAGIC
    import struct

    (hlen,) = struct.unpack("<Q", blob[8:16])
    header = pickle.loads(blob[16 : 16 + hlen])
    base = MmapCacheBackend._align(16 + hlen)
    assert header["segments"]
    for _name, _tc, off, _nbytes in header["segments"]:
        assert (base + off) % 8 == 0


def test_mmap_truncated_file_loads_none(tmp_path):
    b = MmapCacheBackend(str(tmp_path))
    assert b.save(KEY, PAYLOAD)
    path = b.path_for(KEY)
    size = os.stat(path).st_size
    for keep in (0, 4, 16, size - 8):
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[:keep])
        assert b.load(KEY) is None
        b.save(KEY, PAYLOAD)  # restore for the next truncation point


def test_mmap_bad_magic_and_header_load_none(tmp_path):
    b = MmapCacheBackend(str(tmp_path))
    assert b.save(KEY, PAYLOAD)
    path = b.path_for(KEY)
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(b"WRONGMAG" + blob[8:])
    assert b.load(KEY) is None
    # Header length pointing past EOF.
    import struct

    with open(path, "wb") as fh:
        fh.write(SEGMENT_MAGIC + struct.pack("<Q", 1 << 40) + b"\x00" * 64)
    assert b.load(KEY) is None


def test_mmap_plain_payload_round_trip(tmp_path):
    """Non-dict payloads still round-trip (all-pickled fallback)."""
    b = MmapCacheBackend(str(tmp_path))
    assert b.save(KEY, [1, 2, 3])
    assert b.load(KEY) == [1, 2, 3]


# ----------------------------------------------------------------------
# Full pipeline over the backend matrix
# ----------------------------------------------------------------------


def _result_tuple(res):
    return (
        res.holds,
        res.counterexample,
        res.tm_states,
        res.spec_states,
        res.product_states,
    )


def test_mmap_warm_dense_run_deserializes_nothing(tmp_path):
    """The zero-deserialization pin: a warm dense safety run off a
    pure-segment mmap cache replays the product from mapped CSR tables
    alone — byte-identical verdicts, zero safety-row traffic, and the
    engine's CSR vectors are memoryviews over the mapping."""
    from repro.checking import check_safety
    from repro.spec import SS
    from repro.spec.compiled import clear_spec_oracle_cache
    from repro.tm import DSTM, compile_tm

    d = str(tmp_path)
    be = MmapCacheBackend(d)
    cold = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=be)
    clear_spec_oracle_cache()
    kept = 0
    for name in os.listdir(d):
        if name.startswith("dense-csr"):
            kept += 1
        else:
            os.unlink(os.path.join(d, name))
    assert kept
    tm = DSTM(2, 2)
    warm = check_safety(tm, SS, lazy_spec=True, cache_dir=MmapCacheBackend(d))
    assert _result_tuple(warm) == _result_tuple(cold)
    engine = compile_tm(tm)
    assert engine.stats()["safety_rows"] == 0  # array-only run
    csr = engine.dense_csr("oracle", SS)
    assert csr is not None and csr.built
    assert isinstance(csr.targets, memoryview)
    assert isinstance(csr.offsets, memoryview)
    clear_spec_oracle_cache()


@pytest.mark.parametrize("name", BACKENDS)
def test_safety_warm_identical_across_backends(tmp_path, name):
    from repro.checking import check_safety
    from repro.spec import SS
    from repro.spec.compiled import clear_spec_oracle_cache
    from repro.tm import DSTM

    be = make_backend(name, str(tmp_path))
    cold = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=be)
    clear_spec_oracle_cache()
    warm = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=be)
    assert _result_tuple(warm) == _result_tuple(cold)
    assert be.keys()  # the run actually populated the store
    clear_spec_oracle_cache()


@pytest.mark.parametrize("name", BACKENDS)
def test_liveness_dense_adj_warm_round_trip(tmp_path, name):
    """A cold liveness build persists the node adjacency CSR; a warm
    build restores it and yields an identical graph without re-walking
    the successor relation row by row.  (Codec-capable TMs only —
    ManagedTM has no stable encoding and silently skips the cache.)"""
    from repro.tm import DSTM, compile_tm
    from repro.tm.explore import build_liveness_graph

    be = make_backend(name, str(tmp_path))
    cold = build_liveness_graph(DSTM(2, 1), cache_dir=be)
    assert any(
        isinstance(k, tuple) and k and k[0] == "dense-adj"
        for k in be.keys()
    )
    tm = DSTM(2, 1)
    warm = build_liveness_graph(tm, cache_dir=be)
    assert set(warm.nodes) == set(cold.nodes)
    assert set(warm.edges) == set(cold.edges)
    assert warm.initial == cold.initial
    fresh = compile_tm(DSTM(2, 1))  # a fresh engine, nothing interned
    assert fresh.load_dense_adj(be)  # the payload is directly loadable


def test_liveness_dense_adj_corrupt_payload_degrades(tmp_path):
    from repro.tm import DSTM
    from repro.tm.explore import build_liveness_graph

    d = str(tmp_path)
    cold = build_liveness_graph(DSTM(2, 1), cache_dir=d)
    corrupted = 0
    for fname in os.listdir(d):
        if fname.startswith("dense-adj"):
            with open(os.path.join(d, fname), "wb") as fh:
                fh.write(b"\x80not a payload")
            corrupted += 1
    assert corrupted
    warm = build_liveness_graph(DSTM(2, 1), cache_dir=d)
    assert set(warm.edges) == set(cold.edges)


# ----------------------------------------------------------------------
# Quarantine on rejection + the doctor scan
# ----------------------------------------------------------------------


def _poison(backend, key, garbage=b"\x80garbage not pickle nor segment"):
    with open(backend.path_for(key), "wb") as fh:
        fh.write(garbage)


@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_rejected_load_quarantines_instead_of_churning(tmp_path, name):
    """A corrupt payload is renamed ``<name>.bad`` on first rejection,
    so the next warm start doesn't re-read and re-reject it."""
    backend = make_backend(name, str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    path = backend.path_for(KEY)
    _poison(backend, KEY)
    assert backend.load(KEY) is None
    assert not os.path.exists(path)
    assert os.path.exists(path + ".bad")
    # second load: plain miss, no .bad churn
    assert backend.load(KEY) is None
    assert backend.keys() == []


@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_stale_load_quarantines(tmp_path, name, monkeypatch):
    backend = make_backend(name, str(tmp_path))
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", ENGINE_VERSION - 1)
    assert backend.save(KEY, PAYLOAD)
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", ENGINE_VERSION)
    assert backend.load(KEY) is None
    assert os.path.exists(backend.path_for(KEY) + ".bad")


def test_memory_backend_quarantines_in_map():
    backend = MemoryCacheBackend()
    assert backend.save(KEY, PAYLOAD)
    backend._entries[KEY] = b"garbage"
    assert backend.load(KEY) is None
    assert KEY not in backend._entries
    assert KEY in backend._quarantined
    statuses = [e["status"] for e in backend.doctor()]
    assert statuses == ["quarantined"]


@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_doctor_read_only_then_fix(tmp_path, name):
    backend = make_backend(name, str(tmp_path))
    suffix = ".pkl" if name == "disk" else ".seg"
    assert backend.save(KEY, PAYLOAD)
    assert backend.save(OTHER_KEY, PAYLOAD)
    _poison(backend, OTHER_KEY)
    orphan = tmp_path / f".tmp-dead{suffix}"
    orphan.write_bytes(b"")

    scan = backend.doctor()
    by_status = {e["status"] for e in scan}
    assert by_status == {"ok", "corrupt", "orphan"}
    # read-only: nothing changed on disk
    assert os.path.exists(backend.path_for(OTHER_KEY))
    assert orphan.exists()

    fixed = backend.doctor(fix=True)
    actions = {e["status"]: e["action"] for e in fixed}
    assert actions["corrupt"] == "quarantined"
    assert actions["orphan"] == "removed"
    assert not orphan.exists()
    assert os.path.exists(backend.path_for(OTHER_KEY) + ".bad")

    rescan = backend.doctor()
    assert {e["status"] for e in rescan} == {"ok", "quarantined"}
    # the healthy payload survived untouched
    _assert_payload_round_trip(backend.load(KEY))


def test_mmap_doctor_distinguishes_truncated(tmp_path):
    backend = MmapCacheBackend(str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    path = backend.path_for(KEY)
    size = os.stat(path).st_size
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(blob[: size - 8])  # segment data cut short
    [entry] = backend.doctor()
    assert entry["status"] == "truncated"


def test_quarantine_failure_is_best_effort(tmp_path, monkeypatch):
    backend = DiskCacheBackend(str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    _poison(backend, KEY)
    monkeypatch.setattr(
        cache_mod.os, "replace", _raise_oserror
    )
    assert backend.load(KEY) is None  # rejection still just returns None
    assert os.path.exists(backend.path_for(KEY))  # rename failed, kept


def _raise_oserror(*_args, **_kwargs):
    raise OSError("read-only filesystem")


def test_doctor_on_missing_dir_is_empty(tmp_path):
    backend = DiskCacheBackend(str(tmp_path / "absent"))
    assert backend.doctor() == []
    assert MemoryCacheBackend().doctor() == []


# ----------------------------------------------------------------------
# TieredCacheBackend (the daemon's resident store) + concurrency safety
# ----------------------------------------------------------------------


class _CountingBackend(CacheBackend):
    """A cold-tier spy: counts loads and saves."""

    def __init__(self, inner):
        self.inner = inner
        self.loads = 0
        self.saves = 0

    def load(self, key):
        self.loads += 1
        return self.inner.load(key)

    def save(self, key, data):
        self.saves += 1
        return self.inner.save(key, data)

    def keys(self):
        return self.inner.keys()

    def stat(self, key):
        return self.inner.stat(key)


def test_tiered_read_through_promotes(tmp_path):
    from repro.cache import TieredCacheBackend

    cold = _CountingBackend(DiskCacheBackend(str(tmp_path)))
    assert cold.inner.save(KEY, PAYLOAD)
    tiered = TieredCacheBackend(cold=cold)
    _assert_payload_round_trip(tiered.load(KEY))
    assert cold.loads == 1
    # second load is served hot: the cold tier is not consulted again
    _assert_payload_round_trip(tiered.load(KEY))
    assert cold.loads == 1
    assert tiered.load(OTHER_KEY) is None  # miss in both tiers


def test_tiered_write_back_skips_unchanged(tmp_path):
    from repro.cache import TieredCacheBackend

    cold = _CountingBackend(DiskCacheBackend(str(tmp_path)))
    tiered = TieredCacheBackend(cold=cold)
    assert tiered.save(KEY, PAYLOAD)
    assert cold.saves == 1
    # identical payload: resident already byte-identical, no cold write
    assert tiered.save(KEY, PAYLOAD)
    assert cold.saves == 1
    changed = dict(PAYLOAD, num_states=4)
    assert tiered.save(KEY, changed)
    assert cold.saves == 2
    assert tiered.load(KEY)["num_states"] == 4


def test_tiered_without_cold_tier_is_memory(tmp_path):
    from repro.cache import TieredCacheBackend

    tiered = TieredCacheBackend()
    assert tiered.load(KEY) is None
    assert tiered.save(KEY, PAYLOAD)
    _assert_payload_round_trip(tiered.load(KEY))
    assert tiered.keys() == [KEY]


def test_tiered_keys_union_and_stat_fallback(tmp_path):
    from repro.cache import TieredCacheBackend

    cold = DiskCacheBackend(str(tmp_path))
    assert cold.save(OTHER_KEY, PAYLOAD)
    tiered = TieredCacheBackend(cold=cold)
    assert tiered.save(KEY, PAYLOAD)
    assert set(map(repr, tiered.keys())) == {repr(KEY), repr(OTHER_KEY)}
    assert tiered.stat(OTHER_KEY)["path"] is not None  # cold fallback
    assert tiered.stat(KEY)["path"] is None  # hot hit


def test_export_absorb_round_trip_between_stores():
    from repro.cache import TieredCacheBackend

    source = TieredCacheBackend()
    baseline = source.snapshot_keys()
    assert source.save(KEY, PAYLOAD)
    assert source.save(OTHER_KEY, PAYLOAD)
    blobs = source.export_blobs(exclude=baseline)
    assert set(blobs) == {KEY, OTHER_KEY}
    target = TieredCacheBackend()
    assert target.absorb_blobs(blobs) == 2
    _assert_payload_round_trip(target.load(KEY))
    # excluded keys are not re-exported
    assert source.export_blobs(exclude=source.snapshot_keys()) == {}


def test_memory_backend_concurrent_hammer():
    import threading

    backend = MemoryCacheBackend()
    errors = []

    def worker(seed):
        try:
            for i in range(200):
                key = ("k", (seed + i) % 7)
                backend.save(key, {"v": array("i", [seed, i])})
                loaded = backend.load(key)
                assert loaded is None or is_int_vector(loaded["v"])
                backend.keys()
                backend.blob_stats()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert backend.blob_stats()["keys"] <= 7


def test_memory_backend_pickles_with_entries():
    backend = MemoryCacheBackend()
    assert backend.save(KEY, PAYLOAD)
    clone = pickle.loads(pickle.dumps(backend))
    _assert_payload_round_trip(clone.load(KEY))
    # the clone has a working, independent lock
    assert clone.save(OTHER_KEY, PAYLOAD)
    assert backend.load(OTHER_KEY) is None


# ----------------------------------------------------------------------
# Swallowed-failure tallies (error_counts / stat()["errors"])
# ----------------------------------------------------------------------


def test_fresh_backend_has_no_errors(backend):
    assert backend.error_counts() == {}
    assert backend.save(KEY, PAYLOAD)
    assert backend.stat(KEY)["errors"] == {}


@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_rejected_load_is_tallied(tmp_path, name):
    """Rejections keep returning ``None`` — but no longer silently:
    the backend remembers what it threw away, keyed by status."""
    backend = make_backend(name, str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    _poison(backend, KEY)
    assert backend.load(KEY) is None
    assert backend.error_counts() == {"corrupt": 1}
    # the quarantined file is a plain miss afterwards: count stays 1
    assert backend.load(KEY) is None
    assert backend.error_counts() == {"corrupt": 1}


def test_stale_rejection_is_tallied(tmp_path, monkeypatch):
    backend = DiskCacheBackend(str(tmp_path))
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", ENGINE_VERSION - 1)
    assert backend.save(KEY, PAYLOAD)
    monkeypatch.setattr(cache_mod, "ENGINE_VERSION", ENGINE_VERSION)
    assert backend.load(KEY) is None
    assert backend.error_counts() == {"stale": 1}


def test_memory_backend_tallies_corrupt_blobs():
    backend = MemoryCacheBackend()
    assert backend.save(KEY, PAYLOAD)
    backend._entries[KEY] = b"garbage"
    assert backend.load(KEY) is None
    assert backend.error_counts() == {"corrupt": 1}
    assert backend.blob_stats()  # tallying never breaks the stats face


def test_failed_save_is_tallied(tmp_path, monkeypatch):
    backend = DiskCacheBackend(str(tmp_path))
    monkeypatch.setattr(cache_mod.os, "replace", _raise_oserror)
    assert backend.save(KEY, PAYLOAD) is False
    assert backend.error_counts() == {"save_failed": 1}


def test_doctor_scan_does_not_tally(tmp_path):
    """``doctor`` is a diagnosis, not a consumption: scanning anomalies
    must leave the live counters untouched (the doctor report merges
    scan counts itself)."""
    backend = DiskCacheBackend(str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    _poison(backend, KEY)
    assert backend.doctor()
    assert backend.error_counts() == {}


def test_tiered_error_counts_merge_tiers(tmp_path):
    from repro.cache import TieredCacheBackend

    cold = DiskCacheBackend(str(tmp_path))
    assert cold.save(KEY, PAYLOAD)
    _poison(cold, KEY)
    tiered = TieredCacheBackend(cold=cold)
    assert tiered.load(KEY) is None  # hot miss, cold rejection
    tiered.hot._entries[OTHER_KEY] = b"garbage"
    assert tiered.load(OTHER_KEY) is None
    counts = tiered.error_counts()
    assert counts["corrupt"] == 2  # one per tier, merged
    assert tiered.save(KEY, PAYLOAD)
    assert tiered.stat(KEY)["errors"] == tiered.error_counts()


def test_tiered_tolerates_counterless_cold_tier(tmp_path):
    """A duck-typed cold tier without ``error_counts`` (the counting
    wrapper above, user-supplied backends) must not break the merge."""
    from repro.cache import TieredCacheBackend

    cold = _CountingBackend(DiskCacheBackend(str(tmp_path)))
    tiered = TieredCacheBackend(cold=cold)
    assert tiered.save(KEY, PAYLOAD)
    assert tiered.error_counts() == {}


def test_unpickled_memory_backend_can_tally():
    """Unpickled instances arrive without ``__init__`` having run on
    the tally attribute — the lazy storage must cope."""
    backend = MemoryCacheBackend()
    assert backend.save(KEY, PAYLOAD)
    clone = pickle.loads(pickle.dumps(backend))
    clone._entries[KEY] = b"garbage"
    assert clone.load(KEY) is None
    assert clone.error_counts() == {"corrupt": 1}


@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_unreadable_entry_in_keys_scan_is_tallied(tmp_path, name):
    backend = make_backend(name, str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    # a file the scan cannot even read under the backend's own suffix:
    # skipped, but counted (garbage pickle bytes for disk; an empty
    # file for mmap, which refuses to map it — a bad-magic mmap file
    # is merely *rejected* by the header parse, not unreadable)
    if name == "disk":
        (tmp_path / "junk.pkl").write_bytes(b"\x00garbage")
    else:
        (tmp_path / "junk.seg").write_bytes(b"")
    assert backend.keys() == [KEY]
    assert backend.error_counts() == {"unreadable": 1}


# ----------------------------------------------------------------------
# Injected storage faults (the chaos plane's cache sites)
# ----------------------------------------------------------------------


@pytest.fixture
def _pristine_fault_plane():
    from repro import faultplane

    faultplane.reset()
    yield
    faultplane.reset()


@pytest.mark.usefixtures("_pristine_fault_plane")
@pytest.mark.parametrize("name", ["disk", "mmap"])
@pytest.mark.parametrize("kind", ["eio", "enospc"])
def test_injected_save_fault_is_swallowed_and_tallied(
    tmp_path, name, kind
):
    from repro.faultplane import installed

    backend = make_backend(name, str(tmp_path))
    schedule = {
        "name": "save-io", "seed": 0,
        "rules": [{"site": "cache.save", "fault": kind}],
    }
    with installed(schedule):
        assert backend.save(KEY, PAYLOAD) is False  # never raises
    assert backend.error_counts() == {"save_failed": 1}
    assert backend.load(KEY) is None  # nothing landed
    assert backend.save(KEY, PAYLOAD)  # window spent: next save works


@pytest.mark.usefixtures("_pristine_fault_plane")
@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_injected_load_eio_is_a_tallied_miss(tmp_path, name):
    from repro.faultplane import installed

    backend = make_backend(name, str(tmp_path))
    assert backend.save(KEY, PAYLOAD)
    schedule = {
        "name": "load-io", "seed": 0,
        "rules": [{"site": "cache.load", "fault": "eio"}],
    }
    with installed(schedule):
        assert backend.load(KEY) is None
    assert backend.error_counts() == {"io_error": 1}
    # the file itself is healthy: no quarantine, next load round-trips
    loaded = backend.load(KEY)
    assert loaded is not None
    assert loaded["num_states"] == PAYLOAD["num_states"]


@pytest.mark.usefixtures("_pristine_fault_plane")
@pytest.mark.parametrize("name", ["disk", "mmap"])
def test_injected_torn_save_quarantines_on_next_load(tmp_path, name):
    from repro.faultplane import installed

    backend = make_backend(name, str(tmp_path))
    schedule = {
        "name": "torn-save", "seed": 7,
        "rules": [{"site": "cache.save", "fault": "torn_write"}],
    }
    with installed(schedule):
        backend.save(KEY, PAYLOAD)  # a truncated file lands
    assert backend.load(KEY) is None  # rejected, never raises
    counts = backend.error_counts()
    assert counts and all(
        status in ("corrupt", "truncated") for status in counts
    )
    # the torn corpse was quarantined: .bad exists, next load is a miss
    bad = [n for n in os.listdir(tmp_path) if n.endswith(".bad")]
    assert len(bad) == 1
    assert backend.load(KEY) is None
    assert backend.error_counts() == counts  # no double-tally
