"""Tests for bounded language enumeration."""

import pytest

from repro.automata.nfa import NFA
from repro.core.statements import parse_word
from repro.lang import (
    enumerate_nfa_language,
    enumerate_tm_language,
    language_size_by_length,
)
from repro.tm import DSTM, SequentialTM, TwoPhaseLockingTM, build_safety_nfa


class TestNfaEnumeration:
    def test_simple_language(self):
        nfa = NFA(
            initial=frozenset([0]),
            delta={0: {"a": frozenset([1])}, 1: {"b": frozenset([0])}},
        )
        words = set(enumerate_nfa_language(nfa, 3))
        assert words == {
            (),
            ("a",),
            ("a", "b"),
            ("a", "b", "a"),
        }

    def test_words_are_unique(self):
        nfa = build_safety_nfa(SequentialTM(2, 1))
        words = list(enumerate_nfa_language(nfa, 4))
        assert len(words) == len(set(words))

    def test_max_words_guard(self):
        nfa = build_safety_nfa(TwoPhaseLockingTM(2, 2))
        with pytest.raises(RuntimeError):
            list(enumerate_nfa_language(nfa, 6, max_words=50))

    def test_rejects_accepting_automata(self):
        nfa = NFA(
            initial=frozenset([0]), delta={0: {}}, accepting=frozenset([0])
        )
        with pytest.raises(ValueError):
            list(enumerate_nfa_language(nfa, 2))


class TestTmEnumeration:
    def test_every_enumerated_word_is_member(self):
        tm = DSTM(2, 1)
        nfa = build_safety_nfa(tm)
        for w in enumerate_tm_language(tm, 4):
            assert nfa.accepts(w)

    def test_completeness_against_membership(self):
        """Every member word up to the bound is enumerated."""
        import itertools

        from repro.core.statements import statements

        tm = SequentialTM(2, 1)
        nfa = build_safety_nfa(tm)
        enumerated = set(enumerate_tm_language(tm, 3))
        for L in range(0, 4):
            for w in itertools.product(statements(2, 1), repeat=L):
                assert (w in enumerated) == nfa.accepts(w)

    def test_known_word_enumerated(self):
        words = set(enumerate_tm_language(SequentialTM(2, 2), 3))
        assert parse_word("(r,1)1 (w,2)1 c1") in words

    def test_prefix_closure_of_enumeration(self):
        words = set(enumerate_tm_language(TwoPhaseLockingTM(2, 1), 4))
        for w in words:
            assert w[:-1] in words or not w


class TestSizeFingerprint:
    def test_lengths(self):
        counts = language_size_by_length(SequentialTM(2, 1), 3)
        assert counts[0] == 1  # the empty word
        assert len(counts) == 4

    def test_more_permissive_tm_has_bigger_language(self):
        """2PL allows concurrency the sequential TM forbids."""
        seq = language_size_by_length(SequentialTM(2, 2), 4)
        tpl = language_size_by_length(TwoPhaseLockingTM(2, 2), 4)
        assert sum(tpl) > sum(seq)
