"""Tests for the liveness structural properties P5–P6 (Section 6.1)."""

import pytest

from repro.reduction import (
    check_all_liveness_properties,
    check_liveness_transaction_projection,
    check_liveness_variable_projection,
)
from repro.reduction.liveness_props import _isolation_decompositions
from repro.core.statements import parse_word
from repro.tm import DSTM, TL2, SequentialTM, TwoPhaseLockingTM


class TestDecompositions:
    def test_single_thread_suffix(self):
        w = parse_word("(r,1)1 c1 (r,1)2 (w,1)2")
        splits = _isolation_decompositions(w)
        assert 2 in splits  # suffix = t2's statements only

    def test_commit_in_suffix_excluded(self):
        w = parse_word("(r,1)1 c1")
        # any suffix containing c1 is not commit-free
        assert all(w[i:][0].thread == 1 for i in _isolation_decompositions(w))
        assert 0 not in _isolation_decompositions(w)

    def test_unfinished_prefix_transaction_blocks(self):
        # t2's transaction spans the split: not an isolation suffix
        w = parse_word("(r,1)2 (r,1)1 (w,1)2")
        assert 2 not in _isolation_decompositions(w)

    def test_empty_word(self):
        assert _isolation_decompositions(()) == []


@pytest.mark.parametrize(
    "make",
    [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
    ids=["seq", "2PL", "dstm", "TL2"],
)
class TestPaperTMsPassP5P6:
    def test_p5(self, make):
        rep = check_liveness_transaction_projection(make(2, 2), 4)
        assert rep.holds, str(rep)

    def test_p6(self, make):
        rep = check_liveness_variable_projection(make(2, 2), 5)
        assert rep.holds, str(rep)


class TestAllLivenessProperties:
    def test_reports_all_four_halves(self):
        reps = check_all_liveness_properties(TwoPhaseLockingTM(2, 1), 4)
        assert len(reps) == 4
        assert all(r.holds for r in reps)


@pytest.mark.parametrize(
    "make",
    [SequentialTM, TwoPhaseLockingTM, DSTM, TL2],
    ids=["seq", "2PL", "dstm", "TL2"],
)
class TestSecondHalves:
    def test_p5ii_thread_projection(self, make):
        from repro.reduction.liveness_props import (
            check_liveness_thread_projection,
        )

        rep = check_liveness_thread_projection(make(2, 2), 4)
        assert rep.holds, str(rep)

    def test_p6ii_prefix_variable_projection(self, make):
        from repro.reduction.liveness_props import (
            check_liveness_prefix_variable_projection,
        )

        rep = check_liveness_prefix_variable_projection(make(2, 2), 4)
        assert rep.holds, str(rep)
