"""Tests for the Theorem 1 / Theorem 5 orchestration."""

import pytest

from repro.reduction import verify_tm_liveness, verify_tm_safety
from repro.spec import OP, SS
from repro.tm import (
    DSTM,
    AggressiveManager,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
)


class TestSafetyClaims:
    def test_seq_opacity_generalizes(self):
        claim = verify_tm_safety(SequentialTM, OP, structural_max_len=4)
        assert claim.base_result_holds
        assert claim.structural_ok
        assert claim.generalizes
        assert "for all programs" in claim.summary()

    def test_2pl_strict_serializability_generalizes(self):
        claim = verify_tm_safety(
            TwoPhaseLockingTM, SS, structural_max_len=4
        )
        assert claim.generalizes

    def test_modified_tl2_fails_at_base(self):
        def family(n, k):
            return ManagedTM(ModifiedTL2(n, k), PoliteManager())

        claim = verify_tm_safety(family, SS, structural_max_len=3)
        assert not claim.base_result_holds
        assert not claim.generalizes
        assert "violates" in claim.summary()
        assert claim.counterexample_summary is not None

    def test_property_name_rendering(self):
        claim = verify_tm_safety(SequentialTM, SS, structural_max_len=3)
        assert claim.property_name == "strict serializability"
        claim_op = verify_tm_safety(SequentialTM, OP, structural_max_len=3)
        assert claim_op.property_name == "opacity"


class TestLivenessClaims:
    def test_seq_obstruction_freedom_fails_at_base(self):
        claim = verify_tm_liveness(SequentialTM, structural_max_len=4)
        assert not claim.base_result_holds
        assert claim.base_instance == (2, 1)
        assert "abort1" in claim.counterexample_summary

    def test_dstm_aggressive_obstruction_freedom(self):
        def family(n, k):
            return ManagedTM(DSTM(n, k), AggressiveManager())

        claim = verify_tm_liveness(family, structural_max_len=4)
        assert claim.base_result_holds
        # the manager composition may break structural closure (the
        # paper notes managers can break P-properties); we only assert
        # the claim machinery reports consistently
        assert claim.generalizes == claim.structural_ok
