"""Tests for the structural properties P1–P4 (Section 4)."""

import pytest

from repro.core.statements import parse_word
from repro.reduction import (
    check_all_safety_properties,
    check_commit_commutativity,
    check_monotonicity,
    check_thread_symmetry,
    check_transaction_projection,
    check_unfinished_commutativity,
    check_variable_projection,
)
from repro.tm import DSTM, TL2, SequentialTM, TwoPhaseLockingTM

MAXLEN = 4

FAMILIES = [SequentialTM, TwoPhaseLockingTM, DSTM, TL2]
IDS = ["seq", "2PL", "dstm", "TL2"]


@pytest.mark.parametrize("make", FAMILIES, ids=IDS)
class TestPaperTMsPassP1P3:
    def test_p1_transaction_projection(self, make):
        rep = check_transaction_projection(make(2, 2), MAXLEN)
        assert rep.holds, str(rep)
        assert rep.cases_checked > 0

    def test_p2_thread_symmetry(self, make):
        rep = check_thread_symmetry(make(2, 2), MAXLEN)
        assert rep.holds, str(rep)

    def test_p3_variable_projection(self, make):
        rep = check_variable_projection(make(2, 2), MAXLEN)
        assert rep.holds, str(rep)


@pytest.mark.parametrize("make", FAMILIES, ids=IDS)
class TestMonotonicityExistential:
    def test_p4_monotonicity(self, make):
        """The form Theorem 1's proof uses: some sequentialization is in
        the language.  All four paper TMs satisfy it."""
        rep = check_monotonicity(make(2, 2), MAXLEN)
        assert rep.holds, str(rep)


class TestMonotonicityUniversal:
    def test_seq_2pl_tl2_pass_universal(self):
        for make in [SequentialTM, TwoPhaseLockingTM, TL2]:
            rep = check_monotonicity(make(2, 2), MAXLEN, universal=True)
            assert rep.holds, str(rep)

    def test_dstm_fails_universal(self):
        """Documented finding: DSTM violates the paper's literal 'every
        w2 ∈ seq(w')' phrasing — its commit-time validation aborts a
        writer that was moved before the reader."""
        rep = check_monotonicity(DSTM(2, 2), MAXLEN, universal=True)
        assert not rep.holds
        assert rep.witness == parse_word("(r,1)1 (w,1)2 c1 c2")


class TestCommutativitySufficientConditions:
    def test_2pl_dstm_tl2_unfinished_commutative(self):
        for make in [TwoPhaseLockingTM, DSTM, TL2]:
            rep = check_unfinished_commutativity(make(2, 2), MAXLEN)
            assert rep.holds, str(rep)

    def test_2pl_tl2_commit_commutative(self):
        for make in [TwoPhaseLockingTM, TL2]:
            rep = check_commit_commutativity(make(2, 2), MAXLEN)
            assert rep.holds, str(rep)

    def test_dstm_not_commit_commutative(self):
        """Documented finding: DSTM's eager invalidation refuses the
        slid form (the same root cause as the universal-monotonicity
        failure)."""
        rep = check_commit_commutativity(DSTM(2, 2), MAXLEN)
        assert not rep.holds
        assert rep.witness == parse_word("(r,1)1 (w,1)2 c1 c2")

    def test_seq_passes_trivially(self):
        """The sequential TM admits no concurrent overlaps at all, so
        the (overlap-guarded) conditions hold with zero cases."""
        rep = check_unfinished_commutativity(SequentialTM(2, 2), MAXLEN)
        assert rep.holds and rep.cases_checked == 0


class TestViolationDetection:
    """The checkers must catch TMs that genuinely break the properties."""

    def test_p2_violation_detected(self):
        from repro.core.statements import Kind

        class OnlyThread1CommitsTM(SequentialTM):
            """Thread 2 can never commit — blatantly asymmetric.

            Renaming thread 1's committing transactions onto thread 2
            produces words this TM cannot generate."""

            name = "biased"

            def progress(self, state, cmd, thread):
                if cmd.kind is Kind.COMMIT and thread == 2:
                    return []
                return super().progress(state, cmd, thread)

        rep = check_thread_symmetry(OnlyThread1CommitsTM(2, 1), 4)
        assert not rep.holds

    def test_report_str_mentions_witness(self):
        rep = check_monotonicity(DSTM(2, 2), MAXLEN, universal=True)
        assert "VIOLATED" in str(rep)

    def test_passing_report_str(self):
        rep = check_transaction_projection(SequentialTM(2, 1), 3)
        assert "no violation" in str(rep)
