"""The safety pipeline's on-disk warm-start cache (``cache_dir=``).

A warm-started check must be bit-for-bit the same check: identical
verdicts and counts whether the engines were compiled in-process,
restored from disk, or restored from a cache another ``(n, k)`` or
property wrote next to it.  Corrupt cache files degrade to a cold run,
never an error.
"""

import os

import pytest

from repro.checking import check_safety
from repro.spec import OP, SS
from repro.spec.compiled import clear_spec_oracle_cache
from repro.tm import DSTM, ManagedTM, ModifiedTL2, PoliteManager, compile_tm


def _result_tuple(res):
    return (
        res.holds,
        res.counterexample,
        res.tm_states,
        res.spec_states,
        res.product_states,
    )


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_warm_started_check_identical(tmp_path, prop):
    d = str(tmp_path)
    cold = check_safety(DSTM(2, 2), prop, lazy_spec=True, cache_dir=d)
    assert os.listdir(d)  # something was spilled
    clear_spec_oracle_cache()  # simulate a fresh process
    warm = check_safety(DSTM(2, 2), prop, lazy_spec=True, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)
    clear_spec_oracle_cache()


def test_warm_start_restores_engine_tables(tmp_path):
    d = str(tmp_path)
    check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    fresh = compile_tm(DSTM(2, 2))
    assert fresh.load_warm(d)
    assert fresh.stats()["safety_rows"] > 0
    assert fresh.stats()["views"] > 1


def test_warm_start_on_dfa_path(tmp_path):
    d = str(tmp_path)
    cold = check_safety(DSTM(2, 2), SS, cache_dir=d)
    warm = check_safety(DSTM(2, 2), SS, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    d = str(tmp_path)
    reference = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    for name in os.listdir(d):
        with open(os.path.join(d, name), "wb") as fh:
            fh.write(b"not a pickle at all")
    clear_spec_oracle_cache()
    rerun = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(rerun) == _result_tuple(reference)
    clear_spec_oracle_cache()


def test_cache_keys_do_not_collide_across_instances(tmp_path):
    """(2,1) and (2,2) caches coexist; each restores its own tables."""
    d = str(tmp_path)
    small = check_safety(DSTM(2, 1), SS, lazy_spec=True, cache_dir=d)
    big = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    clear_spec_oracle_cache()
    small2 = check_safety(DSTM(2, 1), SS, lazy_spec=True, cache_dir=d)
    big2 = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(small2) == _result_tuple(small)
    assert _result_tuple(big2) == _result_tuple(big)
    clear_spec_oracle_cache()


def test_fallback_interned_tm_skips_cache_silently(tmp_path):
    """ManagedTM has no codec: nothing is spilled for the TM engine, and
    the check still works with cache_dir set."""
    d = str(tmp_path)
    res = check_safety(
        ManagedTM(ModifiedTL2(2, 1), PoliteManager()),
        SS,
        lazy_spec=True,
        cache_dir=d,
    )
    assert res.holds in (True, False)
    assert not any(n.startswith("tm-engine") for n in os.listdir(d))
    clear_spec_oracle_cache()
