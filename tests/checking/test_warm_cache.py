"""The safety pipeline's on-disk warm-start cache (``cache_dir=``).

A warm-started check must be bit-for-bit the same check: identical
verdicts and counts whether the engines were compiled in-process,
restored from disk, or restored from a cache another ``(n, k)`` or
property wrote next to it.  Corrupt cache files degrade to a cold run,
never an error.
"""

import os

import pytest

from repro.cache import save_payload
from repro.checking import check_safety
from repro.spec import OP, SS
from repro.spec.compiled import (
    CompiledSpecDFA,
    clear_spec_oracle_cache,
)
from repro.tm import (
    DSTM,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    TwoPhaseLockingTM,
    compile_tm,
)
from repro.tm.explore import build_liveness_graph


def _result_tuple(res):
    return (
        res.holds,
        res.counterexample,
        res.tm_states,
        res.spec_states,
        res.product_states,
    )


@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_warm_started_check_identical(tmp_path, prop):
    d = str(tmp_path)
    cold = check_safety(DSTM(2, 2), prop, lazy_spec=True, cache_dir=d)
    assert os.listdir(d)  # something was spilled
    clear_spec_oracle_cache()  # simulate a fresh process
    warm = check_safety(DSTM(2, 2), prop, lazy_spec=True, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)
    clear_spec_oracle_cache()


def test_warm_start_restores_engine_tables(tmp_path):
    d = str(tmp_path)
    check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    fresh = compile_tm(DSTM(2, 2))
    assert fresh.load_warm(d)
    assert fresh.stats()["safety_rows"] > 0
    assert fresh.stats()["views"] > 1


def test_warm_start_on_dfa_path(tmp_path):
    d = str(tmp_path)
    cold = check_safety(DSTM(2, 2), SS, cache_dir=d)
    warm = check_safety(DSTM(2, 2), SS, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    d = str(tmp_path)
    reference = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    for name in os.listdir(d):
        with open(os.path.join(d, name), "wb") as fh:
            fh.write(b"not a pickle at all")
    clear_spec_oracle_cache()
    rerun = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(rerun) == _result_tuple(reference)
    clear_spec_oracle_cache()


def test_cache_keys_do_not_collide_across_instances(tmp_path):
    """(2,1) and (2,2) caches coexist; each restores its own tables."""
    d = str(tmp_path)
    small = check_safety(DSTM(2, 1), SS, lazy_spec=True, cache_dir=d)
    big = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    clear_spec_oracle_cache()
    small2 = check_safety(DSTM(2, 1), SS, lazy_spec=True, cache_dir=d)
    big2 = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(small2) == _result_tuple(small)
    assert _result_tuple(big2) == _result_tuple(big)
    clear_spec_oracle_cache()


def test_liveness_rows_warm_cache_hit(tmp_path):
    """Node rows (Ext/Resp in stable int encoding) spill and restore:
    a warm-loaded engine starts with the previous run's node rows and
    the rebuilt graph is identical."""
    d = str(tmp_path)
    cold = build_liveness_graph(TwoPhaseLockingTM(2, 1), cache_dir=d)
    assert any(n.startswith("tm-engine") for n in os.listdir(d))
    fresh = compile_tm(TwoPhaseLockingTM(2, 1))
    assert fresh.load_warm(d)
    assert fresh.stats()["node_rows"] > 0  # the cache hit restored them
    warm = build_liveness_graph(TwoPhaseLockingTM(2, 1), cache_dir=d)
    assert warm.initial == cold.initial
    assert warm.nodes == cold.nodes
    assert warm.edges == cold.edges


def test_liveness_rows_warm_cache_miss_degrades_to_cold(tmp_path):
    """A cache written for another instance misses cleanly: nothing is
    restored, the build recomputes, results are identical."""
    d = str(tmp_path)
    build_liveness_graph(TwoPhaseLockingTM(2, 1), cache_dir=d)
    fresh = compile_tm(TwoPhaseLockingTM(2, 2))  # other (n, k): a miss
    assert not fresh.load_warm(d)
    assert fresh.stats()["node_rows"] == 0
    cold = build_liveness_graph(TwoPhaseLockingTM(2, 2))
    warm = build_liveness_graph(TwoPhaseLockingTM(2, 2), cache_dir=d)
    assert warm.nodes == cold.nodes and warm.edges == cold.edges


def test_liveness_rows_corrupt_cache_degrades_to_cold(tmp_path):
    d = str(tmp_path)
    cold = build_liveness_graph(TwoPhaseLockingTM(2, 1), cache_dir=d)
    for name in os.listdir(d):
        with open(os.path.join(d, name), "wb") as fh:
            fh.write(b"garbage")
    rerun = build_liveness_graph(TwoPhaseLockingTM(2, 1), cache_dir=d)
    assert rerun.nodes == cold.nodes and rerun.edges == cold.edges


def test_malformed_node_rows_reject_whole_payload(tmp_path):
    """A structurally broken node-row table (dangling ext-table index)
    rejects the payload wholesale — the engine recompiles from scratch
    rather than trusting half a cache."""
    d = str(tmp_path)
    build_liveness_graph(TwoPhaseLockingTM(2, 1), cache_dir=d)
    donor = compile_tm(TwoPhaseLockingTM(2, 1))
    assert donor.load_warm(d)
    node, row = next(iter(donor._node_rows.items()))
    save_payload(
        d,
        donor._cache_key(),
        {
            "view_bits": list(donor._view_bits),
            "safety_rows": dict(donor._safety_rows_ids),
            "ext_table": [],  # every ext id now dangles
            "node_rows": {node: ((0, 0, 99, 0, node),)},
        },
    )
    fresh = compile_tm(TwoPhaseLockingTM(2, 1))
    assert not fresh.load_warm(d)
    assert fresh.stats()["views"] == 0  # nothing partially applied


def test_spec_dfa_rows_warm_round_trip(tmp_path):
    """The int-rows spec DFA spills and restores; a warm-loaded table is
    identical to a freshly interned one."""
    d = str(tmp_path)
    built = CompiledSpecDFA(2, 1, SS).ensure()
    rows = built.rows
    assert built.save_warm(d)
    loaded = CompiledSpecDFA(2, 1, SS)
    assert loaded.load_warm(d)
    assert loaded.rows == rows


def test_fallback_interned_tm_skips_cache_silently(tmp_path):
    """ManagedTM has no codec: nothing is spilled for the TM engine, and
    the check still works with cache_dir set."""
    d = str(tmp_path)
    res = check_safety(
        ManagedTM(ModifiedTL2(2, 1), PoliteManager()),
        SS,
        lazy_spec=True,
        cache_dir=d,
    )
    assert res.holds in (True, False)
    assert not any(n.startswith("tm-engine") for n in os.listdir(d))
    clear_spec_oracle_cache()


# ----------------------------------------------------------------------
# The dense kernel's CSR payloads
# ----------------------------------------------------------------------


def test_dense_csr_payload_round_trip(tmp_path):
    """A warm process replays the product from the CSR payload alone —
    byte-identical results with *zero* row-memo traffic."""
    d = str(tmp_path)
    cold = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    clear_spec_oracle_cache()
    # Keep only the dense-csr payloads: a warm dense run must not need
    # the row caches at all (the array-only BFS never touches them).
    kept = 0
    for name in os.listdir(d):
        if name.startswith("dense-csr"):
            kept += 1
        else:
            os.unlink(os.path.join(d, name))
    assert kept
    tm = DSTM(2, 2)
    warm = check_safety(tm, SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)
    assert compile_tm(tm).stats()["safety_rows"] == 0  # array-only run
    clear_spec_oracle_cache()


def test_dense_csr_corrupt_payload_degrades_to_cold(tmp_path):
    d = str(tmp_path)
    cold = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    clear_spec_oracle_cache()
    for name in os.listdir(d):
        if name.startswith("dense-csr"):
            with open(os.path.join(d, name), "wb") as fh:
                fh.write(b"\x80garbage that is not a pickle")
    warm = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)
    clear_spec_oracle_cache()


def test_dense_csr_payload_written_for_both_sides(tmp_path):
    d = str(tmp_path)
    check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d)
    check_safety(DSTM(2, 2), SS, lazy_spec=False, cache_dir=d)
    sides = [n for n in os.listdir(d) if n.startswith("dense-csr")]
    assert len(sides) == 2  # one oracle-sided, one DFA-sided table


def test_dense_csr_violating_payload_round_trip(tmp_path):
    """A violating product persists its partial flagged CSR; the warm
    run short-circuits to the traced rerun with the identical word."""
    d = str(tmp_path)
    cold = check_safety(ModifiedTL2(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert not cold.holds
    clear_spec_oracle_cache()
    warm = check_safety(ModifiedTL2(2, 2), SS, lazy_spec=True, cache_dir=d)
    assert _result_tuple(warm) == _result_tuple(cold)
    clear_spec_oracle_cache()


def test_no_dense_kernel_writes_no_csr_payload(tmp_path):
    d = str(tmp_path)
    check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d,
                 dense_kernel=False)
    assert not [n for n in os.listdir(d) if n.startswith("dense-csr")]


def test_warm_row_memo_picked_up_after_load(tmp_path):
    """The kernel's row_map must be the *post-load* memo dict: a fully
    row-warm, dense-less run discovers zero rows (the profile wrapper
    would otherwise time every memo hit as a miss)."""
    d = str(tmp_path)
    check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d,
                 dense_kernel=False)
    clear_spec_oracle_cache()
    prof = {}
    warm = check_safety(DSTM(2, 2), SS, lazy_spec=True, cache_dir=d,
                        dense_kernel=False, profile=prof)
    assert warm.holds
    assert prof["row_discovery_s"] == 0.0
    clear_spec_oracle_cache()
