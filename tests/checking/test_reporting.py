"""Tests for result types and table rendering."""

from repro.checking.reporting import (
    LivenessResult,
    SafetyResult,
    render_table,
)
from repro.core.statements import parse_word
from repro.spec import SS
from repro.tm.algorithm import Resp
from repro.tm.explore import ExtStatement


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            "title", ["a", "long-header"], [["xx", "y"], ["z", "wwww"]]
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        # all body lines padded to the same column starts
        assert lines[2].startswith("--")
        assert len(lines) == 5

    def test_empty_rows(self):
        text = render_table("t", ["h"], [])
        assert "h" in text

    def test_wide_cells_stretch_columns(self):
        text = render_table("t", ["h"], [["wider-than-header"]])
        assert "wider-than-header" in text


class TestSafetyResult:
    def test_verdict_positive(self):
        res = SafetyResult("tm", SS, True, 1, 2, 3, 0.5)
        assert res.verdict() == "Y, 0.50s"

    def test_verdict_negative_includes_word(self):
        res = SafetyResult(
            "tm", SS, False, 1, 2, 3, 0.25,
            counterexample=parse_word("(r,1)1 c1"),
        )
        assert res.verdict() == "N, [(r,1)1, c1], 0.25s"


class TestLivenessResult:
    def test_verdict_positive(self):
        res = LivenessResult("tm", "obstruction freedom", True, 10, 0.1)
        assert res.verdict().startswith("Y")

    def test_verdict_negative_prints_loop(self):
        loop = (ExtStatement(1, "abort", None, Resp.ABORT),)
        res = LivenessResult(
            "tm", "obstruction freedom", False, 10, 0.1, loop=loop
        )
        assert "loop=[abort1]" in res.verdict()
