"""Cross-engine conformance matrix: one suite, every engine combination.

The safety pipeline now has five independent engine axes — the compiled
TM engine, the compiled spec side (packed oracle on the lazy path,
int-rows DFA on the materialized path), the dense array-backed BFS
kernel (CSR successor tables + bitset seen-sets vs the set-based pair
loop), process sharding (row-prefetch or the sharded product BFS
itself), and the warm cache over its pluggable backends (disk pickle,
in-memory, mmap segments).  Every cell of this matrix must
produce **byte-identical** verdicts, counterexamples and reported
counts against the naive reference path (``compiled=False``), holding
and violating instances alike.  This file replaces the per-PR ad-hoc
differentials with one systematic sweep; new engine axes should be
added here, not as new one-off tests.
"""

import os

import pytest

from repro.cache import MemoryCacheBackend, MmapCacheBackend
from repro.checking import check_safety
from repro.spec import OP, SS
from repro.spec.compiled import (
    clear_spec_dfa_cache,
    clear_spec_oracle_cache,
)
from repro.tm import (
    DSTM,
    BoundedKarmaManager,
    ManagedTM,
    ModifiedTL2,
    TwoPhaseLockingTM,
    make_mutant,
)

#: Algorithm × property cells that fit tier-1 time.  ModifiedTL2 (2, 2)
#: and the seeded mutant are the violating instances: their
#: counterexamples must survive every engine combination bit for bit.
#: The managed cell exercises the stateful-manager product (which the
#: compiled engine degrades to serial on — still byte-identical).
CELLS = [
    pytest.param(lambda: TwoPhaseLockingTM(2, 1), SS, id="2pl21-ss"),
    pytest.param(lambda: TwoPhaseLockingTM(2, 1), OP, id="2pl21-op"),
    pytest.param(lambda: DSTM(2, 2), SS, id="dstm22-ss"),
    pytest.param(lambda: DSTM(2, 2), OP, id="dstm22-op"),
    pytest.param(lambda: ModifiedTL2(2, 2), SS, id="modtl2-22-ss"),
    pytest.param(lambda: ModifiedTL2(2, 2), OP, id="modtl2-22-op"),
    pytest.param(
        lambda: ManagedTM(DSTM(2, 1), BoundedKarmaManager(2)),
        SS,
        id="dstm21-karma-ss",
    ),
    pytest.param(
        lambda: make_mutant("tl2/drop-chklock", 2, 2),
        SS,
        id="tl2-drop-chklock-22-ss",
    ),
]


def _tuple(res):
    return (
        res.holds,
        res.counterexample,
        res.tm_states,
        res.spec_states,
        res.product_states,
    )


def _combos():
    """Engine combinations: compiled × spec_compiled × dense-kernel ×
    jobs × sharded-product × cache backend, pruned to the cells where
    an axis exists (the naive path has no spec engine, no pool and no
    cache; a pair sharder needs ``jobs > 1`` and a compiled spec side;
    the dense kernel only engages on the all-int compiled-spec paths).
    The backend axis: ``None`` is a cold run; ``"disk"`` warm-restores
    everywhere; the ``"memory"`` and ``"mmap"`` backends join on the
    serial combos (one representative of each per engine shape keeps
    the sweep inside tier-1 time — the backend-protocol conformance
    itself lives in ``tests/test_cache_backends.py``)."""
    for compiled in (True, False):
        for spec_compiled in (True, False) if compiled else (True,):
            dense_opts = (
                (True, False) if compiled and spec_compiled else (False,)
            )
            for dense in dense_opts:
                for jobs in (1, 2) if compiled else (1,):
                    shard_opts = (
                        (True, False)
                        if jobs > 1 and spec_compiled
                        else (True,)
                    )
                    for shard_product in shard_opts:
                        backend_opts = (None,)
                        if compiled:
                            backend_opts = (
                                (None, "disk", "memory", "mmap")
                                if jobs == 1
                                else (None, "disk")
                            )
                        for backend in backend_opts:
                            yield {
                                "compiled": compiled,
                                "spec_compiled": spec_compiled,
                                "dense": dense,
                                "jobs": jobs,
                                "shard_product": shard_product,
                                "backend": backend,
                            }


@pytest.mark.parametrize("lazy_spec", [False, True], ids=["dfa", "oracle"])
@pytest.mark.parametrize("factory,prop", CELLS)
def test_every_engine_combination_matches_naive(
    tmp_path, factory, prop, lazy_spec
):
    cache_dir = str(tmp_path)
    # Populate one warm store per backend, then the warm combos restore
    # from it after the process-wide compiled-spec caches are dropped
    # (the closest in-process approximation of a fresh warm-started
    # process).  The memory backend must be the *same object* across
    # populate and restore — it has no disk.
    backends = {
        "disk": cache_dir,
        "mmap": MmapCacheBackend(os.path.join(cache_dir, "mm")),
        "memory": MemoryCacheBackend(),
    }
    for store in backends.values():
        clear_spec_oracle_cache()
        clear_spec_dfa_cache()
        check_safety(factory(), prop, lazy_spec=lazy_spec, cache_dir=store)

    reference = _tuple(
        check_safety(factory(), prop, lazy_spec=lazy_spec, compiled=False)
    )
    for combo in _combos():
        kwargs = {
            "lazy_spec": lazy_spec,
            "compiled": combo["compiled"],
            "spec_compiled": combo["spec_compiled"],
            "dense_kernel": combo["dense"],
            "jobs": combo["jobs"],
            "shard_product": combo["shard_product"],
        }
        if combo["backend"] is not None:
            clear_spec_oracle_cache()
            clear_spec_dfa_cache()
            kwargs["cache_dir"] = backends[combo["backend"]]
        got = _tuple(check_safety(factory(), prop, **kwargs))
        assert got == reference, f"combo {combo} diverged"
    clear_spec_oracle_cache()
    clear_spec_dfa_cache()


@pytest.mark.parametrize(
    "factory,prop",
    [
        pytest.param(lambda: DSTM(2, 2), SS, id="dstm22-ss"),
        pytest.param(lambda: ModifiedTL2(2, 2), SS, id="modtl2-22-ss"),
    ],
)
def test_lazy_and_materialized_spec_agree(factory, prop):
    """Across the lazy axis everything but the spec-states count (full
    automaton vs product-discovered subset) must agree — the product
    graphs are identical, only the right-hand representation differs."""
    lazy = check_safety(factory(), prop, lazy_spec=True)
    mat = check_safety(factory(), prop, lazy_spec=False)
    assert lazy.holds == mat.holds
    assert lazy.counterexample == mat.counterexample
    assert lazy.tm_states == mat.tm_states
    assert lazy.product_states == mat.product_states


def test_violating_cell_actually_violates():
    """Guard the matrix itself: the violating cell must keep violating,
    or the counterexample column of the sweep degenerates."""
    res = check_safety(ModifiedTL2(2, 2), SS)
    assert not res.holds
    assert res.counterexample is not None


def test_max_states_guard_identical_across_engines():
    """The guard raise is order-sensitive, so bounded runs stay serial;
    every engine combination must produce the identical message."""
    messages = set()
    for kwargs in (
        {},
        {"jobs": 2},
        {"jobs": 2, "shard_product": False},
        {"compiled": False},
        {"spec_compiled": False},
        {"dense_kernel": False},
    ):
        with pytest.raises(RuntimeError) as exc:
            check_safety(
                DSTM(2, 2), SS, lazy_spec=True, max_states=40, **kwargs
            )
        messages.add(str(exc.value))
    assert len(messages) == 1
