"""Tests for the Table 3 liveness pipeline."""

import pytest

from repro.checking import (
    check_liveness_all,
    check_livelock_freedom,
    check_obstruction_freedom,
    check_wait_freedom,
    observable_projection,
)
from repro.core.liveness_words import (
    is_livelock_free_lasso,
    is_obstruction_free_lasso,
)
from repro.tm import (
    DSTM,
    TL2,
    AggressiveManager,
    ManagedTM,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    build_liveness_graph,
)
from repro.tm.explore import ExtStatement
from repro.tm.algorithm import Resp


class TestTable3ObstructionFreedom:
    def test_seq_violates_with_single_abort_loop(self):
        res = check_obstruction_freedom(SequentialTM(2, 1))
        assert not res.holds
        assert [str(s) for s in res.loop] == ["abort1"]

    def test_2pl_violates_with_single_abort_loop(self):
        res = check_obstruction_freedom(TwoPhaseLockingTM(2, 1))
        assert not res.holds
        assert [s.ext_name for s in res.loop] == ["abort"]

    def test_dstm_aggressive_is_obstruction_free(self):
        res = check_obstruction_freedom(
            ManagedTM(DSTM(2, 1), AggressiveManager())
        )
        assert res.holds

    def test_tl2_polite_violates(self):
        res = check_obstruction_freedom(
            ManagedTM(TL2(2, 1), PoliteManager())
        )
        assert not res.holds
        assert [s.ext_name for s in res.loop] == ["abort"]

    def test_bare_dstm_not_obstruction_free(self):
        """Without the aggressive manager DSTM may abort itself under
        conflict forever — liveness depends on the manager (Section 6)."""
        res = check_obstruction_freedom(DSTM(2, 1))
        assert not res.holds


class TestTable3LivelockFreedom:
    @pytest.mark.parametrize(
        "tm",
        [
            SequentialTM(2, 1),
            TwoPhaseLockingTM(2, 1),
            ManagedTM(DSTM(2, 1), AggressiveManager()),
            ManagedTM(TL2(2, 1), PoliteManager()),
        ],
        ids=["seq", "2PL", "dstm+aggr", "TL2+pol"],
    )
    def test_no_tm_is_livelock_free(self, tm):
        res = check_livelock_freedom(tm)
        assert not res.holds

    def test_dstm_aggr_livelock_loop_shape(self):
        """The paper's w2: both threads steal ownership back and forth,
        each aborting once per round, nobody committing."""
        res = check_livelock_freedom(
            ManagedTM(DSTM(2, 1), AggressiveManager())
        )
        loop_threads = {s.thread for s in res.loop}
        abort_threads = {s.thread for s in res.loop if s.is_abort}
        assert loop_threads == abort_threads == {1, 2}
        assert not any(s.is_commit for s in res.loop)
        assert any(s.ext_name == "own" for s in res.loop)


class TestWaitFreedom:
    @pytest.mark.parametrize(
        "tm",
        [
            SequentialTM(2, 1),
            TwoPhaseLockingTM(2, 1),
            ManagedTM(DSTM(2, 1), AggressiveManager()),
            ManagedTM(TL2(2, 1), PoliteManager()),
        ],
        ids=["seq", "2PL", "dstm+aggr", "TL2+pol"],
    )
    def test_no_tm_is_wait_free(self, tm):
        """Section 2: none of the example TMs satisfy wait freedom."""
        assert not check_wait_freedom(tm).holds

    def test_single_thread_seq_is_wait_free(self):
        """One thread alone never aborts under the sequential TM."""
        assert check_wait_freedom(SequentialTM(1, 1)).holds


class TestCertification:
    def test_counterexamples_violate_definitions(self):
        for tm in [SequentialTM(2, 1), TwoPhaseLockingTM(2, 1)]:
            res = check_obstruction_freedom(tm)
            obs = res.observable_loop
            assert obs  # lasso projections certified inside the checker
            assert not is_obstruction_free_lasso(res.observable_stem, obs)

    def test_livelock_counterexample_certified(self):
        res = check_livelock_freedom(
            ManagedTM(DSTM(2, 1), AggressiveManager())
        )
        assert not is_livelock_free_lasso(
            res.observable_stem, res.observable_loop
        )

    def test_stem_is_reachable_prefix(self):
        res = check_obstruction_freedom(TwoPhaseLockingTM(2, 1))
        # the stem sets up thread 2's lock; the loop aborts thread 1
        assert all(isinstance(s, ExtStatement) for s in res.stem)


class TestObservableProjection:
    def test_bot_steps_vanish(self):
        labels = (
            ExtStatement(1, "rlock", 1, Resp.BOT),
            ExtStatement(1, "read", 1, Resp.DONE),
            ExtStatement(2, "abort", None, Resp.ABORT),
        )
        obs = observable_projection(labels)
        assert [str(s) for s in obs] == ["(r,1)1", "a2"]

    def test_commit_projection(self):
        labels = (ExtStatement(1, "commit", None, Resp.DONE),)
        (s,) = observable_projection(labels)
        assert s.is_commit and s.thread == 1


class TestSharedGraph:
    def test_check_liveness_all(self):
        results = check_liveness_all(ManagedTM(DSTM(2, 1), AggressiveManager()))
        names = [r.property_name for r in results]
        assert names == [
            "obstruction freedom",
            "livelock freedom",
            "wait freedom",
        ]
        of, lf, wf = results
        assert of.holds and not lf.holds and not wf.holds

    def test_graph_reuse_gives_same_verdicts(self):
        tm = TwoPhaseLockingTM(2, 1)
        g = build_liveness_graph(tm)
        a = check_obstruction_freedom(tm, graph=g)
        b = check_obstruction_freedom(tm)
        assert a.holds == b.holds
        assert a.graph_states == b.graph_states

    def test_verdict_strings(self):
        res = check_obstruction_freedom(SequentialTM(2, 1))
        assert res.verdict().startswith("N, loop=[abort1]")
        ok = check_obstruction_freedom(
            ManagedTM(DSTM(2, 1), AggressiveManager())
        )
        assert ok.verdict().startswith("Y")
