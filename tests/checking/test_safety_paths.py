"""Regression: every safety-check path yields identical results.

The safety pipeline has three execution strategies — materialized NFA +
interned product, lazy streamed product against the cached spec DFA, and
fully lazy product against the spec transition function — plus the naive
(non-interned) reference checker.  All four must produce identical
verdicts, counterexamples and discovered-pair counts for every TM of the
paper at (2, 2).  This pins the acceptance criterion that the interned
kernel is byte-identical to the seed implementation.
"""

import pytest

from repro.automata.inclusion import (
    _check_inclusion_in_dfa_naive,
    check_inclusion_in_dfa,
)
from repro.checking import check_safety
from repro.spec import OP, SS, cached_det_spec
from repro.tm import (
    DSTM,
    TL2,
    ManagedTM,
    ModifiedTL2,
    PoliteManager,
    SequentialTM,
    TwoPhaseLockingTM,
    build_safety_nfa,
)

TMS = [
    SequentialTM(2, 2),
    TwoPhaseLockingTM(2, 2),
    DSTM(2, 2),
    TL2(2, 2),
    ManagedTM(ModifiedTL2(2, 2), PoliteManager()),
]
IDS = [tm.name for tm in TMS]


@pytest.fixture(scope="module")
def nfas():
    return {tm.name: build_safety_nfa(tm) for tm in TMS}


@pytest.mark.parametrize("tm", TMS, ids=IDS)
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_interned_equals_naive_inclusion(nfas, tm, prop):
    """Satellite regression: interned vs. non-interned equivalence
    across all TMs at (2, 2)."""
    nfa = nfas[tm.name]
    spec = cached_det_spec(2, 2, prop)
    fast = check_inclusion_in_dfa(nfa, spec)
    slow = _check_inclusion_in_dfa_naive(nfa, spec)
    assert fast.holds == slow.holds
    assert fast.counterexample == slow.counterexample
    assert fast.product_states == slow.product_states


@pytest.mark.parametrize("tm", TMS, ids=IDS)
@pytest.mark.parametrize("prop", [SS, OP], ids=["ss", "op"])
def test_lazy_paths_equal_materialized(tm, prop):
    lazy = check_safety(tm, prop)
    mat = check_safety(tm, prop, materialize=True)
    oracle = check_safety(tm, prop, lazy_spec=True)
    for other in (mat, oracle):
        assert lazy.holds == other.holds
        assert lazy.counterexample == other.counterexample
        assert lazy.product_states == other.product_states
    # when the inclusion holds, the lazy product visits the full TM
    # state space, so the reported sizes agree as well
    if lazy.holds:
        assert lazy.tm_states == mat.tm_states == oracle.tm_states


def test_lazy_spec_rejects_conflicting_options():
    tm = SequentialTM(2, 2)
    with pytest.raises(ValueError):
        check_safety(tm, SS, lazy_spec=True, materialize=True)
    with pytest.raises(ValueError):
        check_safety(
            tm, SS, lazy_spec=True, spec=cached_det_spec(2, 2, SS)
        )


def test_spec_cache_returns_shared_instance():
    assert cached_det_spec(2, 2, SS) is cached_det_spec(2, 2, SS)
    assert cached_det_spec(2, 2, SS) is not cached_det_spec(2, 2, OP)


def test_max_states_bound_respected_on_lazy_path():
    with pytest.raises(RuntimeError):
        check_safety(TL2(2, 2), SS, max_states=50)
    with pytest.raises(RuntimeError):
        check_safety(TL2(2, 2), SS, max_states=50, materialize=True)
